#include "ocd/graph/algorithms.hpp"

#include <gtest/gtest.h>

namespace ocd {
namespace {

/// Directed path 0 -> 1 -> 2 -> 3.
Digraph path4() {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(2, 3, 1);
  return g;
}

/// Bidirectional cycle over n vertices.
Digraph cycle(std::int32_t n) {
  Digraph g(n);
  for (VertexId v = 0; v < n; ++v) {
    g.add_arc(v, (v + 1) % n, 1);
    g.add_arc((v + 1) % n, v, 1);
  }
  return g;
}

TEST(GraphAlgorithms, BfsDistancesOnPath) {
  const Digraph g = path4();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<std::int32_t>{0, 1, 2, 3}));
  const auto d3 = bfs_distances(g, 3);
  EXPECT_EQ(d3[0], kUnreachable);
  EXPECT_EQ(d3[3], 0);
}

TEST(GraphAlgorithms, BfsDistancesToFollowsArcsBackward) {
  const Digraph g = path4();
  const auto d = bfs_distances_to(g, 3);
  EXPECT_EQ(d, (std::vector<std::int32_t>{3, 2, 1, 0}));
  const auto d0 = bfs_distances_to(g, 0);
  EXPECT_EQ(d0[1], kUnreachable);
}

TEST(GraphAlgorithms, AllPairsMatchesSingleSource) {
  const Digraph g = cycle(6);
  const auto all = all_pairs_distances(g);
  for (VertexId v = 0; v < 6; ++v)
    EXPECT_EQ(all[static_cast<std::size_t>(v)], bfs_distances(g, v));
}

TEST(GraphAlgorithms, StrongConnectivity) {
  EXPECT_FALSE(is_strongly_connected(path4()));
  EXPECT_TRUE(is_strongly_connected(cycle(5)));
  Digraph single(1);
  EXPECT_TRUE(is_strongly_connected(single));
}

TEST(GraphAlgorithms, WeakConnectivity) {
  EXPECT_TRUE(is_weakly_connected(path4()));
  Digraph disconnected(3);
  disconnected.add_arc(0, 1, 1);
  EXPECT_FALSE(is_weakly_connected(disconnected));
}

TEST(GraphAlgorithms, DiameterOfCycle) {
  EXPECT_EQ(diameter(cycle(6)), 3);
  EXPECT_EQ(diameter(cycle(7)), 3);
  EXPECT_EQ(diameter(path4()), kUnreachable);  // not strongly connected
  Digraph single(1);
  EXPECT_EQ(diameter(single), 0);
}

TEST(GraphAlgorithms, InBallFollowsIncomingPaths) {
  const Digraph g = path4();
  // Vertices within radius 1 of vertex 2 (backward): {1, 2}.
  EXPECT_EQ(in_ball(g, 2, 1), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(in_ball(g, 2, 0), (std::vector<VertexId>{2}));
  EXPECT_EQ(in_ball(g, 3, 3), (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_THROW(in_ball(g, 3, -1), ContractViolation);
}

TEST(GraphAlgorithms, BfsRequiresValidSource) {
  const Digraph g = path4();
  EXPECT_THROW(bfs_distances(g, 4), ContractViolation);
  EXPECT_THROW(bfs_distances_to(g, -1), ContractViolation);
}

}  // namespace
}  // namespace ocd
