#include "ocd/graph/digraph.hpp"

#include <gtest/gtest.h>

namespace ocd {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_arcs(), 0);
}

TEST(Digraph, AddArcBuildsAdjacency) {
  Digraph g(3);
  const ArcId a = g.add_arc(0, 1, 5);
  const ArcId b = g.add_arc(1, 2, 7);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.arc(a).from, 0);
  EXPECT_EQ(g.arc(a).to, 1);
  EXPECT_EQ(g.arc(a).capacity, 5);
  EXPECT_EQ(g.out_arcs(0).size(), 1u);
  EXPECT_EQ(g.out_arcs(0)[0], a);
  EXPECT_EQ(g.in_arcs(2).size(), 1u);
  EXPECT_EQ(g.in_arcs(2)[0], b);
  EXPECT_TRUE(g.out_arcs(2).empty());
}

TEST(Digraph, RejectsSelfArcsAndDuplicates) {
  Digraph g(2);
  EXPECT_THROW(g.add_arc(0, 0, 1), ContractViolation);
  g.add_arc(0, 1, 1);
  EXPECT_THROW(g.add_arc(0, 1, 2), ContractViolation);
}

TEST(Digraph, RejectsInvalidCapacityOrVertex) {
  Digraph g(2);
  EXPECT_THROW(g.add_arc(0, 1, 0), ContractViolation);
  EXPECT_THROW(g.add_arc(0, 2, 1), ContractViolation);
  EXPECT_THROW(g.add_arc(-1, 1, 1), ContractViolation);
}

TEST(Digraph, AddOrMergeAccumulatesCapacity) {
  Digraph g(2);
  const ArcId a = g.add_or_merge_arc(0, 1, 3);
  const ArcId b = g.add_or_merge_arc(0, 1, 4);
  EXPECT_EQ(a, b);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.arc(a).capacity, 7);
}

TEST(Digraph, FindArcDistinguishesDirections) {
  Digraph g(2);
  const ArcId fwd = g.add_arc(0, 1, 1);
  EXPECT_EQ(g.find_arc(0, 1), fwd);
  EXPECT_EQ(g.find_arc(1, 0), -1);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
}

TEST(Digraph, NeighborsAndCapacities) {
  Digraph g(4);
  g.add_arc(0, 1, 3);
  g.add_arc(0, 2, 4);
  g.add_arc(3, 0, 10);
  EXPECT_EQ(g.out_neighbors(0), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(g.in_neighbors(0), (std::vector<VertexId>{3}));
  EXPECT_EQ(g.out_capacity(0), 7);
  EXPECT_EQ(g.in_capacity(0), 10);
  EXPECT_EQ(g.in_capacity(3), 0);
}

TEST(Digraph, ArcAccessOutOfRangeThrows) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  EXPECT_THROW((void)g.arc(1), ContractViolation);
  EXPECT_THROW((void)g.arc(-1), ContractViolation);
}

}  // namespace
}  // namespace ocd
