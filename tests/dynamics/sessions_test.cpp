#include "ocd/dynamics/sessions.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::dynamics {
namespace {

core::Instance broadcast(std::int32_t n, std::int32_t tokens,
                         std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

TEST(SessionTrace, ValidatesSessions) {
  EXPECT_THROW(SessionTrace({}), ContractViolation);
  EXPECT_THROW(SessionTrace({Session{-1, std::nullopt}}), ContractViolation);
  EXPECT_THROW(SessionTrace({Session{0, -2}}), ContractViolation);
  const SessionTrace ok({Session{0, std::nullopt}, Session{3, 5}});
  EXPECT_EQ(ok.size(), 2u);
  EXPECT_EQ(ok.session(1).join_step, 3);
}

TEST(SessionTrace, SourcesJoinAtZero) {
  const auto inst = broadcast(15, 4, 1);
  Rng rng(2);
  const auto steady = SessionTrace::steady(inst, 0.3, rng);
  EXPECT_EQ(steady.session(0).join_step, 0);  // the source
  const auto flash = SessionTrace::flash_crowd(inst, 5, rng);
  EXPECT_EQ(flash.session(0).join_step, 0);
  for (VertexId v = 1; v < inst.num_vertices(); ++v)
    EXPECT_LT(flash.session(v).join_step, 5);
}

TEST(SessionTrace, SteadyArrivalsAreIncreasing) {
  const auto inst = broadcast(20, 4, 3);
  Rng rng(4);
  const auto trace = SessionTrace::steady(inst, 0.5, rng);
  std::int64_t prev = 0;
  for (VertexId v = 1; v < inst.num_vertices(); ++v) {
    EXPECT_GE(trace.session(v).join_step, prev);
    prev = trace.session(v).join_step;
  }
  EXPECT_GT(prev, 0);
}

TEST(SessionDynamics, AbsentVerticesHaveZeroCapacity) {
  const auto inst = broadcast(10, 2, 5);
  std::vector<Session> sessions(
      static_cast<std::size_t>(inst.num_vertices()));
  sessions[3].join_step = 100;  // vertex 3 arrives late
  SessionDynamics dynamics((SessionTrace(std::move(sessions))));
  dynamics.reset(inst, 1);

  std::vector<std::int32_t> caps;
  for (const Arc& arc : inst.graph().arcs()) caps.push_back(arc.capacity);
  util::TokenMatrix possession;
  possession.reset(static_cast<std::size_t>(inst.num_vertices()),
                   static_cast<std::size_t>(inst.num_tokens()));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession.assign_row(static_cast<std::size_t>(v), inst.have(v));
  dynamics.observe(0, inst, possession);
  dynamics.apply(0, inst.graph(), caps);

  EXPECT_FALSE(dynamics.present(3, 0));
  EXPECT_TRUE(dynamics.present(3, 100));
  for (ArcId a : inst.graph().in_arcs(3))
    EXPECT_EQ(caps[static_cast<std::size_t>(a)], 0);
  for (ArcId a : inst.graph().out_arcs(3))
    EXPECT_EQ(caps[static_cast<std::size_t>(a)], 0);
}

TEST(SessionDynamics, LingerDepartsAfterCompletion) {
  const auto inst = broadcast(6, 2, 6);
  std::vector<Session> sessions(
      static_cast<std::size_t>(inst.num_vertices()));
  sessions[2].linger_after_complete = 3;
  SessionDynamics dynamics((SessionTrace(std::move(sessions))));
  dynamics.reset(inst, 1);

  // Simulate vertex 2 completing at step 4.
  util::TokenMatrix possession;
  possession.reset(static_cast<std::size_t>(inst.num_vertices()),
                   static_cast<std::size_t>(inst.num_tokens()));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession.assign_row(static_cast<std::size_t>(v), inst.have(v));
  for (std::int64_t step = 0; step < 4; ++step)
    dynamics.observe(step, inst, possession);
  possession.row(2) |= inst.want(2);
  dynamics.observe(4, inst, possession);

  EXPECT_TRUE(dynamics.present(2, 4));
  EXPECT_TRUE(dynamics.present(2, 7));   // 4 + 3 linger
  EXPECT_FALSE(dynamics.present(2, 8));  // gone
}

TEST(SessionDynamics, FlashCrowdBroadcastCompletes) {
  const auto inst = broadcast(25, 12, 7);
  Rng rng(8);
  SessionDynamics dynamics(SessionTrace::flash_crowd(inst, 6, rng));
  auto policy = heuristics::make_policy("local");
  sim::SimOptions options;
  options.seed = 9;
  options.dynamics = &dynamics;
  options.max_steps = 10'000;
  const auto result = sim::run(inst, *policy, options);
  EXPECT_TRUE(result.success);
}

TEST(SessionDynamics, SteadyArrivalsStretchCompletion) {
  const auto inst = broadcast(20, 8, 9);
  auto baseline = heuristics::make_policy("local");
  sim::SimOptions base_options;
  base_options.seed = 10;
  const auto static_run = sim::run(inst, *baseline, base_options);
  ASSERT_TRUE(static_run.success);

  Rng rng(11);
  SessionDynamics dynamics(SessionTrace::steady(inst, 0.2, rng));
  auto policy = heuristics::make_policy("local");
  sim::SimOptions options;
  options.seed = 10;
  options.dynamics = &dynamics;
  options.max_steps = 50'000;
  const auto trace_run = sim::run(inst, *policy, options);
  ASSERT_TRUE(trace_run.success);
  // The run cannot finish before the last arrival.
  EXPECT_GT(trace_run.steps, static_run.steps);
}

TEST(SessionDynamics, SelfishPeersStillAllowCompletion) {
  // Everyone departs 2 steps after completing; the pinned-by-trace
  // source (join 0, no linger because it has no wants -> never
  // "completes"... it completes immediately).  Give the source infinite
  // linger explicitly and let everyone else be selfish.
  const auto inst = broadcast(18, 6, 12);
  std::vector<Session> sessions(
      static_cast<std::size_t>(inst.num_vertices()));
  for (VertexId v = 1; v < inst.num_vertices(); ++v)
    sessions[static_cast<std::size_t>(v)].linger_after_complete = 2;
  SessionDynamics dynamics((SessionTrace(std::move(sessions))));
  auto policy = heuristics::make_policy("local");
  sim::SimOptions options;
  options.seed = 13;
  options.dynamics = &dynamics;
  options.max_steps = 10'000;
  const auto result = sim::run(inst, *policy, options);
  EXPECT_TRUE(result.success);
}

}  // namespace
}  // namespace ocd::dynamics
