#include "ocd/dynamics/model.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::dynamics {
namespace {

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

std::vector<std::int32_t> static_caps(const Digraph& g) {
  std::vector<std::int32_t> caps;
  for (const Arc& arc : g.arcs()) caps.push_back(arc.capacity);
  return caps;
}

TEST(CapacityJitter, StaysWithinBand) {
  const auto inst = broadcast_instance(15, 4, 1);
  CapacityJitter jitter(0.5, /*min_capacity=*/1);
  jitter.reset(inst, 7);
  auto caps = static_caps(inst.graph());
  for (std::int64_t step = 0; step < 20; ++step) {
    caps = static_caps(inst.graph());
    jitter.apply(step, inst.graph(), caps);
    for (ArcId a = 0; a < inst.graph().num_arcs(); ++a) {
      const std::int32_t full = inst.graph().arc(a).capacity;
      EXPECT_GE(caps[static_cast<std::size_t>(a)], 1);
      EXPECT_LE(caps[static_cast<std::size_t>(a)], full);
    }
  }
}

TEST(CapacityJitter, ZeroIntensityIsIdentity) {
  const auto inst = broadcast_instance(10, 2, 2);
  CapacityJitter jitter(0.0);
  jitter.reset(inst, 1);
  auto caps = static_caps(inst.graph());
  jitter.apply(0, inst.graph(), caps);
  EXPECT_EQ(caps, static_caps(inst.graph()));
}

TEST(CapacityJitter, RejectsBadParameters) {
  EXPECT_THROW(CapacityJitter(-0.1), ContractViolation);
  EXPECT_THROW(CapacityJitter(1.5), ContractViolation);
  EXPECT_THROW(CapacityJitter(0.5, -1), ContractViolation);
}

TEST(LinkChurn, OutagesLastConfiguredDuration) {
  const auto inst = broadcast_instance(10, 2, 3);
  LinkChurn churn(1.0, /*outage_steps=*/3);  // everything fails at step 0
  churn.reset(inst, 5);
  for (std::int64_t step = 0; step < 3; ++step) {
    auto caps = static_caps(inst.graph());
    churn.apply(step, inst.graph(), caps);
    for (std::int32_t c : caps) EXPECT_EQ(c, 0) << "step " << step;
  }
  // After the outage they fail again immediately (p = 1), so use a
  // fresh model with p = 0 to observe recovery.
  LinkChurn quiet(0.0, 3);
  quiet.reset(inst, 5);
  auto caps = static_caps(inst.graph());
  quiet.apply(0, inst.graph(), caps);
  EXPECT_EQ(caps, static_caps(inst.graph()));
}

TEST(NodeChurn, SeedersArePinnedByDefault) {
  const auto inst = broadcast_instance(12, 3, 4);
  NodeChurn churn(1.0, 2);  // everyone non-pinned leaves instantly
  churn.reset(inst, 9);
  auto caps = static_caps(inst.graph());
  churn.apply(0, inst.graph(), caps);
  // Source (vertex 0) is pinned: its arcs to *pinned* peers would stay
  // up, but all its neighbors left, so in/out arcs of neighbors are 0.
  for (ArcId a = 0; a < inst.graph().num_arcs(); ++a) {
    const Arc& arc = inst.graph().arc(a);
    if (arc.from != 0 && arc.to != 0) {
      EXPECT_EQ(caps[static_cast<std::size_t>(a)], 0);
    }
  }
}

TEST(NodeChurn, ExplicitPinsRespected) {
  const auto inst = broadcast_instance(8, 2, 5);
  NodeChurn churn(1.0, 2);
  std::vector<VertexId> all;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) all.push_back(v);
  churn.set_pinned(all);
  churn.reset(inst, 1);
  auto caps = static_caps(inst.graph());
  churn.apply(0, inst.graph(), caps);
  EXPECT_EQ(caps, static_caps(inst.graph()));  // nobody may leave
}

// ----------------------------------------------------------------------
// End-to-end: heuristics complete under dynamics, never exceeding the
// effective capacities.
// ----------------------------------------------------------------------
struct DynCase {
  std::string policy;
  std::string model;
};

class DynamicsEndToEnd : public ::testing::TestWithParam<DynCase> {};

TEST_P(DynamicsEndToEnd, CompletesUnderChangingConditions) {
  const auto& param = GetParam();
  const auto inst = broadcast_instance(20, 12, 6);

  std::unique_ptr<DynamicsModel> model;
  if (param.model == "jitter") {
    model = std::make_unique<CapacityJitter>(0.6);
  } else if (param.model == "link") {
    model = std::make_unique<LinkChurn>(0.10, 3);
  } else {
    model = std::make_unique<NodeChurn>(0.05, 4);
  }

  auto policy = heuristics::make_policy(param.policy);
  sim::SimOptions options;
  options.seed = 17;
  options.dynamics = model.get();
  options.max_steps = 5000;
  const auto result = sim::run(inst, *policy, options);
  EXPECT_TRUE(result.success) << param.policy << "/" << param.model;
  EXPECT_GT(result.bandwidth, 0);
}

std::vector<DynCase> dynamics_cases() {
  std::vector<DynCase> cases;
  for (const auto& policy : heuristics::all_policy_names()) {
    for (const std::string model : {"jitter", "link", "node"}) {
      cases.push_back({policy, model});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DynamicsEndToEnd, ::testing::ValuesIn(dynamics_cases()),
    [](const ::testing::TestParamInfo<DynCase>& info) {
      std::string name = info.param.policy + "_" + info.param.model;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(DynamicsEndToEndExtra, ChurnSlowsCompletionDown) {
  const auto inst = broadcast_instance(25, 16, 8);
  auto baseline = heuristics::make_policy("local");
  sim::SimOptions options;
  options.seed = 4;
  const auto calm = sim::run(inst, *baseline, options);

  LinkChurn churn(0.25, 4);
  auto stressed = heuristics::make_policy("local");
  options.dynamics = &churn;
  options.max_steps = 5000;
  const auto stormy = sim::run(inst, *stressed, options);

  ASSERT_TRUE(calm.success);
  ASSERT_TRUE(stormy.success);
  EXPECT_GT(stormy.steps, calm.steps);
}

TEST(DynamicsEndToEndExtra, DeterministicUnderSeed) {
  const auto inst = broadcast_instance(15, 8, 9);
  auto run_once = [&]() {
    LinkChurn churn(0.2, 2);
    auto policy = heuristics::make_policy("random");
    sim::SimOptions options;
    options.seed = 31;
    options.dynamics = &churn;
    options.max_steps = 5000;
    return sim::run(inst, *policy, options);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.bandwidth, b.bandwidth);
}

}  // namespace
}  // namespace ocd::dynamics
