// Fault-injection semantics: losses consume capacity but never mutate
// possession, the loss trace is accounted per step, zero-rate models
// are bit-identical to no-faults runs, and scripted FaultPlans
// reproduce exact drops.
#include "ocd/faults/model.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::faults {
namespace {

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

sim::RunResult run_with(const core::Instance& inst,
                        const std::string& policy_name, FaultModel* faults,
                        std::uint64_t seed = 3) {
  auto policy = heuristics::make_policy(policy_name);
  sim::SimOptions options;
  options.seed = seed;
  options.faults = faults;
  options.max_steps = 50'000;
  return sim::run(inst, *policy, options);
}

void expect_identical_results(const sim::RunResult& a,
                              const sim::RunResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.bandwidth, b.bandwidth);
  EXPECT_EQ(a.termination, b.termination);
  EXPECT_EQ(a.stats.useful_moves, b.stats.useful_moves);
  EXPECT_EQ(a.stats.redundant_moves, b.stats.redundant_moves);
  EXPECT_EQ(a.stats.lost_moves, b.stats.lost_moves);
  EXPECT_EQ(a.stats.moves_per_step, b.stats.moves_per_step);
  EXPECT_EQ(a.stats.lost_per_step, b.stats.lost_per_step);
  EXPECT_EQ(a.stats.completion_step, b.stats.completion_step);
  EXPECT_EQ(a.stats.sent_by_vertex, b.stats.sent_by_vertex);
  ASSERT_EQ(a.schedule.length(), b.schedule.length());
  for (std::size_t i = 0; i < a.schedule.steps().size(); ++i) {
    const auto& sa = a.schedule.steps()[i].sends();
    const auto& sb = b.schedule.steps()[i].sends();
    ASSERT_EQ(sa.size(), sb.size()) << "step " << i;
    for (std::size_t j = 0; j < sa.size(); ++j) {
      EXPECT_EQ(sa[j].arc, sb[j].arc) << "step " << i;
      EXPECT_EQ(sa[j].tokens, sb[j].tokens) << "step " << i;
    }
  }
}

TEST(UniformLoss, RejectsBadRate) {
  EXPECT_THROW(UniformLoss(-0.1), ContractViolation);
  EXPECT_THROW(UniformLoss(1.1), ContractViolation);
}

TEST(UniformLoss, ZeroRateIsBitIdenticalToNoFaults) {
  const auto inst = broadcast_instance(16, 8, 11);
  for (const char* policy : {"round-robin", "random", "local"}) {
    UniformLoss none(0.0);
    const auto faulted = run_with(inst, policy, &none);
    const auto clean = run_with(inst, policy, nullptr);
    expect_identical_results(faulted, clean);
    EXPECT_EQ(faulted.stats.lost_moves, 0);
  }
}

TEST(UniformLoss, FullRateLosesEverySend) {
  UniformLoss all(1.0);
  const auto inst = broadcast_instance(8, 4, 2);
  all.reset(inst, 1);
  TokenSet sent = TokenSet::of(4, {0, 2});
  TokenSet lost(4);
  all.lost(0, 0, sent, lost);
  EXPECT_EQ(lost, sent);
}

TEST(UniformLoss, LossyRunStillCompletesAndAccountsEveryMove) {
  const auto inst = broadcast_instance(18, 10, 5);
  UniformLoss loss(0.3);
  const auto result = run_with(inst, "random", &loss);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.termination, sim::Termination::kSatisfied);
  EXPECT_GT(result.stats.lost_moves, 0);
  EXPECT_GE(result.stats.wasted_bandwidth(), result.stats.lost_moves);
  EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
  // The recorded schedule holds deliveries only: replaying it without
  // faults must be valid and reach completion.
  const auto validation = core::validate(inst, result.schedule);
  EXPECT_TRUE(validation.valid);
  EXPECT_TRUE(validation.successful);
  // It is also strictly smaller than the wire traffic.
  EXPECT_EQ(result.schedule.bandwidth(),
            result.bandwidth - result.stats.lost_moves);
}

TEST(UniformLoss, LossSlowsCompletionDown) {
  const auto inst = broadcast_instance(20, 12, 7);
  UniformLoss heavy(0.5);
  const auto lossy = run_with(inst, "local", &heavy);
  const auto clean = run_with(inst, "local", nullptr);
  ASSERT_TRUE(lossy.success);
  ASSERT_TRUE(clean.success);
  EXPECT_GT(lossy.steps, clean.steps);
}

TEST(GilbertElliott, RejectsBadParameters) {
  EXPECT_THROW(GilbertElliott(-0.1, 0.5), ContractViolation);
  EXPECT_THROW(GilbertElliott(0.1, 1.5), ContractViolation);
  EXPECT_THROW(GilbertElliott(0.1, 0.5, -1.0, 1.0), ContractViolation);
  EXPECT_THROW(GilbertElliott(0.1, 0.5, 0.0, 2.0), ContractViolation);
}

TEST(GilbertElliott, AllGoodChannelNeverLoses) {
  const auto inst = broadcast_instance(10, 6, 3);
  GilbertElliott ge(0.0, 1.0, 0.0, 1.0);  // never leaves the good state
  const auto result = run_with(inst, "random", &ge);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.lost_moves, 0);
}

TEST(GilbertElliott, BadStateLosesAtBadRate) {
  const auto inst = broadcast_instance(6, 4, 9);
  GilbertElliott ge(1.0, 0.0, 0.0, 1.0);  // all arcs bad from step 0 on
  ge.reset(inst, 4);
  ge.begin_step(0, inst.graph());
  for (ArcId a = 0; a < inst.graph().num_arcs(); ++a) EXPECT_TRUE(ge.bad(a));
  TokenSet sent = TokenSet::of(4, {1, 3});
  TokenSet lost(4);
  ge.lost(0, 0, sent, lost);
  EXPECT_EQ(lost, sent);
}

TEST(GilbertElliott, BurstyRunStillCompletes) {
  const auto inst = broadcast_instance(16, 8, 13);
  GilbertElliott ge(0.2, 0.5, 0.02, 0.9);
  const auto result = run_with(inst, "local", &ge);
  ASSERT_TRUE(result.success);
  EXPECT_GT(result.stats.lost_moves, 0);
  EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
}

TEST(FaultPlan, DropsExactlyTheScriptedEvents) {
  // Line 0 -> 1 -> 2, one token.  Drop the step-0 transfer on arc 0:
  // round-robin retries at step 1, so delivery lands one step late and
  // completion shifts from step 2 to step 3.
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);

  FaultPlan plan;
  plan.drop(0, 0, 0);
  EXPECT_EQ(plan.size(), 1u);

  auto policy = heuristics::make_policy("round-robin");
  sim::SimOptions options;
  options.faults = &plan;
  const auto result = sim::run(inst, *policy, options);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.lost_moves, 1);
  EXPECT_EQ(result.stats.lost_per_step[0], 1);
  EXPECT_EQ(result.stats.completion_step[2], 3);
}

TEST(FaultPlan, ScriptedDropReproducesBitIdentically) {
  const auto inst = broadcast_instance(14, 8, 21);
  const auto scripted = [&] {
    FaultPlan plan;
    // Drop a few early transfers on the first arcs; events that never
    // occur (huge step) are silently inert.
    plan.drop(0, 0, 0).drop(1, 1, 2).drop(2, 0, 1).drop(900, 3, 0);
    return plan;
  };
  FaultPlan first = scripted();
  FaultPlan second = scripted();
  const auto a = run_with(inst, "random", &first);
  const auto b = run_with(inst, "random", &second);
  expect_identical_results(a, b);
}

TEST(FaultPlan, EmptyPlanIsBitIdenticalToNoFaults) {
  const auto inst = broadcast_instance(12, 6, 23);
  FaultPlan empty;
  const auto faulted = run_with(inst, "round-robin", &empty);
  const auto clean = run_with(inst, "round-robin", nullptr);
  expect_identical_results(faulted, clean);
}

TEST(Faults, LossNeverMutatesPossessionInvariant) {
  // Under 100% loss nothing may ever be delivered: the watchdog fires,
  // no vertex completes, and the schedule (deliveries only) is empty.
  const auto inst = broadcast_instance(10, 5, 27);
  UniformLoss all(1.0);
  auto policy = heuristics::make_policy("random");
  sim::SimOptions options;
  options.faults = &all;
  options.no_progress_window = 20;
  const auto result = sim::run(inst, *policy, options);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.termination, sim::Termination::kNoProgress);
  EXPECT_EQ(result.stats.useful_moves, 0);
  EXPECT_EQ(result.stats.redundant_moves, 0);
  EXPECT_EQ(result.bandwidth, result.stats.lost_moves);
  EXPECT_EQ(result.schedule.bandwidth(), 0);
  for (std::size_t v = 1; v < result.stats.completion_step.size(); ++v) {
    if (!inst.want(static_cast<VertexId>(v)).empty()) {
      EXPECT_EQ(result.stats.completion_step[v], -1);
    }
  }
}

}  // namespace
}  // namespace ocd::faults
