// Determinism regression: every stochastic model (dynamics and faults)
// must produce bit-identical traces when run twice from the same seed,
// and genuinely different traces from different seeds.  Catches both
// hidden global state and accidentally shared RNG streams.  The final
// section replays whole runs under OCD_JOBS ∈ {1, 2, 8}: the parallel
// runtime guarantees bit-identical output for any worker budget, so
// schedules, step counts, bandwidth and loss accounting must agree.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "ocd/core/scenario.hpp"
#include "ocd/dynamics/model.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/util/parallel.hpp"

namespace ocd::faults {
namespace {

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

// ---- dynamics: capacity traces -------------------------------------

using CapacityTrace = std::vector<std::vector<std::int32_t>>;

CapacityTrace capacity_trace(dynamics::DynamicsModel& model,
                             const core::Instance& inst, std::uint64_t seed,
                             std::int64_t steps) {
  model.reset(inst, seed);
  const Digraph& g = inst.graph();
  CapacityTrace trace;
  trace.reserve(static_cast<std::size_t>(steps));
  for (std::int64_t step = 0; step < steps; ++step) {
    std::vector<std::int32_t> cap(static_cast<std::size_t>(g.num_arcs()));
    for (ArcId a = 0; a < g.num_arcs(); ++a) cap[a] = g.arc(a).capacity;
    model.apply(step, g, cap);
    trace.push_back(std::move(cap));
  }
  return trace;
}

struct DynamicsCase {
  const char* label;
  std::function<std::unique_ptr<dynamics::DynamicsModel>()> make;
};

std::vector<DynamicsCase> dynamics_cases() {
  return {
      {"jitter",
       [] { return std::make_unique<dynamics::CapacityJitter>(0.6, 0); }},
      {"link-churn",
       [] { return std::make_unique<dynamics::LinkChurn>(0.2, 3); }},
      {"node-churn",
       [] { return std::make_unique<dynamics::NodeChurn>(0.2, 3); }},
  };
}

TEST(Determinism, DynamicsCapacityTracesReplayFromSeed) {
  const auto inst = broadcast_instance(16, 4, 61);
  for (const auto& c : dynamics_cases()) {
    auto first = c.make();
    auto second = c.make();
    const auto a = capacity_trace(*first, inst, 77, 64);
    const auto b = capacity_trace(*second, inst, 77, 64);
    EXPECT_EQ(a, b) << c.label;
  }
}

TEST(Determinism, DynamicsCapacityTracesDivergeAcrossSeeds) {
  const auto inst = broadcast_instance(16, 4, 61);
  for (const auto& c : dynamics_cases()) {
    auto first = c.make();
    auto second = c.make();
    const auto a = capacity_trace(*first, inst, 77, 64);
    const auto b = capacity_trace(*second, inst, 78, 64);
    EXPECT_NE(a, b) << c.label;
  }
}

// ---- faults: loss traces -------------------------------------------

// Feeds every arc a full window of tokens each step and records what
// the model eats — a traffic pattern dense enough that two different
// RNG streams cannot plausibly agree for 64 steps.
std::vector<TokenSet> loss_trace(FaultModel& model, const core::Instance& inst,
                                 std::uint64_t seed, std::int64_t steps) {
  constexpr std::size_t kUniverse = 8;
  model.reset(inst, seed);
  const Digraph& g = inst.graph();
  TokenSet sent(kUniverse);
  for (TokenId t = 0; t < static_cast<TokenId>(kUniverse); ++t) sent.set(t);
  std::vector<TokenSet> trace;
  for (std::int64_t step = 0; step < steps; ++step) {
    model.begin_step(step, g);
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      TokenSet lost(kUniverse);
      model.lost(step, a, sent, lost);
      trace.push_back(std::move(lost));
    }
  }
  return trace;
}

struct FaultCase {
  const char* label;
  std::function<std::unique_ptr<FaultModel>()> make;
  bool seeded;  // FaultPlan ignores the seed: test replay only.
};

std::vector<FaultCase> fault_cases() {
  return {
      {"uniform", [] { return std::make_unique<UniformLoss>(0.4); }, true},
      {"gilbert-elliott",
       [] { return std::make_unique<GilbertElliott>(0.3, 0.4, 0.05, 0.9); },
       true},
      {"plan",
       [] {
         auto plan = std::make_unique<FaultPlan>();
         plan->drop(0, 0, 1).drop(3, 1, 0).drop(7, 0, 5);
         return plan;
       },
       false},
  };
}

TEST(Determinism, FaultLossTracesReplayFromSeed) {
  const auto inst = broadcast_instance(12, 4, 62);
  for (const auto& c : fault_cases()) {
    auto first = c.make();
    auto second = c.make();
    const auto a = loss_trace(*first, inst, 91, 64);
    const auto b = loss_trace(*second, inst, 91, 64);
    EXPECT_EQ(a, b) << c.label;
  }
}

TEST(Determinism, FaultLossTracesDivergeAcrossSeeds) {
  const auto inst = broadcast_instance(12, 4, 62);
  for (const auto& c : fault_cases()) {
    if (!c.seeded) continue;
    auto first = c.make();
    auto second = c.make();
    const auto a = loss_trace(*first, inst, 91, 64);
    const auto b = loss_trace(*second, inst, 92, 64);
    EXPECT_NE(a, b) << c.label;
  }
}

// ---- end to end: whole runs replay ---------------------------------

TEST(Determinism, FaultedRunsReplayBitIdentically) {
  const auto inst = broadcast_instance(18, 8, 63);
  for (const auto& c : fault_cases()) {
    auto run_once = [&] {
      auto model = c.make();
      auto policy = heuristics::make_policy("random");
      sim::SimOptions options;
      options.seed = 17;
      options.faults = model.get();
      options.max_steps = 50'000;
      return sim::run(inst, *policy, options);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.steps, b.steps) << c.label;
    EXPECT_EQ(a.bandwidth, b.bandwidth) << c.label;
    EXPECT_EQ(a.stats.lost_moves, b.stats.lost_moves) << c.label;
    EXPECT_EQ(a.stats.lost_per_step, b.stats.lost_per_step) << c.label;
    EXPECT_EQ(a.stats.moves_per_step, b.stats.moves_per_step) << c.label;
  }
}

// ---- worker-budget invariance: OCD_JOBS ∈ {1, 2, 8} ----------------

/// ArcSend has no operator==, so schedules are compared send by send.
void expect_schedules_identical(const core::Schedule& a,
                                const core::Schedule& b, const char* label) {
  ASSERT_EQ(a.length(), b.length()) << label;
  ASSERT_EQ(a.bandwidth(), b.bandwidth()) << label;
  for (std::size_t s = 0; s < a.steps().size(); ++s) {
    const auto& sa = a.steps()[s].sends();
    const auto& sb = b.steps()[s].sends();
    ASSERT_EQ(sa.size(), sb.size()) << label << " step " << s;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].arc, sb[i].arc) << label << " step " << s;
      EXPECT_EQ(sa[i].tokens, sb[i].tokens) << label << " step " << s;
    }
  }
}

/// Large enough that the sharded planner wave scan (>= 256 awake arcs)
/// and the sharded apply phase (>= 64 sends) actually engage at 8 jobs.
core::Instance parallel_scale_instance(std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(80, rng);
  return core::single_source_all_receivers(std::move(g), 64, 0);
}

TEST(Determinism, PlannerRunsReplayAcrossJobCounts) {
  const auto inst = parallel_scale_instance(65);
  for (const auto& policy_name : {"global", "local", "random"}) {
    auto run_with_jobs = [&](unsigned jobs) {
      util::set_parallel_jobs(jobs);
      auto policy = heuristics::make_policy(policy_name);
      sim::SimOptions options;
      options.seed = 29;
      options.max_steps = 50'000;
      const auto result = sim::run(inst, *policy, options);
      util::set_parallel_jobs(0);
      return result;
    };
    const auto serial = run_with_jobs(1);
    for (const unsigned jobs : {2u, 8u}) {
      const auto parallel = run_with_jobs(jobs);
      EXPECT_EQ(parallel.steps, serial.steps) << policy_name << "@" << jobs;
      EXPECT_EQ(parallel.bandwidth, serial.bandwidth)
          << policy_name << "@" << jobs;
      EXPECT_EQ(parallel.stats.useful_moves, serial.stats.useful_moves)
          << policy_name << "@" << jobs;
      EXPECT_EQ(parallel.stats.redundant_moves, serial.stats.redundant_moves)
          << policy_name << "@" << jobs;
      EXPECT_EQ(parallel.stats.moves_per_step, serial.stats.moves_per_step)
          << policy_name << "@" << jobs;
      EXPECT_EQ(parallel.stats.completion_step, serial.stats.completion_step)
          << policy_name << "@" << jobs;
      expect_schedules_identical(parallel.schedule, serial.schedule,
                                 policy_name);
    }
  }
}

TEST(Determinism, FaultedRunsReplayAcrossJobCounts) {
  const auto inst = parallel_scale_instance(66);
  for (const auto& c : fault_cases()) {
    auto run_with_jobs = [&](unsigned jobs) {
      util::set_parallel_jobs(jobs);
      auto model = c.make();
      auto policy = heuristics::make_policy("global");
      sim::SimOptions options;
      options.seed = 31;
      options.faults = model.get();
      options.max_steps = 50'000;
      const auto result = sim::run(inst, *policy, options);
      util::set_parallel_jobs(0);
      return result;
    };
    const auto serial = run_with_jobs(1);
    for (const unsigned jobs : {2u, 8u}) {
      const auto parallel = run_with_jobs(jobs);
      EXPECT_EQ(parallel.steps, serial.steps) << c.label << "@" << jobs;
      EXPECT_EQ(parallel.bandwidth, serial.bandwidth) << c.label << "@" << jobs;
      EXPECT_EQ(parallel.stats.lost_moves, serial.stats.lost_moves)
          << c.label << "@" << jobs;
      EXPECT_EQ(parallel.stats.lost_per_step, serial.stats.lost_per_step)
          << c.label << "@" << jobs;
      EXPECT_EQ(parallel.stats.moves_per_step, serial.stats.moves_per_step)
          << c.label << "@" << jobs;
      expect_schedules_identical(parallel.schedule, serial.schedule, c.label);
    }
  }
}

TEST(Determinism, LossyRunsDivergeAcrossFaultSeeds) {
  // Same policy seed, different *simulation* seeds: the fault model is
  // seeded off options.seed, so the loss traces must differ.
  const auto inst = broadcast_instance(18, 8, 64);
  auto run_with_seed = [&](std::uint64_t seed) {
    UniformLoss loss(0.4);
    auto policy = heuristics::make_policy("round-robin");
    sim::SimOptions options;
    options.seed = seed;
    options.faults = &loss;
    options.max_steps = 50'000;
    return sim::run(inst, *policy, options);
  };
  const auto a = run_with_seed(101);
  const auto b = run_with_seed(102);
  EXPECT_NE(a.stats.lost_per_step, b.stats.lost_per_step);
}

}  // namespace
}  // namespace ocd::faults
