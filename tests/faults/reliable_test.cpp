// ReliableAdapter: ack/timeout/retransmission over any policy, plus
// the progress watchdog that bounds hopeless runs.
#include "ocd/faults/reliable.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/group_adapter.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/physical.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::faults {
namespace {

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

TEST(ReliableAdapter, RejectsBadParameters) {
  EXPECT_THROW(ReliableAdapter(nullptr), ContractViolation);
  EXPECT_THROW(
      ReliableAdapter(heuristics::make_policy("random"), /*base_timeout=*/0),
      ContractViolation);
  EXPECT_THROW(ReliableAdapter(heuristics::make_policy("random"),
                               /*base_timeout=*/4, /*max_backoff=*/2),
               ContractViolation);
}

TEST(ReliableAdapter, NameAndKnowledgeClass) {
  ReliableAdapter wrapped(heuristics::make_policy("round-robin"));
  EXPECT_EQ(wrapped.name(), "round-robin+reliable");
  // A kLocalOnly inner policy is lifted to kLocalPeers (acks are read
  // off peer snapshots); better-informed inners keep their class.
  EXPECT_EQ(wrapped.knowledge_class(), sim::KnowledgeClass::kLocalPeers);
  ReliableAdapter global(heuristics::make_policy("global"));
  EXPECT_EQ(global.knowledge_class(), sim::KnowledgeClass::kGlobal);
}

TEST(ReliableAdapter, FactoryBuildsWrappedPolicies) {
  const auto policy = heuristics::make_policy("local+reliable");
  EXPECT_EQ(policy->name(), "local+reliable");
  EXPECT_THROW(heuristics::make_policy("no-such+reliable"), Error);
}

TEST(ReliableAdapter, TransparentOnLossFreeRuns) {
  // Without faults the adapter must not change the outcome: every
  // transfer is acked by the next step's knowledge, nothing retries.
  const auto inst = broadcast_instance(14, 8, 31);
  auto raw = heuristics::make_policy("random");
  auto wrapped = heuristics::make_policy("random+reliable");
  sim::SimOptions options;
  options.seed = 5;
  const auto raw_run = sim::run(inst, *raw, options);
  const auto wrapped_run = sim::run(inst, *wrapped, options);
  ASSERT_TRUE(raw_run.success);
  ASSERT_TRUE(wrapped_run.success);
  EXPECT_EQ(wrapped_run.steps, raw_run.steps);
  EXPECT_EQ(wrapped_run.stats.retransmissions, 0);
}

TEST(ReliableAdapter, RecoversScriptedLoss) {
  // Line 0 -> 1 -> 2.  The step-0 transfer is eaten; the adapter must
  // detect non-delivery from the peer snapshot and retransmit.
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);

  FaultPlan plan;
  plan.drop(0, 0, 0);
  ReliableAdapter wrapped(heuristics::make_policy("round-robin"),
                          /*base_timeout=*/1);
  sim::SimOptions options;
  options.faults = &plan;
  const auto result = sim::run(inst, wrapped, options);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.lost_moves, 1);
  EXPECT_GE(result.stats.retransmissions, 1);
  EXPECT_EQ(result.stats.retransmissions, wrapped.retransmissions());
  EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
}

TEST(ReliableAdapter, AllPoliciesCompleteUnderTwentyPercentLoss) {
  // The acceptance bar: UniformLoss(0.2) on fig2-style random-graph
  // configs — every wrapped policy finishes, every raw policy records
  // real losses.
  for (const std::uint64_t graph_seed : {41ULL, 42ULL}) {
    const auto inst = broadcast_instance(20, 10, graph_seed);
    for (const auto& name : heuristics::all_policy_names()) {
      UniformLoss raw_loss(0.2);
      auto raw = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 9;
      options.faults = &raw_loss;
      options.max_steps = 50'000;
      const auto raw_run = sim::run(inst, *raw, options);
      EXPECT_GT(raw_run.stats.lost_moves, 0) << name;

      UniformLoss wrapped_loss(0.2);
      auto wrapped = heuristics::make_policy(name + "+reliable");
      options.faults = &wrapped_loss;
      const auto wrapped_run = sim::run(inst, *wrapped, options);
      EXPECT_TRUE(wrapped_run.success) << name << "+reliable";
      EXPECT_EQ(wrapped_run.termination, sim::Termination::kSatisfied)
          << name << "+reliable";
    }
  }
}

TEST(ReliableAdapter, BackoffIsCappedAndRetriesPersist) {
  // 0 -> 1, single token, every transfer on the arc lost until step 12:
  // the adapter must keep retrying (base 1, cap 4) and succeed once the
  // channel clears.
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(1, 0);

  FaultPlan plan;
  for (std::int64_t step = 0; step <= 12; ++step) plan.drop(step, 0, 0);
  ReliableAdapter wrapped(heuristics::make_policy("round-robin"),
                          /*base_timeout=*/1, /*max_backoff=*/4);
  sim::SimOptions options;
  options.faults = &plan;
  const auto result = sim::run(inst, wrapped, options);
  ASSERT_TRUE(result.success);
  EXPECT_GE(result.stats.retransmissions, 3);
  EXPECT_EQ(result.stats.lost_moves, 13);
}

TEST(Watchdog, TotalLossTerminatesGracefully) {
  // 100% loss: the wrapped policy retries forever, the raw policy
  // spins; the watchdog must end both with success == false and a
  // steps count equal to its window, not max_steps.
  const auto inst = broadcast_instance(12, 6, 51);
  for (const char* name : {"random", "random+reliable"}) {
    UniformLoss all(1.0);
    auto policy = heuristics::make_policy(name);
    sim::SimOptions options;
    options.faults = &all;
    options.no_progress_window = 25;
    options.max_steps = 100'000;
    const auto result = sim::run(inst, *policy, options);
    EXPECT_FALSE(result.success) << name;
    EXPECT_EQ(result.termination, sim::Termination::kNoProgress) << name;
    EXPECT_EQ(result.steps, 25) << name;
    EXPECT_TRUE(result.stats.consistent_with_steps(result.steps)) << name;
  }
}

TEST(Watchdog, AutoWindowBoundsFaultedRunsByDefault) {
  const auto inst = broadcast_instance(12, 6, 52);
  UniformLoss all(1.0);
  auto policy = heuristics::make_policy("random");
  sim::SimOptions options;
  options.faults = &all;  // no_progress_window stays 0 (auto)
  const auto result = sim::run(inst, *policy, options);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.termination, sim::Termination::kNoProgress);
  EXPECT_EQ(result.steps, 256);
  EXPECT_LT(result.steps, options.max_steps);
}

TEST(Watchdog, DisabledWindowRunsToMaxSteps) {
  const auto inst = broadcast_instance(10, 4, 53);
  UniformLoss all(1.0);
  auto policy = heuristics::make_policy("random");
  sim::SimOptions options;
  options.faults = &all;
  options.no_progress_window = -1;
  options.max_steps = 40;
  const auto result = sim::run(inst, *policy, options);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.termination, sim::Termination::kMaxSteps);
  EXPECT_EQ(result.steps, 40);
}

TEST(Watchdog, DistinguishesNetworkLossFromPolicyStall) {
  // A policy that sends nothing is a policy stall even when a fault
  // model is active; a policy that sends into a black hole is not.
  class Silent final : public sim::Policy {
   public:
    [[nodiscard]] std::string_view name() const override { return "silent"; }
    [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
      return sim::KnowledgeClass::kLocalOnly;
    }
  };
  const auto inst = broadcast_instance(8, 3, 54);
  UniformLoss all(1.0);
  sim::SimOptions options;
  options.faults = &all;
  options.no_progress_window = 10;
  Silent silent;
  const auto stalled = sim::run(inst, silent, options);
  EXPECT_EQ(stalled.termination, sim::Termination::kPolicyStalled);
  EXPECT_EQ(std::string_view(sim::to_string(stalled.termination)),
            "policy-stalled");
  auto random = heuristics::make_policy("random");
  const auto eaten = sim::run(inst, *random, options);
  EXPECT_EQ(eaten.termination, sim::Termination::kNoProgress);
  EXPECT_GT(eaten.stats.lost_moves, 0);
}

TEST(GroupAdapterStats, DroppedMovesSurfaceInRunStats) {
  // A shared physical link far narrower than the overlay arcs forces
  // congestion drops; they must appear in RunStats via finish_run and
  // count toward wasted_bandwidth.
  Digraph g(3);
  const ArcId a01 = g.add_arc(0, 1, 4);
  const ArcId a02 = g.add_arc(0, 2, 4);
  core::Instance inst(std::move(g), 6);
  for (TokenId t = 0; t < 6; ++t) inst.add_have(0, t);
  for (TokenId t = 0; t < 6; ++t) inst.add_want(1, t);
  for (TokenId t = 0; t < 6; ++t) inst.add_want(2, t);

  topology::CapacityGroup uplink;
  uplink.capacity = 2;  // both overlay arcs share one 2-token uplink
  uplink.members = {a01, a02};
  sim::GroupConstrainedPolicy policy(heuristics::make_policy("random"),
                                     {uplink});
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_GT(policy.dropped_moves(), 0);
  EXPECT_EQ(result.stats.adapter_dropped_moves, policy.dropped_moves());
  EXPECT_GE(result.stats.wasted_bandwidth(),
            result.stats.adapter_dropped_moves);
}

TEST(SimOptionsValidation, BadOptionsThrowUpFront) {
  const auto inst = broadcast_instance(6, 2, 55);
  auto policy = heuristics::make_policy("random");
  {
    sim::SimOptions options;
    options.max_steps = -1;
    EXPECT_THROW(
        try { sim::run(inst, *policy, options); } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("max_steps"),
                    std::string::npos);
          throw;
        },
        Error);
  }
  {
    sim::SimOptions options;
    options.staleness = -3;
    EXPECT_THROW(
        try { sim::run(inst, *policy, options); } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("staleness"),
                    std::string::npos);
          throw;
        },
        Error);
  }
  {
    sim::SimOptions options;
    options.no_progress_window = -2;
    EXPECT_THROW(
        try { sim::run(inst, *policy, options); } catch (const Error& e) {
          EXPECT_NE(std::string(e.what()).find("no_progress_window"),
                    std::string::npos);
          throw;
        },
        Error);
  }
}

}  // namespace
}  // namespace ocd::faults
