#include "ocd/topology/random_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ocd/graph/algorithms.hpp"

namespace ocd::topology {
namespace {

TEST(RandomGraph, DefaultEdgeProbabilityFormula) {
  EXPECT_NEAR(default_edge_probability(100), 2.0 * std::log(100.0) / 100.0,
              1e-12);
  EXPECT_LE(default_edge_probability(2), 1.0);
  EXPECT_THROW(default_edge_probability(1), ContractViolation);
}

TEST(RandomGraph, ArcsComeInBidirectionalPairs) {
  Rng rng(42);
  const Digraph g = random_overlay(30, rng);
  for (const Arc& arc : g.arcs()) {
    EXPECT_TRUE(g.has_arc(arc.to, arc.from))
        << "missing reverse of (" << arc.from << "," << arc.to << ")";
  }
}

TEST(RandomGraph, CapacitiesWithinPaperRange) {
  Rng rng(7);
  const Digraph g = random_overlay(50, rng);
  for (const Arc& arc : g.arcs()) {
    EXPECT_GE(arc.capacity, 3);
    EXPECT_LE(arc.capacity, 15);
  }
}

TEST(RandomGraph, CustomCapacityRangeRespected) {
  Rng rng(7);
  RandomGraphOptions options;
  options.capacities = CapacityRange{1, 2};
  const Digraph g = random_overlay(20, options, rng);
  for (const Arc& arc : g.arcs()) {
    EXPECT_GE(arc.capacity, 1);
    EXPECT_LE(arc.capacity, 2);
  }
}

TEST(RandomGraph, DeterministicForFixedSeed) {
  Rng rng_a(99);
  Rng rng_b(99);
  const Digraph a = random_overlay(40, rng_a);
  const Digraph b = random_overlay(40, rng_b);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (ArcId i = 0; i < a.num_arcs(); ++i) {
    EXPECT_EQ(a.arc(i).from, b.arc(i).from);
    EXPECT_EQ(a.arc(i).to, b.arc(i).to);
    EXPECT_EQ(a.arc(i).capacity, b.arc(i).capacity);
  }
}

TEST(RandomGraph, ZeroProbabilityStillConnectedViaBackbone) {
  Rng rng(5);
  RandomGraphOptions options;
  options.edge_probability = 1e-9;
  const Digraph g = random_overlay(25, options, rng);
  EXPECT_TRUE(is_strongly_connected(g));
  // The backbone alone is a Hamiltonian cycle: 2n arcs.
  EXPECT_GE(g.num_arcs(), 2 * 25);
}

TEST(RandomGraph, DisconnectableWhenForcingDisabled) {
  Rng rng(5);
  RandomGraphOptions options;
  options.edge_probability = 1e-9;
  options.force_connected = false;
  const Digraph g = random_overlay(25, options, rng);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(SparseRandomOverlay, ConnectedWithExpectedDegree) {
  Rng rng(13);
  const Digraph g = sparse_random_overlay(5000, 8.0, rng);
  EXPECT_EQ(g.num_vertices(), 5000);
  EXPECT_TRUE(is_strongly_connected(g));
  // Expected arcs ~ 2 * n * degree / 2 = n * degree, plus at most the
  // 2n-arc backbone; allow a generous sampling band.
  const double expected = 5000.0 * 8.0;
  EXPECT_GT(g.num_arcs(), expected * 0.7);
  EXPECT_LT(g.num_arcs(), expected * 1.3 + 2 * 5000);
  for (const Arc& arc : g.arcs()) {
    EXPECT_TRUE(g.has_arc(arc.to, arc.from));
    EXPECT_GE(arc.capacity, 3);
    EXPECT_LE(arc.capacity, 15);
  }
}

TEST(SparseRandomOverlay, DeterministicForFixedSeed) {
  Rng rng_a(77);
  Rng rng_b(77);
  const Digraph a = sparse_random_overlay(800, 6.0, rng_a);
  const Digraph b = sparse_random_overlay(800, 6.0, rng_b);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (ArcId i = 0; i < a.num_arcs(); ++i) {
    EXPECT_EQ(a.arc(i).from, b.arc(i).from);
    EXPECT_EQ(a.arc(i).to, b.arc(i).to);
    EXPECT_EQ(a.arc(i).capacity, b.arc(i).capacity);
  }
}

TEST(SparseRandomOverlay, ZeroDegreeIsJustTheBackbone) {
  Rng rng(3);
  const Digraph g = sparse_random_overlay(50, 0.0, rng);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_EQ(g.num_arcs(), 2 * 50);
}

TEST(SparseRandomOverlay, DoesNotPerturbTheDenseGenerator) {
  // Guard against refactors folding the two samplers together: a
  // random_overlay drawn after a sparse_random_overlay from a split rng
  // must match one drawn fresh — i.e. the dense generator's stream
  // consumption is untouched by the new entry point existing.
  Rng rng_a(21);
  Rng rng_b(21);
  const Digraph a = random_overlay(40, rng_a);
  const Digraph b = random_overlay(40, rng_b);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
}

class RandomGraphSizeSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(RandomGraphSizeSweep, ConnectedAndReasonablyDense) {
  const std::int32_t n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  const Digraph g = random_overlay(n, rng);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_TRUE(is_strongly_connected(g));
  // Expected arcs ~ 2 * C(n,2) * p = 2 n ln n; allow a generous band.
  const double expected = 2.0 * n * std::log(n);
  EXPECT_GT(g.num_arcs(), expected * 0.4);
  EXPECT_LT(g.num_arcs(), expected * 2.5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomGraphSizeSweep,
                         ::testing::Values(10, 20, 50, 100, 200, 400));

}  // namespace
}  // namespace ocd::topology
