#include "ocd/topology/random_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ocd/graph/algorithms.hpp"

namespace ocd::topology {
namespace {

TEST(RandomGraph, DefaultEdgeProbabilityFormula) {
  EXPECT_NEAR(default_edge_probability(100), 2.0 * std::log(100.0) / 100.0,
              1e-12);
  EXPECT_LE(default_edge_probability(2), 1.0);
  EXPECT_THROW(default_edge_probability(1), ContractViolation);
}

TEST(RandomGraph, ArcsComeInBidirectionalPairs) {
  Rng rng(42);
  const Digraph g = random_overlay(30, rng);
  for (const Arc& arc : g.arcs()) {
    EXPECT_TRUE(g.has_arc(arc.to, arc.from))
        << "missing reverse of (" << arc.from << "," << arc.to << ")";
  }
}

TEST(RandomGraph, CapacitiesWithinPaperRange) {
  Rng rng(7);
  const Digraph g = random_overlay(50, rng);
  for (const Arc& arc : g.arcs()) {
    EXPECT_GE(arc.capacity, 3);
    EXPECT_LE(arc.capacity, 15);
  }
}

TEST(RandomGraph, CustomCapacityRangeRespected) {
  Rng rng(7);
  RandomGraphOptions options;
  options.capacities = CapacityRange{1, 2};
  const Digraph g = random_overlay(20, options, rng);
  for (const Arc& arc : g.arcs()) {
    EXPECT_GE(arc.capacity, 1);
    EXPECT_LE(arc.capacity, 2);
  }
}

TEST(RandomGraph, DeterministicForFixedSeed) {
  Rng rng_a(99);
  Rng rng_b(99);
  const Digraph a = random_overlay(40, rng_a);
  const Digraph b = random_overlay(40, rng_b);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (ArcId i = 0; i < a.num_arcs(); ++i) {
    EXPECT_EQ(a.arc(i).from, b.arc(i).from);
    EXPECT_EQ(a.arc(i).to, b.arc(i).to);
    EXPECT_EQ(a.arc(i).capacity, b.arc(i).capacity);
  }
}

TEST(RandomGraph, ZeroProbabilityStillConnectedViaBackbone) {
  Rng rng(5);
  RandomGraphOptions options;
  options.edge_probability = 1e-9;
  const Digraph g = random_overlay(25, options, rng);
  EXPECT_TRUE(is_strongly_connected(g));
  // The backbone alone is a Hamiltonian cycle: 2n arcs.
  EXPECT_GE(g.num_arcs(), 2 * 25);
}

TEST(RandomGraph, DisconnectableWhenForcingDisabled) {
  Rng rng(5);
  RandomGraphOptions options;
  options.edge_probability = 1e-9;
  options.force_connected = false;
  const Digraph g = random_overlay(25, options, rng);
  EXPECT_FALSE(is_strongly_connected(g));
}

class RandomGraphSizeSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(RandomGraphSizeSweep, ConnectedAndReasonablyDense) {
  const std::int32_t n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  const Digraph g = random_overlay(n, rng);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_TRUE(is_strongly_connected(g));
  // Expected arcs ~ 2 * C(n,2) * p = 2 n ln n; allow a generous band.
  const double expected = 2.0 * n * std::log(n);
  EXPECT_GT(g.num_arcs(), expected * 0.4);
  EXPECT_LT(g.num_arcs(), expected * 2.5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomGraphSizeSweep,
                         ::testing::Values(10, 20, 50, 100, 200, 400));

}  // namespace
}  // namespace ocd::topology
