#include "ocd/topology/physical.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/group_adapter.hpp"
#include "ocd/sim/simulator.hpp"

namespace ocd::topology {
namespace {

OverlayProjection sample_projection(std::uint64_t seed) {
  Rng rng(seed);
  PhysicalOptions opt;
  opt.routers = 30;
  opt.hosts = 10;
  return project_overlay(opt, rng);
}

TEST(Physical, ProjectionShape) {
  const auto projection = sample_projection(1);
  EXPECT_EQ(projection.overlay.num_vertices(), 10);
  EXPECT_EQ(projection.host_router.size(), 10u);
  EXPECT_EQ(projection.route.size(),
            static_cast<std::size_t>(projection.overlay.num_arcs()));
  EXPECT_TRUE(is_strongly_connected(projection.overlay));
  // Hosts sit on distinct routers.
  auto hosts = projection.host_router;
  std::sort(hosts.begin(), hosts.end());
  EXPECT_EQ(std::adjacent_find(hosts.begin(), hosts.end()), hosts.end());
}

TEST(Physical, RoutesAreContiguousPhysicalPaths) {
  const auto projection = sample_projection(2);
  for (ArcId a = 0; a < projection.overlay.num_arcs(); ++a) {
    const Arc& arc = projection.overlay.arc(a);
    const auto& path = projection.route[static_cast<std::size_t>(a)];
    VertexId at =
        projection.host_router[static_cast<std::size_t>(arc.from)];
    for (ArcId phys : path) {
      EXPECT_EQ(projection.physical.arc(phys).from, at);
      at = projection.physical.arc(phys).to;
    }
    EXPECT_EQ(at, projection.host_router[static_cast<std::size_t>(arc.to)]);
  }
}

TEST(Physical, OverlayCapacityIsPathBottleneck) {
  const auto projection = sample_projection(3);
  PhysicalOptions opt;  // defaults used by sample_projection
  for (ArcId a = 0; a < projection.overlay.num_arcs(); ++a) {
    const auto& path = projection.route[static_cast<std::size_t>(a)];
    std::int32_t bottleneck = opt.max_overlay_capacity;
    for (ArcId phys : path)
      bottleneck = std::min(bottleneck, projection.physical.arc(phys).capacity);
    EXPECT_EQ(projection.overlay.arc(a).capacity, std::max(bottleneck, 1));
  }
}

TEST(Physical, GroupsOnlyForSharedArcsAndConsistent) {
  const auto projection = sample_projection(4);
  for (const CapacityGroup& group : projection.groups) {
    EXPECT_GE(group.members.size(), 2u);
    EXPECT_EQ(group.capacity,
              projection.physical.arc(group.physical_arc).capacity);
    for (ArcId member : group.members) {
      const auto& path = projection.route[static_cast<std::size_t>(member)];
      EXPECT_NE(std::find(path.begin(), path.end(), group.physical_arc),
                path.end());
    }
  }
}

TEST(Physical, GroupsRespectedChecker) {
  std::vector<CapacityGroup> groups;
  groups.push_back(CapacityGroup{{0, 1}, 2, 0});
  core::Schedule fits;
  core::Timestep a;
  a.add(0, 0, 4);
  a.add(1, 1, 4);
  fits.append(std::move(a));
  EXPECT_TRUE(groups_respected(groups, fits));

  core::Schedule overflows;
  core::Timestep b;
  b.add(0, TokenSet::of(4, {0, 1}));
  b.add(1, 2, 4);
  overflows.append(std::move(b));
  EXPECT_FALSE(groups_respected(groups, overflows));
}

TEST(Physical, RejectsBadOptions) {
  Rng rng(1);
  PhysicalOptions opt;
  opt.hosts = opt.routers + 1;
  EXPECT_THROW(project_overlay(opt, rng), ContractViolation);
}

// ----------------------------------------------------------------------
// Adapter end-to-end.
// ----------------------------------------------------------------------
class GroupAdapter : public ::testing::TestWithParam<std::string> {};

TEST_P(GroupAdapter, EnforcesGroupsAndStillCompletes) {
  auto projection = sample_projection(5);
  const bool has_sharing = !projection.groups.empty();
  core::Instance inst = core::single_source_all_receivers(
      std::move(projection.overlay), 12, 0);

  sim::GroupConstrainedPolicy policy(heuristics::make_policy(GetParam()),
                                     projection.groups);
  sim::SimOptions options;
  options.seed = 11;
  options.max_steps = 20'000;
  const auto result = sim::run(inst, policy, options);
  ASSERT_TRUE(result.success) << GetParam();
  EXPECT_TRUE(groups_respected(projection.groups, result.schedule));
  if (has_sharing) {
    // The unconstrained flooding policies would exceed shared links, so
    // the adapter should have trimmed something for at least the
    // aggressive policies; do not assert per-policy, just consistency.
    EXPECT_GE(policy.dropped_moves(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, GroupAdapter,
                         ::testing::ValuesIn(heuristics::all_policy_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(GroupAdapterExtra, UnconstrainedFloodViolatesSharedLinks) {
  // Without the adapter, a flooding policy's schedule should violate at
  // least one shared-link group on a projection with real sharing —
  // demonstrating the §6 point that overlay capacities are optimistic.
  auto projection = sample_projection(6);
  ASSERT_FALSE(projection.groups.empty());
  core::Instance inst = core::single_source_all_receivers(
      std::move(projection.overlay), 12, 0);
  auto policy = heuristics::make_policy("random");
  sim::SimOptions options;
  options.seed = 11;
  const auto result = sim::run(inst, *policy, options);
  ASSERT_TRUE(result.success);
  EXPECT_FALSE(groups_respected(projection.groups, result.schedule));
}

TEST(GroupAdapterExtra, DropsAreCounted) {
  // A tight artificial group forces drops: two arcs out of one source,
  // group capacity 1, flooding wants 2+ per step.
  Digraph g(3);
  g.add_arc(0, 1, 3);
  g.add_arc(0, 2, 3);
  core::Instance inst(std::move(g), 6);
  for (TokenId t = 0; t < 6; ++t) {
    inst.add_have(0, t);
    inst.add_want(1, t);
    inst.add_want(2, t);
  }
  std::vector<CapacityGroup> groups{CapacityGroup{{0, 1}, 1, 0}};
  sim::GroupConstrainedPolicy policy(heuristics::make_policy("local"),
                                     groups);
  sim::SimOptions options;
  options.max_steps = 200;
  const auto result = sim::run(inst, policy, options);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(groups_respected(groups, result.schedule));
  // Only one token total may cross per step: 12 deliveries -> >= 12 steps.
  EXPECT_GE(result.steps, 12);
  EXPECT_GT(policy.dropped_moves(), 0);
}

}  // namespace
}  // namespace ocd::topology
