#include "ocd/topology/transit_stub.hpp"

#include <gtest/gtest.h>

#include "ocd/graph/algorithms.hpp"

namespace ocd::topology {
namespace {

TEST(TransitStub, TotalVerticesFormula) {
  TransitStubOptions opt;
  opt.transit_domains = 2;
  opt.transit_nodes_per_domain = 4;
  opt.stub_domains_per_transit_node = 2;
  opt.stub_nodes_per_domain = 3;
  EXPECT_EQ(opt.total_vertices(), 8 + 8 * 2 * 3);
}

TEST(TransitStub, GeneratedGraphMatchesDeclaredSize) {
  Rng rng(1);
  TransitStubOptions opt;
  const Digraph g = transit_stub(opt, rng);
  EXPECT_EQ(g.num_vertices(), opt.total_vertices());
}

TEST(TransitStub, StronglyConnected) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    TransitStubOptions opt;
    opt.transit_domains = 3;
    const Digraph g = transit_stub(opt, rng);
    EXPECT_TRUE(is_strongly_connected(g)) << "seed " << seed;
  }
}

TEST(TransitStub, CapacitiesWithinRange) {
  Rng rng(2);
  TransitStubOptions opt;
  const Digraph g = transit_stub(opt, rng);
  for (const Arc& arc : g.arcs()) {
    EXPECT_GE(arc.capacity, 3);
    EXPECT_LE(arc.capacity, 15);
  }
}

TEST(TransitStub, BidirectionalArcs) {
  Rng rng(3);
  TransitStubOptions opt;
  const Digraph g = transit_stub(opt, rng);
  for (const Arc& arc : g.arcs()) EXPECT_TRUE(g.has_arc(arc.to, arc.from));
}

TEST(TransitStub, SingleDomainDegenerate) {
  Rng rng(4);
  TransitStubOptions opt;
  opt.transit_domains = 1;
  opt.transit_nodes_per_domain = 1;
  opt.stub_domains_per_transit_node = 1;
  opt.stub_nodes_per_domain = 2;
  const Digraph g = transit_stub(opt, rng);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(TransitStub, RejectsInvalidOptions) {
  Rng rng(1);
  TransitStubOptions opt;
  opt.transit_domains = 0;
  EXPECT_THROW(transit_stub(opt, rng), ContractViolation);
}

class TransitStubSizeSweep : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(TransitStubSizeSweep, SizeForApproximatesTarget) {
  const std::int32_t target = GetParam();
  const TransitStubOptions opt = transit_stub_options_for_size(target);
  const double actual = opt.total_vertices();
  EXPECT_GT(actual, target * 0.5);
  EXPECT_LT(actual, target * 1.8);
  Rng rng(static_cast<std::uint64_t>(target));
  const Digraph g = transit_stub(opt, rng);
  EXPECT_TRUE(is_strongly_connected(g));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransitStubSizeSweep,
                         ::testing::Values(20, 50, 100, 200, 400, 1000));

}  // namespace
}  // namespace ocd::topology
