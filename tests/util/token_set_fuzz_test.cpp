// Differential fuzzing: TokenSet against std::set<TokenId> as the
// reference model, over long random operation sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ocd/util/rng.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd {
namespace {

std::set<TokenId> to_reference(const TokenSet& s) {
  std::set<TokenId> out;
  s.for_each([&](TokenId t) { out.insert(t); });
  return out;
}

bool matches(const TokenSet& s, const std::set<TokenId>& reference) {
  if (s.count() != reference.size()) return false;
  for (TokenId t : reference) {
    if (!s.test(t)) return false;
  }
  return true;
}

class TokenSetFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenSetFuzz, LongOperationSequencesMatchReferenceModel) {
  Rng rng(GetParam());
  const std::size_t universe = 1 + rng.below(300);

  TokenSet a(universe);
  TokenSet b(universe);
  std::set<TokenId> ref_a;
  std::set<TokenId> ref_b;

  for (int op = 0; op < 400; ++op) {
    const auto t = static_cast<TokenId>(rng.below(universe));
    switch (rng.below(8)) {
      case 0:
        a.set(t);
        ref_a.insert(t);
        break;
      case 1:
        a.reset(t);
        ref_a.erase(t);
        break;
      case 2:
        b.set(t);
        ref_b.insert(t);
        break;
      case 3: {  // a |= b
        a |= b;
        ref_a.insert(ref_b.begin(), ref_b.end());
        break;
      }
      case 4: {  // a &= b
        a &= b;
        std::set<TokenId> out;
        std::set_intersection(ref_a.begin(), ref_a.end(), ref_b.begin(),
                              ref_b.end(), std::inserter(out, out.begin()));
        ref_a = std::move(out);
        break;
      }
      case 5: {  // a -= b
        a -= b;
        for (TokenId x : ref_b) ref_a.erase(x);
        break;
      }
      case 6: {  // a ^= b
        a ^= b;
        std::set<TokenId> out;
        std::set_symmetric_difference(ref_a.begin(), ref_a.end(),
                                      ref_b.begin(), ref_b.end(),
                                      std::inserter(out, out.begin()));
        ref_a = std::move(out);
        break;
      }
      default: {  // truncate a
        const std::size_t k = rng.below(universe + 1);
        a.truncate(k);
        while (ref_a.size() > k) ref_a.erase(std::prev(ref_a.end()));
        break;
      }
    }

    ASSERT_TRUE(matches(a, ref_a)) << "op " << op;
    ASSERT_TRUE(matches(b, ref_b)) << "op " << op;
    ASSERT_EQ(to_reference(a), ref_a) << "op " << op;

    // Derived queries agree with the model.
    ASSERT_EQ(a.empty(), ref_a.empty());
    ASSERT_EQ(a.first(), ref_a.empty() ? -1 : *ref_a.begin());
    if (!ref_a.empty()) {
      const auto probe = static_cast<TokenId>(rng.below(universe));
      const auto it = ref_a.lower_bound(probe);
      ASSERT_EQ(a.next(probe), it == ref_a.end() ? -1 : *it);
    }
    // next(t) is inclusive of t; probes at and past the boundaries.
    ASSERT_EQ(a.next(-1), a.first());
    ASSERT_EQ(a.next(static_cast<TokenId>(universe)), -1);
    {
      // next_circular(t): smallest member >= t, else wrap to first().
      // Exercises the probe range [-1, universe] including the
      // t + 1 == universe wraparound used by the round-robin cursor.
      const auto probe =
          static_cast<TokenId>(rng.below(universe + 2)) - 1;
      const TokenId expected = [&]() -> TokenId {
        if (ref_a.empty()) return -1;
        if (probe < 0 || static_cast<std::size_t>(probe) >= universe)
          return *ref_a.begin();
        const auto it = ref_a.lower_bound(probe);
        return it == ref_a.end() ? *ref_a.begin() : *it;
      }();
      ASSERT_EQ(a.next_circular(probe), expected)
          << "probe " << probe << " universe " << universe;
    }
    const bool ref_subset = std::includes(ref_b.begin(), ref_b.end(),
                                          ref_a.begin(), ref_a.end());
    ASSERT_EQ(a.is_subset_of(b), ref_subset);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenSetFuzz,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ocd
