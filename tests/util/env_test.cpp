// parse_env_int is the single parser behind every OCD_* integer knob
// (OCD_JOBS, OCD_SHARDS, OCD_SHARD_CHECKPOINT_INTERVAL), so its
// acceptance/rejection behaviour — and the exact error wording — is
// pinned once here instead of per caller.
#include <gtest/gtest.h>

#include <string>

#include "ocd/util/env.hpp"
#include "ocd/util/error.hpp"

namespace ocd::util {
namespace {

struct EnvCase {
  const char* text;
  std::int64_t expected;  ///< -1 = must throw
};

class ParseEnvIntTest : public ::testing::TestWithParam<EnvCase> {};

TEST_P(ParseEnvIntTest, ParsesOrRejectsWithSharedWording) {
  const EnvCase& c = GetParam();
  if (c.expected >= 0) {
    EXPECT_EQ(parse_env_int("OCD_TEST_KNOB", c.text), c.expected);
    return;
  }
  try {
    parse_env_int("OCD_TEST_KNOB", c.text);
    FAIL() << "expected rejection of '" << (c.text ? c.text : "(null)")
           << "'";
  } catch (const Error& e) {
    const std::string expected =
        std::string("OCD_TEST_KNOB must be a positive integer, got '") +
        (c.text == nullptr ? "" : c.text) + "'";
    EXPECT_EQ(std::string(e.what()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKnobShapes, ParseEnvIntTest,
    ::testing::Values(EnvCase{"1", 1}, EnvCase{"8", 8},
                      EnvCase{"2147483647", 2147483647},
                      // rejected: the shared wording cases
                      EnvCase{nullptr, -1}, EnvCase{"", -1},
                      EnvCase{"0", -1}, EnvCase{"-3", -1},
                      EnvCase{"four", -1}, EnvCase{"4x", -1},
                      EnvCase{" 4", -1}, EnvCase{"4 ", -1},
                      EnvCase{"3.5", -1}, EnvCase{"0x10", -1},
                      EnvCase{"2147483648", -1},  // above the i32 cap
                      EnvCase{"99999999999999999999", -1}));

TEST(ParseEnvInt, HonorsACustomCap) {
  EXPECT_EQ(parse_env_int("OCD_TEST_KNOB", "64", 64), 64);
  EXPECT_THROW(parse_env_int("OCD_TEST_KNOB", "65", 64), Error);
}

// parse_env_nonneg_int shares the bare-digit contract but admits 0
// (OCD_SHARD_BALANCE_EPS: zero = exact band, not misconfiguration).
TEST(ParseEnvNonnegInt, AdmitsZeroAndSharesTheContract) {
  EXPECT_EQ(parse_env_nonneg_int("OCD_TEST_KNOB", "0"), 0);
  EXPECT_EQ(parse_env_nonneg_int("OCD_TEST_KNOB", "8"), 8);
  EXPECT_EQ(parse_env_nonneg_int("OCD_TEST_KNOB", "100", 100), 100);
  for (const char* bad : {"", "-1", "four", "4x", " 4", "4 ", "3.5",
                          "0x10", "101"}) {
    try {
      parse_env_nonneg_int("OCD_TEST_KNOB", bad, 100);
      FAIL() << "expected rejection of '" << bad << "'";
    } catch (const Error& e) {
      EXPECT_EQ(std::string(e.what()),
                std::string(
                    "OCD_TEST_KNOB must be a non-negative integer, got '") +
                    bad + "'");
    }
  }
  EXPECT_THROW(parse_env_nonneg_int("OCD_TEST_KNOB", nullptr), Error);
}

}  // namespace
}  // namespace ocd::util
