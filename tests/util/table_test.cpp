#include "ocd/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ocd/util/error.hpp"

namespace ocd {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, RowArityMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::int64_t{1}}), ContractViolation);
  t.add_row({std::int64_t{1}, std::string("x")});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), std::int64_t{1}});
  t.add_row({std::string("b"), std::int64_t{12345}});
  std::ostringstream out;
  t.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("12345"), std::string::npos);
  // Every line has equal width (box drawing).
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  std::ostringstream out;
  t.print_csv(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, DoublePrecisionConfigurable) {
  Table t({"x"});
  t.set_precision(4);
  t.add_row({3.14159265});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_NE(out.str().find("3.1416"), std::string::npos);
  EXPECT_THROW(t.set_precision(-1), ContractViolation);
}

TEST(Table, CsvHeaderFirst) {
  Table t({"h1", "h2"});
  t.add_row({std::int64_t{1}, std::int64_t{2}});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str().substr(0, 6), "h1,h2\n");
}

}  // namespace
}  // namespace ocd
