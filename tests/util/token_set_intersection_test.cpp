// Word-parallel intersection helpers (first_in_intersection,
// count_intersection, for_each_in_intersection) against the bit-by-bit
// reference path, with explicit coverage at the 63/64-bit word
// boundaries the masked loops must get right.
#include <gtest/gtest.h>

#include <vector>

#include "ocd/util/rng.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd {
namespace {

// Bit-by-bit reference: the pre-word-parallel way of computing each
// query, kept deliberately naive.
TokenId ref_first_in_intersection(const TokenSet& a, const TokenSet& b) {
  for (TokenId t = a.first(); t >= 0; t = a.next(t + 1)) {
    if (b.test(t)) return t;
  }
  return -1;
}

std::size_t ref_count_intersection(const TokenSet& a, const TokenSet& b) {
  std::size_t n = 0;
  for (TokenId t = a.first(); t >= 0; t = a.next(t + 1)) {
    if (b.test(t)) ++n;
  }
  return n;
}

std::vector<TokenId> ref_members(const TokenSet& a, const TokenSet& b) {
  std::vector<TokenId> out;
  for (TokenId t = a.first(); t >= 0; t = a.next(t + 1)) {
    if (b.test(t)) out.push_back(t);
  }
  return out;
}

std::vector<TokenId> visit_all(const TokenSet& a, const TokenSet& b) {
  std::vector<TokenId> out;
  TokenSet::for_each_in_intersection(a, b,
                                     [&](TokenId t) { out.push_back(t); });
  return out;
}

TEST(TokenSetIntersection, EmptyAndDisjoint) {
  TokenSet a(130);
  TokenSet b(130);
  EXPECT_EQ(TokenSet::first_in_intersection(a, b), -1);
  EXPECT_EQ(TokenSet::count_intersection(a, b), 0u);
  EXPECT_TRUE(visit_all(a, b).empty());

  a.set(0);
  a.set(64);
  b.set(63);
  b.set(129);
  EXPECT_EQ(TokenSet::first_in_intersection(a, b), -1);
  EXPECT_EQ(TokenSet::count_intersection(a, b), 0u);
  EXPECT_TRUE(visit_all(a, b).empty());
}

TEST(TokenSetIntersection, WordBoundaryBits) {
  // Bits 63 (last of word 0), 64 (first of word 1), 127/128 likewise.
  for (const TokenId t : {63, 64, 127, 128}) {
    TokenSet a(192);
    TokenSet b(192);
    a.set(t);
    b.set(t);
    EXPECT_EQ(TokenSet::first_in_intersection(a, b), t);
    EXPECT_EQ(TokenSet::count_intersection(a, b), 1u);
    EXPECT_EQ(visit_all(a, b), std::vector<TokenId>{t});
  }
}

TEST(TokenSetIntersection, UniverseExactlyOneWord) {
  // 64-token universe: a single exactly-full word, no tail.
  TokenSet a = TokenSet::full(64);
  TokenSet b = TokenSet::full(64);
  EXPECT_EQ(TokenSet::first_in_intersection(a, b), 0);
  EXPECT_EQ(TokenSet::count_intersection(a, b), 64u);
  a.reset(0);
  b.reset(63);
  EXPECT_EQ(TokenSet::first_in_intersection(a, b), 1);
  EXPECT_EQ(TokenSet::count_intersection(a, b), 62u);
}

TEST(TokenSetIntersection, UniverseSixtyThreeAndSixtyFive) {
  // 63 tokens: one partial word.  65 tokens: full word + 1-bit tail.
  for (const std::size_t universe : {std::size_t{63}, std::size_t{65}}) {
    TokenSet a = TokenSet::full(universe);
    TokenSet b(universe);
    const auto last = static_cast<TokenId>(universe - 1);
    b.set(last);
    EXPECT_EQ(TokenSet::first_in_intersection(a, b), last);
    EXPECT_EQ(TokenSet::count_intersection(a, b), 1u);
    EXPECT_EQ(visit_all(a, b), std::vector<TokenId>{last});
  }
}

TEST(TokenSetIntersection, EarlyExitStopsVisiting) {
  TokenSet a = TokenSet::full(100);
  TokenSet b = TokenSet::full(100);
  std::vector<TokenId> seen;
  const bool completed =
      TokenSet::for_each_in_intersection(a, b, [&](TokenId t) {
        seen.push_back(t);
        return t < 5;  // stop after visiting 5
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, (std::vector<TokenId>{0, 1, 2, 3, 4, 5}));
}

class TokenSetIntersectionFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenSetIntersectionFuzz, MatchesBitByBitReference) {
  Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    // Bias the universe toward word boundaries.
    static const std::size_t kSizes[] = {1,  62,  63,  64,  65, 66,
                                         127, 128, 129, 200, 256};
    const std::size_t universe =
        rng.below(2) == 0 ? kSizes[rng.below(std::size(kSizes))]
                          : 1 + rng.below(300);
    TokenSet a(universe);
    TokenSet b(universe);
    const std::size_t density = 1 + rng.below(universe);
    for (std::size_t i = 0; i < density; ++i) {
      a.set(static_cast<TokenId>(rng.below(universe)));
      if (rng.below(4) != 0) b.set(static_cast<TokenId>(rng.below(universe)));
    }

    ASSERT_EQ(TokenSet::first_in_intersection(a, b),
              ref_first_in_intersection(a, b))
        << "universe " << universe;
    ASSERT_EQ(TokenSet::count_intersection(a, b),
              ref_count_intersection(a, b))
        << "universe " << universe;
    ASSERT_EQ(visit_all(a, b), ref_members(a, b)) << "universe " << universe;
    // Symmetry.
    ASSERT_EQ(TokenSet::first_in_intersection(b, a),
              ref_first_in_intersection(a, b));
    ASSERT_EQ(TokenSet::count_intersection(b, a),
              ref_count_intersection(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenSetIntersectionFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace ocd
