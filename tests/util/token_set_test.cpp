#include "ocd/util/token_set.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ocd {
namespace {

TEST(TokenSet, DefaultIsEmptyWithEmptyUniverse) {
  TokenSet s;
  EXPECT_EQ(s.universe_size(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.first(), -1);
}

TEST(TokenSet, SetTestReset) {
  TokenSet s(100);
  EXPECT_FALSE(s.test(42));
  s.set(42);
  EXPECT_TRUE(s.test(42));
  EXPECT_EQ(s.count(), 1u);
  s.reset(42);
  EXPECT_FALSE(s.test(42));
  EXPECT_TRUE(s.empty());
}

TEST(TokenSet, OutOfUniverseAccessThrows) {
  TokenSet s(10);
  EXPECT_THROW((void)s.test(10), ContractViolation);
  EXPECT_THROW(s.set(-1), ContractViolation);
  EXPECT_THROW(s.reset(100), ContractViolation);
}

TEST(TokenSet, FullCoversExactlyTheUniverse) {
  for (std::size_t universe : {1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    const TokenSet s = TokenSet::full(universe);
    EXPECT_EQ(s.count(), universe) << "universe=" << universe;
    EXPECT_TRUE(s.test(static_cast<TokenId>(universe - 1)));
  }
}

TEST(TokenSet, FullOfEmptyUniverse) {
  const TokenSet s = TokenSet::full(0);
  EXPECT_TRUE(s.empty());
}

TEST(TokenSet, OfBuildsListedTokens) {
  const TokenSet s = TokenSet::of(10, {1, 3, 7});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.test(1));
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(7));
  EXPECT_FALSE(s.test(0));
}

TEST(TokenSet, UnionIntersectionDifference) {
  const TokenSet a = TokenSet::of(130, {0, 64, 129});
  const TokenSet b = TokenSet::of(130, {64, 100});
  EXPECT_EQ((a | b).count(), 4u);
  EXPECT_EQ((a & b).count(), 1u);
  EXPECT_TRUE((a & b).test(64));
  EXPECT_EQ((a - b).count(), 2u);
  EXPECT_FALSE((a - b).test(64));
  EXPECT_EQ((a ^ b).count(), 3u);
}

TEST(TokenSet, MixedUniverseOperationsThrow) {
  TokenSet a(10);
  const TokenSet b(20);
  EXPECT_THROW(a |= b, ContractViolation);
  EXPECT_THROW(a &= b, ContractViolation);
  EXPECT_THROW(a -= b, ContractViolation);
  EXPECT_THROW((void)a.is_subset_of(b), ContractViolation);
}

TEST(TokenSet, SubsetAndIntersects) {
  const TokenSet a = TokenSet::of(70, {1, 65});
  const TokenSet b = TokenSet::of(70, {1, 2, 65});
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(TokenSet(70)));
  EXPECT_TRUE(TokenSet(70).is_subset_of(a));
}

TEST(TokenSet, FirstAndNext) {
  const TokenSet s = TokenSet::of(200, {5, 64, 199});
  EXPECT_EQ(s.first(), 5);
  EXPECT_EQ(s.next(0), 5);
  EXPECT_EQ(s.next(5), 5);
  EXPECT_EQ(s.next(6), 64);
  EXPECT_EQ(s.next(65), 199);
  EXPECT_EQ(s.next(199), 199);
  EXPECT_EQ(TokenSet(200).next(0), -1);
}

TEST(TokenSet, NextCircularWrapsAround) {
  const TokenSet s = TokenSet::of(100, {10, 50});
  EXPECT_EQ(s.next_circular(0), 10);
  EXPECT_EQ(s.next_circular(11), 50);
  EXPECT_EQ(s.next_circular(51), 10);  // wraps
  EXPECT_EQ(s.next_circular(99), 10);
  EXPECT_EQ(TokenSet(100).next_circular(3), -1);
}

TEST(TokenSet, NextIsInclusiveOfTheProbe) {
  // next(t) returns the smallest member >= t — callers that want
  // strictly-greater semantics (e.g. round-robin cursors) must probe
  // with t + 1.  Locked down here so the contract cannot drift.
  const TokenSet s = TokenSet::of(130, {0, 63, 64, 129});
  EXPECT_EQ(s.next(0), 0);      // inclusive at the bottom
  EXPECT_EQ(s.next(63), 63);    // inclusive at a word boundary
  EXPECT_EQ(s.next(64), 64);
  EXPECT_EQ(s.next(129), 129);  // inclusive at the top of the universe
  EXPECT_EQ(s.next(130), -1);   // probe past the universe: none
  EXPECT_EQ(s.next(1000), -1);
  // Negative probes clamp to 0: next(t<0) == first().
  EXPECT_EQ(s.next(-1), 0);
  EXPECT_EQ(s.next(-100), s.first());
}

TEST(TokenSet, NextCircularBoundaryAtUniverseEnd) {
  // The round-robin cursor advances with next_circular(position + 1);
  // when position is the last token id, position + 1 == universe and
  // the scan must wrap to the smallest member, inclusively.
  const TokenSet s = TokenSet::of(64, {0, 63});
  EXPECT_EQ(s.next_circular(63), 63);      // inclusive of the probe
  EXPECT_EQ(s.next_circular(63 + 1), 0);   // t + 1 == universe wraps
  const TokenSet top = TokenSet::of(100, {99});
  EXPECT_EQ(top.next_circular(99), 99);
  EXPECT_EQ(top.next_circular(100), 99);   // wraps back onto itself
  EXPECT_EQ(top.next_circular(-5), 99);    // out-of-range probes scan from 0
  EXPECT_EQ(top.next_circular(1000), 99);
  // Singleton mid-universe: wrapping finds it from both sides.
  const TokenSet mid = TokenSet::of(100, {40});
  EXPECT_EQ(mid.next_circular(41), 40);
  EXPECT_EQ(mid.next_circular(40), 40);
  // Empty sets report -1 no matter the probe; so does an empty universe.
  EXPECT_EQ(TokenSet(64).next_circular(64), -1);
  EXPECT_EQ(TokenSet().next_circular(0), -1);
}

TEST(TokenSet, ForEachVisitsInOrder) {
  const TokenSet s = TokenSet::of(150, {149, 0, 64, 63});
  std::vector<TokenId> seen;
  s.for_each([&](TokenId t) { seen.push_back(t); });
  EXPECT_EQ(seen, (std::vector<TokenId>{0, 63, 64, 149}));
  EXPECT_EQ(s.to_vector(), seen);
}

TEST(TokenSet, TruncateKeepsLowestIds) {
  TokenSet s = TokenSet::of(200, {1, 5, 70, 130, 131});
  s.truncate(3);
  EXPECT_EQ(s.to_vector(), (std::vector<TokenId>{1, 5, 70}));
  s.truncate(10);  // no-op when under the limit
  EXPECT_EQ(s.count(), 3u);
  s.truncate(0);
  EXPECT_TRUE(s.empty());
}

TEST(TokenSet, EqualityAndHash) {
  const TokenSet a = TokenSet::of(90, {1, 88});
  const TokenSet b = TokenSet::of(90, {1, 88});
  const TokenSet c = TokenSet::of(90, {1, 87});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  // Not guaranteed in general, but a collision between these two tiny
  // sets would indicate a broken mixer.
  EXPECT_NE(a.hash(), c.hash());
}

TEST(TokenSet, ToStringRendersSortedMembers) {
  EXPECT_EQ(TokenSet::of(10, {3, 1}).to_string(), "{1,3}");
  EXPECT_EQ(TokenSet(10).to_string(), "{}");
}

TEST(TokenSet, CountAcrossWordBoundaries) {
  TokenSet s(256);
  std::set<TokenId> reference;
  for (TokenId t = 0; t < 256; t += 7) {
    s.set(t);
    reference.insert(t);
  }
  EXPECT_EQ(s.count(), reference.size());
  const auto v = s.to_vector();
  EXPECT_TRUE(std::equal(v.begin(), v.end(), reference.begin()));
}

}  // namespace
}  // namespace ocd
