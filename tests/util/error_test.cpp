#include "ocd/util/error.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace ocd {
namespace {

TEST(Error, ContractViolationCarriesLocationAndKind) {
  try {
    OCD_EXPECTS(1 == 2);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    EXPECT_STREQ(e.expression(), "1 == 2");
  }
}

TEST(Error, EnsuresReportsPostcondition) {
  try {
    OCD_ENSURES(false);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Error, AssertMsgIncludesMessage) {
  try {
    OCD_ASSERT_MSG(false, "extra context 42");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("extra context 42"),
              std::string::npos);
  }
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(OCD_EXPECTS(true));
  EXPECT_NO_THROW(OCD_ENSURES(2 + 2 == 4));
  EXPECT_NO_THROW(OCD_ASSERT(true));
}

TEST(Error, ContractViolationIsAnOcdError) {
  try {
    OCD_ASSERT(false);
  } catch (const Error& e) {
    SUCCEED();
    return;
  }
  FAIL() << "ContractViolation must derive from ocd::Error";
}

}  // namespace
}  // namespace ocd
