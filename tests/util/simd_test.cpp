// Dispatch machinery for the runtime-selected SIMD token kernels:
// level probing, OCD_SIMD validation, programmatic overrides, the
// tail-word invariant the vectorized kernels inherit from the scalar
// reference, and a planner determinism replay under every dispatch
// level the host supports (the end-to-end half of the bit-identity
// contract; the word-level differential fuzz lives in
// token_matrix_test.cpp).
#include "ocd/util/simd.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd::util::simd {
namespace {

/// Restores auto resolution however a test exits.
struct LevelGuard {
  ~LevelGuard() { clear_simd_level(); }
};

/// What auto resolution should pick with no programmatic override:
/// the OCD_SIMD environment variable when set (check_sanitizers.sh
/// forces it), otherwise the widest level the host supports.
Level expected_default_level() {
  if (const char* env = std::getenv("OCD_SIMD")) return parse_level_value(env);
  return max_supported_level();
}

std::vector<Level> supported_levels() {
  std::vector<Level> levels;
  for (int lv = 0; lv <= static_cast<int>(max_supported_level()); ++lv)
    levels.push_back(static_cast<Level>(lv));
  return levels;
}

TEST(Simd, LevelNamesAreStable) {
  EXPECT_STREQ(level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(level_name(Level::kAvx2), "avx2");
  EXPECT_STREQ(level_name(Level::kAvx512), "avx512");
}

TEST(Simd, ParseLevelValueAcceptsTheDocumentedNames) {
  EXPECT_EQ(parse_level_value("scalar"), Level::kScalar);
  EXPECT_EQ(parse_level_value("avx2"), Level::kAvx2);
  EXPECT_EQ(parse_level_value("avx512"), Level::kAvx512);
}

TEST(Simd, ParseLevelValueRejectsGarbageNamingTheVariable) {
  for (const char* bad : {"", "AVX2", "sse2", "2", "scalar ", "native"}) {
    try {
      (void)parse_level_value(bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("OCD_SIMD"), std::string::npos)
          << e.what();
    }
  }
  EXPECT_THROW((void)parse_level_value(nullptr), Error);
}

TEST(Simd, OverrideSelectsEachSupportedLevel) {
  const LevelGuard guard;
  for (const Level level : supported_levels()) {
    set_simd_level(level);
    EXPECT_EQ(active_level(), level);
  }
  clear_simd_level();
  EXPECT_EQ(active_level(), expected_default_level());
}

TEST(Simd, OverrideRejectsUnsupportedLevels) {
  if (max_supported_level() == Level::kAvx512) {
    GTEST_SKIP() << "host supports every level; nothing to reject";
  }
  const LevelGuard guard;
  EXPECT_THROW(set_simd_level(Level::kAvx512), Error);
  // A failed override must not disturb the active table.
  EXPECT_EQ(active_level(), expected_default_level());
}

// ---- tail-word invariant -------------------------------------------

// Every kernel iterates whole words, so bits at index >= universe in
// the last word must stay zero.  The mutation paths assert this; a raw
// word write that plants a tail bit must be caught both by the direct
// check and by the next asserting mutation.

TEST(SimdTailInvariant, CleanSetsPass) {
  for (const std::size_t universe : {1u, 63u, 64u, 65u, 129u}) {
    TokenSet s = TokenSet::full(universe);
    EXPECT_NO_THROW(TokenSetView(s).assert_tail_zero());
  }
}

TEST(SimdTailInvariant, PlantedTailBitIsCaught) {
  TokenSet s(70);  // two words, 6 valid bits in the tail word
  const MutableTokenSetView view(s);
  view.mutable_words()[1] |= 1ULL << 20;  // bit 84: past the universe
  EXPECT_THROW(view.assert_tail_zero(), ContractViolation);
}

TEST(SimdTailInvariant, MutationsAssertAfterCorruptOperand) {
  TokenSet corrupt(70);
  MutableTokenSetView(corrupt).mutable_words()[1] |= 1ULL << 30;
  TokenSet clean(70);
  // The union copies the stray bit, and the post-write assert fires.
  EXPECT_THROW(MutableTokenSetView(clean) |= corrupt, ContractViolation);
}

TEST(SimdTailInvariant, WordFillPathsMaskTheTail) {
  for (const std::size_t universe : {63u, 65u, 127u, 130u}) {
    TokenSet s = TokenSet::full(universe);
    EXPECT_EQ(s.count(), universe);
    s.truncate(3);
    EXPECT_NO_THROW(TokenSetView(s).assert_tail_zero());
    EXPECT_EQ(s.count(), 3u);
  }
}

// ---- planner replay per dispatch level -----------------------------

/// ArcSend has no operator==, so schedules are compared send by send.
void expect_schedules_identical(const core::Schedule& a,
                                const core::Schedule& b, const char* label) {
  ASSERT_EQ(a.length(), b.length()) << label;
  ASSERT_EQ(a.bandwidth(), b.bandwidth()) << label;
  for (std::size_t s = 0; s < a.steps().size(); ++s) {
    const auto& sa = a.steps()[s].sends();
    const auto& sb = b.steps()[s].sends();
    ASSERT_EQ(sa.size(), sb.size()) << label << " step " << s;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].arc, sb[i].arc) << label << " step " << s;
      EXPECT_EQ(sa[i].tokens, sb[i].tokens) << label << " step " << s;
    }
  }
}

TEST(SimdDeterminism, PlannerRunsReplayAcrossDispatchLevels) {
  const LevelGuard guard;
  Rng rng(83);
  Digraph g = topology::random_overlay(60, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 48, 0);
  auto run_at = [&](Level level) {
    set_simd_level(level);
    auto policy = heuristics::make_policy("global");
    sim::SimOptions options;
    options.seed = 41;
    options.max_steps = 50'000;
    return sim::run(inst, *policy, options);
  };
  const auto scalar = run_at(Level::kScalar);
  EXPECT_GT(scalar.steps, 0);
  for (const Level level : supported_levels()) {
    if (level == Level::kScalar) continue;
    const auto vectored = run_at(level);
    EXPECT_EQ(vectored.steps, scalar.steps) << level_name(level);
    EXPECT_EQ(vectored.bandwidth, scalar.bandwidth) << level_name(level);
    EXPECT_EQ(vectored.stats.useful_moves, scalar.stats.useful_moves)
        << level_name(level);
    EXPECT_EQ(vectored.stats.moves_per_step, scalar.stats.moves_per_step)
        << level_name(level);
    expect_schedules_identical(vectored.schedule, scalar.schedule,
                               level_name(level));
  }
}

}  // namespace
}  // namespace ocd::util::simd
