// The deterministic parallel runtime (ocd/util/parallel.hpp): fixed
// chunking must be a pure function of (n, grain), every primitive must
// produce the same result for any worker budget (including on a pool
// worker, where it runs inline), worker exceptions must propagate
// deterministically, and OCD_JOBS-style values must be validated.
#include "ocd/util/parallel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "ocd/util/error.hpp"

namespace ocd::util {
namespace {

/// Forces a worker budget for the duration of a test and restores
/// environment/hardware resolution afterwards.
class JobsOverride {
 public:
  explicit JobsOverride(unsigned jobs) { set_parallel_jobs(jobs); }
  ~JobsOverride() { set_parallel_jobs(0); }
};

TEST(ParallelChunking, EmptyRangeHasNoChunks) {
  EXPECT_EQ(parallel_chunk_count(0, 1), 0u);
  EXPECT_EQ(parallel_chunk_count(0, 64), 0u);
}

TEST(ParallelChunking, GrainBoundsChunkCount) {
  EXPECT_EQ(parallel_chunk_count(1, 1), 1u);
  EXPECT_EQ(parallel_chunk_count(64, 64), 1u);
  EXPECT_EQ(parallel_chunk_count(65, 64), 2u);
  EXPECT_EQ(parallel_chunk_count(128, 64), 2u);
  // Grain 0 is treated as 1.
  EXPECT_EQ(parallel_chunk_count(3, 0), 3u);
  // The chunk count caps at kMaxParallelChunks however fine the grain.
  EXPECT_EQ(parallel_chunk_count(65, 1), kMaxParallelChunks);
  EXPECT_EQ(parallel_chunk_count(1'000'000, 1), kMaxParallelChunks);
}

// The off-by-one trap: chunks must tile [0, n) exactly — contiguous,
// non-overlapping, sizes differing by at most one — for every n and
// grain, including n just above/below multiples of the chunk count.
TEST(ParallelChunking, ChunksTileTheRangeExactly) {
  for (const std::size_t n : {1u, 2u, 63u, 64u, 65u, 100u, 127u, 128u, 129u}) {
    for (const std::size_t grain : {1u, 2u, 7u, 64u}) {
      const std::size_t chunks = parallel_chunk_count(n, grain);
      ASSERT_GE(chunks, 1u);
      std::size_t expected_begin = 0;
      std::size_t min_size = n;
      std::size_t max_size = 0;
      for (std::size_t i = 0; i < chunks; ++i) {
        const ChunkRange c = parallel_chunk(n, grain, i);
        EXPECT_EQ(c.index, i);
        EXPECT_EQ(c.begin, expected_begin) << "n=" << n << " grain=" << grain;
        EXPECT_LT(c.begin, c.end);
        expected_begin = c.end;
        min_size = std::min(min_size, c.end - c.begin);
        max_size = std::max(max_size, c.end - c.begin);
      }
      EXPECT_EQ(expected_begin, n) << "n=" << n << " grain=" << grain;
      EXPECT_LE(max_size - min_size, 1u) << "n=" << n << " grain=" << grain;
    }
  }
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  const JobsOverride jobs(8);
  int calls = 0;
  parallel_for(0, 1, [&](ChunkRange) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleChunkRunsInline) {
  const JobsOverride jobs(8);
  int calls = 0;
  parallel_for(10, 64, [&](ChunkRange c) {
    ++calls;
    EXPECT_EQ(c.begin, 0u);
    EXPECT_EQ(c.end, 10u);
    EXPECT_FALSE(on_parallel_worker());  // never left the caller
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, EveryIndexVisitedOnceAnyBudget) {
  for (const unsigned budget : {1u, 2u, 8u}) {
    const JobsOverride jobs(budget);
    std::vector<int> visits(1000, 0);
    parallel_for(visits.size(), 16,
                 [&](ChunkRange c) {
                   for (std::size_t i = c.begin; i < c.end; ++i) ++visits[i];
                 });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1000)
        << "budget=" << budget;
    for (const int v : visits) ASSERT_EQ(v, 1);
  }
}

TEST(ParallelFor, ExplicitCapOverridesBudget) {
  // A caller-supplied worker count must fan out even when the
  // environment budget says serial — run_grid depends on this.
  const JobsOverride jobs(1);
  std::vector<int> visits(64, 0);
  parallel_for_capped(visits.size(), 1, 8, [&](ChunkRange c) {
    for (std::size_t i = c.begin; i < c.end; ++i) ++visits[i];
  });
  for (const int v : visits) ASSERT_EQ(v, 1);
}

TEST(ParallelFor, LowestChunkExceptionWins) {
  const JobsOverride jobs(8);
  // Two chunks throw; whichever worker reaches them, the rethrown
  // exception must be chunk 5's (the lowest index), every time.
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      parallel_for(64, 1, [&](ChunkRange c) {
        if (c.index == 5 || c.index == 37)
          throw std::runtime_error("chunk " + std::to_string(c.index));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 5");
    }
  }
}

TEST(ParallelFor, AllChunksRunDespiteException) {
  const JobsOverride jobs(8);
  std::vector<int> visits(64, 0);
  EXPECT_THROW(parallel_for(visits.size(), 1,
                            [&](ChunkRange c) {
                              ++visits[c.index];
                              if (c.index == 0) throw std::runtime_error("x");
                            }),
               std::runtime_error);
  // No cancellation: an exception must not leave later chunks unrun
  // (callers rely on complete side effects to keep outputs a pure
  // function of the inputs).
  for (const int v : visits) ASSERT_EQ(v, 1);
}

TEST(ParallelFor, NestedCallsRunInlineWithoutDeadlock) {
  const JobsOverride jobs(4);
  std::vector<std::size_t> totals(8, 0);
  parallel_for(8, 1, [&](ChunkRange outer) {
    EXPECT_TRUE(on_parallel_worker());
    // A nested primitive on a pool worker must run inline (shared
    // budget) and still produce the full result.
    std::size_t sum = 0;
    parallel_for(100, 10, [&](ChunkRange inner) {
      for (std::size_t i = inner.begin; i < inner.end; ++i) sum += i;
    });
    totals[outer.index] = sum;
  });
  EXPECT_FALSE(on_parallel_worker());
  for (const std::size_t t : totals) EXPECT_EQ(t, 4950u);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  const JobsOverride jobs(8);
  const int result = parallel_reduce(
      0, 1, 42, [](ChunkRange) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

// The determinism contract's sharpest corner: merges happen in chunk
// order on the caller, so even a NON-commutative merge must give the
// same answer for every budget.
TEST(ParallelReduce, OrderedMergeIsBudgetInvariant) {
  const auto digits = [](unsigned budget) {
    const JobsOverride jobs(budget);
    return parallel_reduce(
        300, 5, std::string(),
        [](ChunkRange c) {
          return std::to_string(c.index) + "[" +
                 std::to_string(c.end - c.begin) + "]";
        },
        [](std::string acc, std::string chunk) { return acc + chunk; });
  };
  const std::string serial = digits(1);
  EXPECT_EQ(digits(2), serial);
  EXPECT_EQ(digits(8), serial);
  EXPECT_EQ(digits(64), serial);
}

TEST(ParallelReduce, SumsMatchSerial) {
  std::vector<std::int64_t> values(10'000);
  std::iota(values.begin(), values.end(), 1);
  const std::int64_t expected = 10'000LL * 10'001 / 2;
  for (const unsigned budget : {1u, 2u, 8u}) {
    const JobsOverride jobs(budget);
    const std::int64_t total = parallel_reduce(
        values.size(), 128, std::int64_t{0},
        [&](ChunkRange c) {
          std::int64_t s = 0;
          for (std::size_t i = c.begin; i < c.end; ++i) s += values[i];
          return s;
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    EXPECT_EQ(total, expected) << "budget=" << budget;
  }
}

TEST(ParallelJobs, ParseRejectsGarbage) {
  EXPECT_THROW(parse_jobs_value(nullptr), Error);
  EXPECT_THROW(parse_jobs_value(""), Error);
  EXPECT_THROW(parse_jobs_value("0"), Error);
  EXPECT_THROW(parse_jobs_value("-3"), Error);
  EXPECT_THROW(parse_jobs_value("eight"), Error);
  EXPECT_THROW(parse_jobs_value("8x"), Error);
  EXPECT_THROW(parse_jobs_value("2.5"), Error);
  EXPECT_THROW(parse_jobs_value("99999999999999999999"), Error);
  EXPECT_EQ(parse_jobs_value("1"), 1u);
  EXPECT_EQ(parse_jobs_value("8"), 8u);
  try {
    parse_jobs_value("bogus");
    FAIL() << "expected ocd::Error";
  } catch (const Error& e) {
    // The message must name the variable so a typo'd environment is
    // diagnosable from the error alone.
    EXPECT_NE(std::string(e.what()).find("OCD_JOBS"), std::string::npos);
  }
}

TEST(ParallelJobs, OverrideBeatsEnvironment) {
  ASSERT_EQ(setenv("OCD_JOBS", "3", 1), 0);
  EXPECT_EQ(parallel_jobs(), 3u);
  set_parallel_jobs(5);
  EXPECT_EQ(parallel_jobs(), 5u);
  set_parallel_jobs(0);  // cleared: back to the environment
  EXPECT_EQ(parallel_jobs(), 3u);
  ASSERT_EQ(unsetenv("OCD_JOBS"), 0);
  EXPECT_GE(parallel_jobs(), 1u);
}

TEST(ParallelJobs, InvalidEnvironmentThrowsOnUse) {
  ASSERT_EQ(setenv("OCD_JOBS", "garbage", 1), 0);
  EXPECT_THROW(parallel_jobs(), Error);
  ASSERT_EQ(unsetenv("OCD_JOBS"), 0);
}

}  // namespace
}  // namespace ocd::util
