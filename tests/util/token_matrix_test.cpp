// Differential suite for the flat-memory bitset layer: TokenMatrix rows
// (TokenSetView / MutableTokenSetView) must behave bit-identically to
// standalone TokenSet across word boundaries (63/64/65 bits) and the
// word-level intersection kernels.  Also replays the k-stale snapshot
// semantics of the original deque-of-deep-copies SnapshotBuffer against
// the fixed ring of matrices.
#include "ocd/util/token_matrix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "ocd/sim/knowledge.hpp"
#include "ocd/util/rng.hpp"
#include "ocd/util/simd.hpp"

namespace ocd::util {
namespace {

TEST(TokenMatrix, ShapeAndReset) {
  TokenMatrix m(3, 65);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.universe_size(), 65u);
  EXPECT_EQ(m.words_per_row(), 2u);
  m.row(1).set(64);
  EXPECT_TRUE(m.row(1).test(64));
  EXPECT_FALSE(m.row(0).test(64));
  EXPECT_FALSE(m.row(2).test(64));
  m.reset(2, 64);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.words_per_row(), 1u);
  EXPECT_TRUE(m.row(0).empty());
  EXPECT_TRUE(m.row(1).empty());
}

TEST(TokenMatrix, CopyFromAndEquality) {
  TokenMatrix a(2, 70);
  a.row(0).set(0);
  a.row(1).set(69);
  TokenMatrix b(2, 70);
  EXPECT_NE(a, b);
  b.copy_from(a);
  EXPECT_EQ(a, b);
  // copy_from never reallocates: the row views stay valid.
  const std::uint64_t* before = b.row(0).words_data();
  b.copy_from(a);
  EXPECT_EQ(b.row(0).words_data(), before);
  TokenMatrix wrong(3, 70);
  EXPECT_THROW(wrong.copy_from(a), ContractViolation);
}

TEST(TokenMatrix, AssignRowMatchesTokenSet) {
  const TokenSet set = TokenSet::of(65, {0, 63, 64});
  TokenMatrix m(1, 65);
  m.assign_row(0, set);
  EXPECT_EQ(TokenSet(m.row(0)), set);
}

/// One random mutation applied identically to a TokenSet and a matrix
/// row; returns a fresh random operand set.
TokenSet random_set(std::size_t universe, Rng& rng) {
  TokenSet s(universe);
  const std::size_t k = static_cast<std::size_t>(
      rng.below(static_cast<std::uint64_t>(universe) + 1));
  for (std::size_t i = 0; i < k; ++i)
    s.set(static_cast<TokenId>(rng.below(static_cast<std::uint64_t>(universe))));
  return s;
}

TEST(TokenMatrixFuzz, RowsBehaveLikeTokenSetAcrossWordBoundaries) {
  for (const std::size_t universe : {1u, 63u, 64u, 65u, 127u, 128u, 130u}) {
    Rng rng(97 + universe);
    TokenMatrix m(2, universe);
    TokenSet a(universe);  // shadow of row 0
    TokenSet b(universe);  // shadow of row 1
    for (int iter = 0; iter < 200; ++iter) {
      const TokenSet operand = random_set(universe, rng);
      switch (rng.below(6)) {
        case 0:
          m.row(0) |= operand;
          a |= operand;
          break;
        case 1:
          m.row(0) &= operand;
          a &= operand;
          break;
        case 2:
          m.row(0) -= operand;
          a -= operand;
          break;
        case 3:
          m.row(0) ^= operand;
          a ^= operand;
          break;
        case 4: {
          const auto t = static_cast<TokenId>(
              rng.below(static_cast<std::uint64_t>(universe)));
          m.row(0).set(t);
          a.set(t);
          break;
        }
        default:
          m.row(1).assign(operand);
          b.assign(operand);
          break;
      }
      // Full kernel parity between the row view and the shadow set.
      const TokenSetView row0 = std::as_const(m).row(0);
      const TokenSetView row1 = std::as_const(m).row(1);
      ASSERT_EQ(TokenSet(row0), a) << "universe=" << universe;
      ASSERT_EQ(TokenSet(row1), b) << "universe=" << universe;
      ASSERT_EQ(row0.count(), a.count());
      ASSERT_EQ(row0.empty(), a.empty());
      ASSERT_EQ(row0.first(), a.first());
      ASSERT_EQ(row0.to_vector(), a.to_vector());
      ASSERT_EQ(row0.is_subset_of(row1), a.is_subset_of(b));
      ASSERT_EQ(row0.intersects(row1), a.intersects(b));
      ASSERT_EQ(TokenSet::first_in_intersection(row0, row1),
                TokenSet::first_in_intersection(a, b));
      ASSERT_EQ(TokenSet::count_intersection(row0, row1),
                TokenSet::count_intersection(a, b));
      std::vector<TokenId> via_rows;
      std::vector<TokenId> via_sets;
      TokenSet::for_each_in_intersection(
          row0, row1, [&](TokenId t) { via_rows.push_back(t); });
      TokenSet::for_each_in_intersection(
          a, b, [&](TokenId t) { via_sets.push_back(t); });
      ASSERT_EQ(via_rows, via_sets);
      if (!a.empty()) {
        const auto probe = static_cast<TokenId>(
            rng.below(static_cast<std::uint64_t>(universe)));
        ASSERT_EQ(row0.test(probe), a.test(probe));
        ASSERT_EQ(row0.next(probe), a.next(probe));
        ASSERT_EQ(row0.next_circular(probe), a.next_circular(probe));
      }
    }
  }
}

TEST(TokenMatrixFuzz, BoundaryBitsStayInsideTheirRow) {
  // Setting the last valid bit of row r must never leak into row r+1
  // for universes straddling a word boundary.
  for (const std::size_t universe : {63u, 64u, 65u}) {
    TokenMatrix m(3, universe);
    const auto last = static_cast<TokenId>(universe - 1);
    m.row(1).set(last);
    m.row(1).set(0);
    EXPECT_TRUE(m.row(0).empty()) << "universe=" << universe;
    EXPECT_TRUE(m.row(2).empty()) << "universe=" << universe;
    EXPECT_EQ(m.row(1).count(), universe == 1 ? 1u : 2u);
    m.row(1).clear();
    EXPECT_TRUE(m.row(1).empty());
  }
}

// ---- SIMD dispatch differential fuzz -------------------------------
//
// Every vectorized kernel level must be bit-identical to the scalar
// reference on every input, including the word-boundary universes where
// the tail word is partial (63/65/127/129) or exactly full (64/128).
// For each universe the fuzz draws randomized rows, evaluates every
// kernel once per dispatch level, and compares results — including the
// full post-state of the mutating fused apply kernels — bit for bit
// against the scalar run.

/// Everything the kernel API can produce from one (a, b, dst) triple.
struct KernelResults {
  std::size_t count_a = 0;
  std::size_t count_intersection = 0;
  bool subset = false;
  bool intersects = false;
  TokenId first_in_intersection = -1;
  std::vector<TokenId> intersection_members;
  std::size_t fresh_count = 0;
  TokenSet fresh{0};
  TokenSet dst_after{0};
  std::size_t merge_fresh_count = 0;
  TokenSet merge_fresh{0};
  TokenSet merge_dst_after{0};
  TokenSet merge_uni_after{0};

  bool operator==(const KernelResults&) const = default;
};

KernelResults run_all_kernels(TokenSetView a, TokenSetView b, TokenSetView dst,
                              TokenSetView uni) {
  KernelResults r;
  r.count_a = a.count();
  r.count_intersection = TokenSet::count_intersection(a, b);
  r.subset = a.is_subset_of(b);
  r.intersects = a.intersects(b);
  r.first_in_intersection = TokenSet::first_in_intersection(a, b);
  TokenSet::for_each_in_intersection(
      a, b, [&](TokenId t) { r.intersection_members.push_back(t); });
  r.dst_after = TokenSet(dst);
  r.fresh = TokenSet(a);  // arbitrary non-zero prior contents
  r.fresh_count = MutableTokenSetView::apply_fresh_union(r.dst_after, b,
                                                         r.fresh);
  r.merge_dst_after = TokenSet(dst);
  r.merge_uni_after = TokenSet(uni);
  r.merge_fresh = TokenSet(a);
  r.merge_fresh_count = MutableTokenSetView::apply_fresh_union_merge(
      r.merge_dst_after, r.merge_uni_after, b, r.merge_fresh);
  return r;
}

TEST(TokenMatrixFuzz, KernelsBitIdenticalAcrossDispatchLevels) {
  namespace simd = ocd::util::simd;
  // Restore auto resolution however the test exits (ASSERT included).
  const struct LevelGuard {
    ~LevelGuard() { ocd::util::simd::clear_simd_level(); }
  } guard;
  std::vector<simd::Level> levels;
  for (int lv = 0; lv <= static_cast<int>(simd::max_supported_level()); ++lv)
    levels.push_back(static_cast<simd::Level>(lv));
  ASSERT_GE(levels.size(), 1u);
  for (const std::size_t universe : {63u, 64u, 65u, 127u, 128u, 129u}) {
    Rng rng(211 + universe);
    for (int iter = 0; iter < 120; ++iter) {
      // Rows of a matrix, as in the simulator, not standalone sets —
      // the vector kernels must respect row extents exactly.
      TokenMatrix m(4, universe);
      m.row(0) |= random_set(universe, rng);
      m.row(1) |= random_set(universe, rng);
      m.row(2) |= random_set(universe, rng);
      m.row(3) |= random_set(universe, rng);
      // Occasionally make b a superset/subset so both branches of the
      // subset test and empty intersections get exercised.
      if (iter % 5 == 0) m.row(1) |= m.row(0);
      if (iter % 7 == 0) m.row(1).clear();

      simd::set_simd_level(simd::Level::kScalar);
      const KernelResults reference = run_all_kernels(
          std::as_const(m).row(0), std::as_const(m).row(1),
          std::as_const(m).row(2), std::as_const(m).row(3));
      for (const simd::Level level : levels) {
        if (level == simd::Level::kScalar) continue;
        simd::set_simd_level(level);
        const KernelResults vectored = run_all_kernels(
            std::as_const(m).row(0), std::as_const(m).row(1),
            std::as_const(m).row(2), std::as_const(m).row(3));
        ASSERT_EQ(vectored, reference)
            << "level=" << simd::level_name(level) << " universe=" << universe
            << " iter=" << iter;
      }
      simd::clear_simd_level();
    }
  }
}

/// The seed SnapshotBuffer semantics (PR 1): a deque of deep copies,
/// trimmed to staleness+1 entries, stale view = the front.
class DequeReference {
 public:
  explicit DequeReference(std::int32_t staleness) : staleness_(staleness) {}

  void push(const TokenMatrix& possession) {
    history_.push_back(possession);
    while (history_.size() > static_cast<std::size_t>(staleness_) + 1)
      history_.pop_front();
  }
  [[nodiscard]] const TokenMatrix& stale_view() const {
    return history_.front();
  }

 private:
  std::int32_t staleness_;
  std::deque<TokenMatrix> history_;
};

TEST(SnapshotRing, ReplaysDequeSemantics) {
  for (const std::int32_t staleness : {0, 1, 2, 5}) {
    Rng rng(7 + staleness);
    sim::SnapshotBuffer ring(staleness);
    DequeReference reference(staleness);
    TokenMatrix live(4, 70);
    for (int step = 0; step < 40; ++step) {
      // Monotone possession growth, as in the simulator.
      for (std::size_t v = 0; v < live.rows(); ++v)
        live.row(v) |= random_set(70, rng);
      ring.push(live);
      reference.push(live);
      ASSERT_EQ(ring.stale_view(), reference.stale_view())
          << "staleness=" << staleness << " step=" << step;
    }
  }
}

TEST(SnapshotRing, AliasedZeroStalenessTracksLiveWithoutCopy) {
  TokenMatrix live(2, 40);
  sim::SnapshotBuffer ring(0);
  ring.alias_live(live);
  ring.push(live);
  EXPECT_EQ(&ring.stale_view(), &live);
  live.row(0).set(13);
  EXPECT_TRUE(ring.stale_view().row(0).test(13));
}

}  // namespace
}  // namespace ocd::util
