#include "ocd/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ocd {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 15);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 15);
  }
}

TEST(Rng, UniformIntCoversWholeRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  std::array<int, 4> histogram{};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(4)];
  for (int count : histogram) {
    EXPECT_GT(count, kDraws / 4 - kDraws / 20);
    EXPECT_LT(count, kDraws / 4 + kDraws / 20);
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> original = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), original.begin()));
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(23);
  const auto sample = rng.sample_indices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng(23);
  const auto sample = rng.sample_indices(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_indices(3, 4), ContractViolation);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.split();
  // The child stream must differ from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 4);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a(0);
  SplitMix64 b(1);
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace ocd
