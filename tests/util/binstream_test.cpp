// BinStream: differential round-trip fuzz over every core type plus
// hostile-input error paths.  Decoders must reject truncated and
// corrupted streams with an ocd::Error naming the offending field —
// never crash, never silently misparse.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ocd/core/scenario.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/util/binstream.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::util {
namespace {

// Word-boundary universes, mirroring token_matrix_test.cpp: the tail-
// mask and word-count edge cases live at 63/64/65 and 127/128/129.
constexpr std::size_t kUniverses[] = {63, 64, 65, 127, 128, 129};

TokenSet random_set(std::size_t universe, double density, Rng& rng) {
  TokenSet set(universe);
  for (std::size_t t = 0; t < universe; ++t)
    if (rng.chance(density)) set.set(static_cast<TokenId>(t));
  return set;
}

TEST(BinStream, PrimitiveRoundTrip) {
  BinStream stream;
  stream.put_u8(0xAB);
  stream.put_u32(0xDEADBEEFu);
  stream.put_u64(0x0123456789ABCDEFull);
  stream.put_i64(-42);
  stream.put_f64(2.5);
  stream.put_bool(true);
  stream.put_bool(false);
  stream.put_varint(0);
  stream.put_varint(127);
  stream.put_varint(128);
  stream.put_varint(std::numeric_limits<std::uint64_t>::max());
  stream.put_varint_signed(0);
  stream.put_varint_signed(-1);
  stream.put_varint_signed(std::numeric_limits<std::int64_t>::min());
  stream.put_varint_signed(std::numeric_limits<std::int64_t>::max());
  stream.put_string("hello");
  stream.put_string("");

  BinStream reader(stream.bytes());
  EXPECT_EQ(reader.get_u8("a"), 0xAB);
  EXPECT_EQ(reader.get_u32("b"), 0xDEADBEEFu);
  EXPECT_EQ(reader.get_u64("c"), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.get_i64("d"), -42);
  EXPECT_EQ(reader.get_f64("e"), 2.5);
  EXPECT_TRUE(reader.get_bool("f"));
  EXPECT_FALSE(reader.get_bool("g"));
  EXPECT_EQ(reader.get_varint("h"), 0u);
  EXPECT_EQ(reader.get_varint("i"), 127u);
  EXPECT_EQ(reader.get_varint("j"), 128u);
  EXPECT_EQ(reader.get_varint("k"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(reader.get_varint_signed("l"), 0);
  EXPECT_EQ(reader.get_varint_signed("m"), -1);
  EXPECT_EQ(reader.get_varint_signed("n"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(reader.get_varint_signed("o"),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(reader.get_string("p"), "hello");
  EXPECT_EQ(reader.get_string("q"), "");
  EXPECT_TRUE(reader.exhausted());
}

TEST(BinStream, TruncatedReadNamesTheField) {
  BinStream stream;
  stream.put_u32(7);
  BinStream reader(stream.bytes());
  reader.get_u32("first");
  try {
    reader.get_u64("second.field");
    FAIL() << "expected ocd::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("second.field"), std::string::npos) << what;
  }
}

TEST(BinStream, CorruptBooleanAndVarintAreRejected) {
  {
    BinStream stream;
    stream.put_u8(2);
    BinStream reader(stream.bytes());
    EXPECT_THROW(reader.get_bool("flag"), Error);
  }
  {
    // 10 continuation bytes: varint longer than the 64-bit limit.
    BinStream reader(std::string(11, '\xFF'));
    EXPECT_THROW(reader.get_varint("count"), Error);
  }
  {
    // Overflow: 9 continuation bytes then a high final byte.
    std::string bytes(9, '\xFF');
    bytes.push_back('\x7F');
    BinStream reader(bytes);
    EXPECT_THROW(reader.get_varint("count"), Error);
  }
}

TEST(BinStream, TokenSetRoundTripFuzz) {
  Rng rng(2024);
  for (std::size_t universe : kUniverses) {
    for (double density : {0.0, 0.02, 0.3, 0.8, 1.0}) {
      for (int trial = 0; trial < 8; ++trial) {
        const TokenSet original = random_set(universe, density, rng);
        BinStream stream;
        put_token_set(stream, original);
        BinStream reader(stream.bytes());
        const TokenSet decoded = get_token_set(reader, "set");
        EXPECT_EQ(decoded, original)
            << "universe " << universe << " density " << density;
        EXPECT_TRUE(reader.exhausted());
      }
    }
  }
}

TEST(BinStream, TokenSetIntoReusesFixedUniverseStorage) {
  Rng rng(7);
  for (std::size_t universe : kUniverses) {
    const TokenSet original = random_set(universe, 0.25, rng);
    BinStream stream;
    put_token_set(stream, original);
    TokenSet out(universe);
    out.set(0);  // stale contents must be cleared
    BinStream reader(stream.bytes());
    get_token_set_into(reader, "set", out);
    EXPECT_EQ(out, original) << universe;
  }
}

TEST(BinStream, TokenSetUniverseMismatchIsRejected) {
  BinStream stream;
  put_token_set(stream, TokenSet::of(64, {1, 5}));
  TokenSet out(65);
  BinStream reader(stream.bytes());
  try {
    get_token_set_into(reader, "delivery.tokens", out);
    FAIL() << "expected ocd::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("delivery.tokens"), std::string::npos) << what;
    EXPECT_NE(what.find("universe"), std::string::npos) << what;
  }
}

TEST(BinStream, TokenSetHostileEncodingsAreRejected) {
  {
    // Raw encoding with a tail bit set beyond the universe.
    BinStream stream;
    stream.put_varint(63);  // universe
    stream.put_u8(0);       // raw tag
    stream.put_u64(~0ULL);  // bit 63 is outside a 63-token universe
    BinStream reader(stream.bytes());
    EXPECT_THROW(get_token_set(reader, "set"), Error);
  }
  {
    // Sparse encoding with non-increasing ids (zero delta after first).
    BinStream stream;
    stream.put_varint(100);  // universe
    stream.put_u8(1);        // sparse tag
    stream.put_varint(2);    // count
    stream.put_varint(5);    // first id
    stream.put_varint(0);    // delta-1 encoding never yields 0 gap... encode
    BinStream reader(stream.bytes());
    // Whatever the delta convention, an out-of-range or non-increasing
    // stream must throw rather than produce an invalid set.
    try {
      const TokenSet decoded = get_token_set(reader, "set");
      EXPECT_LE(decoded.count(), 2u);
    } catch (const Error&) {
    }
  }
  {
    // Sparse count exceeding the universe.
    BinStream stream;
    stream.put_varint(8);
    stream.put_u8(1);
    stream.put_varint(9);
    BinStream reader(stream.bytes());
    EXPECT_THROW(get_token_set(reader, "set"), Error);
  }
  {
    // Unknown encoding tag.
    BinStream stream;
    stream.put_varint(8);
    stream.put_u8(7);
    BinStream reader(stream.bytes());
    EXPECT_THROW(get_token_set(reader, "set"), Error);
  }
  {
    // Universe beyond the TokenId range.
    BinStream stream;
    stream.put_varint(std::numeric_limits<std::uint64_t>::max());
    BinStream reader(stream.bytes());
    EXPECT_THROW(get_token_set(reader, "set"), Error);
  }
}

TEST(BinStream, TokenSetRawSparseThresholdAtWordBoundaries) {
  // Pin the density-tag choice exactly at the word-boundary universes
  // the ghost-delta wire format leans on.  Sparse costs
  // varint_len(count) + count id bytes (one byte per id below 128);
  // raw costs 8 bytes per word.  Ties must go to raw.  A drift in this
  // threshold silently changes every shard frame on the wire, so the
  // byte counts are asserted literally, not just round-tripped.
  const auto encoded = [](const TokenSet& set) {
    BinStream stream;
    put_token_set(stream, set);
    return std::string(stream.bytes());
  };
  const auto expect_roundtrip = [&](const TokenSet& set) {
    BinStream reader(encoded(set));
    EXPECT_EQ(get_token_set(reader, "set"), set);
    EXPECT_TRUE(reader.exhausted());
  };
  for (const std::size_t universe : {63u, 64u}) {
    // One word: raw payload is 8 bytes, so sparse wins up to 6 tokens
    // (6 ids + 1 count byte = 7 < 8) and loses the tie at 7.
    const TokenSet empty(universe);
    EXPECT_EQ(encoded(empty).size(), 3u) << universe;  // uni+tag+count
    EXPECT_EQ(encoded(empty)[1], 1) << universe;       // sparse tag
    expect_roundtrip(empty);

    const TokenSet single = TokenSet::of(universe, {62});
    EXPECT_EQ(encoded(single).size(), 4u) << universe;
    EXPECT_EQ(encoded(single)[1], 1) << universe;
    expect_roundtrip(single);

    TokenSet six(universe);
    for (TokenId t = 0; t < 6; ++t) six.set(t);
    EXPECT_EQ(encoded(six).size(), 9u) << universe;  // still sparse
    EXPECT_EQ(encoded(six)[1], 1) << universe;
    expect_roundtrip(six);

    TokenSet seven(universe);
    for (TokenId t = 0; t < 7; ++t) seven.set(t);
    EXPECT_EQ(encoded(seven).size(), 10u) << universe;  // raw: uni+tag+8
    EXPECT_EQ(encoded(seven)[1], 0) << universe;
    expect_roundtrip(seven);
  }
  {
    // Two words (universe 65): raw payload doubles to 16 bytes, so the
    // flip moves to 15 tokens — the threshold tracks words, not bits.
    const TokenSet empty(65);
    EXPECT_EQ(encoded(empty).size(), 3u);
    EXPECT_EQ(encoded(empty)[1], 1);
    expect_roundtrip(empty);

    const TokenSet single = TokenSet::of(65, {64});
    EXPECT_EQ(encoded(single).size(), 4u);
    EXPECT_EQ(encoded(single)[1], 1);
    expect_roundtrip(single);

    TokenSet fourteen(65);
    for (TokenId t = 0; t < 14; ++t) fourteen.set(t);
    EXPECT_EQ(encoded(fourteen).size(), 17u);  // sparse: uni+tag+count+14
    EXPECT_EQ(encoded(fourteen)[1], 1);
    expect_roundtrip(fourteen);

    TokenSet fifteen(65);
    for (TokenId t = 0; t < 15; ++t) fifteen.set(t);
    EXPECT_EQ(encoded(fifteen).size(), 18u);  // raw: uni+tag+16
    EXPECT_EQ(encoded(fifteen)[1], 0);
    expect_roundtrip(fifteen);

    // The full two-word set decodes through the tail-mask check.
    expect_roundtrip(TokenSet::full(65));
  }
}

TEST(BinStream, TokenMatrixRoundTrip) {
  Rng rng(11);
  for (std::size_t universe : kUniverses) {
    TokenMatrix matrix(5, universe);
    for (std::size_t r = 0; r < 5; ++r)
      matrix.row(r).assign(random_set(universe, 0.3, rng));
    BinStream stream;
    put_token_matrix(stream, matrix);
    BinStream reader(stream.bytes());
    const TokenMatrix decoded = get_token_matrix(reader, "matrix");
    EXPECT_EQ(decoded, matrix) << universe;
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST(BinStream, DigraphAndInstanceRoundTrip) {
  Rng rng(3);
  Digraph g = topology::random_overlay(20, rng);
  BinStream gstream;
  put_digraph(gstream, g);
  BinStream greader(gstream.bytes());
  const Digraph gd = get_digraph(greader, "graph");
  ASSERT_EQ(gd.num_vertices(), g.num_vertices());
  ASSERT_EQ(gd.num_arcs(), g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(gd.arc(a).from, g.arc(a).from);
    EXPECT_EQ(gd.arc(a).to, g.arc(a).to);
    EXPECT_EQ(gd.arc(a).capacity, g.arc(a).capacity);
  }

  Rng rng2(4);
  Digraph g2 = topology::random_overlay(15, rng2);
  const core::Instance inst =
      core::single_source_all_receivers(std::move(g2), 9, 0);
  BinStream istream;
  put_instance(istream, inst);
  BinStream ireader(istream.bytes());
  const core::Instance decoded = get_instance(ireader, "instance");
  ASSERT_EQ(decoded.num_vertices(), inst.num_vertices());
  ASSERT_EQ(decoded.num_tokens(), inst.num_tokens());
  ASSERT_EQ(decoded.graph().num_arcs(), inst.graph().num_arcs());
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    EXPECT_EQ(decoded.have(v), inst.have(v));
    EXPECT_EQ(decoded.want(v), inst.want(v));
  }
  decoded.validate();
}

TEST(BinStream, ScheduleRoundTrip) {
  core::Schedule schedule;
  core::Timestep step0;
  step0.add(2, TokenSet::of(10, {1, 3}));
  step0.add(0, TokenSet::of(10, {7}));
  schedule.append(std::move(step0));
  schedule.append(core::Timestep{});  // empty timesteps survive
  core::Timestep step2;
  step2.add(5, TokenSet::of(10, {0, 9}));
  schedule.append(std::move(step2));

  BinStream stream;
  put_schedule(stream, schedule);
  BinStream reader(stream.bytes());
  const core::Schedule decoded = get_schedule(reader, "schedule");
  ASSERT_EQ(decoded.length(), schedule.length());
  EXPECT_EQ(decoded.bandwidth(), schedule.bandwidth());
  for (std::size_t s = 0; s < decoded.steps().size(); ++s) {
    const auto& da = decoded.steps()[s].sends();
    const auto& sa = schedule.steps()[s].sends();
    ASSERT_EQ(da.size(), sa.size()) << s;
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].arc, sa[i].arc);
      EXPECT_EQ(da[i].tokens, sa[i].tokens);
    }
  }
}

// Hostile-input sweep: every proper prefix of an encoded instance must
// throw (truncation), and single-byte corruptions must either throw or
// decode into something self-consistent — never crash.
TEST(BinStream, TruncationAndCorruptionSweep) {
  Rng rng(6);
  Digraph g = topology::random_overlay(10, rng);
  const core::Instance inst =
      core::single_source_all_receivers(std::move(g), 5, 0);
  BinStream stream;
  put_instance(stream, inst);
  const std::string& bytes = stream.bytes();

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    BinStream reader(bytes.substr(0, cut));
    EXPECT_THROW(get_instance(reader, "instance"), Error) << "cut " << cut;
  }

  Rng corrupt_rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const auto pos = static_cast<std::size_t>(corrupt_rng.below(mutated.size()));
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 + corrupt_rng.below(255)));
    BinStream reader(mutated);
    try {
      const core::Instance decoded = get_instance(reader, "instance");
      decoded.validate();
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

// ---- checkpoint record ---------------------------------------------
// The shard checkpoint is the highest-stakes record in the codec: a
// silently misparsed one resurrects a worker with wrong state, which
// recovery then replicates into the final schedule.  Same discipline as
// the instance sweep: truncation at every byte (hence at every field
// boundary) throws a field-named error, corruption never crashes, and a
// checkpoint presented to the wrong shard is rejected by name.

shard::Checkpoint sample_checkpoint(std::int32_t shard_id) {
  shard::Checkpoint c;
  c.shard = shard_id;
  c.num_shards = 4;
  c.step = 6;
  c.fault_cursor = 6;
  c.unsatisfied = 9;
  c.local_unsatisfied = 3;
  c.no_progress = 1;
  Rng rng(41);
  c.possession = TokenMatrix(7, 65);
  for (std::size_t row = 0; row < 7; ++row)
    c.possession.assign_row(row, random_set(65, 0.4, rng));
  c.satisfied = {1, 0, 1, 0, 0};
  c.completion = {2, -1, 5, -1, -1};
  c.sent_by = {{0, 4}, {3, 1}, {6, 11}};
  c.holders.assign(65, 2);
  c.need.assign(65, 3);
  {
    BinStream policy;
    policy.put_u64(0xfeedfacecafebeefull);
    c.policy_state = std::move(policy).take();
  }
  if (shard_id == 0) {
    c.moves_per_step = {4, 3, 5, 2, 1, 6};
    c.lost_per_step = {0, 1, 0, 0, 2, 0};
    c.useful_total = 17;
    c.lost_total = 3;
  }
  c.has_schedule = true;
  core::Timestep step;
  step.add(1, TokenSet::of(65, {2, 64}));
  c.schedule.append(std::move(step));
  return c;
}

TEST(BinStream, CheckpointRoundTrip) {
  for (std::int32_t shard_id : {0, 2}) {
    const shard::Checkpoint original = sample_checkpoint(shard_id);
    BinStream stream;
    shard::put_checkpoint(stream, original);
    BinStream reader(stream.bytes());
    const shard::Checkpoint decoded =
        shard::get_checkpoint(reader, "checkpoint", shard_id);
    EXPECT_TRUE(reader.exhausted());
    EXPECT_EQ(decoded.shard, original.shard);
    EXPECT_EQ(decoded.num_shards, original.num_shards);
    EXPECT_EQ(decoded.step, original.step);
    EXPECT_EQ(decoded.fault_cursor, original.fault_cursor);
    EXPECT_EQ(decoded.unsatisfied, original.unsatisfied);
    EXPECT_EQ(decoded.local_unsatisfied, original.local_unsatisfied);
    EXPECT_EQ(decoded.no_progress, original.no_progress);
    ASSERT_EQ(decoded.possession.rows(), original.possession.rows());
    for (std::size_t row = 0; row < original.possession.rows(); ++row)
      EXPECT_EQ(TokenSet(decoded.possession.row(row)),
                TokenSet(original.possession.row(row)));
    EXPECT_EQ(decoded.satisfied, original.satisfied);
    EXPECT_EQ(decoded.completion, original.completion);
    EXPECT_EQ(decoded.sent_by, original.sent_by);
    EXPECT_EQ(decoded.holders, original.holders);
    EXPECT_EQ(decoded.need, original.need);
    EXPECT_EQ(decoded.policy_state, original.policy_state);
    EXPECT_EQ(decoded.moves_per_step, original.moves_per_step);
    EXPECT_EQ(decoded.lost_per_step, original.lost_per_step);
    EXPECT_EQ(decoded.useful_total, original.useful_total);
    EXPECT_EQ(decoded.lost_total, original.lost_total);
    ASSERT_EQ(decoded.has_schedule, original.has_schedule);
    EXPECT_EQ(decoded.schedule.length(), original.schedule.length());
  }
}

TEST(BinStream, CheckpointTruncationAtEveryFieldBoundary) {
  BinStream stream;
  shard::put_checkpoint(stream, sample_checkpoint(0));
  const std::string& bytes = stream.bytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    BinStream reader(bytes.substr(0, cut));
    EXPECT_THROW(shard::get_checkpoint(reader, "checkpoint"), Error)
        << "cut " << cut;
  }
}

TEST(BinStream, CheckpointCorruptionNeverCrashes) {
  BinStream stream;
  shard::put_checkpoint(stream, sample_checkpoint(2));
  const std::string& bytes = stream.bytes();
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const auto pos = static_cast<std::size_t>(rng.below(mutated.size()));
    mutated[pos] = static_cast<char>(
        mutated[pos] ^ static_cast<char>(1 + rng.below(255)));
    BinStream reader(mutated);
    try {
      const shard::Checkpoint decoded =
          shard::get_checkpoint(reader, "checkpoint", 2);
      // Surviving decodes must still satisfy the record's invariants.
      EXPECT_EQ(decoded.shard, 2);
      EXPECT_EQ(decoded.fault_cursor, decoded.step);
      EXPECT_LE(decoded.local_unsatisfied, decoded.unsatisfied);
      EXPECT_EQ(decoded.completion.size(), decoded.satisfied.size());
    } catch (const Error&) {
      // rejected: fine
    }
  }
}

TEST(BinStream, CheckpointFromTheWrongShardIsRejected) {
  BinStream stream;
  shard::put_checkpoint(stream, sample_checkpoint(1));
  BinStream reader(stream.bytes());
  try {
    shard::get_checkpoint(reader, "checkpoint", /*expect_shard=*/3);
    FAIL() << "expected wrong-shard rejection";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint from the wrong shard"),
              std::string::npos)
        << e.what();
  }
  // Without an expectation the same record decodes fine.
  BinStream again(stream.bytes());
  EXPECT_EQ(shard::get_checkpoint(again, "checkpoint").shard, 1);
}

TEST(BinStream, CheckpointCorruptVarintAndBadMagicAreRejected) {
  BinStream stream;
  shard::put_checkpoint(stream, sample_checkpoint(0));
  std::string bytes = stream.bytes();
  {
    std::string bad_magic = bytes;
    bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5a);
    BinStream reader(bad_magic);
    EXPECT_THROW(shard::get_checkpoint(reader, "checkpoint"), Error);
  }
  {
    // An unterminated varint where the shard id lives: continuation
    // bits forever.
    std::string runaway = bytes.substr(0, 4);
    runaway.append(12, static_cast<char>(0x80));
    BinStream reader(runaway);
    EXPECT_THROW(shard::get_checkpoint(reader, "checkpoint"), Error);
  }
}

}  // namespace
}  // namespace ocd::util
