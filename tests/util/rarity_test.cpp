// RarityRanker: the rank permutation must reproduce the heuristics'
// historic shuffle-then-stable-sort priority order exactly, and the
// rank-space set kernels must be faithful permutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "ocd/util/rarity.hpp"
#include "ocd/util/rng.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd {
namespace {

// The pre-kernel code path, verbatim: shuffle token ids, then stable
// sort by ascending holder count.
std::vector<TokenId> legacy_rarity_order(
    const std::vector<std::int32_t>& holders, Rng& rng) {
  std::vector<TokenId> order(holders.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](TokenId a, TokenId b) {
    return holders[static_cast<std::size_t>(a)] <
           holders[static_cast<std::size_t>(b)];
  });
  return order;
}

std::vector<TokenId> legacy_need_then_rarity_order(
    const std::vector<std::int32_t>& holders,
    const std::vector<std::int32_t>& need, Rng& rng) {
  std::vector<TokenId> order(holders.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&](TokenId a, TokenId b) {
    const bool needed_a = need[static_cast<std::size_t>(a)] > 0;
    const bool needed_b = need[static_cast<std::size_t>(b)] > 0;
    if (needed_a != needed_b) return needed_a;
    return holders[static_cast<std::size_t>(a)] <
           holders[static_cast<std::size_t>(b)];
  });
  return order;
}

TEST(RarityRanker, ExplicitOrderRoundTrips) {
  RarityRanker ranker;
  ranker.assign({3, 0, 2, 1});
  EXPECT_EQ(ranker.universe_size(), 4u);
  EXPECT_EQ(ranker.token_at(0), 3);
  EXPECT_EQ(ranker.token_at(3), 1);
  EXPECT_EQ(ranker.rank_of(3), 0);
  EXPECT_EQ(ranker.rank_of(1), 3);
  for (TokenId t = 0; t < 4; ++t) {
    EXPECT_EQ(ranker.token_at(ranker.rank_of(t)), t);
  }
}

TEST(RarityRanker, MatchesLegacyRarityOrderWithRng) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 9000ULL}) {
    Rng make(seed);
    std::vector<std::int32_t> holders(150);
    for (auto& h : holders) h = static_cast<std::int32_t>(make.below(6));

    Rng legacy_rng(seed + 7);
    const auto expected = legacy_rarity_order(holders, legacy_rng);

    Rng kernel_rng(seed + 7);
    RarityRanker ranker;
    ranker.assign_by_rarity(holders, &kernel_rng);

    ASSERT_EQ(ranker.universe_size(), holders.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(ranker.token_at(static_cast<TokenId>(r)), expected[r])
          << "seed " << seed << " rank " << r;
    }
    // Identical rng consumption: both streams must now agree.
    EXPECT_EQ(legacy_rng.next(), kernel_rng.next());
  }
}

TEST(RarityRanker, NullRngKeepsTokenIdTieOrder) {
  const std::vector<std::int32_t> holders{2, 1, 2, 0, 1};
  RarityRanker ranker;
  ranker.assign_by_rarity(holders, nullptr);
  // holders==0: {3}; holders==1: {1,4}; holders==2: {0,2}.
  EXPECT_EQ(ranker.token_at(0), 3);
  EXPECT_EQ(ranker.token_at(1), 1);
  EXPECT_EQ(ranker.token_at(2), 4);
  EXPECT_EQ(ranker.token_at(3), 0);
  EXPECT_EQ(ranker.token_at(4), 2);
}

TEST(RarityRanker, MatchesLegacyNeedThenRarityOrder) {
  for (const std::uint64_t seed : {5ULL, 123ULL}) {
    Rng make(seed);
    std::vector<std::int32_t> holders(90);
    std::vector<std::int32_t> need(90);
    for (auto& h : holders) h = static_cast<std::int32_t>(make.below(5));
    for (auto& n : need) n = static_cast<std::int32_t>(make.below(3));

    Rng legacy_rng(seed);
    const auto expected = legacy_need_then_rarity_order(holders, need,
                                                        legacy_rng);
    Rng kernel_rng(seed);
    RarityRanker ranker;
    ranker.assign_by_need_then_rarity(holders, need, &kernel_rng);
    for (std::size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(ranker.token_at(static_cast<TokenId>(r)), expected[r])
          << "seed " << seed << " rank " << r;
    }
  }
}

TEST(RarityRanker, RankSpacePermutationRoundTrips) {
  Rng rng(17);
  const std::size_t universe = 130;  // spans word boundaries
  std::vector<std::int32_t> holders(universe);
  for (auto& h : holders) h = static_cast<std::int32_t>(rng.below(4));
  RarityRanker ranker;
  ranker.assign_by_rarity(holders, &rng);

  TokenSet s(universe);
  for (int i = 0; i < 40; ++i) s.set(static_cast<TokenId>(rng.below(universe)));

  const TokenSet ranked = ranker.to_ranks(s);
  EXPECT_EQ(ranked.count(), s.count());
  s.for_each([&](TokenId t) { EXPECT_TRUE(ranked.test(ranker.rank_of(t))); });
  EXPECT_EQ(ranker.to_tokens(ranked), s);
}

TEST(RarityRanker, RarestInIntersectionPicksLowestHolderCount) {
  const std::vector<std::int32_t> holders{5, 1, 3, 0, 4, 2};
  RarityRanker ranker;
  ranker.assign_by_rarity(holders, nullptr);

  const std::size_t universe = holders.size();
  TokenSet a(universe);
  TokenSet b(universe);
  // Intersection {0, 2, 4}: rarest by holders is token 2.
  for (TokenId t : {0, 2, 4}) {
    a.set(ranker.rank_of(t));
    b.set(ranker.rank_of(t));
  }
  a.set(ranker.rank_of(3));  // only in a — must not win
  EXPECT_EQ(rarest_in_intersection(ranker, a, b), 2);

  const TokenSet empty(universe);
  EXPECT_EQ(rarest_in_intersection(ranker, a, empty), -1);
}

}  // namespace
}  // namespace ocd
