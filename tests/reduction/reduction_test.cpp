#include "ocd/reduction/ds_reduction.hpp"

#include <gtest/gtest.h>

#include "ocd/core/validate.hpp"
#include "ocd/exact/bnb.hpp"

namespace ocd::reduction {
namespace {

UndirectedGraph path(std::int32_t n) {
  UndirectedGraph g(n);
  for (std::int32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(Reduction, InstanceShape) {
  const UndirectedGraph g = path(4);
  const auto reduced = reduce_dominating_set(g, 2);
  const core::Instance& inst = reduced.instance;
  EXPECT_EQ(inst.num_vertices(), 2 + 2 * 4);
  EXPECT_EQ(inst.num_tokens(), (4 - 2) + 1);
  // s holds everything.
  EXPECT_EQ(inst.have(reduced.layout.s).count(),
            static_cast<std::size_t>(inst.num_tokens()));
  // t wants tokens 1..n-k.
  EXPECT_FALSE(inst.want(reduced.layout.t).test(0));
  EXPECT_TRUE(inst.want(reduced.layout.t).test(1));
  // Every v'_i wants token 0.
  for (std::int32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(inst.want(reduced.layout.first_v_prime + i).to_vector(),
              (std::vector<TokenId>{0}));
  }
  // Arc counts: n*(s->v_i) + n*(v_i->t) + n*(v_i->v'_i) + 2|E|.
  EXPECT_EQ(inst.graph().num_arcs(), 3 * 4 + 2 * 3);
}

TEST(Reduction, PathWithSufficientKIsTwoStepFeasible) {
  // gamma(P_4) = 2, so k = 2 works and k = 1 does not.
  const UndirectedGraph g = path(4);
  const auto yes = reduce_dominating_set(g, 2);
  const auto no = reduce_dominating_set(g, 1);
  EXPECT_TRUE(exact::dfocd_feasible(yes.instance, 2));
  EXPECT_FALSE(exact::dfocd_feasible(no.instance, 2));
}

TEST(Reduction, ExtractedSetDominates) {
  const UndirectedGraph g = path(6);  // gamma = 2
  const auto reduced = reduce_dominating_set(g, 2);
  core::Schedule witness;
  ASSERT_TRUE(exact::dfocd_feasible(reduced.instance, 2, {}, &witness));
  ASSERT_TRUE(core::is_successful(reduced.instance, witness));
  const auto set = extract_dominating_set(reduced, witness);
  EXPECT_LE(set.size(), 2u);
  EXPECT_TRUE(is_dominating_set(g, set));
}

TEST(Reduction, StarGraphNeedsOneDominator) {
  UndirectedGraph g(5);
  for (std::int32_t v = 1; v < 5; ++v) g.add_edge(0, v);
  EXPECT_TRUE(exact::dfocd_feasible(reduce_dominating_set(g, 1).instance, 2));
  // k = 0 means every numbered token transits and nobody can carry 0.
  EXPECT_FALSE(exact::dfocd_feasible(reduce_dominating_set(g, 0).instance, 2));
}

TEST(Reduction, EdgelessGraphRequiresAllVertices) {
  const UndirectedGraph g(3);
  // Only a dominating set of size 3 exists.
  EXPECT_FALSE(exact::dfocd_feasible(reduce_dominating_set(g, 2).instance, 2));
  EXPECT_TRUE(exact::dfocd_feasible(reduce_dominating_set(g, 3).instance, 2));
}

// ----------------------------------------------------------------------
// The equivalence theorem on random graphs: for every k,
//   DS(G) <= k  ⟺  the reduced instance is 2-step feasible.
// ----------------------------------------------------------------------
class ReductionEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReductionEquivalence, MatchesExactDominatingSet) {
  Rng rng(GetParam());
  const std::int32_t n = 4 + static_cast<std::int32_t>(rng.below(2));  // 4-5
  const UndirectedGraph g = random_undirected(n, 0.4, rng);
  const auto gamma =
      static_cast<std::int32_t>(minimum_dominating_set(g).size());
  for (std::int32_t k = 0; k <= n; ++k) {
    const auto reduced = reduce_dominating_set(g, k);
    exact::BnbOptions options;
    options.max_nodes = 50'000'000;
    options.max_plans_per_step = 50'000'000;
    const bool feasible = exact::dfocd_feasible(reduced.instance, 2, options);
    EXPECT_EQ(feasible, k >= gamma)
        << "n=" << n << " k=" << k << " gamma=" << gamma;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalence,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace ocd::reduction
