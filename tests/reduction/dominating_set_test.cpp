#include "ocd/reduction/dominating_set.hpp"

#include <gtest/gtest.h>

namespace ocd::reduction {
namespace {

UndirectedGraph path(std::int32_t n) {
  UndirectedGraph g(n);
  for (std::int32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

UndirectedGraph star(std::int32_t n) {
  UndirectedGraph g(n);
  for (std::int32_t v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

TEST(DominatingSet, ClosedNeighborhood) {
  const UndirectedGraph g = path(4);
  EXPECT_EQ(g.closed_neighborhood(0), 0b0011ULL);
  EXPECT_EQ(g.closed_neighborhood(1), 0b0111ULL);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(DominatingSet, StarNeedsOnlyCenter) {
  const auto set = minimum_dominating_set(star(8));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 0);
}

TEST(DominatingSet, PathDominationNumber) {
  // gamma(P_n) = ceil(n/3).
  EXPECT_EQ(minimum_dominating_set(path(3)).size(), 1u);
  EXPECT_EQ(minimum_dominating_set(path(4)).size(), 2u);
  EXPECT_EQ(minimum_dominating_set(path(6)).size(), 2u);
  EXPECT_EQ(minimum_dominating_set(path(7)).size(), 3u);
}

TEST(DominatingSet, EdgelessGraphNeedsEveryVertex) {
  const UndirectedGraph g(5);
  EXPECT_EQ(minimum_dominating_set(g).size(), 5u);
}

TEST(DominatingSet, SingleVertex) {
  const UndirectedGraph g(1);
  EXPECT_EQ(minimum_dominating_set(g).size(), 1u);
}

TEST(DominatingSet, IsDominatingSetChecker) {
  const UndirectedGraph g = path(5);
  EXPECT_TRUE(is_dominating_set(g, {1, 3}));
  EXPECT_FALSE(is_dominating_set(g, {0}));
  EXPECT_TRUE(is_dominating_set(g, {0, 1, 2, 3, 4}));
  EXPECT_FALSE(is_dominating_set(g, {}));
}

TEST(DominatingSet, GreedyIsValidAndAtLeastOptimal) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const UndirectedGraph g = random_undirected(12, 0.3, rng);
    const auto greedy = greedy_dominating_set(g);
    const auto exact = minimum_dominating_set(g);
    EXPECT_TRUE(is_dominating_set(g, greedy));
    EXPECT_TRUE(is_dominating_set(g, exact));
    EXPECT_GE(greedy.size(), exact.size());
  }
}

TEST(DominatingSet, ExactMatchesBruteForceOnTinyGraphs) {
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    const std::int32_t n = 4 + static_cast<std::int32_t>(rng.below(4));
    const UndirectedGraph g = random_undirected(n, 0.35, rng);
    const auto exact = minimum_dominating_set(g);
    // Brute force over all subsets.
    std::size_t best = static_cast<std::size_t>(n);
    for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
      std::vector<std::int32_t> set;
      for (std::int32_t v = 0; v < n; ++v)
        if ((mask >> v) & 1ULL) set.push_back(v);
      if (set.size() < best && is_dominating_set(g, set)) best = set.size();
    }
    EXPECT_EQ(exact.size(), best) << "trial " << trial << " n=" << n;
  }
}

TEST(DominatingSet, RejectsOversizedUniverse) {
  EXPECT_THROW(UndirectedGraph(65), ContractViolation);
  EXPECT_THROW(UndirectedGraph(0), ContractViolation);
}

TEST(DominatingSet, RejectsBadEdges) {
  UndirectedGraph g(3);
  EXPECT_THROW(g.add_edge(0, 0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 3), ContractViolation);
}

}  // namespace
}  // namespace ocd::reduction
