#include "ocd/coding/coded_instance.hpp"

#include <gtest/gtest.h>

#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::coding {
namespace {

TEST(CodedFile, PiecesLayout) {
  const CodedFile file{4, 3, 5};
  const TokenSet pieces = file.pieces(12);
  EXPECT_EQ(pieces.to_vector(), (std::vector<TokenId>{4, 5, 6, 7, 8}));
}

TEST(CodedBroadcast, ShapeAndThreshold) {
  Rng rng(1);
  Digraph g = topology::random_overlay(10, rng);
  const CodedInstance coded = coded_broadcast(std::move(g), 8, 1.5, 0);
  EXPECT_EQ(coded.instance().num_tokens(), 12);  // 8 * 1.5
  ASSERT_EQ(coded.files().size(), 1u);
  EXPECT_EQ(coded.files()[0].data, 8);
  EXPECT_EQ(coded.files()[0].coded, 12);

  // Source is satisfied; others need any 8 of the 12 pieces.
  EXPECT_TRUE(coded.vertex_satisfied(0, coded.instance().have(0)));
  TokenSet seven(12);
  for (TokenId t = 0; t < 7; ++t) seven.set(t);
  EXPECT_FALSE(coded.vertex_satisfied(1, seven));
  TokenSet eight_scattered(12);
  for (TokenId t : {0, 2, 3, 5, 7, 9, 10, 11}) eight_scattered.set(t);
  EXPECT_TRUE(coded.vertex_satisfied(1, eight_scattered));
}

TEST(CodedBroadcast, RedundancyOneIsPlainBroadcast) {
  Rng rng(2);
  Digraph g = topology::random_overlay(10, rng);
  const CodedInstance coded = coded_broadcast(std::move(g), 6, 1.0, 0);
  EXPECT_EQ(coded.instance().num_tokens(), 6);
  TokenSet five(6);
  for (TokenId t = 0; t < 5; ++t) five.set(t);
  EXPECT_FALSE(coded.vertex_satisfied(1, five));
  EXPECT_TRUE(coded.vertex_satisfied(1, TokenSet::full(6)));
}

TEST(CodedBroadcast, RejectsBadParameters) {
  Rng rng(3);
  Digraph g = topology::random_overlay(6, rng);
  EXPECT_THROW(coded_broadcast(std::move(g), 4, 0.5, 0), ContractViolation);
}

TEST(CodedInstance, ValidatesWantedFileIndices) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 4);
  EXPECT_THROW(CodedInstance(std::move(inst), {CodedFile{0, 2, 4}},
                             {{0}, {3}}),  // file 3 does not exist
               ContractViolation);
}

TEST(CodedRun, CompletesAtThresholdNotFullSet) {
  Rng rng(4);
  Digraph g = topology::random_overlay(15, rng);
  const CodedInstance coded = coded_broadcast(std::move(g), 10, 2.0, 0);

  auto policy = heuristics::make_policy("local");
  sim::SimOptions options;
  options.seed = 5;
  options.completion = coded.completion_predicate();
  const auto result = sim::run(coded.instance(), *policy, options);
  ASSERT_TRUE(result.success);

  // With redundancy 2.0 nobody needs all 20 pieces: useful moves must
  // be well below the n*m flood volume.
  const std::int64_t flood_volume =
      static_cast<std::int64_t>(coded.instance().num_vertices() - 1) *
      coded.instance().num_tokens();
  EXPECT_LT(result.stats.useful_moves, flood_volume);
}

TEST(CodedRun, RedundancyNeverSlowsCompletion) {
  // Same graph, same seed: with spare pieces available any k-subset
  // finishes the download, so steps (and per-vertex completion) are
  // monotone non-increasing in redundancy here.
  Rng rng(6);
  const Digraph base = topology::random_overlay(20, rng);
  std::int64_t prev_steps = -1;
  for (const double redundancy : {1.0, 1.5, 2.0}) {
    Digraph g = base;
    const CodedInstance coded = coded_broadcast(std::move(g), 12, redundancy, 0);
    auto policy = heuristics::make_policy("local");
    sim::SimOptions options;
    options.seed = 9;
    options.completion = coded.completion_predicate();
    const auto result = sim::run(coded.instance(), *policy, options);
    ASSERT_TRUE(result.success) << "redundancy " << redundancy;
    if (prev_steps >= 0) {
      EXPECT_LE(result.steps, prev_steps) << "redundancy " << redundancy;
    }
    prev_steps = result.steps;
  }
}

TEST(CodedRun, CompletionStepsHonorPredicate) {
  Digraph g(2);
  g.add_arc(0, 1, 2);
  const CodedInstance coded = coded_broadcast(std::move(g), 4, 1.5, 0);
  // 6 coded pieces over a capacity-2 arc; threshold 4 -> 2 steps,
  // whereas the raw want set (6 pieces) would need 3.
  auto policy = heuristics::make_policy("round-robin");
  sim::SimOptions options;
  options.completion = coded.completion_predicate();
  const auto result = sim::run(coded.instance(), *policy, options);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 2);
  EXPECT_EQ(result.stats.completion_step[1], 2);
}

}  // namespace
}  // namespace ocd::coding
