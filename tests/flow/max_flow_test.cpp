// The s-t max-flow core (ocd/flow/max_flow.hpp) underneath the shard
// partitioner's flow refinement (and, per ROADMAP item 2, future
// time-expanded flow planners).  Pinned here: exact values on known
// networks, min-cut duality on both canonical cuts, Dinic == scaling
// on every network, and a differential fuzz of both against a naive
// BFS augmenting-path (Edmonds-Karp) reference at small sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ocd/flow/max_flow.hpp"
#include "ocd/util/error.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::flow {
namespace {

using Flow = MaxFlow::Flow;

// Naive Edmonds-Karp over an adjacency matrix of residual capacities:
// the slowest, most obviously correct formulation — the differential
// anchor for both production algorithms.
class NaiveFlow {
 public:
  explicit NaiveFlow(std::int32_t n)
      : n_(n), cap_(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                    0) {}

  void add_edge(std::int32_t from, std::int32_t to, Flow capacity,
                Flow reverse_capacity = 0) {
    at(from, to) += capacity;
    at(to, from) += reverse_capacity;
  }

  Flow run(std::int32_t s, std::int32_t t) {
    Flow total = 0;
    std::vector<std::int32_t> parent(static_cast<std::size_t>(n_));
    while (true) {
      std::fill(parent.begin(), parent.end(), -1);
      parent[static_cast<std::size_t>(s)] = s;
      std::vector<std::int32_t> queue{s};
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const std::int32_t v = queue[head];
        for (std::int32_t w = 0; w < n_; ++w) {
          if (at(v, w) > 0 && parent[static_cast<std::size_t>(w)] < 0) {
            parent[static_cast<std::size_t>(w)] = v;
            queue.push_back(w);
          }
        }
      }
      if (parent[static_cast<std::size_t>(t)] < 0) return total;
      Flow bottleneck = MaxFlow::kInfinity;
      for (std::int32_t v = t; v != s;
           v = parent[static_cast<std::size_t>(v)])
        bottleneck = std::min(bottleneck,
                              at(parent[static_cast<std::size_t>(v)], v));
      for (std::int32_t v = t; v != s;
           v = parent[static_cast<std::size_t>(v)]) {
        at(parent[static_cast<std::size_t>(v)], v) -= bottleneck;
        at(v, parent[static_cast<std::size_t>(v)]) += bottleneck;
      }
      total += bottleneck;
    }
  }

 private:
  Flow& at(std::int32_t i, std::int32_t j) {
    return cap_[static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(j)];
  }

  std::int32_t n_;
  std::vector<Flow> cap_;
};

TEST(MaxFlow, SingleEdge) {
  MaxFlow mf;
  mf.reset(2);
  const std::int32_t e = mf.add_edge(0, 1, 7);
  EXPECT_EQ(mf.run(0, 1), 7);
  EXPECT_EQ(mf.flow(e), 7);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow mf;
  mf.reset(4);
  mf.add_edge(0, 1, 5);
  mf.add_edge(2, 3, 5);
  EXPECT_EQ(mf.run(0, 3), 0);
  EXPECT_TRUE(mf.in_source_side(0));
  EXPECT_TRUE(mf.in_source_side(1));
  EXPECT_FALSE(mf.in_source_side(2));
  EXPECT_FALSE(mf.in_source_side(3));
}

// The CLRS Figure 26.6 network: max flow 23.
TEST(MaxFlow, ClrsNetwork) {
  MaxFlow mf;
  mf.reset(6);
  mf.add_edge(0, 1, 16);
  mf.add_edge(0, 2, 13);
  mf.add_edge(1, 3, 12);
  mf.add_edge(2, 1, 4);
  mf.add_edge(2, 4, 14);
  mf.add_edge(3, 2, 9);
  mf.add_edge(3, 5, 20);
  mf.add_edge(4, 3, 7);
  mf.add_edge(4, 5, 4);
  EXPECT_EQ(mf.run(0, 5), 23);
}

TEST(MaxFlow, SerialBottleneck) {
  MaxFlow mf;
  mf.reset(4);
  mf.add_edge(0, 1, 100);
  mf.add_edge(1, 2, 3);
  mf.add_edge(2, 3, 100);
  EXPECT_EQ(mf.run(0, 3), 3);
  // Source-reachable cut separates exactly at the bottleneck.
  EXPECT_TRUE(mf.in_source_side(0));
  EXPECT_TRUE(mf.in_source_side(1));
  EXPECT_FALSE(mf.in_source_side(2));
  EXPECT_FALSE(mf.in_source_side(3));
}

TEST(MaxFlow, UndirectedEdgesCarryFlowEitherWay) {
  MaxFlow mf;
  mf.reset(3);
  mf.add_edge(1, 0, 2, 2);  // undirected, added "backwards"
  mf.add_edge(1, 2, 2, 2);
  EXPECT_EQ(mf.run(0, 2), 2);
  EXPECT_EQ(mf.flow(0), -2);  // negative: pushed against edge 0's arrow
  EXPECT_EQ(mf.flow(1), 2);
}

TEST(MaxFlow, SecondRunContinuesAndReloadRestarts) {
  MaxFlow mf;
  mf.reset(2);
  mf.add_edge(0, 1, 9);
  EXPECT_EQ(mf.run(0, 1), 9);
  EXPECT_EQ(mf.run(0, 1), 0);  // residual network is already maxed
  mf.reload();
  EXPECT_EQ(mf.run(0, 1), 9);
}

TEST(MaxFlow, ResetReusesTheSolverAcrossShapes) {
  MaxFlow mf;
  mf.reset(6);
  mf.add_edge(0, 5, 4);
  EXPECT_EQ(mf.run(0, 5), 4);
  mf.reset(3);
  EXPECT_EQ(mf.num_vertices(), 3);
  EXPECT_EQ(mf.num_edges(), 0);
  mf.add_edge(0, 1, 1);
  mf.add_edge(1, 2, 1);
  EXPECT_EQ(mf.run(0, 2), 1);
}

TEST(MaxFlow, ScalingMatchesDinicOnLargeCapacities) {
  // The classic scaling showcase: two fat paths bridged by a unit edge
  // that plain augmenting paths are tempted to cross back and forth.
  MaxFlow mf;
  mf.reset(4);
  mf.add_edge(0, 1, 1'000'000'000);
  mf.add_edge(0, 2, 1'000'000'000);
  mf.add_edge(1, 2, 1);
  mf.add_edge(1, 3, 1'000'000'000);
  mf.add_edge(2, 3, 1'000'000'000);
  EXPECT_EQ(mf.run(0, 3), 2'000'000'000);
  mf.reload();
  EXPECT_EQ(mf.run_scaling(0, 3), 2'000'000'000);
}

TEST(MaxFlow, RejectsInvalidArguments) {
  MaxFlow mf;
  mf.reset(2);
  mf.add_edge(0, 1, 1);
  EXPECT_THROW(mf.run(0, 0), ContractViolation);
  EXPECT_THROW(mf.run(0, 2), ContractViolation);
  EXPECT_THROW(mf.add_edge(0, 2, 1), ContractViolation);
  EXPECT_THROW(mf.add_edge(0, 1, -1), ContractViolation);
}

// Build the same random network in all three solvers.  Mixes plain
// directed, undirected, and parallel edges, with both tiny and large
// capacities so the scaling rounds actually engage.
void build_random(Rng& rng, std::int32_t n, std::int32_t m, MaxFlow& mf,
                  NaiveFlow& naive) {
  mf.reset(n);
  for (std::int32_t e = 0; e < m; ++e) {
    const auto from = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(n)));
    auto to = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(n)));
    if (to == from) to = (to + 1) % n;
    const Flow cap = rng.chance(0.3)
                         ? rng.uniform_int(1, 1'000'000)
                         : rng.uniform_int(0, 4);
    const Flow rev = rng.chance(0.5) ? 0 : rng.uniform_int(0, 4);
    mf.add_edge(from, to, cap, rev);
    naive.add_edge(from, to, cap, rev);
  }
}

TEST(MaxFlow, DifferentialFuzzAgainstNaiveReference) {
  Rng rng(0xf10f10);
  for (std::int32_t round = 0; round < 200; ++round) {
    const auto n = static_cast<std::int32_t>(2 + rng.below(9));
    const auto m = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(3 * n)));
    MaxFlow mf;
    NaiveFlow naive(n);
    build_random(rng, n, m, mf, naive);
    const std::int32_t s = 0;
    const auto t = static_cast<std::int32_t>(1 + rng.below(
        static_cast<std::uint64_t>(n - 1)));
    const Flow expected = naive.run(s, t);
    ASSERT_EQ(mf.run(s, t), expected) << "round " << round;
    mf.reload();
    ASSERT_EQ(mf.run_scaling(s, t), expected) << "round " << round;
  }
}

// Max-flow min-cut duality, checked structurally on random networks:
// both canonical cuts must (a) separate s from t, and (b) have crossing
// capacity exactly equal to the flow value.
TEST(MaxFlow, MinCutSidesAreDualToTheFlowValue) {
  Rng rng(0xc07c07);
  for (std::int32_t round = 0; round < 100; ++round) {
    const auto n = static_cast<std::int32_t>(3 + rng.below(8));
    const auto m = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(4 * n)));
    std::vector<std::int32_t> from(static_cast<std::size_t>(m));
    std::vector<std::int32_t> to(static_cast<std::size_t>(m));
    std::vector<Flow> cap(static_cast<std::size_t>(m));
    std::vector<Flow> rev(static_cast<std::size_t>(m));
    MaxFlow mf;
    mf.reset(n);
    for (std::int32_t e = 0; e < m; ++e) {
      const auto i = static_cast<std::size_t>(e);
      from[i] = static_cast<std::int32_t>(rng.below(
          static_cast<std::uint64_t>(n)));
      to[i] = static_cast<std::int32_t>(rng.below(
          static_cast<std::uint64_t>(n)));
      if (to[i] == from[i]) to[i] = (to[i] + 1) % n;
      cap[i] = rng.uniform_int(0, 9);
      rev[i] = rng.chance(0.5) ? 0 : rng.uniform_int(0, 9);
      mf.add_edge(from[i], to[i], cap[i], rev[i]);
    }
    const std::int32_t s = 0;
    const std::int32_t t = n - 1;
    const Flow value = mf.run(s, t);
    mf.compute_sink_side();
    ASSERT_TRUE(mf.in_source_side(s));
    ASSERT_FALSE(mf.in_source_side(t));
    ASSERT_FALSE(mf.in_sink_side(s));
    ASSERT_TRUE(mf.in_sink_side(t));
    Flow source_cut = 0;
    Flow sink_cut = 0;
    for (std::int32_t e = 0; e < m; ++e) {
      const auto i = static_cast<std::size_t>(e);
      // An edge contributes its forward capacity when it crosses the
      // cut forward, its reverse capacity when it crosses backward.
      if (mf.in_source_side(from[i]) && !mf.in_source_side(to[i]))
        source_cut += cap[i];
      if (mf.in_source_side(to[i]) && !mf.in_source_side(from[i]))
        source_cut += rev[i];
      if (!mf.in_sink_side(from[i]) && mf.in_sink_side(to[i]))
        sink_cut += cap[i];
      if (!mf.in_sink_side(to[i]) && mf.in_sink_side(from[i]))
        sink_cut += rev[i];
    }
    ASSERT_EQ(source_cut, value) << "round " << round;
    ASSERT_EQ(sink_cut, value) << "round " << round;
  }
}

// Flow conservation at every interior vertex, and capacity obedience on
// every edge — the per-edge flow() accessor must describe a valid flow.
TEST(MaxFlow, PerEdgeFlowsFormAValidFlow) {
  Rng rng(0xbeef);
  for (std::int32_t round = 0; round < 100; ++round) {
    const auto n = static_cast<std::int32_t>(3 + rng.below(8));
    const auto m = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(4 * n)));
    MaxFlow mf;
    std::vector<std::int32_t> from(static_cast<std::size_t>(m));
    std::vector<std::int32_t> to(static_cast<std::size_t>(m));
    std::vector<Flow> cap(static_cast<std::size_t>(m));
    std::vector<Flow> rev(static_cast<std::size_t>(m));
    mf.reset(n);
    for (std::int32_t e = 0; e < m; ++e) {
      const auto i = static_cast<std::size_t>(e);
      from[i] = static_cast<std::int32_t>(rng.below(
          static_cast<std::uint64_t>(n)));
      to[i] = static_cast<std::int32_t>(rng.below(
          static_cast<std::uint64_t>(n)));
      if (to[i] == from[i]) to[i] = (to[i] + 1) % n;
      cap[i] = rng.uniform_int(0, 9);
      rev[i] = rng.uniform_int(0, 9);
      mf.add_edge(from[i], to[i], cap[i], rev[i]);
    }
    const std::int32_t s = 0;
    const std::int32_t t = n - 1;
    const Flow value = mf.run(s, t);
    std::vector<Flow> net(static_cast<std::size_t>(n), 0);
    for (std::int32_t e = 0; e < m; ++e) {
      const auto i = static_cast<std::size_t>(e);
      const Flow f = mf.flow(e);
      ASSERT_LE(f, cap[i]);
      ASSERT_GE(f, -rev[i]);  // negative flow rides the reverse capacity
      net[static_cast<std::size_t>(from[i])] -= f;
      net[static_cast<std::size_t>(to[i])] += f;
    }
    ASSERT_EQ(net[static_cast<std::size_t>(s)], -value);
    ASSERT_EQ(net[static_cast<std::size_t>(t)], value);
    for (std::int32_t v = 1; v < n - 1; ++v)
      ASSERT_EQ(net[static_cast<std::size_t>(v)], 0) << "vertex " << v;
  }
}

}  // namespace
}  // namespace ocd::flow
