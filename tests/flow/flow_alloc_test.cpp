// The MaxFlow steady-state allocation contract (ocd/flow/max_flow.hpp):
// once a solver instance has solved a network of some size, rebuilding
// and re-solving networks of at most that size must not touch the heap.
// The shard partitioner's flow refinement loops a single solver over
// every block pair, so a per-pair allocation would turn the refinement
// stage into an allocator benchmark.
//
// Compiled into ocd_alloc_tests: this binary replaces global operator
// new with a counting wrapper (see sim/alloc_count_test.cpp, which owns
// the replacement), which must not perturb the main suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>

#include "ocd/flow/max_flow.hpp"
#include "ocd/util/rng.hpp"

// Defined in sim/alloc_count_test.cpp, same binary.
namespace ocd::testing_alloc {
std::uint64_t allocation_count();
}  // namespace ocd::testing_alloc

namespace ocd::flow {
namespace {

// Deterministic layered network: `width` parallel paths source -> layer
// -> ... -> sink with rung edges between layers, mixed capacities.
void build_layered(MaxFlow& mf, std::int32_t layers, std::int32_t width,
                   Rng& rng) {
  const std::int32_t n = 2 + layers * width;
  mf.reset(n);
  const auto vertex = [&](std::int32_t layer, std::int32_t lane) {
    return 2 + layer * width + lane;
  };
  for (std::int32_t lane = 0; lane < width; ++lane) {
    mf.add_edge(0, vertex(0, lane), rng.uniform_int(1, 50));
    mf.add_edge(vertex(layers - 1, lane), 1, rng.uniform_int(1, 50));
  }
  for (std::int32_t layer = 0; layer + 1 < layers; ++layer)
    for (std::int32_t lane = 0; lane < width; ++lane) {
      mf.add_edge(vertex(layer, lane), vertex(layer + 1, lane),
                  rng.uniform_int(1, 50));
      mf.add_edge(vertex(layer, lane),
                  vertex(layer + 1, (lane + 1) % width),
                  rng.uniform_int(0, 5), rng.uniform_int(0, 5));
    }
}

TEST(FlowAllocCount, WarmSolverRebuildsAndSolvesAllocationFree) {
  MaxFlow mf;
  Rng rng(0x51ee7);

  // Warm run at the maximum shape this test will ever use: sizes every
  // scratch buffer (arc arrays, CSR, levels, queue, path, sink marks).
  build_layered(mf, 6, 8, rng);
  (void)mf.run(0, 1);
  mf.compute_sink_side();

  const std::uint64_t before = ocd::testing_alloc::allocation_count();
  for (std::int32_t round = 0; round < 20; ++round) {
    // Same-or-smaller networks of varying shape, both algorithms, plus
    // the min-cut queries the partitioner issues per pair.
    build_layered(mf, 3 + round % 4, 4 + round % 5, rng);
    const MaxFlow::Flow dinic = mf.run(0, 1);
    mf.compute_sink_side();
    mf.reload();
    ASSERT_EQ(mf.run_scaling(0, 1), dinic);
    for (std::int32_t v = 0; v < mf.num_vertices(); ++v) {
      (void)mf.in_source_side(v);
      (void)mf.in_sink_side(v);
    }
  }
  const std::uint64_t after = ocd::testing_alloc::allocation_count();
  EXPECT_EQ(after, before)
      << (after - before) << " allocations across 20 warm solves";
}

}  // namespace
}  // namespace ocd::flow
