#include "ocd/sim/stats.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::sim {
namespace {

TEST(Stats, MeanCompletionIgnoresNeverFinished) {
  RunStats stats;
  stats.completion_step = {0, 4, -1, 8};
  EXPECT_DOUBLE_EQ(stats.mean_completion(), 4.0);
}

TEST(Stats, MeanCompletionEmpty) {
  RunStats stats;
  EXPECT_DOUBLE_EQ(stats.mean_completion(), 0.0);
  stats.completion_step = {-1, -1};
  EXPECT_DOUBLE_EQ(stats.mean_completion(), 0.0);
}

TEST(Stats, JainIndexExtremes) {
  RunStats stats;
  stats.sent_by_vertex = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(stats.upload_fairness(), 1.0);
  stats.sent_by_vertex = {20, 0, 0, 0};
  EXPECT_DOUBLE_EQ(stats.upload_fairness(), 0.25);  // 1/n
  stats.sent_by_vertex = {0, 0};
  EXPECT_DOUBLE_EQ(stats.upload_fairness(), 0.0);
  stats.sent_by_vertex.clear();
  EXPECT_DOUBLE_EQ(stats.upload_fairness(), 0.0);
}

TEST(Stats, SummaryMentionsKeyNumbers) {
  RunStats stats;
  stats.moves_per_step = {3, 2};
  stats.useful_moves = 4;
  stats.redundant_moves = 1;
  stats.completion_step = {2};
  const std::string s = stats.summary();
  EXPECT_NE(s.find("steps=2"), std::string::npos);
  EXPECT_NE(s.find("bandwidth=5"), std::string::npos);
}

TEST(Stats, UploadAccountingMatchesBandwidth) {
  Rng rng(3);
  Digraph g = topology::random_overlay(18, rng);
  const core::Instance inst =
      core::single_source_all_receivers(std::move(g), 10, 0);
  auto policy = heuristics::make_policy("local");
  const auto result = run(inst, *policy);
  ASSERT_TRUE(result.success);
  std::int64_t total = 0;
  for (std::int64_t sent : result.stats.sent_by_vertex) total += sent;
  EXPECT_EQ(total, result.bandwidth);
  EXPECT_GT(result.stats.sent_by_vertex[0], 0);  // the source uploads
  EXPECT_GT(result.stats.upload_fairness(), 0.0);
  EXPECT_LE(result.stats.upload_fairness(), 1.0);
}

TEST(Stats, PeerSharingIsFairerThanClientServer) {
  // A star forces the hub to upload everything; a well-connected mesh
  // spreads contribution.  Jain's index should reflect it.
  Digraph star(6);
  for (VertexId v = 1; v < 6; ++v) {
    star.add_arc(0, v, 4);
    star.add_arc(v, 0, 4);
  }
  const core::Instance star_inst =
      core::single_source_all_receivers(std::move(star), 8, 0);
  auto star_policy = heuristics::make_policy("local");
  const auto star_run = run(star_inst, *star_policy);
  ASSERT_TRUE(star_run.success);

  Rng rng(4);
  topology::RandomGraphOptions options;
  options.edge_probability = 0.9;
  Digraph mesh = topology::random_overlay(6, options, rng);
  const core::Instance mesh_inst =
      core::single_source_all_receivers(std::move(mesh), 8, 0);
  auto mesh_policy = heuristics::make_policy("local");
  const auto mesh_run = run(mesh_inst, *mesh_policy);
  ASSERT_TRUE(mesh_run.success);

  EXPECT_GT(mesh_run.stats.upload_fairness(),
            star_run.stats.upload_fairness());
}

TEST(Simulator, StaleAggregatesStillComplete) {
  Rng rng(5);
  Digraph g = topology::random_overlay(20, rng);
  const core::Instance inst =
      core::single_source_all_receivers(std::move(g), 12, 0);
  auto policy = heuristics::make_policy("local");
  SimOptions options;
  options.seed = 2;
  options.staleness = 3;
  options.stale_aggregates = true;
  const auto result = run(inst, *policy, options);
  EXPECT_TRUE(result.success);
}

}  // namespace
}  // namespace ocd::sim
