#include "ocd/sim/overhead.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::sim {
namespace {

core::Instance sample_instance() {
  Digraph g(4);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 0, 2);
  g.add_arc(1, 2, 2);
  g.add_arc(2, 3, 2);
  core::Instance inst(std::move(g), 8);
  inst.add_have(0, 0);
  inst.add_want(3, 0);
  return inst;
}

TEST(Overhead, LocalOnlyIsFree) {
  const auto inst = sample_instance();
  EXPECT_EQ(knowledge_bits_per_step(inst, KnowledgeClass::kLocalOnly), 0);
}

TEST(Overhead, PeerMapsCountPerArc) {
  const auto inst = sample_instance();
  // 4 arcs x 8 tokens.
  EXPECT_EQ(knowledge_bits_per_step(inst, KnowledgeClass::kLocalPeers),
            4 * 8);
}

TEST(Overhead, AggregateAddsBroadcastCounters) {
  const auto inst = sample_instance();
  // counter_bits = bit_width(5) = 3; 4 vertices x 2 x 8 x 3 = 192.
  EXPECT_EQ(knowledge_bits_per_step(inst, KnowledgeClass::kLocalAggregate),
            4 * 8 + 4 * (2 * 8 * 3));
}

TEST(Overhead, GlobalIsFullMatrixPerVertex) {
  const auto inst = sample_instance();
  EXPECT_EQ(knowledge_bits_per_step(inst, KnowledgeClass::kGlobal),
            4 * (4 * 8));
}

TEST(Overhead, StrictlyOrderedByClass) {
  Rng rng(1);
  Digraph g = topology::random_overlay(30, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 40, 0);
  const auto local = knowledge_bits_per_step(inst, KnowledgeClass::kLocalOnly);
  const auto peers = knowledge_bits_per_step(inst, KnowledgeClass::kLocalPeers);
  const auto agg =
      knowledge_bits_per_step(inst, KnowledgeClass::kLocalAggregate);
  const auto global = knowledge_bits_per_step(inst, KnowledgeClass::kGlobal);
  EXPECT_LT(local, peers);
  EXPECT_LT(peers, agg);
  EXPECT_LT(agg, global);
}

TEST(Overhead, TotalScalesWithSteps) {
  const auto inst = sample_instance();
  const auto per_step =
      knowledge_bits_per_step(inst, KnowledgeClass::kLocalPeers);
  EXPECT_EQ(knowledge_bits_total(inst, KnowledgeClass::kLocalPeers, 7),
            7 * per_step);
  EXPECT_EQ(knowledge_bits_total(inst, KnowledgeClass::kLocalPeers, 0), 0);
  EXPECT_THROW(knowledge_bits_total(inst, KnowledgeClass::kLocalPeers, -1),
               ContractViolation);
}

TEST(Overhead, EveryPolicyClassHasAPrice) {
  const auto inst = sample_instance();
  for (const auto& name : heuristics::all_policy_names()) {
    const auto policy = heuristics::make_policy(name);
    const auto bits =
        knowledge_bits_per_step(inst, policy->knowledge_class());
    if (name == "round-robin") {
      EXPECT_EQ(bits, 0) << name;
    } else {
      EXPECT_GT(bits, 0) << name;
    }
  }
}

}  // namespace
}  // namespace ocd::sim
