#include "ocd/sim/scripted.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::sim {
namespace {

core::Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  return inst;
}

TEST(Scripted, ReplaysExactSolverSchedule) {
  const core::Instance inst = line_instance();
  const auto exact = exact::focd_min_makespan(inst, 5);
  ASSERT_TRUE(exact.has_value());
  ScriptedPolicy policy(exact->schedule);
  const auto result = run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps, exact->makespan);
  EXPECT_EQ(result.bandwidth, exact->schedule.bandwidth());
}

TEST(Scripted, ExhaustedScriptIdlesWithoutStallError) {
  // Script satisfies nothing; the run should terminate at max_steps as
  // idle (not throw, not report a stall at step 0 ... it does report
  // failure, which is correct).
  const core::Instance inst = line_instance();
  ScriptedPolicy policy{core::Schedule{}};
  SimOptions options;
  options.max_steps = 5;
  const auto result = run(inst, policy, options);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.steps, 5);  // idled through the budget
}

TEST(Scripted, PartialScriptLeavesWantsOutstanding) {
  const core::Instance inst = line_instance();
  core::Schedule half;
  core::Timestep step;
  step.add(0, 0, 1);
  half.append(std::move(step));
  ScriptedPolicy policy(std::move(half));
  SimOptions options;
  options.max_steps = 4;
  const auto result = run(inst, policy, options);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.bandwidth, 1);
}

TEST(TwoPhase, CompletesWithinPlanPlusDelay) {
  Rng rng(5);
  Digraph g = topology::random_overlay(20, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 8, 0);
  const auto diam = diameter(inst.graph());

  TwoPhasePolicy policy("global");
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(policy.delay(), diam);
  EXPECT_EQ(result.steps, policy.delay() + policy.planned_length());
  // First `delay` steps move nothing.
  for (std::int32_t i = 0; i < policy.delay(); ++i)
    EXPECT_EQ(result.stats.moves_per_step[static_cast<std::size_t>(i)], 0);
}

TEST(TwoPhase, ExplicitDelayHonored) {
  const core::Instance inst = line_instance();
  TwoPhasePolicy policy("global", /*delay=*/3);
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(policy.delay(), 3);
  EXPECT_EQ(result.steps, 3 + policy.planned_length());
}

TEST(TwoPhase, ZeroDelayEqualsInnerPolicy) {
  Rng rng(6);
  Digraph g = topology::random_overlay(15, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 6, 0);

  TwoPhasePolicy two_phase("local", /*delay=*/0);
  SimOptions options;
  options.seed = 3;
  const auto a = run(inst, two_phase, options);

  auto inner = heuristics::make_policy("local");
  const auto b = run(inst, *inner, options);

  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.bandwidth, b.bandwidth);
}

TEST(TwoPhase, AdditiveDiameterBoundAgainstOptimum) {
  // §4.2: optimal + diameter is always achievable.  With the exact
  // schedule as the inner plan this is exact; with global-greedy as
  // planner we still verify steps <= planner_length + diameter.
  Rng rng(7);
  const auto inst = core::random_small_instance(5, 2, 0.5, rng);
  const auto exact = exact::focd_min_makespan(inst, 10);
  ASSERT_TRUE(exact.has_value());
  const auto diam = diameter(inst.graph());

  ScriptedPolicy oracle(exact->schedule);
  TwoPhasePolicy two_phase("global");
  const auto oracle_run = run(inst, oracle);
  const auto two_run = run(inst, two_phase);
  ASSERT_TRUE(oracle_run.success);
  ASSERT_TRUE(two_run.success);
  EXPECT_EQ(oracle_run.steps, exact->makespan);
  EXPECT_EQ(two_run.steps, two_phase.delay() + two_phase.planned_length());
  EXPECT_LE(two_run.steps,
            two_phase.planned_length() + static_cast<std::int64_t>(diam));
}

}  // namespace
}  // namespace ocd::sim
