#include "ocd/sim/gossip.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::sim {
namespace {

/// Bidirectional path 0 - 1 - 2 - 3.
core::Instance path4_instance() {
  Digraph g(4);
  for (VertexId v = 0; v < 3; ++v) {
    g.add_arc(v, v + 1, 2);
    g.add_arc(v + 1, v, 2);
  }
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(3, 0);
  return inst;
}

std::vector<TokenSet> initial_possession(const core::Instance& inst) {
  std::vector<TokenSet> p;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) p.push_back(inst.have(v));
  return p;
}

TEST(GossipState, KnowledgeTravelsOneHopPerStep) {
  const auto inst = path4_instance();
  GossipState gossip(inst);
  const auto possession = initial_possession(inst);

  gossip.advance(possession, 0);
  // After one round: vertex 1 knows vertex 0's state; vertex 3 doesn't.
  EXPECT_EQ(gossip.belief(1, 0).tokens.count(), 2u);
  EXPECT_EQ(gossip.belief(3, 0).observed_step, -1);
  EXPECT_EQ(gossip.age(3, 0, 0), GossipState::kUnknownAge);

  gossip.advance(possession, 1);
  gossip.advance(possession, 2);
  // After three rounds the far endpoint knows the source's state.
  EXPECT_EQ(gossip.belief(3, 0).tokens.count(), 2u);
}

TEST(GossipState, AgeBoundedByDistanceAfterWarmup) {
  Rng rng(3);
  Digraph g = topology::random_overlay(15, rng);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  const auto dist = all_pairs_distances(inst.graph());
  GossipState gossip(inst);
  const auto possession = initial_possession(inst);

  const std::int64_t warmup = 20;
  for (std::int64_t step = 0; step <= warmup; ++step)
    gossip.advance(possession, step);

  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    for (VertexId w = 0; w < inst.num_vertices(); ++w) {
      // Undirected gossip distance <= directed hop distance.
      const auto bound = dist[static_cast<std::size_t>(w)]
                             [static_cast<std::size_t>(v)];
      if (bound == kUnreachable) continue;
      EXPECT_LE(gossip.age(v, w, warmup), bound) << v << " about " << w;
    }
  }
}

TEST(GossipState, BeliefsAreUnderApproximations) {
  // As possession grows, beliefs must always be subsets of the truth.
  const auto inst = path4_instance();
  GossipState gossip(inst);
  auto possession = initial_possession(inst);
  for (std::int64_t step = 0; step < 5; ++step) {
    gossip.advance(possession, step);
    for (VertexId v = 0; v < 4; ++v) {
      for (VertexId w = 0; w < 4; ++w) {
        EXPECT_TRUE(gossip.belief(v, w).tokens.is_subset_of(
            possession[static_cast<std::size_t>(w)]));
      }
    }
    // Simulate the token spreading one hop per step.
    if (step < 3)
      possession[static_cast<std::size_t>(step + 1)] = possession[0];
  }
}

TEST(GossipRarest, CompletesRelayChain) {
  const auto inst = path4_instance();
  GossipRarestPolicy policy;
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(core::is_successful(inst, result.schedule));
  // Knowledge must first reach vertex 1 (1 step of gossip happens
  // within the first planning round), then the token relays; the total
  // stays within optimal (3) + diameter (3).
  EXPECT_LE(result.steps, 6);
}

TEST(GossipRarest, CompletesBroadcastWithinDiameterSlack) {
  Rng rng(9);
  Digraph g = topology::random_overlay(25, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 12, 0);
  const auto diam = diameter(inst.graph());

  GossipRarestPolicy gossip_policy;
  const auto gossip_run = run(inst, gossip_policy);
  ASSERT_TRUE(gossip_run.success);

  auto oracle = heuristics::make_policy("local");
  const auto oracle_run = run(inst, *oracle);
  ASSERT_TRUE(oracle_run.success);

  // Gossip pays at most ~a diameter of extra steps over the oracle
  // version of the same heuristic (beliefs lag by at most diameter).
  EXPECT_LE(gossip_run.steps, oracle_run.steps + 2 * diam + 2);
}

TEST(GossipRarest, RequestsAreAlwaysSatisfiable) {
  // Beliefs under-approximate possession, so the simulator must never
  // reject a gossip-driven send.  Run several seeds; any possession
  // violation would throw.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    Digraph g = topology::random_overlay(15, rng);
    const auto inst = core::single_source_all_receivers(std::move(g), 8, 0);
    GossipRarestPolicy policy;
    SimOptions options;
    options.seed = seed;
    EXPECT_NO_THROW({
      const auto result = run(inst, policy, options);
      EXPECT_TRUE(result.success) << "seed " << seed;
    });
  }
}

TEST(GossipRarest, StaysWithinLocalKnowledgeClass) {
  // Declared kLocalOnly: the runtime enforcement would throw if the
  // policy touched peer/aggregate/global accessors.  A successful run
  // certifies locality.
  const auto inst = path4_instance();
  GossipRarestPolicy policy;
  EXPECT_EQ(policy.knowledge_class(), KnowledgeClass::kLocalOnly);
  EXPECT_NO_THROW(run(inst, policy));
}

}  // namespace
}  // namespace ocd::sim
