// Differential test: the optimized hot loop in sim::run against a
// verbatim port of the pre-optimization ("seed") simulator.  The
// optimized loop — validate-then-apply in-place delivery, incremental
// satisfaction and aggregates, snapshot aliasing — must produce a
// bit-identical RunResult on every policy/instance/option combination:
// same success flag, steps, bandwidth, useful/redundant split,
// per-step moves, per-vertex completion steps and upload counts, and
// the same recorded schedule.
#include <gtest/gtest.h>

#include <sstream>

#include "ocd/core/scenario.hpp"
#include "ocd/dynamics/model.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/scripted.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::sim {
namespace {

bool ref_vertex_satisfied(const core::Instance& inst,
                          const SimOptions& options, VertexId v,
                          const TokenSet& possession) {
  if (options.completion) return options.completion(v, possession);
  return inst.want(v).is_subset_of(possession);
}

bool ref_all_satisfied(const core::Instance& inst, const SimOptions& options,
                       const std::vector<TokenSet>& possession) {
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (!ref_vertex_satisfied(inst, options, v,
                              possession[static_cast<std::size_t>(v)]))
      return false;
  }
  return true;
}

/// The seed implementation, kept verbatim (modulo the StepView pointer
/// signature): full-state recomputation and deep copies every step.
RunResult reference_run(const core::Instance& inst, Policy& policy,
                        const SimOptions& options) {
  inst.validate();
  RunResult result;
  const auto n = static_cast<std::size_t>(inst.num_vertices());

  std::vector<TokenSet> possession(n);
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession[static_cast<std::size_t>(v)] = inst.have(v);

  result.stats.sent_by_vertex.assign(n, 0);
  result.stats.completion_step.assign(n, -1);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (ref_vertex_satisfied(inst, options, v,
                             possession[static_cast<std::size_t>(v)]))
      result.stats.completion_step[static_cast<std::size_t>(v)] = 0;
  }

  const bool needs_distances =
      options.precompute_distances ||
      policy.knowledge_class() == KnowledgeClass::kGlobal;
  std::vector<std::vector<std::int32_t>> distances;
  if (needs_distances) distances = all_pairs_distances(inst.graph());

  // The view layer consumes TokenMatrix rows; the reference mirrors its
  // per-vertex sets into one with a full deep copy every step (the seed
  // simulator's copying behavior, expressed against the new API).
  util::TokenMatrix matrix;
  matrix.reset(n, static_cast<std::size_t>(inst.num_tokens()));
  const auto mirror = [&] {
    for (VertexId v = 0; v < inst.num_vertices(); ++v)
      matrix.assign_row(static_cast<std::size_t>(v),
                        possession[static_cast<std::size_t>(v)]);
  };

  policy.reset(inst, options.seed);
  if (options.dynamics != nullptr) options.dynamics->reset(inst, options.seed);
  SnapshotBuffer snapshots(options.staleness);

  const auto num_arcs = static_cast<std::size_t>(inst.graph().num_arcs());
  std::vector<std::int32_t> static_capacity(num_arcs);
  for (ArcId a = 0; a < inst.graph().num_arcs(); ++a)
    static_capacity[static_cast<std::size_t>(a)] = inst.graph().arc(a).capacity;
  std::vector<std::int32_t> effective_capacity = static_capacity;

  std::int64_t step = 0;
  while (step < options.max_steps) {
    if (ref_all_satisfied(inst, options, possession)) break;

    mirror();
    if (options.dynamics != nullptr) {
      effective_capacity = static_capacity;
      options.dynamics->observe(step, inst, matrix);
      options.dynamics->apply(step, inst.graph(), effective_capacity);
    }

    snapshots.push(matrix);
    const Aggregates aggregates = compute_aggregates(
        inst, options.stale_aggregates ? snapshots.stale_view() : matrix);
    const StepView view(inst, matrix, snapshots.stale_view(), &aggregates,
                        needs_distances ? &distances : nullptr,
                        policy.knowledge_class(), step, effective_capacity);
    StepPlan plan(inst.graph(), effective_capacity);
    policy.plan_step(view, plan);
    const bool intentional_idle = plan.idle_marked();
    core::Timestep timestep = plan.take();
    timestep.compact();

    if (timestep.empty() && !intentional_idle && options.dynamics == nullptr) {
      result.success = false;
      result.steps = step;
      result.bandwidth = result.stats.total_moves();
      return result;
    }

    std::int64_t step_moves = 0;
    std::vector<TokenSet> next = possession;
    std::vector<TokenSet> granted(
        n, TokenSet(static_cast<std::size_t>(inst.num_tokens())));
    for (const core::ArcSend& send : timestep.sends()) {
      const Arc& arc = inst.graph().arc(send.arc);
      const auto count = static_cast<std::int64_t>(send.tokens.count());
      step_moves += count;
      result.stats.sent_by_vertex[static_cast<std::size_t>(arc.from)] += count;
      const auto to = static_cast<std::size_t>(arc.to);
      TokenSet fresh = send.tokens;
      fresh -= possession[to];
      fresh -= granted[to];
      granted[to] |= fresh;
      result.stats.useful_moves += static_cast<std::int64_t>(fresh.count());
      result.stats.redundant_moves +=
          count - static_cast<std::int64_t>(fresh.count());
      next[to] |= send.tokens;
    }
    possession = std::move(next);
    result.stats.moves_per_step.push_back(step_moves);
    if (options.record_schedule) result.schedule.append(std::move(timestep));

    ++step;
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      auto& completion =
          result.stats.completion_step[static_cast<std::size_t>(v)];
      if (completion < 0 &&
          ref_vertex_satisfied(inst, options, v,
                               possession[static_cast<std::size_t>(v)]))
        completion = step;
    }
  }

  result.success = ref_all_satisfied(inst, options, possession);
  result.steps = step;
  result.bandwidth = result.stats.total_moves();
  return result;
}

void expect_identical(const RunResult& actual, const RunResult& expected,
                      const std::string& label) {
  EXPECT_EQ(actual.success, expected.success) << label;
  EXPECT_EQ(actual.steps, expected.steps) << label;
  EXPECT_EQ(actual.bandwidth, expected.bandwidth) << label;
  EXPECT_EQ(actual.stats.useful_moves, expected.stats.useful_moves) << label;
  EXPECT_EQ(actual.stats.redundant_moves, expected.stats.redundant_moves)
      << label;
  EXPECT_EQ(actual.stats.moves_per_step, expected.stats.moves_per_step)
      << label;
  EXPECT_EQ(actual.stats.completion_step, expected.stats.completion_step)
      << label;
  EXPECT_EQ(actual.stats.sent_by_vertex, expected.stats.sent_by_vertex)
      << label;
  ASSERT_EQ(actual.schedule.length(), expected.schedule.length()) << label;
  for (std::size_t i = 0; i < actual.schedule.steps().size(); ++i) {
    const auto& a = actual.schedule.steps()[i].sends();
    const auto& e = expected.schedule.steps()[i].sends();
    ASSERT_EQ(a.size(), e.size()) << label << " step " << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].arc, e[j].arc) << label << " step " << i;
      EXPECT_EQ(a[j].tokens, e[j].tokens) << label << " step " << i;
    }
  }
}

void compare(const core::Instance& inst, const std::string& policy_name,
             const SimOptions& options, const std::string& label) {
  auto for_new = heuristics::make_policy(policy_name);
  auto for_ref = heuristics::make_policy(policy_name);
  const RunResult actual = run(inst, *for_new, options);
  const RunResult expected = reference_run(inst, *for_ref, options);
  expect_identical(actual, expected, label + "/" + policy_name);
}

std::vector<core::Instance> test_instances() {
  std::vector<core::Instance> out;
  out.push_back(core::figure1_instance());
  out.push_back(core::adversarial_path(5, 4, 2));
  {
    Rng rng(31);
    Digraph g = topology::random_overlay(14, rng);
    out.push_back(core::single_source_all_receivers(std::move(g), 9, 0));
  }
  {
    Rng rng(33);
    Digraph g = topology::random_overlay(18, rng);
    out.push_back(core::subdivided_files_random_senders(std::move(g), 12, 3,
                                                        rng));
  }
  return out;
}

TEST(SimulatorReference, AllPoliciesDefaultOptions) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const std::string& name : heuristics::all_policy_names()) {
      SimOptions options;
      options.seed = 11;
      compare(instances[i], name, options,
              "inst" + std::to_string(i) + "/default");
    }
  }
}

TEST(SimulatorReference, StalePeerKnowledge) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const std::string& name : {std::string("random"),
                                    std::string("local")}) {
      for (std::int32_t staleness : {1, 3}) {
        SimOptions options;
        options.seed = 13;
        options.staleness = staleness;
        compare(instances[i], name, options,
                "inst" + std::to_string(i) + "/stale" +
                    std::to_string(staleness));
      }
    }
  }
}

TEST(SimulatorReference, StaleAggregates) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (std::int32_t staleness : {0, 2}) {
      SimOptions options;
      options.seed = 17;
      options.staleness = staleness;
      options.stale_aggregates = true;
      compare(instances[i], "local", options,
              "inst" + std::to_string(i) + "/staleagg" +
                  std::to_string(staleness));
    }
  }
}

TEST(SimulatorReference, MaxStepsExhaustion) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    SimOptions options;
    options.seed = 19;
    options.max_steps = 3;
    compare(instances[i], "round-robin", options,
            "inst" + std::to_string(i) + "/maxsteps");
  }
}

TEST(SimulatorReference, CompletionOverride) {
  // Coding-style threshold completion: any 2 tokens satisfy a wanter.
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const core::Instance& inst = instances[i];
    SimOptions options;
    options.seed = 23;
    options.completion = [&inst](VertexId v, TokenSetView possession) {
      if (inst.want(v).empty()) return true;
      return TokenSet::count_intersection(possession, inst.want(v)) >= 2 ||
             inst.want(v).is_subset_of(possession);
    };
    compare(inst, "random", options, "inst" + std::to_string(i) + "/coded");
  }
}

TEST(SimulatorReference, DynamicsModels) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    {
      dynamics::CapacityJitter jitter(0.5);
      SimOptions options;
      options.seed = 29;
      options.max_steps = 200;
      options.dynamics = &jitter;
      // Each run needs its own model instance: reset() re-seeds but the
      // comparison must not share mutable state across the two runs.
      dynamics::CapacityJitter jitter_ref(0.5);
      auto for_new = heuristics::make_policy("random");
      auto for_ref = heuristics::make_policy("random");
      const RunResult actual = run(instances[i], *for_new, options);
      options.dynamics = &jitter_ref;
      const RunResult expected =
          reference_run(instances[i], *for_ref, options);
      expect_identical(actual, expected,
                       "inst" + std::to_string(i) + "/jitter");
    }
    {
      dynamics::LinkChurn churn(0.2, 2);
      dynamics::LinkChurn churn_ref(0.2, 2);
      SimOptions options;
      options.seed = 37;
      options.max_steps = 200;
      options.dynamics = &churn;
      auto for_new = heuristics::make_policy("round-robin");
      auto for_ref = heuristics::make_policy("round-robin");
      const RunResult actual = run(instances[i], *for_new, options);
      options.dynamics = &churn_ref;
      const RunResult expected =
          reference_run(instances[i], *for_ref, options);
      expect_identical(actual, expected,
                       "inst" + std::to_string(i) + "/churn");
    }
  }
}

TEST(SimulatorReference, StalledPolicyExit) {
  class Silent final : public Policy {
   public:
    [[nodiscard]] std::string_view name() const override { return "silent"; }
    [[nodiscard]] KnowledgeClass knowledge_class() const override {
      return KnowledgeClass::kLocalOnly;
    }
  };
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    Silent for_new;
    Silent for_ref;
    SimOptions options;
    const RunResult actual = run(instances[i], for_new, options);
    const RunResult expected = reference_run(instances[i], for_ref, options);
    expect_identical(actual, expected, "inst" + std::to_string(i) + "/stall");
  }
}

TEST(SimulatorReference, TwoPhaseScripted) {
  Rng rng(41);
  Digraph g = topology::random_overlay(12, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 6, 0);
  TwoPhasePolicy for_new("global", 3);
  TwoPhasePolicy for_ref("global", 3);
  SimOptions options;
  options.seed = 43;
  const RunResult actual = run(inst, for_new, options);
  const RunResult expected = reference_run(inst, for_ref, options);
  expect_identical(actual, expected, "two-phase");
}

}  // namespace
}  // namespace ocd::sim
