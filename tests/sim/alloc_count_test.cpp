// Zero-allocation steady state (ISSUE 4): once the Simulator's arena
// and a policy's scratch are warm, additional simulation steps must not
// touch the heap.  A test-local counting `operator new` measures two
// truncated runs of the same deterministic trajectory (same instance,
// policy object, simulator, and seed) that differ only in max_steps;
// the extra steps of the longer run must contribute zero allocations.
//
// This file is compiled into its own test binary (ocd_alloc_tests) so
// the replaced global allocator cannot perturb the main suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/util/parallel.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

namespace ocd::testing_alloc {
// Read access for sibling suites in this binary (flow/flow_alloc_test
// .cpp): the counting allocator lives here exactly once.
std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}
}  // namespace ocd::testing_alloc

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ocd::sim {
namespace {

/// Fig-2-style broadcast, slowed down with unit-ish capacities so a
/// truncated run is guaranteed to still be mid-flight: with in-degree
/// ~2 ln n and capacity at most 2, draining 256 tokens into any vertex
/// needs well over 20 steps.
core::Instance slow_fig2_instance() {
  Rng rng(0xa110c);
  topology::RandomGraphOptions options;
  options.capacities = {1, 2};
  Digraph graph = topology::random_overlay(64, options, rng);
  return core::single_source_all_receivers(std::move(graph), 256, 0);
}

std::uint64_t allocations_during(Simulator& simulator,
                                 const core::Instance& inst, Policy& policy,
                                 const SimOptions& options,
                                 std::int64_t* steps_out) {
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  const RunResult result = simulator.run(inst, policy, options);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  *steps_out = result.steps;
  return after - before;
}

TEST(AllocCount, SteadyStateStepsAreAllocationFree) {
  const core::Instance inst = slow_fig2_instance();
  constexpr std::int64_t kShort = 6;
  constexpr std::int64_t kLong = 16;

  for (const char* name : {"global", "local", "random", "round-robin"}) {
    SCOPED_TRACE(name);
    const auto policy = heuristics::make_policy(name);
    Simulator simulator;
    SimOptions options;
    options.seed = 17;
    options.record_schedule = false;

    // Warm run: sizes the simulator arena and the policy scratch along
    // the exact trajectory the measured runs will replay.
    options.max_steps = kLong;
    (void)simulator.run(inst, *policy, options);

    std::int64_t short_steps = 0;
    std::int64_t long_steps = 0;
    options.max_steps = kShort;
    const std::uint64_t short_allocs =
        allocations_during(simulator, inst, *policy, options, &short_steps);
    options.max_steps = kLong;
    const std::uint64_t long_allocs =
        allocations_during(simulator, inst, *policy, options, &long_steps);

    // Both runs must have been truncated mid-broadcast, so the counts
    // really differ by kLong - kShort live steps.
    ASSERT_EQ(short_steps, kShort);
    ASSERT_EQ(long_steps, kLong);
    EXPECT_EQ(long_allocs, short_allocs)
        << (long_allocs - short_allocs) << " allocations across "
        << (kLong - kShort) << " steady-state steps";
  }
}

// ISSUE 5: the sharded planner/apply paths must hold the same bar.
// With a worker budget of 4, the 64v x 256t instance (~500 arcs)
// engages both the wave prescore and the sharded apply; the warm run
// spawns the pool threads and sizes the per-chunk arenas, after which
// parallel steady-state steps must not touch the heap (region publish
// is a type-erased pointer handshake, reduce slots live on the stack).
TEST(AllocCount, ParallelSteadyStateStepsAreAllocationFree) {
  util::set_parallel_jobs(4);
  const core::Instance inst = slow_fig2_instance();
  constexpr std::int64_t kShort = 6;
  constexpr std::int64_t kLong = 16;

  for (const char* name : {"global", "local"}) {
    SCOPED_TRACE(name);
    const auto policy = heuristics::make_policy(name);
    Simulator simulator;
    SimOptions options;
    options.seed = 17;
    options.record_schedule = false;

    options.max_steps = kLong;
    (void)simulator.run(inst, *policy, options);

    std::int64_t short_steps = 0;
    std::int64_t long_steps = 0;
    options.max_steps = kShort;
    const std::uint64_t short_allocs =
        allocations_during(simulator, inst, *policy, options, &short_steps);
    options.max_steps = kLong;
    const std::uint64_t long_allocs =
        allocations_during(simulator, inst, *policy, options, &long_steps);

    ASSERT_EQ(short_steps, kShort);
    ASSERT_EQ(long_steps, kLong);
    EXPECT_EQ(long_allocs, short_allocs)
        << (long_allocs - short_allocs) << " allocations across "
        << (kLong - kShort) << " parallel steady-state steps";
  }
  util::set_parallel_jobs(0);
}

TEST(AllocCount, HarnessCountsAllocations) {
  // Sanity-check the instrumented allocator itself: a vector growing
  // from empty must be visible to the counter.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  std::vector<std::uint64_t> v(1024);
  v.resize(4096);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GE(after - before, 2u);
}

}  // namespace
}  // namespace ocd::sim
