#include "ocd/sim/knowledge.hpp"

#include <gtest/gtest.h>

#include "ocd/sim/views.hpp"

namespace ocd::sim {
namespace {

core::Instance two_vertex_instance() {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 0, 1);
  core::Instance inst(std::move(g), 3);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 0);
  inst.add_want(1, 2);  // note: token 2 has no holder
  inst.add_have(1, 2);  // ...make it held so aggregates are clean
  return inst;
}

util::TokenMatrix have_matrix(const core::Instance& inst) {
  util::TokenMatrix m;
  m.reset(static_cast<std::size_t>(inst.num_vertices()),
          static_cast<std::size_t>(inst.num_tokens()));
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    m.assign_row(static_cast<std::size_t>(v), inst.have(v));
  return m;
}

TEST(Aggregates, CountsHoldersAndNeed) {
  const core::Instance inst = two_vertex_instance();
  const util::TokenMatrix possession = have_matrix(inst);
  const Aggregates agg = compute_aggregates(inst, possession);
  EXPECT_EQ(agg.holders[0], 1);
  EXPECT_EQ(agg.holders[1], 1);
  EXPECT_EQ(agg.holders[2], 1);
  EXPECT_EQ(agg.need[0], 1);  // vertex 1 wants 0, lacks it
  EXPECT_EQ(agg.need[1], 0);
  EXPECT_EQ(agg.need[2], 0);  // wanted but already held
}

TEST(Aggregates, NeedDropsAsPossessionGrows) {
  const core::Instance inst = two_vertex_instance();
  util::TokenMatrix possession = have_matrix(inst);
  possession.row(1).set(0);
  const Aggregates agg = compute_aggregates(inst, possession);
  EXPECT_EQ(agg.need[0], 0);
  EXPECT_EQ(agg.holders[0], 2);
}

TEST(Aggregates, ApplyDeliveryMatchesRecompute) {
  const core::Instance inst = two_vertex_instance();
  util::TokenMatrix possession = have_matrix(inst);
  Aggregates agg = compute_aggregates(inst, possession);

  // Vertex 1 gains tokens {0, 1}: 0 is wanted (need drops), 1 is not.
  const TokenSet fresh = TokenSet::of(3, {0, 1});
  possession.row(1) |= fresh;
  agg.apply_delivery(fresh, inst.want(1));

  const Aggregates recomputed = compute_aggregates(inst, possession);
  EXPECT_EQ(agg.holders, recomputed.holders);
  EXPECT_EQ(agg.need, recomputed.need);
}

TEST(SnapshotBuffer, ZeroStalenessReturnsLatest) {
  SnapshotBuffer buffer(0);
  util::TokenMatrix a;
  a.reset(1, 2);
  a.assign_row(0, TokenSet::of(2, {0}));
  util::TokenMatrix b;
  b.reset(1, 2);
  b.assign_row(0, TokenSet::of(2, {0, 1}));
  buffer.push(a);
  EXPECT_EQ(buffer.stale_view().row(0).count(), 1u);
  buffer.push(b);
  EXPECT_EQ(buffer.stale_view().row(0).count(), 2u);
}

TEST(SnapshotBuffer, StalenessLagsByK) {
  SnapshotBuffer buffer(2);
  util::TokenMatrix snap;
  snap.reset(1, 10);
  for (int i = 1; i <= 5; ++i) {
    snap.row(0).set(i - 1);  // snapshot i holds tokens {0..i-1}
    buffer.push(snap);
    // After pushing snapshot i, the stale view is snapshot max(1, i-2).
    const auto expect = static_cast<std::size_t>(std::max(1, i - 2));
    EXPECT_EQ(buffer.stale_view().row(0).count(), expect) << "i=" << i;
  }
}

TEST(SnapshotBuffer, EmptyBufferThrows) {
  SnapshotBuffer buffer(1);
  EXPECT_THROW((void)buffer.stale_view(), ContractViolation);
  EXPECT_THROW(SnapshotBuffer(-1), ContractViolation);
}

TEST(SnapshotBuffer, AliasedModeTracksLiveMatrixWithoutCopying) {
  SnapshotBuffer buffer(0);
  util::TokenMatrix live;
  live.reset(1, 4);
  buffer.alias_live(live);
  EXPECT_TRUE(buffer.aliased());
  buffer.push(live);
  EXPECT_EQ(&buffer.stale_view(), &live);  // aliases, never copies
  live.row(0).set(2);  // in-place mutation is visible through the view
  EXPECT_TRUE(buffer.stale_view().row(0).test(2));
}

TEST(SnapshotBuffer, AliasRequiresZeroStaleness) {
  SnapshotBuffer stale(1);
  util::TokenMatrix live;
  live.reset(1, 4);
  EXPECT_THROW(stale.alias_live(live), ContractViolation);
  // Pushing a different matrix than the bound one is a caller bug.
  SnapshotBuffer bound(0);
  bound.alias_live(live);
  util::TokenMatrix other;
  other.reset(1, 4);
  EXPECT_THROW(bound.push(other), ContractViolation);
}

TEST(SnapshotBuffer, CopyingModeIsUnaffectedByRecycling) {
  // Push more snapshots than the window holds; the recycled ring slots
  // must not leak stale contents into later views.
  SnapshotBuffer buffer(1);
  util::TokenMatrix snap;
  snap.reset(1, 64);
  for (int i = 1; i <= 6; ++i) {
    snap.row(0).set(i - 1);
    buffer.push(snap);
    const auto expect = static_cast<std::size_t>(std::max(1, i - 1));
    EXPECT_EQ(buffer.stale_view().row(0).count(), expect) << "i=" << i;
  }
}

TEST(StepView, AccessorsGatedByKnowledgeClass) {
  const core::Instance inst = two_vertex_instance();
  const util::TokenMatrix possession = have_matrix(inst);
  const Aggregates agg = compute_aggregates(inst, possession);

  const StepView local(inst, possession, possession, &agg, nullptr,
                       KnowledgeClass::kLocalOnly, 0);
  EXPECT_NO_THROW((void)local.own_possession(0));
  EXPECT_NO_THROW((void)local.own_want(1));
  EXPECT_THROW((void)local.peer_possession(0, 1), ContractViolation);
  EXPECT_THROW((void)local.aggregate_need(), ContractViolation);
  EXPECT_THROW((void)local.global_possession(), ContractViolation);

  const StepView peers(inst, possession, possession, &agg, nullptr,
                       KnowledgeClass::kLocalPeers, 0);
  EXPECT_NO_THROW((void)peers.peer_possession(0, 1));
  EXPECT_THROW((void)peers.aggregate_holders(), ContractViolation);

  const StepView aggregate(inst, possession, possession, &agg, nullptr,
                           KnowledgeClass::kLocalAggregate, 0);
  EXPECT_NO_THROW((void)aggregate.aggregate_holders());
  EXPECT_THROW((void)aggregate.instance(), ContractViolation);

  const StepView global(inst, possession, possession, &agg, nullptr,
                        KnowledgeClass::kGlobal, 0);
  EXPECT_NO_THROW((void)global.global_possession());
  EXPECT_NO_THROW((void)global.instance());
}

TEST(StepView, NullAggregatesTripOnAccessNotConstruction) {
  // Lazy materialization: the simulator passes nullptr for policies
  // below kLocalAggregate; touching the accessors must fail loudly.
  const core::Instance inst = two_vertex_instance();
  const util::TokenMatrix possession = have_matrix(inst);
  const StepView view(inst, possession, possession, nullptr, nullptr,
                      KnowledgeClass::kGlobal, 0);
  EXPECT_THROW((void)view.aggregate_holders(), ContractViolation);
  EXPECT_THROW((void)view.aggregate_need(), ContractViolation);
  EXPECT_NO_THROW((void)view.global_possession());
}

TEST(StepView, PeerAccessRequiresAdjacency) {
  Digraph g(3);
  g.add_arc(0, 1, 1);  // 2 is isolated from 0
  core::Instance inst(std::move(g), 1);
  util::TokenMatrix possession;
  possession.reset(3, 1);
  const Aggregates agg = compute_aggregates(inst, possession);
  const StepView view(inst, possession, possession, &agg, nullptr,
                      KnowledgeClass::kLocalPeers, 0);
  EXPECT_NO_THROW((void)view.peer_possession(0, 1));
  EXPECT_NO_THROW((void)view.peer_possession(1, 0));  // reverse direction ok
  EXPECT_THROW((void)view.peer_possession(0, 2), ContractViolation);
}

TEST(StepView, ToStringOfKnowledgeClasses) {
  EXPECT_STREQ(to_string(KnowledgeClass::kLocalOnly), "local-only");
  EXPECT_STREQ(to_string(KnowledgeClass::kLocalPeers), "local-peers");
  EXPECT_STREQ(to_string(KnowledgeClass::kLocalAggregate), "local-aggregate");
  EXPECT_STREQ(to_string(KnowledgeClass::kGlobal), "global");
}

}  // namespace
}  // namespace ocd::sim
