#include "ocd/sim/knowledge.hpp"

#include <gtest/gtest.h>

#include "ocd/sim/views.hpp"

namespace ocd::sim {
namespace {

core::Instance two_vertex_instance() {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 0, 1);
  core::Instance inst(std::move(g), 3);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 0);
  inst.add_want(1, 2);  // note: token 2 has no holder
  inst.add_have(1, 2);  // ...make it held so aggregates are clean
  return inst;
}

TEST(Aggregates, CountsHoldersAndNeed) {
  const core::Instance inst = two_vertex_instance();
  std::vector<TokenSet> possession{inst.have(0), inst.have(1)};
  const Aggregates agg = compute_aggregates(inst, possession);
  EXPECT_EQ(agg.holders[0], 1);
  EXPECT_EQ(agg.holders[1], 1);
  EXPECT_EQ(agg.holders[2], 1);
  EXPECT_EQ(agg.need[0], 1);  // vertex 1 wants 0, lacks it
  EXPECT_EQ(agg.need[1], 0);
  EXPECT_EQ(agg.need[2], 0);  // wanted but already held
}

TEST(Aggregates, NeedDropsAsPossessionGrows) {
  const core::Instance inst = two_vertex_instance();
  std::vector<TokenSet> possession{inst.have(0), inst.have(1)};
  possession[1].set(0);
  const Aggregates agg = compute_aggregates(inst, possession);
  EXPECT_EQ(agg.need[0], 0);
  EXPECT_EQ(agg.holders[0], 2);
}

TEST(SnapshotBuffer, ZeroStalenessReturnsLatest) {
  SnapshotBuffer buffer(0);
  std::vector<TokenSet> a{TokenSet::of(2, {0})};
  std::vector<TokenSet> b{TokenSet::of(2, {0, 1})};
  buffer.push(a);
  EXPECT_EQ(buffer.stale_view()[0].count(), 1u);
  buffer.push(b);
  EXPECT_EQ(buffer.stale_view()[0].count(), 2u);
}

TEST(SnapshotBuffer, StalenessLagsByK) {
  SnapshotBuffer buffer(2);
  for (int i = 1; i <= 5; ++i) {
    std::vector<TokenSet> snap{TokenSet(10)};
    for (int t = 0; t < i; ++t) snap[0].set(t);
    buffer.push(snap);
    // After pushing snapshot i, the stale view is snapshot max(1, i-2).
    const auto expect = static_cast<std::size_t>(std::max(1, i - 2));
    EXPECT_EQ(buffer.stale_view()[0].count(), expect) << "i=" << i;
  }
}

TEST(SnapshotBuffer, EmptyBufferThrows) {
  SnapshotBuffer buffer(1);
  EXPECT_THROW((void)buffer.stale_view(), ContractViolation);
  EXPECT_THROW(SnapshotBuffer(-1), ContractViolation);
}

TEST(StepView, AccessorsGatedByKnowledgeClass) {
  const core::Instance inst = two_vertex_instance();
  std::vector<TokenSet> possession{inst.have(0), inst.have(1)};
  const Aggregates agg = compute_aggregates(inst, possession);

  const StepView local(inst, possession, possession, agg, nullptr,
                       KnowledgeClass::kLocalOnly, 0);
  EXPECT_NO_THROW((void)local.own_possession(0));
  EXPECT_NO_THROW((void)local.own_want(1));
  EXPECT_THROW((void)local.peer_possession(0, 1), ContractViolation);
  EXPECT_THROW((void)local.aggregate_need(), ContractViolation);
  EXPECT_THROW((void)local.global_possession(), ContractViolation);

  const StepView peers(inst, possession, possession, agg, nullptr,
                       KnowledgeClass::kLocalPeers, 0);
  EXPECT_NO_THROW((void)peers.peer_possession(0, 1));
  EXPECT_THROW((void)peers.aggregate_holders(), ContractViolation);

  const StepView aggregate(inst, possession, possession, agg, nullptr,
                           KnowledgeClass::kLocalAggregate, 0);
  EXPECT_NO_THROW((void)aggregate.aggregate_holders());
  EXPECT_THROW((void)aggregate.instance(), ContractViolation);

  const StepView global(inst, possession, possession, agg, nullptr,
                        KnowledgeClass::kGlobal, 0);
  EXPECT_NO_THROW((void)global.global_possession());
  EXPECT_NO_THROW((void)global.instance());
}

TEST(StepView, PeerAccessRequiresAdjacency) {
  Digraph g(3);
  g.add_arc(0, 1, 1);  // 2 is isolated from 0
  core::Instance inst(std::move(g), 1);
  std::vector<TokenSet> possession{TokenSet(1), TokenSet(1), TokenSet(1)};
  const Aggregates agg = compute_aggregates(inst, possession);
  const StepView view(inst, possession, possession, agg, nullptr,
                      KnowledgeClass::kLocalPeers, 0);
  EXPECT_NO_THROW((void)view.peer_possession(0, 1));
  EXPECT_NO_THROW((void)view.peer_possession(1, 0));  // reverse direction ok
  EXPECT_THROW((void)view.peer_possession(0, 2), ContractViolation);
}

TEST(StepView, ToStringOfKnowledgeClasses) {
  EXPECT_STREQ(to_string(KnowledgeClass::kLocalOnly), "local-only");
  EXPECT_STREQ(to_string(KnowledgeClass::kLocalPeers), "local-peers");
  EXPECT_STREQ(to_string(KnowledgeClass::kLocalAggregate), "local-aggregate");
  EXPECT_STREQ(to_string(KnowledgeClass::kGlobal), "global");
}

}  // namespace
}  // namespace ocd::sim
