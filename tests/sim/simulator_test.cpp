#include "ocd/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/round_robin.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::sim {
namespace {

core::Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  return inst;
}

/// Sends nothing: must be reported as a stall, not loop forever.
class SilentPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "silent"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
};

/// Deliberately violates capacity.
class OverCapacityPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "overcap"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
  void plan_vertex(VertexId self, const StepView& view,
                   StepPlan& plan) override {
    if (self != 0) return;
    for (ArcId a : view.graph().out_arcs(self)) {
      TokenSet two(static_cast<std::size_t>(view.num_tokens()));
      two.set(0);
      two.set(1);
      plan.send(a, two);
    }
  }
};

/// Sends a token it does not possess.
class GhostSenderPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "ghost"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
  void plan_vertex(VertexId self, const StepView& view,
                   StepPlan& plan) override {
    if (self != 1) return;
    for (ArcId a : view.graph().out_arcs(self))
      plan.send(a, 0, static_cast<std::size_t>(view.num_tokens()));
  }
};

/// Exceeds its declared knowledge class.
class PeekingPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "peeking"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
  void plan_vertex(VertexId self, const StepView& view,
                   StepPlan& plan) override {
    (void)view.global_possession();  // not allowed for kLocalOnly
    (void)self;
    (void)plan;
  }
};

TEST(Simulator, RoundRobinCompletesLine) {
  const core::Instance inst = line_instance();
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps, 2);
  EXPECT_TRUE(core::is_successful(inst, result.schedule));
}

TEST(Simulator, StalledPolicyReportsFailure) {
  const core::Instance inst = line_instance();
  SilentPolicy policy;
  const auto result = run(inst, policy);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.steps, 0);
}

TEST(Simulator, TrivialInstanceFinishesInZeroSteps) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  SilentPolicy policy;
  const auto result = run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.bandwidth, 0);
}

TEST(Simulator, CapacityViolationThrows) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 0);
  OverCapacityPolicy policy;
  // The diagnostic must name the offending policy and arc.
  EXPECT_THROW(
      try { run(inst, policy); } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("(0,1)"), std::string::npos) << what;
        EXPECT_NE(what.find("capacity"), std::string::npos) << what;
        EXPECT_NE(what.find(policy.name()), std::string::npos) << what;
        throw;
      },
      Error);
}

TEST(Simulator, PossessionViolationThrows) {
  const core::Instance inst = line_instance();
  GhostSenderPolicy policy;
  EXPECT_THROW(
      try { run(inst, policy); } catch (const Error& e) {
        const std::string what = e.what();
        // GhostSenderPolicy sends from vertex 1, which lacks the token.
        EXPECT_NE(what.find("(1,2)"), std::string::npos) << what;
        EXPECT_NE(what.find(policy.name()), std::string::npos) << what;
        throw;
      },
      Error);
}

TEST(Simulator, KnowledgeClassEnforced) {
  const core::Instance inst = line_instance();
  PeekingPolicy policy;
  EXPECT_THROW(run(inst, policy), ContractViolation);
}

TEST(Simulator, MaxStepsBoundsRun) {
  Rng rng(2);
  Digraph g = topology::random_overlay(20, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 50, 0);
  heuristics::RoundRobinPolicy policy;
  SimOptions options;
  options.max_steps = 2;
  const auto result = run(inst, policy, options);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.steps, 2);
}

TEST(Simulator, RecordedScheduleValidatesAndMatchesCounters) {
  Rng rng(3);
  Digraph g = topology::random_overlay(15, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 8, 0);
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  const auto validation = core::validate(inst, result.schedule);
  EXPECT_TRUE(validation.valid);
  EXPECT_TRUE(validation.successful);
  EXPECT_EQ(result.schedule.bandwidth(), result.bandwidth);
  EXPECT_EQ(result.schedule.length(), result.steps);
}

TEST(Simulator, ScheduleRecordingCanBeDisabled) {
  const core::Instance inst = line_instance();
  heuristics::RoundRobinPolicy policy;
  SimOptions options;
  options.record_schedule = false;
  const auto result = run(inst, policy, options);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_GT(result.bandwidth, 0);
}

TEST(Simulator, CompletionStepsAreMonotoneSensible) {
  const core::Instance inst = line_instance();
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  // Vertices 0 and 1 have empty wants -> completed at step 0; vertex 2
  // completes when the token arrives (step 2).
  EXPECT_EQ(result.stats.completion_step[0], 0);
  EXPECT_EQ(result.stats.completion_step[1], 0);
  EXPECT_EQ(result.stats.completion_step[2], 2);
}

TEST(Simulator, CapacityIsAggregatedPerArc) {
  // Regression: two sends on the same arc that fit individually but
  // jointly exceed c(u,v) must be rejected.  Timestep::compact() does
  // not merge same-arc entries, so the check cannot rely on one
  // ArcSend per arc.
  Digraph g(2);
  g.add_arc(0, 1, 2);
  core::Instance inst(std::move(g), 4);
  for (TokenId t = 0; t < 4; ++t) inst.add_have(0, t);
  inst.add_want(1, 0);

  util::TokenMatrix possession;
  possession.reset(2, 4);
  possession.assign_row(0, inst.have(0));
  possession.assign_row(1, inst.have(1));
  std::vector<std::int32_t> capacity{2};
  std::vector<std::int32_t> arc_load{0};

  core::Timestep split;
  split.sends().push_back(core::ArcSend{0, TokenSet::of(4, {0, 1})});
  split.sends().push_back(core::ArcSend{0, TokenSet::of(4, {2, 3})});
  EXPECT_THROW(validate_sends(inst, split.sends(), capacity, possession,
                              arc_load, "split", 0),
               Error);
  // The scratch buffer is restored to zero even on the throwing path.
  EXPECT_EQ(arc_load[0], 0);

  core::Timestep fits;
  fits.sends().push_back(core::ArcSend{0, TokenSet::of(4, {0})});
  fits.sends().push_back(core::ArcSend{0, TokenSet::of(4, {1})});
  EXPECT_NO_THROW(validate_sends(inst, fits.sends(), capacity, possession,
                                 arc_load, "split", 0));
  EXPECT_EQ(arc_load[0], 0);

  core::Timestep ghost;
  ghost.sends().push_back(core::ArcSend{0, TokenSet::of(4, {0})});
  util::TokenMatrix empty_handed;
  empty_handed.reset(2, 4);
  EXPECT_THROW(validate_sends(inst, ghost.sends(), capacity, empty_handed,
                              arc_load, "ghost", 0),
               Error);
  EXPECT_EQ(arc_load[0], 0);
}

TEST(Simulator, MovesPerStepMatchesStepsOnEveryExitPath) {
  // Success exit.
  {
    const core::Instance inst = line_instance();
    heuristics::RoundRobinPolicy policy;
    const auto result = run(inst, policy);
    EXPECT_TRUE(result.success);
    EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
    EXPECT_EQ(result.stats.moves_per_step.size(),
              static_cast<std::size_t>(result.steps));
  }
  // Stalled-policy exit.
  {
    const core::Instance inst = line_instance();
    SilentPolicy policy;
    const auto result = run(inst, policy);
    EXPECT_FALSE(result.success);
    EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
    EXPECT_EQ(result.stats.moves_per_step.size(),
              static_cast<std::size_t>(result.steps));
  }
  // Stall after progress: deliver for two steps, then go silent
  // (without marking idle), so the run aborts mid-flight.
  {
    class StallAfterTwo final : public Policy {
     public:
      [[nodiscard]] std::string_view name() const override {
        return "stall-after-two";
      }
      [[nodiscard]] KnowledgeClass knowledge_class() const override {
        return KnowledgeClass::kLocalOnly;
      }
      void plan_step(const StepView& view, StepPlan& plan) override {
        if (view.step() == 0) plan.send(0, 0, 2);
        if (view.step() == 1) plan.send(1, 0, 2);
      }
    };
    Digraph g(3);
    g.add_arc(0, 1, 1);
    g.add_arc(1, 2, 1);
    core::Instance inst(std::move(g), 2);
    inst.add_have(0, 0);
    inst.add_have(0, 1);
    inst.add_want(2, 0);
    inst.add_want(2, 1);
    StallAfterTwo policy;
    SimOptions options;
    options.max_steps = 10;
    const auto result = run(inst, policy, options);
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.steps, 2);
    EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
    EXPECT_EQ(result.stats.moves_per_step.size(), 2u);
  }
  // max_steps exhaustion.
  {
    Rng rng(6);
    Digraph g = topology::random_overlay(20, rng);
    core::Instance inst =
        core::single_source_all_receivers(std::move(g), 50, 0);
    heuristics::RoundRobinPolicy policy;
    SimOptions options;
    options.max_steps = 2;
    const auto result = run(inst, policy, options);
    EXPECT_FALSE(result.success);
    EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
    EXPECT_EQ(result.stats.moves_per_step.size(), 2u);
  }
  // Zero-step exit (trivially satisfied instance).
  {
    Digraph g(2);
    g.add_arc(0, 1, 1);
    core::Instance inst(std::move(g), 1);
    inst.add_have(0, 0);
    SilentPolicy policy;
    const auto result = run(inst, policy);
    EXPECT_TRUE(result.success);
    EXPECT_TRUE(result.stats.consistent_with_steps(result.steps));
    EXPECT_TRUE(result.stats.moves_per_step.empty());
  }
}

TEST(Simulator, UsefulAndRedundantMovesSumToBandwidth) {
  Rng rng(4);
  Digraph g = topology::random_overlay(12, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 6, 0);
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.useful_moves + result.stats.redundant_moves,
            result.bandwidth);
  // Round robin on a dense graph re-sends: expect some redundancy.
  EXPECT_GT(result.stats.redundant_moves, 0);
  // Useful moves = total possession growth <= n * m.
  EXPECT_LE(result.stats.useful_moves,
            static_cast<std::int64_t>(inst.num_vertices()) * inst.num_tokens());
}

}  // namespace
}  // namespace ocd::sim
