#include "ocd/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/round_robin.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::sim {
namespace {

core::Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  return inst;
}

/// Sends nothing: must be reported as a stall, not loop forever.
class SilentPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "silent"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
};

/// Deliberately violates capacity.
class OverCapacityPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "overcap"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
  void plan_vertex(VertexId self, const StepView& view,
                   StepPlan& plan) override {
    if (self != 0) return;
    for (ArcId a : view.graph().out_arcs(self)) {
      TokenSet two(static_cast<std::size_t>(view.num_tokens()));
      two.set(0);
      two.set(1);
      plan.send(a, two);
    }
  }
};

/// Sends a token it does not possess.
class GhostSenderPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "ghost"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
  void plan_vertex(VertexId self, const StepView& view,
                   StepPlan& plan) override {
    if (self != 1) return;
    for (ArcId a : view.graph().out_arcs(self))
      plan.send(a, 0, static_cast<std::size_t>(view.num_tokens()));
  }
};

/// Exceeds its declared knowledge class.
class PeekingPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "peeking"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }
  void plan_vertex(VertexId self, const StepView& view,
                   StepPlan& plan) override {
    (void)view.global_possession();  // not allowed for kLocalOnly
    (void)self;
    (void)plan;
  }
};

TEST(Simulator, RoundRobinCompletesLine) {
  const core::Instance inst = line_instance();
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps, 2);
  EXPECT_TRUE(core::is_successful(inst, result.schedule));
}

TEST(Simulator, StalledPolicyReportsFailure) {
  const core::Instance inst = line_instance();
  SilentPolicy policy;
  const auto result = run(inst, policy);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.steps, 0);
}

TEST(Simulator, TrivialInstanceFinishesInZeroSteps) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  SilentPolicy policy;
  const auto result = run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.bandwidth, 0);
}

TEST(Simulator, CapacityViolationThrows) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 0);
  OverCapacityPolicy policy;
  EXPECT_THROW(run(inst, policy), Error);
}

TEST(Simulator, PossessionViolationThrows) {
  const core::Instance inst = line_instance();
  GhostSenderPolicy policy;
  EXPECT_THROW(run(inst, policy), Error);
}

TEST(Simulator, KnowledgeClassEnforced) {
  const core::Instance inst = line_instance();
  PeekingPolicy policy;
  EXPECT_THROW(run(inst, policy), ContractViolation);
}

TEST(Simulator, MaxStepsBoundsRun) {
  Rng rng(2);
  Digraph g = topology::random_overlay(20, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 50, 0);
  heuristics::RoundRobinPolicy policy;
  SimOptions options;
  options.max_steps = 2;
  const auto result = run(inst, policy, options);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.steps, 2);
}

TEST(Simulator, RecordedScheduleValidatesAndMatchesCounters) {
  Rng rng(3);
  Digraph g = topology::random_overlay(15, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 8, 0);
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  const auto validation = core::validate(inst, result.schedule);
  EXPECT_TRUE(validation.valid);
  EXPECT_TRUE(validation.successful);
  EXPECT_EQ(result.schedule.bandwidth(), result.bandwidth);
  EXPECT_EQ(result.schedule.length(), result.steps);
}

TEST(Simulator, ScheduleRecordingCanBeDisabled) {
  const core::Instance inst = line_instance();
  heuristics::RoundRobinPolicy policy;
  SimOptions options;
  options.record_schedule = false;
  const auto result = run(inst, policy, options);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_GT(result.bandwidth, 0);
}

TEST(Simulator, CompletionStepsAreMonotoneSensible) {
  const core::Instance inst = line_instance();
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  // Vertices 0 and 1 have empty wants -> completed at step 0; vertex 2
  // completes when the token arrives (step 2).
  EXPECT_EQ(result.stats.completion_step[0], 0);
  EXPECT_EQ(result.stats.completion_step[1], 0);
  EXPECT_EQ(result.stats.completion_step[2], 2);
}

TEST(Simulator, UsefulAndRedundantMovesSumToBandwidth) {
  Rng rng(4);
  Digraph g = topology::random_overlay(12, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 6, 0);
  heuristics::RoundRobinPolicy policy;
  const auto result = run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.useful_moves + result.stats.redundant_moves,
            result.bandwidth);
  // Round robin on a dense graph re-sends: expect some redundancy.
  EXPECT_GT(result.stats.redundant_moves, 0);
  // Useful moves = total possession growth <= n * m.
  EXPECT_LE(result.stats.useful_moves,
            static_cast<std::int64_t>(inst.num_vertices()) * inst.num_tokens());
}

}  // namespace
}  // namespace ocd::sim
