// The fig_loss workload shape under the threaded sweep harness: each
// worker owns its fault model, adapter, and policy, so a parallel
// lossy sweep must reproduce the serial rows bit for bit.  The TSan
// preset (scripts/check_sanitizers.sh) runs this suite alongside
// SweepGrid under -fsanitize=thread.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::bench {
namespace {

TEST(FaultSweep, LossyReliableGridMatchesSerial) {
  Rng rng(73);
  Digraph g = topology::random_overlay(20, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 12, 0);

  struct Config {
    double loss;
    std::string policy;
  };
  std::vector<Config> configs;
  for (const double loss : {0.0, 0.1, 0.3}) {
    for (const auto& name : heuristics::all_policy_names()) {
      configs.push_back({loss, name + "+reliable"});
    }
  }

  struct Row {
    bool success = false;
    std::int64_t steps = 0;
    std::int64_t bandwidth = 0;
    std::int64_t lost = 0;
    std::int64_t retrans = 0;
    bool operator==(const Row&) const = default;
  };
  const auto run_one = [&](const Config& c) {
    faults::UniformLoss loss(c.loss);
    auto policy = heuristics::make_policy(c.policy);
    sim::SimOptions options;
    options.seed = 13;
    options.faults = &loss;
    options.record_schedule = false;
    options.max_steps = 100'000;
    const auto result = sim::run(inst, *policy, options);
    return Row{result.success, result.steps, result.bandwidth,
               result.stats.lost_moves, result.stats.retransmissions};
  };

  const auto parallel = run_grid(configs, run_one, 4);
  const auto serial = run_grid(configs, run_one, 1);
  ASSERT_EQ(parallel.size(), configs.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_TRUE(parallel[i].success) << configs[i].policy;
    EXPECT_EQ(parallel[i], serial[i]) << configs[i].policy;
  }
}

}  // namespace
}  // namespace ocd::bench
