// The threaded sweep harness (bench/bench_common.hpp): results must
// come back in configuration order regardless of worker count, the
// OCD_JOBS override must be honored, exceptions must propagate, and a
// parallel policy grid must reproduce the serial rows exactly (the
// byte-identical-CSV guarantee, minus wall-clock columns).  The TSan
// preset (scripts/check_sanitizers.sh) runs exactly this suite under
// -fsanitize=thread.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::bench {
namespace {

TEST(SweepGrid, EmptyGrid) {
  const std::vector<int> configs;
  const auto results = run_grid(configs, [](int c) { return c * 2; }, 4);
  EXPECT_TRUE(results.empty());
}

TEST(SweepGrid, PreservesConfigOrder) {
  std::vector<int> configs;
  for (int i = 0; i < 100; ++i) configs.push_back(i);
  // Stagger the work so late configs routinely finish before early
  // ones; the result order must not care.
  const auto slow_square = [](int c) {
    std::this_thread::sleep_for(std::chrono::microseconds((c % 7) * 50));
    return c * c;
  };
  const auto parallel = run_grid(configs, slow_square, 8);
  const auto serial = run_grid(configs, slow_square, 1);
  ASSERT_EQ(parallel.size(), configs.size());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(parallel[static_cast<std::size_t>(i)], i * i);
  }
  EXPECT_EQ(parallel, serial);
}

TEST(SweepGrid, MoreJobsThanConfigs) {
  const std::vector<int> configs{1, 2, 3};
  const auto results = run_grid(configs, [](int c) { return c + 10; }, 64);
  EXPECT_EQ(results, (std::vector<int>{11, 12, 13}));
}

TEST(SweepGrid, WorkerExceptionPropagates) {
  std::vector<int> configs;
  for (int i = 0; i < 32; ++i) configs.push_back(i);
  const auto faulty = [](int c) -> int {
    if (c == 17) throw std::runtime_error("config 17 exploded");
    return c;
  };
  EXPECT_THROW(run_grid(configs, faulty, 4), std::runtime_error);
  EXPECT_THROW(run_grid(configs, faulty, 1), std::runtime_error);
}

TEST(SweepGrid, JobsEnvOverride) {
  ASSERT_EQ(setenv("OCD_JOBS", "3", 1), 0);
  EXPECT_EQ(sweep_jobs(), 3u);
  // Invalid values are rejected loudly (ocd::Error naming the variable)
  // instead of silently falling back — a typo'd OCD_JOBS=O8 would
  // otherwise burn a day of single-threaded sweeping.
  ASSERT_EQ(setenv("OCD_JOBS", "0", 1), 0);
  EXPECT_THROW(sweep_jobs(), Error);
  ASSERT_EQ(setenv("OCD_JOBS", "-2", 1), 0);
  EXPECT_THROW(sweep_jobs(), Error);
  ASSERT_EQ(setenv("OCD_JOBS", "eight", 1), 0);
  EXPECT_THROW(sweep_jobs(), Error);
  ASSERT_EQ(unsetenv("OCD_JOBS"), 0);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(sweep_jobs(), hw > 0 ? hw : 1u);
}

// The real workload shape: a (policy x seed) grid of run_policy calls.
// Every worker builds its own policy and Rng, so a parallel sweep must
// reproduce the serial metrics bit for bit.
TEST(SweepGrid, PolicyGridMatchesSerial) {
  Rng rng(71);
  Digraph g = topology::random_overlay(24, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 16, 0);

  struct Config {
    std::string policy;
    std::uint64_t seed;
  };
  std::vector<Config> configs;
  for (const auto& name : heuristics::all_policy_names()) {
    for (std::uint64_t seed : {3ULL, 71ULL}) configs.push_back({name, seed});
  }
  const auto run_one = [&](const Config& c) {
    return run_policy(inst, c.policy, c.seed);
  };
  const auto parallel = run_grid(configs, run_one, 4);
  const auto serial = run_grid(configs, run_one, 1);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].success, serial[i].success) << i;
    EXPECT_EQ(parallel[i].moves, serial[i].moves) << i;
    EXPECT_EQ(parallel[i].bandwidth, serial[i].bandwidth) << i;
    EXPECT_EQ(parallel[i].pruned_bandwidth, serial[i].pruned_bandwidth) << i;
  }
}

}  // namespace
}  // namespace ocd::bench
