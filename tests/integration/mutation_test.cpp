// Mutation fuzzing of the validator: schedules produced by the
// simulator are valid by construction; random mutations that break the
// model's constraints must be caught by core::validate, and harmless
// mutations must not be.  This pins the validator as the source of
// truth the rest of the library leans on.
#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

struct Fixture {
  Instance instance;
  Schedule schedule;
};

Fixture make_fixture(std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(12, rng);
  Instance inst = single_source_all_receivers(std::move(g), 6, 0);
  auto policy = heuristics::make_policy("local");
  sim::SimOptions options;
  options.seed = seed;
  auto run = sim::run(inst, *policy, options);
  EXPECT_TRUE(run.success);
  return Fixture{std::move(inst), std::move(run.schedule)};
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, OverfillingAnArcIsCaught) {
  auto fixture = make_fixture(GetParam());
  Rng rng(GetParam() * 7 + 1);
  // Pick a random send and inflate it past its arc capacity.
  auto& steps = fixture.schedule.steps();
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto& step = steps[rng.below(steps.size())];
    if (step.sends().empty()) continue;
    auto& send = step.sends()[rng.below(step.sends().size())];
    const Arc& arc = fixture.instance.graph().arc(send.arc);
    // Fill the send with every token: exceeds capacity unless the arc
    // is enormous.
    if (fixture.instance.num_tokens() <= arc.capacity) continue;
    send.tokens = TokenSet::full(
        static_cast<std::size_t>(fixture.instance.num_tokens()));
    const auto result = validate(fixture.instance, fixture.schedule);
    // Either capacity or possession must trip (the sender may also lack
    // some of the injected tokens).
    EXPECT_FALSE(result.valid);
    return;
  }
  GTEST_SKIP() << "no mutable send found";
}

TEST_P(MutationFuzz, SendingBeforePossessionIsCaught) {
  auto fixture = make_fixture(GetParam());
  Rng rng(GetParam() * 13 + 5);
  // Move a late send to timestep 0; unless the sender is the source,
  // possession must fail.
  auto& steps = fixture.schedule.steps();
  if (steps.size() < 2) GTEST_SKIP();
  for (int attempt = 0; attempt < 200; ++attempt) {
    const std::size_t late = 1 + rng.below(steps.size() - 1);
    if (steps[late].sends().empty()) continue;
    const auto send =
        steps[late].sends()[rng.below(steps[late].sends().size())];
    const Arc& arc = fixture.instance.graph().arc(send.arc);
    if (send.tokens.is_subset_of(fixture.instance.have(arc.from)))
      continue;  // source vertex: the move is legal at step 0 too
    steps[0].add(send.arc, send.tokens);
    const auto result = validate(fixture.instance, fixture.schedule);
    EXPECT_FALSE(result.valid);
    EXPECT_NE(result.violation.find("possession"), std::string::npos);
    return;
  }
  GTEST_SKIP() << "no movable send found";
}

TEST_P(MutationFuzz, DeletingADeliveryBreaksSuccessNotValidity) {
  auto fixture = make_fixture(GetParam());
  // Remove the last step entirely: the schedule stays valid but some
  // want must now be unmet (the run stopped exactly at success).
  auto& steps = fixture.schedule.steps();
  ASSERT_FALSE(steps.empty());
  steps.pop_back();
  const auto result = validate(fixture.instance, fixture.schedule);
  EXPECT_TRUE(result.valid);
  EXPECT_FALSE(result.successful);
}

TEST_P(MutationFuzz, ReorderingWithinAStepIsHarmless) {
  auto fixture = make_fixture(GetParam());
  for (auto& step : fixture.schedule.steps()) {
    auto& sends = step.sends();
    std::reverse(sends.begin(), sends.end());
  }
  const auto result = validate(fixture.instance, fixture.schedule);
  EXPECT_TRUE(result.valid);
  EXPECT_TRUE(result.successful);
}

TEST_P(MutationFuzz, AppendingEmptyStepsIsHarmless) {
  auto fixture = make_fixture(GetParam());
  fixture.schedule.append(Timestep{});
  fixture.schedule.append(Timestep{});
  const auto result = validate(fixture.instance, fixture.schedule);
  EXPECT_TRUE(result.valid);
  EXPECT_TRUE(result.successful);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace ocd::core
