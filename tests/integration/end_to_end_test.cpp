// Full-pipeline integration: generate topology -> build workload -> run
// heuristic -> validate -> prune -> compare against bounds and (on small
// instances) exact optima.  These are miniature versions of the bench
// pipelines, asserted rather than printed.
#include <gtest/gtest.h>

#include "ocd/core/bounds.hpp"
#include "ocd/core/encoding.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/exact/ip_solver.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"

namespace ocd {
namespace {

TEST(EndToEnd, MiniFigure2Pipeline) {
  // Graph-size sweep in miniature: moves roughly flat, bandwidth grows.
  std::vector<std::int64_t> bandwidths;
  for (const std::int32_t n : {15, 30, 60}) {
    Rng rng(100 + static_cast<std::uint64_t>(n));
    Digraph g = topology::random_overlay(n, rng);
    const auto inst = core::single_source_all_receivers(std::move(g), 20, 0);
    auto policy = heuristics::make_policy("global");
    const auto run = sim::run(inst, *policy);
    ASSERT_TRUE(run.success) << "n=" << n;
    bandwidths.push_back(run.bandwidth);
  }
  // Bandwidth grows with n (roughly linearly: delivering m tokens to
  // each of n-1 receivers costs >= m(n-1)).
  EXPECT_LT(bandwidths[0], bandwidths[1]);
  EXPECT_LT(bandwidths[1], bandwidths[2]);
}

TEST(EndToEnd, MiniFigure4ReceiverDensity) {
  // Bandwidth heuristic consumes less bandwidth than flooding at low
  // receiver density; flooding stays roughly flat.
  Rng graph_rng(55);
  const Digraph base = topology::random_overlay(40, graph_rng);

  auto run_policy = [&](const std::string& name, double threshold,
                        std::uint64_t seed) {
    Rng rng(seed);
    Digraph g = base;
    auto built = core::single_source_receiver_density(std::move(g), 16, 0,
                                                      threshold, rng);
    auto policy = heuristics::make_policy(name);
    const auto run = sim::run(built.instance, *policy);
    EXPECT_TRUE(run.success);
    return run.bandwidth;
  };

  const auto bw_low = run_policy("bandwidth", 0.2, 7);
  const auto bw_high = run_policy("bandwidth", 1.0, 7);
  const auto flood_low = run_policy("random", 0.2, 7);
  EXPECT_LT(bw_low, bw_high);
  EXPECT_LT(bw_low, flood_low);
}

TEST(EndToEnd, MiniFigure5FileSubdivision) {
  // With more files (each vertex wanting a smaller slice), the
  // bandwidth heuristic's consumption falls; flooding stays high.
  Rng graph_rng(66);
  const Digraph base = topology::random_overlay(32, graph_rng);

  auto run_policy = [&](const std::string& name, std::int32_t files) {
    Digraph g = base;
    const auto inst = core::subdivided_files(std::move(g), 32, files, 0);
    auto policy = heuristics::make_policy(name);
    const auto run = sim::run(inst, *policy);
    EXPECT_TRUE(run.success);
    return run.bandwidth;
  };

  const auto bw_1 = run_policy("bandwidth", 1);
  const auto bw_8 = run_policy("bandwidth", 8);
  EXPECT_LT(bw_8, bw_1);

  const auto flood_1 = run_policy("random", 1);
  const auto flood_8 = run_policy("random", 8);
  // Flooding does not exploit the subdivision nearly as much.
  const double flood_drop =
      static_cast<double>(flood_1 - flood_8) / static_cast<double>(flood_1);
  const double bw_drop =
      static_cast<double>(bw_1 - bw_8) / static_cast<double>(bw_1);
  EXPECT_GT(bw_drop, flood_drop * 0.8);
}

TEST(EndToEnd, HeuristicNeverBeatsExactOptimum) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    const auto inst = core::random_small_instance(5, 2, 0.5, rng);
    const auto exact_result = exact::min_makespan_ip(inst, 10);
    ASSERT_TRUE(exact_result.has_value());
    for (const auto& name : heuristics::all_policy_names()) {
      auto policy = heuristics::make_policy(name);
      const auto run = sim::run(inst, *policy);
      ASSERT_TRUE(run.success) << name << " seed=" << seed;
      EXPECT_GE(run.steps, exact_result->makespan) << name;
    }
  }
}

TEST(EndToEnd, TransitStubPipelineWithEncodingRoundTrip) {
  Rng rng(77);
  topology::TransitStubOptions opt;
  Digraph g = topology::transit_stub(opt, rng);
  const std::int32_t arcs = g.num_arcs();
  const auto inst = core::single_source_all_receivers(std::move(g), 10, 0);
  auto policy = heuristics::make_policy("local");
  const auto run = sim::run(inst, *policy);
  ASSERT_TRUE(run.success);

  const auto pruned = core::prune(inst, run.schedule);
  EXPECT_TRUE(core::is_successful(inst, pruned));
  EXPECT_GE(pruned.bandwidth(), core::bandwidth_lower_bound(inst));

  const auto bytes = core::encode_schedule(pruned, arcs, 10);
  const auto decoded = core::decode_schedule(bytes);
  EXPECT_EQ(decoded.bandwidth(), pruned.bandwidth());
  EXPECT_TRUE(core::is_successful(inst, decoded));
}

TEST(EndToEnd, PrunedFloodMatchesBandwidthHeuristicScale) {
  // §5.2: "the pruned bandwidth of the heuristics is roughly optimal".
  Rng rng(88);
  Digraph g = topology::random_overlay(30, rng);
  auto built = core::single_source_receiver_density(std::move(g), 12, 0,
                                                    0.3, rng);
  const core::Instance& inst = built.instance;
  auto flood = heuristics::make_policy("random");
  const auto flood_run = sim::run(inst, *flood);
  ASSERT_TRUE(flood_run.success);
  const auto pruned_bw = core::prune(inst, flood_run.schedule).bandwidth();
  const auto lower = core::bandwidth_lower_bound(inst);
  EXPECT_GE(pruned_bw, lower);
  EXPECT_LE(pruned_bw, lower * 4);  // same order of magnitude
  EXPECT_LT(pruned_bw, flood_run.bandwidth);
}

}  // namespace
}  // namespace ocd
