// Theorem 4: no c-competitive on-line algorithm exists for FOCD.  The
// proof's adversarial family — two maximally separated vertices, the
// receiver wanting one of many tokens — makes every local-knowledge
// heuristic pay for not knowing *which* token matters.  We verify the
// mechanism empirically: the optimum is the path length L regardless of
// the universe size m, while local heuristics on a unit-capacity path
// need extra steps that grow with m.
#include <gtest/gtest.h>

#include "ocd/core/bounds.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"

namespace ocd {
namespace {

std::int64_t optimal_makespan_on_path(std::int32_t length) {
  // The prescient schedule sends the wanted token immediately: L steps.
  return length;
}

TEST(Competitive, PrescientOptimumIsPathLength) {
  const auto inst = core::adversarial_path(6, 8, 3);
  EXPECT_EQ(core::distance_lower_bound(inst), 6);
  EXPECT_EQ(core::makespan_lower_bound(inst), 6);
}

TEST(Competitive, RoundRobinPaysForTokenBlindness) {
  // Round robin pushes tokens in circular order; with the wanted token
  // in the middle of a large universe it arrives late.
  const std::int32_t length = 4;
  for (const std::int32_t m : {4, 16, 64}) {
    const auto inst = core::adversarial_path(length, m, m - 1);
    auto policy = heuristics::make_policy("round-robin");
    const auto run = sim::run(inst, *policy);
    ASSERT_TRUE(run.success) << "m=" << m;
    // Competitive ratio grows with m: at least m/(something small).
    EXPECT_GE(run.steps, optimal_makespan_on_path(length) + m / 4)
        << "m=" << m;
  }
}

TEST(Competitive, RatioGrowsWithUniverseForRoundRobin) {
  const std::int32_t length = 4;
  double prev_ratio = 0.0;
  for (const std::int32_t m : {8, 32, 128}) {
    const auto inst = core::adversarial_path(length, m, m - 1);
    auto policy = heuristics::make_policy("round-robin");
    const auto run = sim::run(inst, *policy);
    ASSERT_TRUE(run.success);
    const double ratio = static_cast<double>(run.steps) /
                         static_cast<double>(optimal_makespan_on_path(length));
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 4.0);  // no constant c bounds the family
}

TEST(Competitive, WantAwareHeuristicsBeatBlindFlooding) {
  // Heuristics that see wants (even only as aggregates) prioritize the
  // wanted token and stay near the optimum even for large universes.
  const std::int32_t length = 5;
  const std::int32_t m = 64;
  const auto inst = core::adversarial_path(length, m, 17);

  auto local = heuristics::make_policy("local");
  const auto local_run = sim::run(inst, *local);
  ASSERT_TRUE(local_run.success);

  auto rr = heuristics::make_policy("round-robin");
  const auto rr_run = sim::run(inst, *rr);
  ASSERT_TRUE(rr_run.success);

  EXPECT_LT(local_run.steps, rr_run.steps);
  EXPECT_LE(local_run.steps, length + 2);
}

TEST(Competitive, GlobalKnowledgeAchievesOptimum) {
  const std::int32_t length = 5;
  const auto inst = core::adversarial_path(length, 32, 9);
  auto policy = heuristics::make_policy("bandwidth");
  const auto run = sim::run(inst, *policy);
  ASSERT_TRUE(run.success);
  EXPECT_EQ(run.steps, length);
  // And it moves only the wanted token: bandwidth = path length.
  EXPECT_EQ(run.bandwidth, length);
}

}  // namespace
}  // namespace ocd
