// Cross-feature stress: combinations of subsystems that production use
// would hit together — coding under churn, group constraints over
// transit-stub topologies with stale knowledge, two-phase under jitter,
// and the full offline post-pass on everything that completes.
#include <gtest/gtest.h>

#include "ocd/coding/coded_instance.hpp"
#include "ocd/core/compact.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/dynamics/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/group_adapter.hpp"
#include "ocd/sim/scripted.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/physical.hpp"
#include "ocd/topology/transit_stub.hpp"

namespace ocd {
namespace {

TEST(Stress, CodedDownloadSurvivesLinkChurn) {
  Rng rng(41);
  topology::TransitStubOptions ts;
  Digraph g = topology::transit_stub(ts, rng);
  const auto coded = coding::coded_broadcast(std::move(g), 16, 1.5, 0);

  dynamics::LinkChurn churn(0.15, 3);
  auto policy = heuristics::make_policy("local");
  sim::SimOptions options;
  options.seed = 8;
  options.dynamics = &churn;
  options.completion = coded.completion_predicate();
  options.max_steps = 10'000;
  const auto result = sim::run(coded.instance(), *policy, options);
  EXPECT_TRUE(result.success);
}

TEST(Stress, GroupConstrainedStaleKnowledgeSwarm) {
  Rng rng(42);
  topology::PhysicalOptions phys;
  phys.routers = 35;
  phys.hosts = 10;
  auto projection = topology::project_overlay(phys, rng);
  const auto groups = projection.groups;
  core::Instance inst = core::subdivided_files_random_senders(
      std::move(projection.overlay), 12, 3, rng);

  sim::GroupConstrainedPolicy policy(heuristics::make_policy("local"),
                                     groups);
  sim::SimOptions options;
  options.seed = 9;
  options.staleness = 2;
  options.stale_aggregates = true;
  options.max_steps = 20'000;
  const auto result = sim::run(inst, policy, options);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(topology::groups_respected(groups, result.schedule));
}

TEST(Stress, TwoPhaseUnderCapacityJitter) {
  Rng rng(43);
  Digraph g = topology::random_overlay(18, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 10, 0);

  // The offline plan assumes static capacities; jitter may shrink them
  // below the planned sends, which the simulator must reject loudly —
  // OR the plan happens to fit.  Use min_capacity = full capacity floor
  // 3 and plan with global (sends bounded by current capacities)... we
  // instead verify the *detection*: with severe jitter the replay of a
  // static plan either completes or throws a capacity error; it must
  // never silently corrupt state.
  sim::TwoPhasePolicy policy("global", /*delay=*/2);
  dynamics::CapacityJitter jitter(0.9, /*min_capacity=*/1);
  sim::SimOptions options;
  options.seed = 10;
  options.dynamics = &jitter;
  options.max_steps = 10'000;
  try {
    const auto result = sim::run(inst, policy, options);
    if (result.success) {
      EXPECT_GT(result.bandwidth, 0);
    }
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos);
  }
}

TEST(Stress, OfflinePostPassOnEveryScenario) {
  Rng rng(44);
  const std::vector<core::Instance> instances = [&] {
    std::vector<core::Instance> out;
    Digraph g1 = topology::random_overlay(25, rng);
    out.push_back(core::single_source_all_receivers(std::move(g1), 12, 0));
    Digraph g2 = topology::random_overlay(25, rng);
    out.push_back(core::subdivided_files(std::move(g2), 12, 4, 0));
    Digraph g3 = topology::random_overlay(25, rng);
    out.push_back(
        core::subdivided_files_random_senders(std::move(g3), 12, 3, rng));
    return out;
  }();

  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const auto& name : heuristics::all_policy_names()) {
      auto policy = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 50 + i;
      const auto result = sim::run(instances[i], *policy, options);
      ASSERT_TRUE(result.success) << name << " scenario " << i;
      const auto optimized =
          core::optimize_schedule(instances[i], result.schedule);
      EXPECT_TRUE(core::is_successful(instances[i], optimized))
          << name << " scenario " << i;
      EXPECT_LE(optimized.length(), result.schedule.length());
      EXPECT_LE(optimized.bandwidth(), result.schedule.bandwidth());
    }
  }
}

TEST(Stress, ScriptedReplayOfOptimizedScheduleMatches) {
  Rng rng(45);
  Digraph g = topology::random_overlay(20, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 8, 0);
  auto policy = heuristics::make_policy("global");
  const auto original = sim::run(inst, *policy);
  ASSERT_TRUE(original.success);

  const auto optimized = core::optimize_schedule(inst, original.schedule);
  sim::ScriptedPolicy replay(optimized);
  const auto replayed = sim::run(inst, replay);
  ASSERT_TRUE(replayed.success);
  EXPECT_EQ(replayed.steps, optimized.length());
  EXPECT_EQ(replayed.bandwidth, optimized.bandwidth());
}

}  // namespace
}  // namespace ocd
