// End-to-end checks of the paper's formal statements.
#include <gtest/gtest.h>

#include "ocd/core/bounds.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/exact/ip_solver.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd {
namespace {

// Theorem 1: a satisfiable FOCD instance is satisfiable in m(n-1)
// moves — equivalently, a pruned successful schedule never delivers
// more than m(n-1) tokens.
class Theorem1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1, PrunedMovesWithinBound) {
  Rng rng(GetParam());
  Digraph g = topology::random_overlay(12, rng);
  const core::Instance inst =
      core::single_source_all_receivers(std::move(g), 5, 0);
  for (const auto& name : heuristics::all_policy_names()) {
    auto policy = heuristics::make_policy(name);
    const auto run = sim::run(inst, *policy);
    ASSERT_TRUE(run.success) << name;
    const auto pruned = core::prune(inst, run.schedule);
    const std::int64_t bound =
        static_cast<std::int64_t>(inst.num_tokens()) *
        (inst.num_vertices() - 1);
    EXPECT_LE(pruned.bandwidth(), bound) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1, ::testing::Values(1, 2, 3));

// Theorem 1 corollary: the instance is satisfiable in at most m(n-1)
// timesteps.
TEST(Theorem1Corollary, MakespanWithinMoveBound) {
  Rng rng(7);
  const core::Instance inst = core::random_small_instance(5, 2, 0.5, rng);
  const std::int64_t bound =
      static_cast<std::int64_t>(inst.num_tokens()) * (inst.num_vertices() - 1);
  const auto result =
      exact::focd_min_makespan(inst, static_cast<std::int32_t>(bound));
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->makespan, bound);
}

// Figure 1: minimizing time and bandwidth are at odds.
TEST(Figure1, TimeBandwidthTension) {
  const core::Instance inst = core::figure1_instance();

  // Minimum time is 2 steps (BnB) and any 2-step schedule needs 6 moves
  // (IP with horizon 2 minimizes bandwidth).
  const auto fastest = exact::focd_min_makespan(inst, 4);
  ASSERT_TRUE(fastest.has_value());
  EXPECT_EQ(fastest->makespan, 2);
  const auto fast_bw = exact::solve_eocd(inst, 2);
  ASSERT_TRUE(fast_bw.has_value());
  EXPECT_EQ(fast_bw->bandwidth, 6);

  // Minimum bandwidth is 4, achievable in 3 steps but not 2.
  const auto slow_bw = exact::solve_eocd(inst, 3);
  ASSERT_TRUE(slow_bw.has_value());
  EXPECT_EQ(slow_bw->bandwidth, 4);
  const auto slower_bw = exact::solve_eocd(inst, 4);
  ASSERT_TRUE(slower_bw.has_value());
  EXPECT_EQ(slower_bw->bandwidth, 4);  // 4 is the global optimum
}

// §4.2: an online algorithm can always finish within an additive factor
// of the diameter (flood knowledge first, then act optimally).  We check
// the weaker, mechanically verifiable claim that our heuristics finish
// within optimal + diameter on small instances.
class DiameterAdditive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiameterAdditive, InformedHeuristicsWithinOptimumPlusDiameter) {
  Rng rng(GetParam());
  const core::Instance inst = core::random_small_instance(5, 2, 0.5, rng);
  const auto exact_result = exact::focd_min_makespan(inst, 10);
  ASSERT_TRUE(exact_result.has_value());
  const auto diam = diameter(inst.graph());
  ASSERT_NE(diam, kUnreachable);

  for (const auto& name : {"global", "bandwidth", "local"}) {
    auto policy = heuristics::make_policy(name);
    const auto run = sim::run(inst, *policy);
    ASSERT_TRUE(run.success) << name;
    EXPECT_LE(run.steps, exact_result->makespan + diam + 1) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiameterAdditive,
                         ::testing::Range<std::uint64_t>(0, 6));

// The minimum-bandwidth optimum equals per-token Steiner distribution:
// our serial Steiner schedule's bandwidth must match the IP optimum on
// instances small enough to solve exactly (single token => Steiner tree
// = shortest-path tree subsets, heuristic exact on these sizes).
TEST(SteinerEquivalence, SingleTokenBandwidthOptimum) {
  const core::Instance inst = core::figure1_instance();
  const auto ip = exact::solve_eocd(inst, 6);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->bandwidth, 4);
  EXPECT_EQ(core::bandwidth_upper_bound_serial_steiner(inst), 4);
}

}  // namespace
}  // namespace ocd
