// Partitioner contract: deterministic, covering, balanced, with a
// consistent cut/ghost table — everything the barrier protocol and the
// sub-instance extractor assume.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>

#include "ocd/core/scenario.hpp"
#include "ocd/shard/partition.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"
#include "ocd/util/error.hpp"

namespace ocd::shard {
namespace {

Digraph overlay(std::int32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return topology::random_overlay(n, rng);
}

TEST(ShardPartition, CoversEveryVertexExactlyOnce) {
  const Digraph g = overlay(50, 3);
  for (std::int32_t shards : {1, 2, 4, 7}) {
    const Partition part = partition_vertices(g, shards);
    ASSERT_EQ(part.num_shards, shards);
    ASSERT_EQ(part.shard_of.size(), static_cast<std::size_t>(50));
    std::vector<char> seen(50, 0);
    for (std::int32_t s = 0; s < shards; ++s) {
      const auto& owned = part.owned[static_cast<std::size_t>(s)];
      EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end())) << shards;
      for (VertexId v : owned) {
        EXPECT_EQ(part.shard_of[static_cast<std::size_t>(v)], s);
        EXPECT_EQ(seen[static_cast<std::size_t>(v)], 0);
        seen[static_cast<std::size_t>(v)] = 1;
      }
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), 50);
  }
}

TEST(ShardPartition, BalancesOwnershipWithinOneVertex) {
  const Digraph g = overlay(53, 9);
  for (std::int32_t shards : {2, 3, 4, 8}) {
    const Partition part = partition_vertices(g, shards);
    const std::int64_t lo = 53 / shards;
    const std::int64_t hi = (53 + shards - 1) / shards;
    for (const auto& owned : part.owned) {
      EXPECT_GE(static_cast<std::int64_t>(owned.size()), lo) << shards;
      EXPECT_LE(static_cast<std::int64_t>(owned.size()), hi) << shards;
    }
    EXPECT_GE(part.stats.min_owned, lo);
    EXPECT_LE(part.stats.max_owned, hi);
  }
}

TEST(ShardPartition, CutTableListsExactlyTheCrossingArcs) {
  const Digraph g = overlay(40, 5);
  const Partition part = partition_vertices(g, 4);
  std::set<ArcId> cut;
  for (const CutArc& c : part.cut_arcs) {
    const Arc& arc = g.arc(c.arc);
    EXPECT_EQ(c.from_shard, part.shard_of[static_cast<std::size_t>(arc.from)]);
    EXPECT_EQ(c.to_shard, part.shard_of[static_cast<std::size_t>(arc.to)]);
    EXPECT_NE(c.from_shard, c.to_shard);
    cut.insert(c.arc);
  }
  // Ascending and duplicate-free.
  EXPECT_EQ(cut.size(), part.cut_arcs.size());
  for (std::size_t i = 1; i < part.cut_arcs.size(); ++i)
    EXPECT_LT(part.cut_arcs[i - 1].arc, part.cut_arcs[i].arc);
  // Exactness: every arc is cut iff its endpoints differ.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const bool crossing =
        part.shard_of[static_cast<std::size_t>(arc.from)] !=
        part.shard_of[static_cast<std::size_t>(arc.to)];
    EXPECT_EQ(cut.count(a) == 1, crossing) << "arc " << a;
  }
  EXPECT_EQ(part.stats.cut_arcs,
            static_cast<std::int64_t>(part.cut_arcs.size()));
  EXPECT_EQ(part.stats.total_arcs, g.num_arcs());
  EXPECT_GE(part.stats.cut_fraction(), 0.0);
  EXPECT_LE(part.stats.cut_fraction(), 1.0);
}

TEST(ShardPartition, GhostsAreTheNonOwnedEndpointsOfIncidentArcs) {
  const Digraph g = overlay(40, 5);
  const Partition part = partition_vertices(g, 4);
  std::int64_t total_ghosts = 0;
  for (std::int32_t s = 0; s < 4; ++s) {
    const auto& ghosts = part.ghosts[static_cast<std::size_t>(s)];
    EXPECT_TRUE(std::is_sorted(ghosts.begin(), ghosts.end()));
    total_ghosts += static_cast<std::int64_t>(ghosts.size());
    std::set<VertexId> expected;
    for (const CutArc& c : part.cut_arcs) {
      const Arc& arc = g.arc(c.arc);
      if (c.to_shard == s) expected.insert(arc.from);
      if (c.from_shard == s) expected.insert(arc.to);
    }
    EXPECT_EQ(std::vector<VertexId>(expected.begin(), expected.end()),
              ghosts)
        << "shard " << s;
    for (VertexId v : ghosts)
      EXPECT_NE(part.shard_of[static_cast<std::size_t>(v)], s);
  }
  EXPECT_EQ(part.stats.total_ghosts, total_ghosts);
}

TEST(ShardPartition, SingleShardHasNoCutAndNoGhosts) {
  const Digraph g = overlay(20, 1);
  const Partition part = partition_vertices(g, 1);
  EXPECT_TRUE(part.cut_arcs.empty());
  EXPECT_TRUE(part.ghosts[0].empty());
  EXPECT_EQ(part.owned[0].size(), static_cast<std::size_t>(20));
  EXPECT_EQ(part.stats.cut_fraction(), 0.0);
}

TEST(ShardPartition, DeterministicAcrossCalls) {
  const Digraph g = overlay(60, 42);
  const Partition a = partition_vertices(g, 4);
  const Partition b = partition_vertices(g, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.owned, b.owned);
  EXPECT_EQ(a.ghosts, b.ghosts);
  ASSERT_EQ(a.cut_arcs.size(), b.cut_arcs.size());
  for (std::size_t i = 0; i < a.cut_arcs.size(); ++i)
    EXPECT_EQ(a.cut_arcs[i].arc, b.cut_arcs[i].arc);
}

TEST(ShardPartition, RefinementKeepsTheCutBelowRandomAssignment) {
  // Loose regression bound: the BFS-grown, refined partition must beat
  // round-robin vertex assignment on a sparse overlay.
  const Digraph g = overlay(120, 8);
  const Partition part = partition_vertices(g, 4);
  std::int64_t striped_cut = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    if (arc.from % 4 != arc.to % 4) ++striped_cut;
  }
  EXPECT_LT(part.stats.cut_arcs, striped_cut);
}

TEST(ShardPartition, MultiSweepRefinementOnlyImprovesTheCut) {
  // Deeper refinement must never cost cut quality and must keep the
  // balance bounds; on a sparse overlay it should strictly help.
  const Digraph g = overlay(160, 12);
  for (std::int32_t shards : {2, 4, 8}) {
    const Partition raw = partition_vertices(g, shards, 0);
    const Partition one = partition_vertices(g, shards, 1);
    const Partition deep = partition_vertices(g, shards, 8);
    EXPECT_LE(one.stats.cut_arcs, raw.stats.cut_arcs) << shards;
    EXPECT_LE(deep.stats.cut_arcs, one.stats.cut_arcs) << shards;
    const std::int64_t lo = 160 / shards;
    const std::int64_t hi = (160 + shards - 1) / shards;
    EXPECT_GE(deep.stats.min_owned, lo) << shards;
    EXPECT_LE(deep.stats.max_owned, hi) << shards;
  }
  // A strict multi-sweep win on a representative configuration (dense
  // cut, many shards), or the extra sweeps are dead code: at 8 shards
  // on a 100-vertex overlay the single sweep is far from the local
  // minimum.
  const Digraph h = overlay(100, 21);
  const Partition one = partition_vertices(h, 8, 1);
  const Partition deep = partition_vertices(h, 8, 8);
  EXPECT_LT(deep.stats.cut_arcs, one.stats.cut_arcs);
}

TEST(ShardPartition, MultiSweepConvergesAndStaysDeterministic) {
  const Digraph g = overlay(100, 21);
  // Once a sweep moves nothing the loop stops, so any budget at or past
  // convergence yields the identical partition.
  const Partition big = partition_vertices(g, 4, 64);
  const Partition bigger = partition_vertices(g, 4, 1 << 20);
  EXPECT_EQ(big.shard_of, bigger.shard_of);
  const Partition again = partition_vertices(g, 4, 64);
  EXPECT_EQ(big.shard_of, again.shard_of);
  // The default stays bit-compatible with the historical single sweep.
  EXPECT_EQ(partition_vertices(g, 4).shard_of,
            partition_vertices(g, 4, 1).shard_of);
}

TEST(ShardPartition, SubInstanceExtractsOwnedPlusGhostSlice) {
  Rng rng(5);
  Digraph g = topology::random_overlay(30, rng);
  core::Instance inst =
      core::single_source_all_receivers(std::move(g), 10, 0);
  const Partition part = partition_vertices(inst.graph(), 3);
  for (std::int32_t s = 0; s < 3; ++s) {
    const SubInstance sub = extract_sub_instance(inst, part, s);
    const auto& owned = part.owned[static_cast<std::size_t>(s)];
    const auto& ghosts = part.ghosts[static_cast<std::size_t>(s)];
    ASSERT_EQ(sub.to_global.size(), owned.size() + ghosts.size());
    EXPECT_TRUE(
        std::is_sorted(sub.to_global.begin(), sub.to_global.end()));
    EXPECT_EQ(sub.instance.num_vertices(),
              static_cast<std::int32_t>(sub.to_global.size()));
    EXPECT_EQ(sub.instance.num_tokens(), inst.num_tokens());
    // have/want copied for every local vertex.
    for (std::size_t i = 0; i < sub.to_global.size(); ++i) {
      EXPECT_EQ(sub.instance.have(static_cast<VertexId>(i)),
                inst.have(sub.to_global[i]));
      EXPECT_EQ(sub.instance.want(static_cast<VertexId>(i)),
                inst.want(sub.to_global[i]));
    }
    // Arcs: exactly those incident to an owned vertex, in global arc
    // order, endpoints relabeled consistently.
    ASSERT_EQ(sub.arc_to_global.size(),
              static_cast<std::size_t>(sub.instance.graph().num_arcs()));
    EXPECT_TRUE(std::is_sorted(sub.arc_to_global.begin(),
                               sub.arc_to_global.end()));
    std::size_t expected_arcs = 0;
    for (ArcId a = 0; a < inst.graph().num_arcs(); ++a) {
      const Arc& arc = inst.graph().arc(a);
      const bool incident =
          part.shard_of[static_cast<std::size_t>(arc.from)] == s ||
          part.shard_of[static_cast<std::size_t>(arc.to)] == s;
      if (incident) ++expected_arcs;
    }
    EXPECT_EQ(sub.arc_to_global.size(), expected_arcs);
    for (ArcId local = 0;
         local < sub.instance.graph().num_arcs(); ++local) {
      const Arc& la = sub.instance.graph().arc(local);
      const Arc& ga = inst.graph().arc(
          sub.arc_to_global[static_cast<std::size_t>(local)]);
      EXPECT_EQ(sub.to_global[static_cast<std::size_t>(la.from)], ga.from);
      EXPECT_EQ(sub.to_global[static_cast<std::size_t>(la.to)], ga.to);
      EXPECT_EQ(la.capacity, ga.capacity);
    }
  }
}

// --- Balance band (ε) and flow-based refinement -----------------------

Digraph transit_stub_overlay(std::int32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return topology::transit_stub(topology::transit_stub_options_for_size(n),
                                rng);
}

/// rows x cols 4-neighbor grid, arcs both ways — the classic jagged-
/// boundary victim: greedy local moves plateau while a min cut can
/// straighten whole boundary segments at once.
Digraph grid_overlay(std::int32_t rows, std::int32_t cols) {
  Digraph g(rows * cols);
  const auto at = [cols](std::int32_t r, std::int32_t c) {
    return r * cols + c;
  };
  for (std::int32_t r = 0; r < rows; ++r)
    for (std::int32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        g.add_arc(at(r, c), at(r, c + 1), 1);
        g.add_arc(at(r, c + 1), at(r, c), 1);
      }
      if (r + 1 < rows) {
        g.add_arc(at(r, c), at(r + 1, c), 1);
        g.add_arc(at(r + 1, c), at(r, c), 1);
      }
    }
  g.finalize();
  return g;
}

/// Bidirectional ring with a few long chords: the optimal k-way cut is
/// k boundary pairs, easy to state and hard for a frozen greedy sweep.
Digraph ring_overlay(std::int32_t n) {
  Digraph g(n);
  for (std::int32_t v = 0; v < n; ++v) {
    const std::int32_t w = (v + 1) % n;
    g.add_arc(v, w, 1);
    g.add_arc(w, v, 1);
  }
  for (std::int32_t v = 0; v < n; v += n / 4) {
    const std::int32_t w = (v + n / 3) % n;
    g.add_arc(v, w, 1);
    g.add_arc(w, v, 1);
  }
  g.finalize();
  return g;
}

void expect_valid_partition(const Digraph& g, const Partition& part,
                            std::int32_t shards, std::int64_t lo_band,
                            std::int64_t hi_band) {
  ASSERT_EQ(part.num_shards, shards);
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  for (const auto& owned : part.owned) {
    EXPECT_GE(static_cast<std::int64_t>(owned.size()), lo_band);
    EXPECT_LE(static_cast<std::int64_t>(owned.size()), hi_band);
    for (VertexId v : owned) {
      EXPECT_EQ(seen[static_cast<std::size_t>(v)], 0);
      seen[static_cast<std::size_t>(v)] = 1;
    }
  }
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), g.num_vertices());
}

PartitionOptions flow_options(std::int32_t shards, std::int32_t eps,
                              bool flow) {
  PartitionOptions options;
  options.num_shards = shards;
  options.balance_eps = eps;
  options.flow_refine = flow;
  return options;
}

TEST(ShardPartitionFlow, NeverWorseThanGreedyOnStructuredTopologies) {
  // Adoption requires a strict pair-cut decrease, so flow <= greedy is
  // a guarantee, not a tendency — checked across topology families,
  // shard counts, and both band widths.
  const Digraph topologies[] = {transit_stub_overlay(120, 5),
                                grid_overlay(12, 12), ring_overlay(96)};
  for (std::size_t i = 0; i < std::size(topologies); ++i) {
    const Digraph& g = topologies[i];
    for (std::int32_t shards : {3, 4, 7}) {
      for (std::int32_t eps : {0, 10}) {
        const Partition greedy =
            partition_vertices(g, flow_options(shards, eps, false));
        const Partition flow =
            partition_vertices(g, flow_options(shards, eps, true));
        EXPECT_LE(flow.stats.cut_arcs, greedy.stats.cut_arcs)
            << "topology " << i << " shards " << shards << " eps " << eps;
        const std::int64_t lo = g.num_vertices() / shards;
        const std::int64_t hi = (g.num_vertices() + shards - 1) / shards;
        const std::int64_t slack = eps * lo / 100;
        expect_valid_partition(g, flow, shards,
                               std::max<std::int64_t>(1, lo - slack),
                               hi + slack);
      }
    }
  }
}

TEST(ShardPartitionFlow, StrictlyBeatsGreedyOnPinnedConfigurations) {
  // The guarantee above is vacuous if the flow stage never fires; pin
  // configurations where it must find a strictly better cut.
  {
    // Transit-stub at 4 shards: greedy leaves stub domains straddling
    // the boundary that a min cut peels off whole.
    const Digraph g = transit_stub_overlay(120, 5);
    const Partition greedy =
        partition_vertices(g, flow_options(4, 10, false));
    const Partition flow = partition_vertices(g, flow_options(4, 10, true));
    EXPECT_LT(flow.stats.cut_arcs, greedy.stats.cut_arcs);
  }
  {
    // Grid at 7 shards: the min cut straightens greedy's jagged block
    // boundaries.
    const Digraph g = grid_overlay(12, 12);
    const Partition greedy =
        partition_vertices(g, flow_options(7, 10, false));
    const Partition flow = partition_vertices(g, flow_options(7, 10, true));
    EXPECT_LT(flow.stats.cut_arcs, greedy.stats.cut_arcs);
  }
  {
    // Even the exact band can win through offsetting swaps: at 2 shards
    // on the transit-stub overlay the flow stage finds the (tiny)
    // stub-edge separator greedy cannot reach move-by-move.
    const Digraph g = transit_stub_overlay(120, 5);
    const Partition greedy =
        partition_vertices(g, flow_options(2, 0, false));
    const Partition flow = partition_vertices(g, flow_options(2, 0, true));
    EXPECT_LT(flow.stats.cut_arcs, greedy.stats.cut_arcs);
    // Swaps kept the exact band (the generator approximates the
    // requested size, so derive it).
    EXPECT_EQ(flow.stats.min_owned, g.num_vertices() / 2);
    EXPECT_EQ(flow.stats.max_owned, (g.num_vertices() + 1) / 2);
  }
}

TEST(ShardPartitionFlow, CutAndGhostTablesStayConsistent) {
  const Digraph g = transit_stub_overlay(120, 5);
  const Partition part = partition_vertices(g, flow_options(4, 10, true));
  std::set<ArcId> cut;
  for (const CutArc& c : part.cut_arcs) {
    const Arc& arc = g.arc(c.arc);
    EXPECT_EQ(c.from_shard, part.shard_of[static_cast<std::size_t>(arc.from)]);
    EXPECT_EQ(c.to_shard, part.shard_of[static_cast<std::size_t>(arc.to)]);
    EXPECT_NE(c.from_shard, c.to_shard);
    cut.insert(c.arc);
  }
  EXPECT_EQ(cut.size(), part.cut_arcs.size());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const bool crossing = part.shard_of[static_cast<std::size_t>(arc.from)] !=
                          part.shard_of[static_cast<std::size_t>(arc.to)];
    EXPECT_EQ(cut.count(a) == 1, crossing) << "arc " << a;
  }
  for (std::int32_t s = 0; s < 4; ++s) {
    std::set<VertexId> expected;
    for (const CutArc& c : part.cut_arcs) {
      const Arc& arc = g.arc(c.arc);
      if (c.to_shard == s) expected.insert(arc.from);
      if (c.from_shard == s) expected.insert(arc.to);
    }
    EXPECT_EQ(std::vector<VertexId>(expected.begin(), expected.end()),
              part.ghosts[static_cast<std::size_t>(s)])
        << "shard " << s;
  }
}

TEST(ShardPartitionFlow, DeterministicAcrossCalls) {
  const Digraph g = transit_stub_overlay(120, 5);
  const Partition a = partition_vertices(g, flow_options(4, 10, true));
  const Partition b = partition_vertices(g, flow_options(4, 10, true));
  EXPECT_EQ(a.shard_of, b.shard_of);
}

TEST(ShardPartitionFlow, DefaultOptionsReproduceTheLegacyPartition) {
  const Digraph g = overlay(60, 42);
  const Partition legacy = partition_vertices(g, 4);
  // Explicit exact band, flow off.
  EXPECT_EQ(partition_vertices(g, flow_options(4, 0, false)).shard_of,
            legacy.shard_of);
  // -1 without OCD_SHARD_BALANCE_EPS in the environment resolves to 0.
  unsetenv("OCD_SHARD_BALANCE_EPS");
  EXPECT_EQ(partition_vertices(g, flow_options(4, -1, false)).shard_of,
            legacy.shard_of);
}

TEST(ShardPartitionGreedyBand, RefinementUnfreezesWhenShardsDivideN) {
  // k | n regression: the exact band pins every class size to n/k, so
  // no single move can stay balanced and the historical greedy sweep
  // was a guaranteed no-op.  With any slack the sweep must both move
  // something and strictly improve the cut on this pinned overlay.
  const Digraph g = overlay(120, 8);  // 120 = 4 * 30
  const Partition frozen_raw = partition_vertices(g, flow_options(4, 0, false));
  {
    PartitionOptions no_sweeps = flow_options(4, 0, false);
    no_sweeps.refinement_sweeps = 0;
    const Partition raw = partition_vertices(g, no_sweeps);
    // Frozen: with the exact band and k | n the sweep changed nothing.
    EXPECT_EQ(frozen_raw.shard_of, raw.shard_of);
  }
  const Partition relaxed = partition_vertices(g, flow_options(4, 10, false));
  EXPECT_LT(relaxed.stats.cut_arcs, frozen_raw.stats.cut_arcs);
  // Slack is spent, but only inside the advertised band.
  const std::int64_t slack = 10 * 30 / 100;
  EXPECT_GE(relaxed.stats.min_owned, 30 - slack);
  EXPECT_LE(relaxed.stats.max_owned, 30 + slack);
}

TEST(ShardPartitionBalanceEps, ResolvesRequestsAndEnvironment) {
  EXPECT_EQ(resolve_balance_eps(0), 0);
  EXPECT_EQ(resolve_balance_eps(5), 5);
  EXPECT_EQ(resolve_balance_eps(100), 100);
  EXPECT_THROW(resolve_balance_eps(101), Error);
  EXPECT_THROW(resolve_balance_eps(-2), Error);

  unsetenv("OCD_SHARD_BALANCE_EPS");
  EXPECT_EQ(resolve_balance_eps(-1), 0);
  setenv("OCD_SHARD_BALANCE_EPS", "15", 1);
  EXPECT_EQ(resolve_balance_eps(-1), 15);
  // An explicit request wins over the environment.
  EXPECT_EQ(resolve_balance_eps(3), 3);
  setenv("OCD_SHARD_BALANCE_EPS", "0", 1);
  EXPECT_EQ(resolve_balance_eps(-1), 0);
  setenv("OCD_SHARD_BALANCE_EPS", "101", 1);
  EXPECT_THROW(resolve_balance_eps(-1), Error);
  setenv("OCD_SHARD_BALANCE_EPS", "ten", 1);
  EXPECT_THROW(resolve_balance_eps(-1), Error);
  unsetenv("OCD_SHARD_BALANCE_EPS");
}

}  // namespace
}  // namespace ocd::shard
