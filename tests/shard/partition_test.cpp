// Partitioner contract: deterministic, covering, balanced, with a
// consistent cut/ghost table — everything the barrier protocol and the
// sub-instance extractor assume.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ocd/core/scenario.hpp"
#include "ocd/shard/partition.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::shard {
namespace {

Digraph overlay(std::int32_t n, std::uint64_t seed) {
  Rng rng(seed);
  return topology::random_overlay(n, rng);
}

TEST(ShardPartition, CoversEveryVertexExactlyOnce) {
  const Digraph g = overlay(50, 3);
  for (std::int32_t shards : {1, 2, 4, 7}) {
    const Partition part = partition_vertices(g, shards);
    ASSERT_EQ(part.num_shards, shards);
    ASSERT_EQ(part.shard_of.size(), static_cast<std::size_t>(50));
    std::vector<char> seen(50, 0);
    for (std::int32_t s = 0; s < shards; ++s) {
      const auto& owned = part.owned[static_cast<std::size_t>(s)];
      EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end())) << shards;
      for (VertexId v : owned) {
        EXPECT_EQ(part.shard_of[static_cast<std::size_t>(v)], s);
        EXPECT_EQ(seen[static_cast<std::size_t>(v)], 0);
        seen[static_cast<std::size_t>(v)] = 1;
      }
    }
    EXPECT_EQ(std::count(seen.begin(), seen.end(), 1), 50);
  }
}

TEST(ShardPartition, BalancesOwnershipWithinOneVertex) {
  const Digraph g = overlay(53, 9);
  for (std::int32_t shards : {2, 3, 4, 8}) {
    const Partition part = partition_vertices(g, shards);
    const std::int64_t lo = 53 / shards;
    const std::int64_t hi = (53 + shards - 1) / shards;
    for (const auto& owned : part.owned) {
      EXPECT_GE(static_cast<std::int64_t>(owned.size()), lo) << shards;
      EXPECT_LE(static_cast<std::int64_t>(owned.size()), hi) << shards;
    }
    EXPECT_GE(part.stats.min_owned, lo);
    EXPECT_LE(part.stats.max_owned, hi);
  }
}

TEST(ShardPartition, CutTableListsExactlyTheCrossingArcs) {
  const Digraph g = overlay(40, 5);
  const Partition part = partition_vertices(g, 4);
  std::set<ArcId> cut;
  for (const CutArc& c : part.cut_arcs) {
    const Arc& arc = g.arc(c.arc);
    EXPECT_EQ(c.from_shard, part.shard_of[static_cast<std::size_t>(arc.from)]);
    EXPECT_EQ(c.to_shard, part.shard_of[static_cast<std::size_t>(arc.to)]);
    EXPECT_NE(c.from_shard, c.to_shard);
    cut.insert(c.arc);
  }
  // Ascending and duplicate-free.
  EXPECT_EQ(cut.size(), part.cut_arcs.size());
  for (std::size_t i = 1; i < part.cut_arcs.size(); ++i)
    EXPECT_LT(part.cut_arcs[i - 1].arc, part.cut_arcs[i].arc);
  // Exactness: every arc is cut iff its endpoints differ.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const bool crossing =
        part.shard_of[static_cast<std::size_t>(arc.from)] !=
        part.shard_of[static_cast<std::size_t>(arc.to)];
    EXPECT_EQ(cut.count(a) == 1, crossing) << "arc " << a;
  }
  EXPECT_EQ(part.stats.cut_arcs,
            static_cast<std::int64_t>(part.cut_arcs.size()));
  EXPECT_EQ(part.stats.total_arcs, g.num_arcs());
  EXPECT_GE(part.stats.cut_fraction(), 0.0);
  EXPECT_LE(part.stats.cut_fraction(), 1.0);
}

TEST(ShardPartition, GhostsAreTheNonOwnedEndpointsOfIncidentArcs) {
  const Digraph g = overlay(40, 5);
  const Partition part = partition_vertices(g, 4);
  std::int64_t total_ghosts = 0;
  for (std::int32_t s = 0; s < 4; ++s) {
    const auto& ghosts = part.ghosts[static_cast<std::size_t>(s)];
    EXPECT_TRUE(std::is_sorted(ghosts.begin(), ghosts.end()));
    total_ghosts += static_cast<std::int64_t>(ghosts.size());
    std::set<VertexId> expected;
    for (const CutArc& c : part.cut_arcs) {
      const Arc& arc = g.arc(c.arc);
      if (c.to_shard == s) expected.insert(arc.from);
      if (c.from_shard == s) expected.insert(arc.to);
    }
    EXPECT_EQ(std::vector<VertexId>(expected.begin(), expected.end()),
              ghosts)
        << "shard " << s;
    for (VertexId v : ghosts)
      EXPECT_NE(part.shard_of[static_cast<std::size_t>(v)], s);
  }
  EXPECT_EQ(part.stats.total_ghosts, total_ghosts);
}

TEST(ShardPartition, SingleShardHasNoCutAndNoGhosts) {
  const Digraph g = overlay(20, 1);
  const Partition part = partition_vertices(g, 1);
  EXPECT_TRUE(part.cut_arcs.empty());
  EXPECT_TRUE(part.ghosts[0].empty());
  EXPECT_EQ(part.owned[0].size(), static_cast<std::size_t>(20));
  EXPECT_EQ(part.stats.cut_fraction(), 0.0);
}

TEST(ShardPartition, DeterministicAcrossCalls) {
  const Digraph g = overlay(60, 42);
  const Partition a = partition_vertices(g, 4);
  const Partition b = partition_vertices(g, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.owned, b.owned);
  EXPECT_EQ(a.ghosts, b.ghosts);
  ASSERT_EQ(a.cut_arcs.size(), b.cut_arcs.size());
  for (std::size_t i = 0; i < a.cut_arcs.size(); ++i)
    EXPECT_EQ(a.cut_arcs[i].arc, b.cut_arcs[i].arc);
}

TEST(ShardPartition, RefinementKeepsTheCutBelowRandomAssignment) {
  // Loose regression bound: the BFS-grown, refined partition must beat
  // round-robin vertex assignment on a sparse overlay.
  const Digraph g = overlay(120, 8);
  const Partition part = partition_vertices(g, 4);
  std::int64_t striped_cut = 0;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    if (arc.from % 4 != arc.to % 4) ++striped_cut;
  }
  EXPECT_LT(part.stats.cut_arcs, striped_cut);
}

TEST(ShardPartition, MultiSweepRefinementOnlyImprovesTheCut) {
  // Deeper refinement must never cost cut quality and must keep the
  // balance bounds; on a sparse overlay it should strictly help.
  const Digraph g = overlay(160, 12);
  for (std::int32_t shards : {2, 4, 8}) {
    const Partition raw = partition_vertices(g, shards, 0);
    const Partition one = partition_vertices(g, shards, 1);
    const Partition deep = partition_vertices(g, shards, 8);
    EXPECT_LE(one.stats.cut_arcs, raw.stats.cut_arcs) << shards;
    EXPECT_LE(deep.stats.cut_arcs, one.stats.cut_arcs) << shards;
    const std::int64_t lo = 160 / shards;
    const std::int64_t hi = (160 + shards - 1) / shards;
    EXPECT_GE(deep.stats.min_owned, lo) << shards;
    EXPECT_LE(deep.stats.max_owned, hi) << shards;
  }
  // A strict multi-sweep win on a representative configuration (dense
  // cut, many shards), or the extra sweeps are dead code: at 8 shards
  // on a 100-vertex overlay the single sweep is far from the local
  // minimum.
  const Digraph h = overlay(100, 21);
  const Partition one = partition_vertices(h, 8, 1);
  const Partition deep = partition_vertices(h, 8, 8);
  EXPECT_LT(deep.stats.cut_arcs, one.stats.cut_arcs);
}

TEST(ShardPartition, MultiSweepConvergesAndStaysDeterministic) {
  const Digraph g = overlay(100, 21);
  // Once a sweep moves nothing the loop stops, so any budget at or past
  // convergence yields the identical partition.
  const Partition big = partition_vertices(g, 4, 64);
  const Partition bigger = partition_vertices(g, 4, 1 << 20);
  EXPECT_EQ(big.shard_of, bigger.shard_of);
  const Partition again = partition_vertices(g, 4, 64);
  EXPECT_EQ(big.shard_of, again.shard_of);
  // The default stays bit-compatible with the historical single sweep.
  EXPECT_EQ(partition_vertices(g, 4).shard_of,
            partition_vertices(g, 4, 1).shard_of);
}

TEST(ShardPartition, SubInstanceExtractsOwnedPlusGhostSlice) {
  Rng rng(5);
  Digraph g = topology::random_overlay(30, rng);
  core::Instance inst =
      core::single_source_all_receivers(std::move(g), 10, 0);
  const Partition part = partition_vertices(inst.graph(), 3);
  for (std::int32_t s = 0; s < 3; ++s) {
    const SubInstance sub = extract_sub_instance(inst, part, s);
    const auto& owned = part.owned[static_cast<std::size_t>(s)];
    const auto& ghosts = part.ghosts[static_cast<std::size_t>(s)];
    ASSERT_EQ(sub.to_global.size(), owned.size() + ghosts.size());
    EXPECT_TRUE(
        std::is_sorted(sub.to_global.begin(), sub.to_global.end()));
    EXPECT_EQ(sub.instance.num_vertices(),
              static_cast<std::int32_t>(sub.to_global.size()));
    EXPECT_EQ(sub.instance.num_tokens(), inst.num_tokens());
    // have/want copied for every local vertex.
    for (std::size_t i = 0; i < sub.to_global.size(); ++i) {
      EXPECT_EQ(sub.instance.have(static_cast<VertexId>(i)),
                inst.have(sub.to_global[i]));
      EXPECT_EQ(sub.instance.want(static_cast<VertexId>(i)),
                inst.want(sub.to_global[i]));
    }
    // Arcs: exactly those incident to an owned vertex, in global arc
    // order, endpoints relabeled consistently.
    ASSERT_EQ(sub.arc_to_global.size(),
              static_cast<std::size_t>(sub.instance.graph().num_arcs()));
    EXPECT_TRUE(std::is_sorted(sub.arc_to_global.begin(),
                               sub.arc_to_global.end()));
    std::size_t expected_arcs = 0;
    for (ArcId a = 0; a < inst.graph().num_arcs(); ++a) {
      const Arc& arc = inst.graph().arc(a);
      const bool incident =
          part.shard_of[static_cast<std::size_t>(arc.from)] == s ||
          part.shard_of[static_cast<std::size_t>(arc.to)] == s;
      if (incident) ++expected_arcs;
    }
    EXPECT_EQ(sub.arc_to_global.size(), expected_arcs);
    for (ArcId local = 0;
         local < sub.instance.graph().num_arcs(); ++local) {
      const Arc& la = sub.instance.graph().arc(local);
      const Arc& ga = inst.graph().arc(
          sub.arc_to_global[static_cast<std::size_t>(local)]);
      EXPECT_EQ(sub.to_global[static_cast<std::size_t>(la.from)], ga.from);
      EXPECT_EQ(sub.to_global[static_cast<std::size_t>(la.to)], ga.to);
      EXPECT_EQ(la.capacity, ga.capacity);
    }
  }
}

}  // namespace
}  // namespace ocd::shard
