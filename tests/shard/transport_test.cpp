// Forked multi-process transport: one child process per shard, frames
// over a socketpair star.  Must agree bit-for-bit with both the
// in-process transport and sim::run.  The suite name is excluded from
// the TSan filter in scripts/check_sanitizers.sh — fork() from a
// threaded test binary is outside TSan's supported envelope.
#include <gtest/gtest.h>

#include <string>

#include "ocd/core/scenario.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::shard {
namespace {

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

void expect_same_run(const sim::RunResult& a, const sim::RunResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.success, b.success) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.bandwidth, b.bandwidth) << label;
  EXPECT_EQ(a.termination, b.termination) << label;
  EXPECT_EQ(a.stats.useful_moves, b.stats.useful_moves) << label;
  EXPECT_EQ(a.stats.redundant_moves, b.stats.redundant_moves) << label;
  EXPECT_EQ(a.stats.lost_moves, b.stats.lost_moves) << label;
  EXPECT_EQ(a.stats.moves_per_step, b.stats.moves_per_step) << label;
  EXPECT_EQ(a.stats.lost_per_step, b.stats.lost_per_step) << label;
  EXPECT_EQ(a.stats.completion_step, b.stats.completion_step) << label;
  EXPECT_EQ(a.stats.sent_by_vertex, b.stats.sent_by_vertex) << label;
  ASSERT_EQ(a.schedule.length(), b.schedule.length()) << label;
  for (std::size_t s = 0; s < a.schedule.steps().size(); ++s) {
    const auto& sa = a.schedule.steps()[s].sends();
    const auto& sb = b.schedule.steps()[s].sends();
    ASSERT_EQ(sa.size(), sb.size()) << label << " step " << s;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].arc, sb[i].arc) << label << " step " << s;
      EXPECT_EQ(sa[i].tokens, sb[i].tokens) << label << " step " << s;
    }
  }
}

TEST(ShardForkTransport, MatchesSingleProcessRun) {
  const core::Instance inst = broadcast_instance(24, 12, 19);
  for (const char* policy_name : {"round-robin", "local"}) {
    sim::SimOptions options;
    options.max_steps = 200;
    const sim::PolicyPtr policy = heuristics::make_policy(policy_name);
    const sim::RunResult reference = sim::run(inst, *policy, options);
    for (std::int32_t shards : {1, 2, 4}) {
      ShardOptions sharded;
      sharded.num_shards = shards;
      sharded.transport = TransportKind::kForked;
      sharded.sim = options;
      const sim::RunResult result = run_sharded(inst, policy_name, sharded);
      expect_same_run(result, reference,
                      std::string(policy_name) + " forked shards=" +
                          std::to_string(shards));
    }
  }
}

TEST(ShardForkTransport, MatchesInProcessUnderFaults) {
  const core::Instance inst = broadcast_instance(20, 10, 23);
  sim::SimOptions options;
  options.max_steps = 300;
  options.seed = 77;

  faults::GilbertElliott in_process_model(0.2, 0.5, 0.3);
  ShardOptions in_process;
  in_process.num_shards = 3;
  in_process.sim = options;
  in_process.sim.faults = &in_process_model;
  const sim::RunResult reference =
      run_sharded(inst, "random", in_process);

  faults::GilbertElliott forked_model(0.2, 0.5, 0.3);
  ShardOptions forked;
  forked.num_shards = 3;
  forked.transport = TransportKind::kForked;
  forked.sim = options;
  forked.sim.faults = &forked_model;
  const sim::RunResult result = run_sharded(inst, "random", forked);

  ASSERT_GT(reference.stats.lost_moves, 0);
  expect_same_run(result, reference, "forked vs in-process faults");
}

}  // namespace
}  // namespace ocd::shard
