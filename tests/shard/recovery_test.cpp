// Crash-tolerance contract: a sharded run with any schedule of injected
// worker crashes and hangs must produce a schedule and RunStats
// bit-identical to the crash-free run — only the four recovery counters
// may differ — and a permanently dead shard must terminate the run with
// a structured error naming the shard, step, and phase, never a hang.
//
// The ShardRecovery suite drives the in-process transport (TSan-clean:
// all recovery bookkeeping happens on the driver thread between
// parallel phases).  The ShardForkRecovery suite drives real forked
// children through SIGKILL-style deaths and wedged-peer hangs; it is
// excluded from the TSan pass (fork) like ShardForkTransport.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ocd/core/scenario.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::shard {
namespace {

constexpr std::int32_t kShardCounts[] = {1, 2, 4};
constexpr CrashPhase kPhases[] = {CrashPhase::kPlan, CrashPhase::kApply,
                                  CrashPhase::kCommit};

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

/// Bit-identity up to the recovery counters, which are execution
/// accounting, not simulation results.
void expect_same_run(const sim::RunResult& recovered,
                     const sim::RunResult& reference,
                     const std::string& label) {
  EXPECT_EQ(recovered.success, reference.success) << label;
  EXPECT_EQ(recovered.steps, reference.steps) << label;
  EXPECT_EQ(recovered.bandwidth, reference.bandwidth) << label;
  EXPECT_EQ(recovered.termination, reference.termination) << label;
  EXPECT_EQ(recovered.stats.useful_moves, reference.stats.useful_moves)
      << label;
  EXPECT_EQ(recovered.stats.redundant_moves, reference.stats.redundant_moves)
      << label;
  EXPECT_EQ(recovered.stats.lost_moves, reference.stats.lost_moves) << label;
  EXPECT_EQ(recovered.stats.moves_per_step, reference.stats.moves_per_step)
      << label;
  EXPECT_EQ(recovered.stats.lost_per_step, reference.stats.lost_per_step)
      << label;
  EXPECT_EQ(recovered.stats.completion_step, reference.stats.completion_step)
      << label;
  EXPECT_EQ(recovered.stats.sent_by_vertex, reference.stats.sent_by_vertex)
      << label;
  ASSERT_EQ(recovered.schedule.length(), reference.schedule.length()) << label;
  for (std::size_t s = 0; s < reference.schedule.steps().size(); ++s) {
    const auto& sa = recovered.schedule.steps()[s].sends();
    const auto& sb = reference.schedule.steps()[s].sends();
    ASSERT_EQ(sa.size(), sb.size()) << label << " step " << s;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].arc, sb[i].arc) << label << " step " << s;
      EXPECT_EQ(sa[i].tokens, sb[i].tokens) << label << " step " << s;
    }
  }
}

sim::RunResult run_with(const core::Instance& inst, const char* policy_name,
                        std::int32_t shards, const sim::SimOptions& sim,
                        TransportKind transport,
                        const CrashPlan* plan = nullptr,
                        std::int64_t checkpoint_interval = 0,
                        std::int32_t max_respawns = 3,
                        std::int64_t barrier_timeout_ms = 120'000) {
  ShardOptions options;
  options.num_shards = shards;
  options.transport = transport;
  options.sim = sim;
  options.barrier_timeout_ms = barrier_timeout_ms;
  options.recovery.crash_plan = plan;
  options.recovery.checkpoint_interval = checkpoint_interval;
  options.recovery.max_respawns = max_respawns;
  return run_sharded(inst, policy_name, options);
}

// ---- in-process recovery -------------------------------------------

TEST(ShardRecovery, CrashFreeRunReportsZeroCounters) {
  const core::Instance inst = broadcast_instance(24, 12, 7);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult result =
      run_with(inst, "round-robin", 2, sim, TransportKind::kInProcess);
  EXPECT_EQ(result.stats.worker_crashes, 0);
  EXPECT_EQ(result.stats.recoveries, 0);
  EXPECT_EQ(result.stats.replayed_steps, 0);
  EXPECT_EQ(result.stats.checkpoint_bytes, 0);
}

TEST(ShardRecovery, CrashAtEveryPhaseIsBitIdentical) {
  const core::Instance inst = broadcast_instance(32, 16, 5);
  for (const char* policy_name : {"round-robin", "local"}) {
    sim::SimOptions sim;
    sim.max_steps = 200;
    sim.seed = 17;
    for (std::int32_t shards : kShardCounts) {
      const sim::RunResult reference = run_with(
          inst, policy_name, shards, sim, TransportKind::kInProcess);
      ASSERT_GT(reference.steps, 6);
      for (CrashPhase phase : kPhases) {
        CrashPlan plan;
        plan.crash(shards - 1, 4, phase);
        const sim::RunResult recovered =
            run_with(inst, policy_name, shards, sim,
                     TransportKind::kInProcess, &plan,
                     /*checkpoint_interval=*/3);
        const std::string label = std::string(policy_name) + " shards=" +
                                  std::to_string(shards) + " phase=" +
                                  crash_phase_name(phase);
        expect_same_run(recovered, reference, label);
        EXPECT_EQ(recovered.stats.worker_crashes, 1) << label;
        EXPECT_EQ(recovered.stats.recoveries, 1) << label;
        EXPECT_GT(recovered.stats.checkpoint_bytes, 0) << label;
      }
    }
  }
}

TEST(ShardRecovery, CrashBeforeFirstCheckpointReplaysFromInit) {
  const core::Instance inst = broadcast_instance(24, 12, 9);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "local", 2, sim, TransportKind::kInProcess);
  CrashPlan plan;
  plan.crash(1, 2, CrashPhase::kApply);
  // Interval longer than the crash step: no checkpoint exists yet, so
  // the respawn rebuilds from the logged init round and replays
  // everything.
  const sim::RunResult recovered =
      run_with(inst, "local", 2, sim, TransportKind::kInProcess, &plan,
               /*checkpoint_interval=*/50);
  expect_same_run(recovered, reference, "pre-checkpoint crash");
  EXPECT_EQ(recovered.stats.recoveries, 1);
  EXPECT_EQ(recovered.stats.replayed_steps, 2);
}

TEST(ShardRecovery, HangIsHandledAsCrashInProcess) {
  const core::Instance inst = broadcast_instance(24, 12, 9);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "round-robin", 2, sim, TransportKind::kInProcess);
  CrashPlan plan;
  plan.hang(0, 3, CrashPhase::kCommit);
  const sim::RunResult recovered =
      run_with(inst, "round-robin", 2, sim, TransportKind::kInProcess, &plan,
               /*checkpoint_interval=*/2);
  expect_same_run(recovered, reference, "in-process hang");
  EXPECT_EQ(recovered.stats.worker_crashes, 1);
  EXPECT_EQ(recovered.stats.recoveries, 1);
}

TEST(ShardRecovery, CrashUnderFaultsReplaysRecordedLosses) {
  const core::Instance inst = broadcast_instance(28, 14, 13);
  struct FaultCase {
    const char* label;
    std::function<std::unique_ptr<faults::FaultModel>()> make;
  };
  const std::vector<FaultCase> cases = {
      {"uniform", [] { return std::make_unique<faults::UniformLoss>(0.3); }},
      {"gilbert-elliott", [] {
         return std::make_unique<faults::GilbertElliott>(0.15, 0.4, 0.6);
       }}};
  for (const FaultCase& c : cases) {
    sim::SimOptions sim;
    sim.max_steps = 300;
    sim.seed = 23;
    const auto reference_model = c.make();
    sim.faults = reference_model.get();
    const sim::RunResult reference =
        run_with(inst, "round-robin", 4, sim, TransportKind::kInProcess);
    ASSERT_GT(reference.stats.lost_moves, 0) << c.label;
    for (CrashPhase phase : kPhases) {
      const auto recovered_model = c.make();
      sim::SimOptions crashed = sim;
      crashed.faults = recovered_model.get();
      CrashPlan plan;
      plan.crash(2, 5, phase);
      // The Gilbert-Elliott chain advances once per step in the shared
      // model; replay must read the recorded per-send loss sets, never
      // re-query the model — this is what the log_losses path pins.
      const sim::RunResult recovered =
          run_with(inst, "round-robin", 4, crashed,
                   TransportKind::kInProcess, &plan,
                   /*checkpoint_interval=*/4);
      expect_same_run(recovered, reference,
                      std::string(c.label) + " phase=" +
                          crash_phase_name(phase));
      EXPECT_EQ(recovered.stats.recoveries, 1) << c.label;
    }
  }
}

TEST(ShardRecovery, RandomCrashScheduleStaysBitIdentical) {
  const core::Instance inst = broadcast_instance(32, 16, 19);
  sim::SimOptions sim;
  sim.max_steps = 300;
  sim.seed = 3;
  const sim::RunResult reference =
      run_with(inst, "local", 4, sim, TransportKind::kInProcess);
  CrashPlan plan;
  plan.random_crashes(0.02, 77);
  const sim::RunResult recovered =
      run_with(inst, "local", 4, sim, TransportKind::kInProcess, &plan,
               /*checkpoint_interval=*/5, /*max_respawns=*/64);
  expect_same_run(recovered, reference, "random crashes");
  EXPECT_GT(recovered.stats.worker_crashes, 0);
  EXPECT_EQ(recovered.stats.worker_crashes, recovered.stats.recoveries);
}

TEST(ShardRecovery, MultipleCrashesAccumulateCounters) {
  const core::Instance inst = broadcast_instance(28, 14, 21);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "round-robin", 4, sim, TransportKind::kInProcess);
  ASSERT_GT(reference.steps, 3);  // every kill point must be reachable
  CrashPlan plan;
  plan.crash(0, 1, CrashPhase::kPlan)
      .crash(1, 2, CrashPhase::kApply)
      .crash(3, 3, CrashPhase::kCommit)
      .hang(2, 2, CrashPhase::kPlan);
  const sim::RunResult recovered =
      run_with(inst, "round-robin", 4, sim, TransportKind::kInProcess, &plan,
               /*checkpoint_interval=*/3);
  expect_same_run(recovered, reference, "multi-crash");
  EXPECT_EQ(recovered.stats.worker_crashes, 4);
  EXPECT_EQ(recovered.stats.recoveries, 4);
  EXPECT_GT(recovered.stats.replayed_steps, 0);
}

TEST(ShardRecovery, ExhaustedRespawnBudgetNamesShardStepPhase) {
  const core::Instance inst = broadcast_instance(24, 12, 25);
  sim::SimOptions sim;
  sim.max_steps = 200;
  CrashPlan plan;
  plan.crash_always(1, 3, CrashPhase::kApply);
  try {
    run_with(inst, "round-robin", 2, sim, TransportKind::kInProcess, &plan,
             /*checkpoint_interval=*/2, /*max_respawns=*/2);
    FAIL() << "expected respawn exhaustion";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1"), std::string::npos) << what;
    EXPECT_NE(what.find("max_respawns (2)"), std::string::npos) << what;
    EXPECT_NE(what.find("step 3"), std::string::npos) << what;
    EXPECT_NE(what.find("phase apply"), std::string::npos) << what;
  }
}

TEST(ShardRecovery, ValidatesRecoveryOptions) {
  const core::Instance inst = broadcast_instance(10, 4, 1);
  sim::SimOptions sim;
  ShardOptions bad_timeout;
  bad_timeout.num_shards = 2;
  bad_timeout.barrier_timeout_ms = 0;
  EXPECT_THROW(run_sharded(inst, "round-robin", bad_timeout), Error);
  ShardOptions bad_budget;
  bad_budget.num_shards = 2;
  bad_budget.recovery.max_respawns = -1;
  EXPECT_THROW(run_sharded(inst, "round-robin", bad_budget), Error);
  ShardOptions bad_interval;
  bad_interval.num_shards = 2;
  bad_interval.recovery.checkpoint_interval = -3;
  EXPECT_THROW(run_sharded(inst, "round-robin", bad_interval), Error);
}

TEST(ShardRecovery, ResolvesCheckpointIntervalFromEnvironment) {
  EXPECT_EQ(resolve_checkpoint_interval(5), 5);
  ::unsetenv("OCD_SHARD_CHECKPOINT_INTERVAL");
  EXPECT_EQ(resolve_checkpoint_interval(0), 0);
  ::setenv("OCD_SHARD_CHECKPOINT_INTERVAL", "8", 1);
  EXPECT_EQ(resolve_checkpoint_interval(0), 8);
  EXPECT_EQ(resolve_checkpoint_interval(2), 2);  // explicit beats env
  ::setenv("OCD_SHARD_CHECKPOINT_INTERVAL", "often", 1);
  EXPECT_THROW(resolve_checkpoint_interval(0), Error);
  ::unsetenv("OCD_SHARD_CHECKPOINT_INTERVAL");
  EXPECT_THROW(resolve_checkpoint_interval(-1), Error);
}

TEST(ShardRecovery, CrashDuringWaveMergeIsBitIdentical) {
  // Coordinated planners add the wave round (and CrashPhase::kWave)
  // before plan.  A crash there must replay the summary state — the
  // policy's RNG stream, top-k lists, and the merged decision — from
  // the checkpoint and logged wave frames bit-identically; the "global"
  // schedule and its first-touch ordinals are the sharpest witness.
  const core::Instance inst = broadcast_instance(32, 16, 5);
  for (const char* policy_name : {"global", "bandwidth"}) {
    sim::SimOptions sim;
    sim.max_steps = 200;
    sim.seed = 17;
    for (std::int32_t shards : {2, 4}) {
      const sim::RunResult reference = run_with(
          inst, policy_name, shards, sim, TransportKind::kInProcess);
      ASSERT_GT(reference.steps, 6);
      CrashPlan plan;
      plan.crash(shards - 1, 4, CrashPhase::kWave);
      const sim::RunResult recovered =
          run_with(inst, policy_name, shards, sim,
                   TransportKind::kInProcess, &plan,
                   /*checkpoint_interval=*/3);
      const std::string label = std::string(policy_name) +
                                " wave-crash shards=" +
                                std::to_string(shards);
      expect_same_run(recovered, reference, label);
      EXPECT_EQ(recovered.stats.worker_crashes, 1) << label;
      EXPECT_EQ(recovered.stats.recoveries, 1) << label;
    }
  }
}

TEST(ShardRecovery, CoordinatedCrashAtEveryPhaseIsBitIdentical) {
  // The pre-existing phases still recover under a coordinated planner:
  // each replays the wave round silently before rejoining live.
  const core::Instance inst = broadcast_instance(28, 14, 11);
  sim::SimOptions sim;
  sim.max_steps = 200;
  sim.seed = 29;
  const sim::RunResult reference =
      run_with(inst, "global", 2, sim, TransportKind::kInProcess);
  for (CrashPhase phase :
       {CrashPhase::kPlan, CrashPhase::kApply, CrashPhase::kCommit}) {
    CrashPlan plan;
    plan.crash(1, 3, phase);
    const sim::RunResult recovered =
        run_with(inst, "global", 2, sim, TransportKind::kInProcess, &plan,
                 /*checkpoint_interval=*/2);
    const std::string label =
        std::string("global phase=") + crash_phase_name(phase);
    expect_same_run(recovered, reference, label);
    EXPECT_EQ(recovered.stats.recoveries, 1) << label;
  }
}

TEST(ShardRecovery, CoordinatedCountersSurviveRecovery) {
  // The shard traffic counters are checkpointed and re-incremented by
  // replay, so a crashed-and-recovered run reports the same totals as
  // the crash-free one — they stay comparable across fault studies.
  const core::Instance inst = broadcast_instance(28, 14, 15);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "global", 2, sim, TransportKind::kInProcess);
  CrashPlan plan;
  plan.crash(0, 4, CrashPhase::kWave).crash(1, 6, CrashPhase::kApply);
  const sim::RunResult recovered =
      run_with(inst, "global", 2, sim, TransportKind::kInProcess, &plan,
               /*checkpoint_interval=*/3);
  EXPECT_EQ(recovered.stats.shard_bytes_sent,
            reference.stats.shard_bytes_sent);
  EXPECT_EQ(recovered.stats.shard_bytes_received,
            reference.stats.shard_bytes_received);
  EXPECT_EQ(recovered.stats.shard_summary_entries,
            reference.stats.shard_summary_entries);
  EXPECT_EQ(recovered.stats.shard_wave_fallbacks,
            reference.stats.shard_wave_fallbacks);
}

TEST(ShardRecovery, CheckpointingAloneLeavesRunUnchanged) {
  // Checkpoints without crashes: pure overhead, zero semantic effect.
  const core::Instance inst = broadcast_instance(28, 14, 29);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "local", 4, sim, TransportKind::kInProcess);
  const sim::RunResult checkpointed =
      run_with(inst, "local", 4, sim, TransportKind::kInProcess, nullptr,
               /*checkpoint_interval=*/2);
  expect_same_run(checkpointed, reference, "checkpoint-only");
  EXPECT_EQ(checkpointed.stats.worker_crashes, 0);
  EXPECT_GT(checkpointed.stats.checkpoint_bytes, 0);
}

// ---- forked recovery (ASan-only; fork is excluded from TSan) --------

TEST(ShardForkRecovery, CrashAtEveryPhaseIsBitIdentical) {
  const core::Instance inst = broadcast_instance(24, 12, 31);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "round-robin", 2, sim, TransportKind::kForked);
  for (CrashPhase phase : kPhases) {
    CrashPlan plan;
    plan.crash(1, 3, phase);
    const sim::RunResult recovered =
        run_with(inst, "round-robin", 2, sim, TransportKind::kForked, &plan,
                 /*checkpoint_interval=*/2);
    const std::string label =
        std::string("fork phase=") + crash_phase_name(phase);
    expect_same_run(recovered, reference, label);
    EXPECT_EQ(recovered.stats.worker_crashes, 1) << label;
    EXPECT_EQ(recovered.stats.recoveries, 1) << label;
    EXPECT_GT(recovered.stats.checkpoint_bytes, 0) << label;
  }
}

TEST(ShardForkRecovery, HangIsDetectedByTheBarrierDeadline) {
  const core::Instance inst = broadcast_instance(20, 10, 33);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "round-robin", 2, sim, TransportKind::kForked);
  CrashPlan plan;
  plan.hang(0, 2, CrashPhase::kApply);
  const auto start = std::chrono::steady_clock::now();
  const sim::RunResult recovered = run_with(
      inst, "round-robin", 2, sim, TransportKind::kForked, &plan,
      /*checkpoint_interval=*/2, /*max_respawns=*/3,
      /*barrier_timeout_ms=*/1'000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  expect_same_run(recovered, reference, "fork hang");
  EXPECT_EQ(recovered.stats.worker_crashes, 1);
  EXPECT_EQ(recovered.stats.recoveries, 1);
  EXPECT_LT(elapsed.count(), 30) << "hang detection must not stall the run";
}

TEST(ShardForkRecovery, CrashUnderGilbertElliottFastForwardsTheModel) {
  // Forked children own private copy-on-write fault models; a respawn
  // fast-forwards the chain to the checkpoint's fault cursor and then
  // replays live — no loss records involved.
  const core::Instance inst = broadcast_instance(24, 12, 35);
  faults::GilbertElliott reference_model(0.15, 0.4, 0.6);
  sim::SimOptions sim;
  sim.max_steps = 300;
  sim.seed = 41;
  sim.faults = &reference_model;
  const sim::RunResult reference =
      run_with(inst, "round-robin", 2, sim, TransportKind::kForked);
  ASSERT_GT(reference.stats.lost_moves, 0);
  faults::GilbertElliott recovered_model(0.15, 0.4, 0.6);
  sim::SimOptions crashed = sim;
  crashed.faults = &recovered_model;
  CrashPlan plan;
  plan.crash(1, 5, CrashPhase::kPlan);
  const sim::RunResult recovered =
      run_with(inst, "round-robin", 2, crashed, TransportKind::kForked, &plan,
               /*checkpoint_interval=*/3);
  expect_same_run(recovered, reference, "fork gilbert-elliott");
  EXPECT_EQ(recovered.stats.recoveries, 1);
}

TEST(ShardForkRecovery, PermanentlyDeadShardFailsStructuredAndFast) {
  const core::Instance inst = broadcast_instance(20, 10, 37);
  sim::SimOptions sim;
  sim.max_steps = 200;
  CrashPlan plan;
  plan.crash_always(0, 2, CrashPhase::kPlan);
  const auto start = std::chrono::steady_clock::now();
  try {
    run_with(inst, "round-robin", 2, sim, TransportKind::kForked, &plan,
             /*checkpoint_interval=*/2, /*max_respawns=*/1,
             /*barrier_timeout_ms=*/5'000);
    FAIL() << "expected respawn exhaustion";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("max_respawns (1)"), std::string::npos) << what;
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 30) << "a dead shard must never hang the run";
}

TEST(ShardForkRecovery, ZeroRespawnBudgetNeverHangsOnAWedgedPeer) {
  // The barrier-deadline guarantee independent of respawn: with no
  // budget, a wedged child surfaces as a structured error within the
  // timeout instead of stalling ctest forever.
  const core::Instance inst = broadcast_instance(20, 10, 39);
  sim::SimOptions sim;
  sim.max_steps = 200;
  CrashPlan plan;
  plan.hang(1, 1, CrashPhase::kCommit);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(run_with(inst, "round-robin", 2, sim, TransportKind::kForked,
                        &plan, /*checkpoint_interval=*/0,
                        /*max_respawns=*/0, /*barrier_timeout_ms=*/1'000),
               Error);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 30);
}

TEST(ShardForkRecovery, CoordinatedWaveCrashRecoversAcrossProcesses) {
  // Forked children rebuild wave state from the supervisor's log after
  // a SIGKILL-style death in the wave round; longer and shorter
  // checkpoint intervals cover both the restore-then-replay and the
  // replay-from-init paths through the policy RNG restore.
  const core::Instance inst = broadcast_instance(24, 12, 47);
  sim::SimOptions sim;
  sim.max_steps = 200;
  for (const char* policy_name : {"global", "bandwidth"}) {
    const sim::RunResult reference =
        run_with(inst, policy_name, 2, sim, TransportKind::kForked);
    for (const std::int64_t interval : {std::int64_t{2}, std::int64_t{50}}) {
      CrashPlan plan;
      plan.crash(1, 3, CrashPhase::kWave);
      const sim::RunResult recovered =
          run_with(inst, policy_name, 2, sim, TransportKind::kForked, &plan,
                   interval);
      const std::string label = std::string("fork ") + policy_name +
                                " wave-crash interval=" +
                                std::to_string(interval);
      expect_same_run(recovered, reference, label);
      EXPECT_EQ(recovered.stats.worker_crashes, 1) << label;
      EXPECT_EQ(recovered.stats.recoveries, 1) << label;
    }
  }
}

TEST(ShardForkRecovery, MultipleCrashesAcrossShardsRecover) {
  const core::Instance inst = broadcast_instance(28, 14, 43);
  sim::SimOptions sim;
  sim.max_steps = 200;
  const sim::RunResult reference =
      run_with(inst, "local", 4, sim, TransportKind::kForked);
  ASSERT_GT(reference.steps, 3);  // every kill point must be reachable
  CrashPlan plan;
  plan.crash(0, 1, CrashPhase::kPlan)
      .crash(2, 2, CrashPhase::kApply)
      .crash(3, 3, CrashPhase::kCommit);
  const sim::RunResult recovered =
      run_with(inst, "local", 4, sim, TransportKind::kForked, &plan,
               /*checkpoint_interval=*/3);
  expect_same_run(recovered, reference, "fork multi-crash");
  EXPECT_EQ(recovered.stats.worker_crashes, 3);
  EXPECT_EQ(recovered.stats.recoveries, 3);
}

}  // namespace
}  // namespace ocd::shard
