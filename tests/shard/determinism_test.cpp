// Shard-count invariance: the vertex-sharded runtime must reproduce
// sim::run bit-for-bit — schedules, step counts, loss traces, per-vertex
// completion and upload series — for every supported policy, every shard
// count in {1, 2, 4}, every fault model, and any OCD_JOBS budget.  This
// is the contract that makes sharding an execution detail instead of a
// semantics change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ocd/core/scenario.hpp"
#include "ocd/dynamics/model.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/util/parallel.hpp"

namespace ocd::shard {
namespace {

constexpr std::int32_t kShardCounts[] = {1, 2, 4};
constexpr const char* kPolicies[] = {"round-robin", "random", "local"};

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

core::Instance scattered_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  core::Instance inst(std::move(g), tokens);
  for (VertexId v = 0; v < n; ++v) {
    TokenSet have(static_cast<std::size_t>(tokens));
    have.set(static_cast<TokenId>(v % tokens));
    if (rng.chance(0.3)) have.set(static_cast<TokenId>((v + 1) % tokens));
    inst.set_have(v, have);
    inst.set_want(v, TokenSet::full(static_cast<std::size_t>(tokens)));
  }
  return inst;
}

void expect_schedules_identical(const core::Schedule& a,
                                const core::Schedule& b,
                                const std::string& label) {
  ASSERT_EQ(a.length(), b.length()) << label;
  for (std::size_t s = 0; s < a.steps().size(); ++s) {
    const auto& sa = a.steps()[s].sends();
    const auto& sb = b.steps()[s].sends();
    ASSERT_EQ(sa.size(), sb.size()) << label << " step " << s;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].arc, sb[i].arc) << label << " step " << s;
      EXPECT_EQ(sa[i].tokens, sb[i].tokens) << label << " step " << s;
    }
  }
}

void expect_same_run(const sim::RunResult& sharded,
                     const sim::RunResult& reference,
                     const std::string& label) {
  EXPECT_EQ(sharded.success, reference.success) << label;
  EXPECT_EQ(sharded.steps, reference.steps) << label;
  EXPECT_EQ(sharded.bandwidth, reference.bandwidth) << label;
  EXPECT_EQ(sharded.termination, reference.termination) << label;
  EXPECT_EQ(sharded.stats.useful_moves, reference.stats.useful_moves)
      << label;
  EXPECT_EQ(sharded.stats.redundant_moves, reference.stats.redundant_moves)
      << label;
  EXPECT_EQ(sharded.stats.lost_moves, reference.stats.lost_moves) << label;
  EXPECT_EQ(sharded.stats.moves_per_step, reference.stats.moves_per_step)
      << label;
  EXPECT_EQ(sharded.stats.lost_per_step, reference.stats.lost_per_step)
      << label;
  EXPECT_EQ(sharded.stats.completion_step, reference.stats.completion_step)
      << label;
  EXPECT_EQ(sharded.stats.sent_by_vertex, reference.stats.sent_by_vertex)
      << label;
  expect_schedules_identical(sharded.schedule, reference.schedule, label);
}

sim::RunResult reference_run(const core::Instance& inst,
                             const char* policy_name,
                             const sim::SimOptions& options) {
  const sim::PolicyPtr policy = heuristics::make_policy(policy_name);
  return sim::run(inst, *policy, options);
}

TEST(ShardDeterminism, MatchesSingleProcessForEveryShardCount) {
  for (const auto& make_inst :
       {std::function<core::Instance()>(
            [] { return broadcast_instance(40, 24, 7); }),
        std::function<core::Instance()>(
            [] { return scattered_instance(30, 12, 11); })}) {
    const core::Instance inst = make_inst();
    for (const char* policy_name : kPolicies) {
      sim::SimOptions options;
      options.max_steps = 400;
      options.seed = 99;
      const sim::RunResult reference =
          reference_run(inst, policy_name, options);
      for (std::int32_t shards : kShardCounts) {
        ShardOptions sharded;
        sharded.num_shards = shards;
        sharded.sim = options;
        const sim::RunResult result =
            run_sharded(inst, policy_name, sharded);
        expect_same_run(result, reference,
                        std::string(policy_name) + " shards=" +
                            std::to_string(shards));
      }
    }
  }
}

TEST(ShardDeterminism, MatchesSingleProcessUnderFaults) {
  const core::Instance inst = broadcast_instance(32, 16, 13);

  struct FaultCase {
    const char* label;
    std::function<std::unique_ptr<faults::FaultModel>()> make;
  };
  const std::vector<FaultCase> cases = {
      {"uniform",
       [] { return std::make_unique<faults::UniformLoss>(0.3); }},
      {"gilbert-elliott",
       [] {
         return std::make_unique<faults::GilbertElliott>(0.15, 0.4, 0.6);
       }},
      {"plan", [] {
         auto plan = std::make_unique<faults::FaultPlan>();
         for (std::int64_t step = 0; step < 12; ++step)
           plan->drop(step, static_cast<ArcId>(step % 5),
                      static_cast<TokenId>(step % 16));
         return plan;
       }}};

  for (const char* policy_name : {"round-robin", "local"}) {
    for (const FaultCase& c : cases) {
      sim::SimOptions options;
      options.max_steps = 400;
      options.seed = 5;
      const auto reference_model = c.make();
      options.faults = reference_model.get();
      const sim::RunResult reference =
          reference_run(inst, policy_name, options);
      ASSERT_GT(reference.stats.lost_moves, 0) << c.label;
      for (std::int32_t shards : kShardCounts) {
        const auto sharded_model = c.make();
        ShardOptions sharded;
        sharded.num_shards = shards;
        sharded.sim = options;
        sharded.sim.faults = sharded_model.get();
        const sim::RunResult result =
            run_sharded(inst, policy_name, sharded);
        expect_same_run(result, reference,
                        std::string(policy_name) + "/" + c.label +
                            " shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardDeterminism, InvariantUnderWorkerBudget) {
  const core::Instance inst = broadcast_instance(36, 20, 3);
  sim::SimOptions options;
  options.max_steps = 400;
  const sim::RunResult reference = reference_run(inst, "local", options);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    util::set_parallel_jobs(jobs);
    ShardOptions sharded;
    sharded.num_shards = 4;
    sharded.sim = options;
    const sim::RunResult result = run_sharded(inst, "local", sharded);
    expect_same_run(result, reference, "jobs=" + std::to_string(jobs));
  }
  util::set_parallel_jobs(0);  // restore the environment default
}

TEST(ShardDeterminism, StalledPolicyTerminatesIdentically) {
  // A disconnected receiver can never be satisfied; round-robin keeps
  // sending (watchdog off, no faults), but an instance where nobody has
  // anything to send stalls immediately.
  Digraph g(4);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 0, 2);
  g.add_arc(2, 3, 2);
  g.add_arc(3, 2, 2);
  g.finalize();
  core::Instance inst(std::move(g), 4);
  // Nobody possesses anything; everyone wants token 0 => instant stall.
  for (VertexId v = 0; v < 4; ++v)
    inst.set_want(v, TokenSet::of(4, {0}));
  sim::SimOptions options;
  options.max_steps = 50;
  const sim::RunResult reference = reference_run(inst, "round-robin", options);
  ASSERT_EQ(reference.termination, sim::Termination::kPolicyStalled);
  for (std::int32_t shards : {1, 2, 4}) {
    ShardOptions sharded;
    sharded.num_shards = shards;
    sharded.sim = options;
    const sim::RunResult result = run_sharded(inst, "round-robin", sharded);
    expect_same_run(result, reference,
                    "stall shards=" + std::to_string(shards));
  }
}

TEST(ShardDeterminism, MaxStepsCutoffIdentical) {
  const core::Instance inst = broadcast_instance(24, 32, 21);
  sim::SimOptions options;
  options.max_steps = 3;  // guaranteed not enough
  const sim::RunResult reference = reference_run(inst, "local", options);
  ASSERT_EQ(reference.termination, sim::Termination::kMaxSteps);
  for (std::int32_t shards : kShardCounts) {
    ShardOptions sharded;
    sharded.num_shards = shards;
    sharded.sim = options;
    const sim::RunResult result = run_sharded(inst, "local", sharded);
    expect_same_run(result, reference,
                    "cutoff shards=" + std::to_string(shards));
  }
}

TEST(ShardDeterminism, ScheduleRecordingCanBeDisabled) {
  const core::Instance inst = broadcast_instance(20, 8, 2);
  sim::SimOptions options;
  options.record_schedule = false;
  const sim::RunResult reference =
      reference_run(inst, "round-robin", options);
  ShardOptions sharded;
  sharded.num_shards = 2;
  sharded.sim = options;
  const sim::RunResult result = run_sharded(inst, "round-robin", sharded);
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.steps, reference.steps);
  EXPECT_EQ(result.bandwidth, reference.bandwidth);
  EXPECT_EQ(result.stats.completion_step, reference.stats.completion_step);
}

// ---- envelope ------------------------------------------------------

TEST(ShardDeterminism, RefusesOptionsOutsideTheEnvelope) {
  const core::Instance inst = broadcast_instance(10, 4, 1);
  const auto expect_refused = [&](ShardOptions options,
                                  const char* policy_name,
                                  const char* label) {
    EXPECT_THROW(run_sharded(inst, policy_name, options), Error) << label;
  };

  ShardOptions base;
  base.num_shards = 2;

  ShardOptions stale = base;
  stale.sim.staleness = 2;
  expect_refused(stale, "random", "staleness");

  ShardOptions stale_agg = base;
  stale_agg.sim.stale_aggregates = true;
  expect_refused(stale_agg, "local", "stale_aggregates");

  dynamics::CapacityJitter jitter(0.5, 0);
  ShardOptions dyn = base;
  dyn.sim.dynamics = &jitter;
  expect_refused(dyn, "round-robin", "dynamics");

  ShardOptions completion = base;
  completion.sim.completion = [](VertexId, TokenSetView) { return true; };
  expect_refused(completion, "round-robin", "completion override");

  ShardOptions distances = base;
  distances.sim.precompute_distances = true;
  expect_refused(distances, "round-robin", "precompute_distances");

  expect_refused(base, "random+reliable", "adapter wrapper");

  ShardOptions negative = base;
  negative.sim.max_steps = -1;
  expect_refused(negative, "round-robin", "negative max_steps");

  ShardOptions too_many = base;
  too_many.num_shards = 100;  // > num_vertices
  expect_refused(too_many, "round-robin", "more shards than vertices");
}

TEST(ShardDeterminism, ResolvesShardCountFromEnvironment) {
  EXPECT_EQ(resolve_num_shards(3), 3);
  ::unsetenv("OCD_SHARDS");
  EXPECT_EQ(resolve_num_shards(0), 1);
  ::setenv("OCD_SHARDS", "4", 1);
  EXPECT_EQ(resolve_num_shards(0), 4);
  EXPECT_EQ(resolve_num_shards(2), 2);  // explicit beats environment
  ::setenv("OCD_SHARDS", "zero", 1);
  EXPECT_THROW(resolve_num_shards(0), Error);
  ::setenv("OCD_SHARDS", "-2", 1);
  EXPECT_THROW(resolve_num_shards(0), Error);
  ::unsetenv("OCD_SHARDS");
  EXPECT_THROW(resolve_num_shards(-1), Error);
}

// A flow-refined, eps-relaxed partition moves ownership around, and
// ownership must be invisible: the merged schedule stays bit-identical
// to sim::run, so balance_eps is purely a traffic/balance trade.
TEST(ShardDeterminism, BalanceEpsNeverChangesTheSchedule) {
  const core::Instance inst = broadcast_instance(40, 24, 7);
  sim::SimOptions options;
  options.max_steps = 400;
  options.seed = 99;
  const sim::RunResult reference = reference_run(inst, "local", options);
  for (std::int32_t shards : kShardCounts) {
    ShardOptions sharded;
    sharded.num_shards = shards;
    sharded.balance_eps = 10;
    sharded.sim = options;
    const sim::RunResult result = run_sharded(inst, "local", sharded);
    expect_same_run(result, reference,
                    "eps=10 shards=" + std::to_string(shards));
  }
}

// ---- partition reuse ------------------------------------------------

TEST(ShardDeterminism, AcceptsPrecomputedPartition) {
  const core::Instance inst = broadcast_instance(24, 8, 17);
  const Partition partition = partition_vertices(inst.graph(), 4);
  ShardOptions options;
  options.num_shards = 4;
  const sim::RunResult with_partition =
      run_sharded(inst, "round-robin", options, partition);
  const sim::RunResult without = run_sharded(inst, "round-robin", options);
  expect_same_run(with_partition, without, "precomputed partition");

  ShardOptions mismatched;
  mismatched.num_shards = 2;
  EXPECT_THROW(run_sharded(inst, "round-robin", mismatched, partition),
               Error);
}

}  // namespace
}  // namespace ocd::shard
