// Sharded coordinated planning: the "global" (GlobalGreedy) and
// "bandwidth" planners need the whole possession map to decide, so the
// sharded runtime replicates possession on every shard and inserts one
// wave round (top-k candidate summaries) before each plan phase.  The
// contract is unchanged from the local planners: the merged schedule
// and RunStats are bit-for-bit identical to sim::run for every shard
// count, both transports, any wave_topk, and any fault model — a
// smaller summary horizon may only trade bytes for exact-rescan
// fallbacks, never change a single send.
//
// The ShardCoordinated suite drives the in-process transport (it is
// part of the TSan pass); ShardForkCoordinated drives forked children
// and is ASan-only like the other fork suites.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "ocd/core/scenario.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::shard {
namespace {

constexpr std::int32_t kShardCounts[] = {1, 2, 4};
constexpr const char* kCoordinatedPolicies[] = {"global", "bandwidth"};

core::Instance broadcast_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

core::Instance scattered_instance(std::int32_t n, std::int32_t tokens,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  core::Instance inst(std::move(g), tokens);
  for (VertexId v = 0; v < n; ++v) {
    TokenSet have(static_cast<std::size_t>(tokens));
    have.set(static_cast<TokenId>(v % tokens));
    if (rng.chance(0.3)) have.set(static_cast<TokenId>((v + 1) % tokens));
    inst.set_have(v, have);
    inst.set_want(v, TokenSet::full(static_cast<std::size_t>(tokens)));
  }
  return inst;
}

void expect_same_run(const sim::RunResult& sharded,
                     const sim::RunResult& reference,
                     const std::string& label) {
  EXPECT_EQ(sharded.success, reference.success) << label;
  EXPECT_EQ(sharded.steps, reference.steps) << label;
  EXPECT_EQ(sharded.bandwidth, reference.bandwidth) << label;
  EXPECT_EQ(sharded.termination, reference.termination) << label;
  EXPECT_EQ(sharded.stats.useful_moves, reference.stats.useful_moves)
      << label;
  EXPECT_EQ(sharded.stats.redundant_moves, reference.stats.redundant_moves)
      << label;
  EXPECT_EQ(sharded.stats.lost_moves, reference.stats.lost_moves) << label;
  EXPECT_EQ(sharded.stats.moves_per_step, reference.stats.moves_per_step)
      << label;
  EXPECT_EQ(sharded.stats.lost_per_step, reference.stats.lost_per_step)
      << label;
  EXPECT_EQ(sharded.stats.completion_step, reference.stats.completion_step)
      << label;
  EXPECT_EQ(sharded.stats.sent_by_vertex, reference.stats.sent_by_vertex)
      << label;
  ASSERT_EQ(sharded.schedule.length(), reference.schedule.length()) << label;
  for (std::size_t s = 0; s < reference.schedule.steps().size(); ++s) {
    const auto& sa = sharded.schedule.steps()[s].sends();
    const auto& sb = reference.schedule.steps()[s].sends();
    ASSERT_EQ(sa.size(), sb.size()) << label << " step " << s;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].arc, sb[i].arc) << label << " step " << s;
      EXPECT_EQ(sa[i].tokens, sb[i].tokens) << label << " step " << s;
    }
  }
}

sim::RunResult reference_run(const core::Instance& inst,
                             const char* policy_name,
                             const sim::SimOptions& options) {
  const sim::PolicyPtr policy = heuristics::make_policy(policy_name);
  return sim::run(inst, *policy, options);
}

sim::RunResult run_with(const core::Instance& inst, const char* policy_name,
                        std::int32_t shards, const sim::SimOptions& sim,
                        TransportKind transport, std::int32_t wave_topk = 0) {
  ShardOptions options;
  options.num_shards = shards;
  options.transport = transport;
  options.wave_topk = wave_topk;
  options.sim = sim;
  return run_sharded(inst, policy_name, options);
}

// ---- in-process (TSan pass) ----------------------------------------

TEST(ShardCoordinated, MatchesSingleProcessForEveryShardCount) {
  for (const auto& make_inst :
       {std::function<core::Instance()>(
            [] { return broadcast_instance(40, 24, 7); }),
        std::function<core::Instance()>(
            [] { return scattered_instance(30, 12, 11); })}) {
    const core::Instance inst = make_inst();
    for (const char* policy_name : kCoordinatedPolicies) {
      sim::SimOptions options;
      options.max_steps = 400;
      options.seed = 99;
      const sim::RunResult reference =
          reference_run(inst, policy_name, options);
      for (std::int32_t shards : kShardCounts) {
        const sim::RunResult result = run_with(
            inst, policy_name, shards, options, TransportKind::kInProcess);
        expect_same_run(result, reference,
                        std::string(policy_name) + " shards=" +
                            std::to_string(shards));
      }
    }
  }
}

TEST(ShardCoordinated, MatchesSingleProcessUnderUniformLoss) {
  const core::Instance inst = broadcast_instance(32, 16, 13);
  for (const char* policy_name : kCoordinatedPolicies) {
    sim::SimOptions options;
    options.max_steps = 400;
    options.seed = 5;
    faults::UniformLoss reference_model(0.3);
    options.faults = &reference_model;
    const sim::RunResult reference =
        reference_run(inst, policy_name, options);
    ASSERT_GT(reference.stats.lost_moves, 0) << policy_name;
    for (std::int32_t shards : kShardCounts) {
      faults::UniformLoss sharded_model(0.3);
      sim::SimOptions sharded = options;
      sharded.faults = &sharded_model;
      const sim::RunResult result = run_with(
          inst, policy_name, shards, sharded, TransportKind::kInProcess);
      expect_same_run(result, reference,
                      std::string(policy_name) + "/uniform shards=" +
                          std::to_string(shards));
    }
  }
}

TEST(ShardCoordinated, ExhaustedHorizonFallsBackToTheExactRescan) {
  // wave_topk = 1 starves the summaries: GlobalGreedy's merge runs out
  // of listed ranks while a shard's more-flag is set, forcing the exact
  // serial-rescan fallback — which must leave the schedule untouched.
  const core::Instance inst = broadcast_instance(40, 24, 7);
  sim::SimOptions options;
  options.max_steps = 400;
  options.seed = 99;
  const sim::RunResult reference = reference_run(inst, "global", options);
  for (std::int32_t shards : {2, 4}) {
    const sim::RunResult starved =
        run_with(inst, "global", shards, options, TransportKind::kInProcess,
                 /*wave_topk=*/1);
    expect_same_run(starved, reference,
                    "topk=1 shards=" + std::to_string(shards));
    EXPECT_GT(starved.stats.shard_wave_fallbacks, 0)
        << "a horizon of 1 must actually exercise the fallback";
    const sim::RunResult roomy =
        run_with(inst, "global", shards, options, TransportKind::kInProcess,
                 /*wave_topk=*/1 << 16);
    expect_same_run(roomy, reference,
                    "topk=64k shards=" + std::to_string(shards));
    EXPECT_EQ(roomy.stats.shard_wave_fallbacks, 0)
        << "an unbounded horizon never falls back";
  }
}

TEST(ShardCoordinated, ReportsBarrierTrafficCounters) {
  const core::Instance inst = broadcast_instance(32, 16, 13);
  sim::SimOptions options;
  options.max_steps = 400;
  // Single process: no barrier, all counters stay zero.
  const sim::RunResult reference = reference_run(inst, "global", options);
  EXPECT_EQ(reference.stats.shard_bytes_sent, 0);
  EXPECT_EQ(reference.stats.shard_bytes_received, 0);
  EXPECT_EQ(reference.stats.shard_summary_entries, 0);
  // One shard: no peers, still no traffic.
  const sim::RunResult solo =
      run_with(inst, "global", 1, options, TransportKind::kInProcess);
  EXPECT_EQ(solo.stats.shard_bytes_sent, 0);
  EXPECT_EQ(solo.stats.shard_bytes_received, 0);
  // Two shards: every frame is counted on both ends of the star, and
  // the wave summaries contribute entries.
  const sim::RunResult sharded =
      run_with(inst, "global", 2, options, TransportKind::kInProcess);
  EXPECT_GT(sharded.stats.shard_bytes_sent, 0);
  EXPECT_EQ(sharded.stats.shard_bytes_sent,
            sharded.stats.shard_bytes_received)
      << "a 2-shard star delivers every byte it sends";
  EXPECT_GT(sharded.stats.shard_summary_entries, 0);
}

TEST(ShardCoordinated, ResolvesWaveTopkFromEnvironment) {
  EXPECT_EQ(resolve_wave_topk(3), 3);
  ::unsetenv("OCD_SHARD_WAVE_TOPK");
  EXPECT_EQ(resolve_wave_topk(0), 8);
  ::setenv("OCD_SHARD_WAVE_TOPK", "16", 1);
  EXPECT_EQ(resolve_wave_topk(0), 16);
  EXPECT_EQ(resolve_wave_topk(2), 2);  // explicit beats environment
  ::setenv("OCD_SHARD_WAVE_TOPK", "lots", 1);
  EXPECT_THROW(resolve_wave_topk(0), Error);
  ::unsetenv("OCD_SHARD_WAVE_TOPK");
  EXPECT_THROW(resolve_wave_topk(-4), Error);
}

TEST(ShardCoordinated, ScheduleRecordingCanBeDisabled) {
  const core::Instance inst = broadcast_instance(20, 8, 2);
  sim::SimOptions options;
  options.record_schedule = false;
  const sim::RunResult reference = reference_run(inst, "global", options);
  const sim::RunResult result =
      run_with(inst, "global", 2, options, TransportKind::kInProcess);
  EXPECT_TRUE(result.schedule.empty());
  EXPECT_EQ(result.steps, reference.steps);
  EXPECT_EQ(result.bandwidth, reference.bandwidth);
  EXPECT_EQ(result.stats.completion_step, reference.stats.completion_step);
}

// ---- forked (ASan-only; fork is excluded from TSan) -----------------

TEST(ShardForkCoordinated, MatchesSingleProcessForEveryShardCount) {
  const core::Instance inst = broadcast_instance(32, 16, 13);
  for (const char* policy_name : kCoordinatedPolicies) {
    sim::SimOptions options;
    options.max_steps = 400;
    options.seed = 99;
    const sim::RunResult reference =
        reference_run(inst, policy_name, options);
    for (std::int32_t shards : kShardCounts) {
      const sim::RunResult result = run_with(
          inst, policy_name, shards, options, TransportKind::kForked);
      expect_same_run(result, reference,
                      std::string("fork ") + policy_name + " shards=" +
                          std::to_string(shards));
    }
  }
}

TEST(ShardForkCoordinated, MatchesSingleProcessUnderUniformLoss) {
  const core::Instance inst = broadcast_instance(28, 14, 17);
  for (const char* policy_name : kCoordinatedPolicies) {
    sim::SimOptions options;
    options.max_steps = 400;
    options.seed = 23;
    faults::UniformLoss reference_model(0.3);
    options.faults = &reference_model;
    const sim::RunResult reference =
        reference_run(inst, policy_name, options);
    ASSERT_GT(reference.stats.lost_moves, 0) << policy_name;
    faults::UniformLoss sharded_model(0.3);
    sim::SimOptions sharded = options;
    sharded.faults = &sharded_model;
    const sim::RunResult result = run_with(inst, policy_name, 4, sharded,
                                           TransportKind::kForked);
    expect_same_run(result, reference,
                    std::string("fork ") + policy_name + "/uniform");
  }
}

}  // namespace
}  // namespace ocd::shard
