#include "ocd/exact/bnb.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/exact/ip_solver.hpp"

namespace ocd::exact {
namespace {

core::Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  return inst;
}

TEST(Bnb, LineFeasibilitySweep) {
  const core::Instance inst = line_instance();
  EXPECT_FALSE(dfocd_feasible(inst, 0));
  EXPECT_FALSE(dfocd_feasible(inst, 1));
  core::Schedule witness;
  EXPECT_TRUE(dfocd_feasible(inst, 2, {}, &witness));
  EXPECT_TRUE(core::is_successful(inst, witness));
  EXPECT_LE(witness.length(), 2);
  EXPECT_TRUE(dfocd_feasible(inst, 5));
}

TEST(Bnb, MinMakespanOnLine) {
  const auto result = focd_min_makespan(line_instance(), 6);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->makespan, 2);
}

TEST(Bnb, TrivialInstance) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  EXPECT_TRUE(dfocd_feasible(inst, 0));
  const auto result = focd_min_makespan(inst, 3);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->makespan, 0);
}

TEST(Bnb, UnsatisfiableInstance) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(1, 0);
  inst.add_want(0, 0);
  EXPECT_FALSE(focd_min_makespan(inst, 5).has_value());
}

TEST(Bnb, Figure1MakespanIsTwo) {
  const core::Instance inst = core::figure1_instance();
  const auto result = focd_min_makespan(inst, 5);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->makespan, 2);
  EXPECT_TRUE(core::is_successful(inst, result->schedule));
  // A 2-step solution necessarily spends 6 moves (Figure 1's point);
  // after pruning it is exactly 6.
  EXPECT_GE(result->schedule.bandwidth(), 6);
}

TEST(Bnb, CapacityForcesExtraStep) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 0);
  inst.add_want(1, 1);
  EXPECT_FALSE(dfocd_feasible(inst, 1));
  EXPECT_TRUE(dfocd_feasible(inst, 2));
}

TEST(Bnb, WitnessScheduleRespectsTau) {
  Rng rng(3);
  const core::Instance inst = core::random_small_instance(5, 2, 0.5, rng);
  const auto result = focd_min_makespan(inst, 10);
  ASSERT_TRUE(result.has_value());
  core::Schedule witness;
  // Feasible at makespan but not below.
  EXPECT_TRUE(dfocd_feasible(inst, result->makespan, {}, &witness));
  if (result->makespan > 0) {
    EXPECT_FALSE(dfocd_feasible(inst, result->makespan - 1));
  }
}

TEST(Bnb, NodeBudgetThrows) {
  Rng rng(4);
  const core::Instance inst = core::random_small_instance(6, 3, 0.6, rng);
  BnbOptions options;
  options.max_nodes = 1;
  EXPECT_THROW(focd_min_makespan(inst, 8, options), Error);
}

TEST(Bnb, StatsArePopulated) {
  const core::Instance inst = core::figure1_instance();
  BnbStats stats;
  core::Schedule witness;
  ASSERT_TRUE(dfocd_feasible(inst, 2, {}, &witness, &stats));
  EXPECT_GT(stats.nodes, 0);
  EXPECT_GT(stats.flow_checks, 0);
}

// ----------------------------------------------------------------------
// Cross-validation: combinatorial BnB and the time-indexed IP must
// agree on the minimum makespan of random small instances.
// ----------------------------------------------------------------------
class BnbVsIp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbVsIp, AgreeOnMinimumMakespan) {
  Rng rng(GetParam());
  const core::Instance inst = core::random_small_instance(5, 2, 0.45, rng);
  const auto bnb = focd_min_makespan(inst, 10);
  const auto ip = min_makespan_ip(inst, 10);
  ASSERT_TRUE(bnb.has_value());
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(bnb->makespan, ip->makespan) << inst.summary();
  EXPECT_TRUE(core::is_successful(inst, bnb->schedule));
  EXPECT_TRUE(core::is_successful(inst, ip->schedule));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbVsIp,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ocd::exact
