#include "ocd/exact/hybrid.hpp"

#include <gtest/gtest.h>

#include "ocd/core/bounds.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"

namespace ocd::exact {
namespace {

TEST(Hybrid, SlackOneIsTimeOptimalBandwidth) {
  const core::Instance inst = core::figure1_instance();
  const auto result = solve_hybrid(inst, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->optimal_makespan, 2);
  EXPECT_EQ(result->horizon, 2);
  EXPECT_EQ(result->bandwidth, 6);
  EXPECT_TRUE(core::is_successful(inst, result->schedule));
}

TEST(Hybrid, SlackUnlocksBandwidthOptimum) {
  const core::Instance inst = core::figure1_instance();
  const auto result = solve_hybrid(inst, 1.5);  // horizon = 3
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->horizon, 3);
  EXPECT_EQ(result->bandwidth, 4);
}

TEST(Hybrid, RejectsSlackBelowOne) {
  const core::Instance inst = core::figure1_instance();
  EXPECT_THROW(solve_hybrid(inst, 0.5), ContractViolation);
}

TEST(Hybrid, TrivialInstance) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  const auto result = solve_hybrid(inst, 2.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bandwidth, 0);
  EXPECT_EQ(result->optimal_makespan, 0);
}

TEST(Hybrid, UnsatisfiableReturnsNullopt) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(1, 0);
  inst.add_want(0, 0);
  EXPECT_FALSE(solve_hybrid(inst, 2.0).has_value());
}

TEST(Hybrid, FrontierIsMonotone) {
  const core::Instance inst = core::figure1_instance();
  const auto frontier = bandwidth_time_frontier(inst, 5, 2);
  ASSERT_GE(frontier.size(), 2u);
  EXPECT_EQ(frontier.front().horizon, 2);
  EXPECT_EQ(frontier.front().bandwidth, 6);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_EQ(frontier[i].horizon, frontier[i - 1].horizon + 1);
    EXPECT_LE(frontier[i].bandwidth, frontier[i - 1].bandwidth);
    EXPECT_TRUE(core::is_successful(inst, frontier[i].schedule));
  }
  EXPECT_EQ(frontier.back().bandwidth, 4);
}

TEST(Hybrid, FrontierStopsAtBandwidthFloor) {
  // Figure 1's bandwidth floor is 4 (4 outstanding wants); the frontier
  // must not keep probing horizons after reaching it.
  const core::Instance inst = core::figure1_instance();
  const auto frontier = bandwidth_time_frontier(inst, 10, 3);
  ASSERT_FALSE(frontier.empty());
  EXPECT_EQ(frontier.back().bandwidth, core::bandwidth_lower_bound(inst));
  EXPECT_LE(frontier.size(), 3u);
}

class HybridRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HybridRandom, FrontierValidOnRandomInstances) {
  Rng rng(GetParam());
  const auto inst = core::random_small_instance(4, 2, 0.5, rng);
  const auto frontier = bandwidth_time_frontier(inst, 4, 2);
  for (const auto& point : frontier) {
    EXPECT_TRUE(core::is_successful(inst, point.schedule));
    EXPECT_LE(point.schedule.length(), point.horizon);
    EXPECT_GE(point.bandwidth, core::bandwidth_lower_bound(inst));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridRandom,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace ocd::exact
