#include "ocd/exact/ip_builder.hpp"
#include "ocd/exact/ip_solver.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"

namespace ocd::exact {
namespace {

core::Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  return inst;
}

TEST(IpBuilder, DimensionsMatchFormulation) {
  const core::Instance inst = line_instance();
  const TimeIndexedIp ip(inst, /*horizon=*/2);
  // send: arcs(2) * tokens(1) * steps(2); hold: vertices(3) * tokens(1)
  // * (horizon+1).
  EXPECT_EQ(ip.program().num_variables(), 2 * 1 * 2 + 3 * 1 * 3);
  // possession (2*1*2) + no-minting (3*1*2) + capacity (2*2).
  EXPECT_EQ(ip.program().num_constraints(), 4 + 6 + 4);
}

TEST(IpBuilder, VariableIndicesAreDistinctAndInRange) {
  const core::Instance inst = line_instance();
  const TimeIndexedIp ip(inst, 2);
  std::vector<bool> seen(static_cast<std::size_t>(ip.program().num_variables()),
                         false);
  auto mark = [&](std::int32_t idx) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, ip.program().num_variables());
    EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
    seen[static_cast<std::size_t>(idx)] = true;
  };
  for (ArcId a = 0; a < 2; ++a)
    for (std::int32_t i = 1; i <= 2; ++i) mark(ip.send_var(a, 0, i));
  for (VertexId v = 0; v < 3; ++v)
    for (std::int32_t i = 0; i <= 2; ++i) mark(ip.hold_var(v, 0, i));
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(IpBuilder, InitialAndFinalBoundsEncodeHaveWant) {
  const core::Instance inst = line_instance();
  const TimeIndexedIp ip(inst, 2);
  const auto& program = ip.program();
  // Vertex 0 holds token 0 at time 0 (fixed to 1).
  EXPECT_EQ(program.variable(ip.hold_var(0, 0, 0)).lower, 1.0);
  // Vertex 2 lacks it initially (fixed to 0).
  EXPECT_EQ(program.variable(ip.hold_var(2, 0, 0)).upper, 0.0);
  // Vertex 2 must hold it at the horizon.
  EXPECT_EQ(program.variable(ip.hold_var(2, 0, 2)).lower, 1.0);
}

TEST(IpSolver, LineNeedsTwoSteps) {
  const core::Instance inst = line_instance();
  EXPECT_FALSE(solve_eocd(inst, 1).has_value());
  const auto solved = solve_eocd(inst, 2);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(solved->bandwidth, 2);
  EXPECT_TRUE(core::is_successful(inst, solved->schedule));
}

TEST(IpSolver, MinMakespanMatchesDistance) {
  const core::Instance inst = line_instance();
  const auto result = min_makespan_ip(inst, 5);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->makespan, 2);
}

TEST(IpSolver, TrivialInstanceNeedsNothing) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  const auto solved = solve_eocd(inst, 1);
  ASSERT_TRUE(solved.has_value());
  EXPECT_EQ(solved->bandwidth, 0);
  const auto makespan = min_makespan_ip(inst, 3);
  ASSERT_TRUE(makespan.has_value());
  EXPECT_EQ(makespan->makespan, 0);
}

TEST(IpSolver, UnsatisfiableReturnsNullopt) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(1, 0);
  inst.add_want(0, 0);
  EXPECT_FALSE(min_makespan_ip(inst, 4).has_value());
  EXPECT_FALSE(solve_eocd(inst, 3).has_value());
}

TEST(IpSolver, Figure1MinimumTimeCostsSixMoves) {
  const core::Instance inst = core::figure1_instance();
  const auto fast = solve_eocd(inst, 2);
  ASSERT_TRUE(fast.has_value());
  EXPECT_TRUE(fast->proven_optimal);
  EXPECT_EQ(fast->bandwidth, 6);
  EXPECT_FALSE(solve_eocd(inst, 1).has_value());
}

TEST(IpSolver, Figure1MinimumBandwidthIsFourInThreeSteps) {
  const core::Instance inst = core::figure1_instance();
  const auto slow = solve_eocd(inst, 3);
  ASSERT_TRUE(slow.has_value());
  EXPECT_TRUE(slow->proven_optimal);
  EXPECT_EQ(slow->bandwidth, 4);
  EXPECT_EQ(slow->schedule.length(), 3);
}

TEST(IpSolver, WiderHorizonNeverIncreasesBandwidth) {
  const core::Instance inst = core::figure1_instance();
  const auto h3 = solve_eocd(inst, 3);
  const auto h4 = solve_eocd(inst, 4);
  ASSERT_TRUE(h3.has_value());
  ASSERT_TRUE(h4.has_value());
  EXPECT_LE(h4->bandwidth, h3->bandwidth);
}

TEST(IpSolver, CapacityMattersInModel) {
  // Two tokens over one capacity-1 arc need two steps.
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 0);
  inst.add_want(1, 1);
  EXPECT_FALSE(solve_eocd(inst, 1).has_value());
  const auto two = solve_eocd(inst, 2);
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->bandwidth, 2);
}


TEST(LpBound, BracketedByCountingBoundAndOptimum) {
  // Figure 1 at horizon 2: counting bound 4 < LP bound <= IP optimum 6.
  const core::Instance inst = core::figure1_instance();
  const auto lp_lb = lp_bandwidth_lower_bound(inst, 2);
  ASSERT_TRUE(lp_lb.has_value());
  EXPECT_GE(*lp_lb, 4.0 - 1e-6);   // >= simple counting bound
  EXPECT_LE(*lp_lb, 6.0 + 1e-6);   // <= integral optimum
  // The relay structure forces strictly more than the counting bound.
  EXPECT_GT(*lp_lb, 4.0 + 0.5);
}

TEST(LpBound, TightAtRelaxedHorizon) {
  // With 3 steps the integral optimum is 4; the LP can do no better
  // than the counting bound but no worse either.
  const core::Instance inst = core::figure1_instance();
  const auto lp_lb = lp_bandwidth_lower_bound(inst, 3);
  ASSERT_TRUE(lp_lb.has_value());
  EXPECT_GE(*lp_lb, 4.0 - 1e-6);
  EXPECT_LE(*lp_lb, 4.0 + 1e-6);
}

TEST(LpBound, InfeasibleHorizonReturnsNullopt) {
  const core::Instance inst = core::figure1_instance();
  EXPECT_FALSE(lp_bandwidth_lower_bound(inst, 1).has_value());
}

TEST(LpBound, TrivialInstanceIsZero) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  const auto lp_lb = lp_bandwidth_lower_bound(inst, 1);
  ASSERT_TRUE(lp_lb.has_value());
  EXPECT_DOUBLE_EQ(*lp_lb, 0.0);
}

TEST(LpBound, NeverExceedsIpOptimumOnRandomInstances) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 0x11a0);
    const auto inst = core::random_small_instance(4, 2, 0.5, rng);
    const auto makespan = min_makespan_ip(inst, 10);
    if (!makespan.has_value()) continue;
    const std::int32_t horizon = makespan->makespan + 1;
    const auto ip = solve_eocd(inst, horizon);
    const auto lp_lb = lp_bandwidth_lower_bound(inst, horizon);
    ASSERT_TRUE(ip.has_value()) << seed;
    ASSERT_TRUE(lp_lb.has_value()) << seed;
    EXPECT_LE(*lp_lb, static_cast<double>(ip->bandwidth) + 1e-6) << seed;
  }
}
}  // namespace
}  // namespace ocd::exact
