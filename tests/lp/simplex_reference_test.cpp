// Randomized cross-validation of the simplex against an independent
// geometric reference solver for two-variable LPs: the optimum of a
// bounded feasible 2-D LP lies on a vertex of the feasible polygon, so
// enumerating all constraint-pair intersections (plus box corners)
// yields the exact optimum to compare against.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "ocd/lp/simplex.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::lp {
namespace {

struct Line {
  // ax + by <= c
  double a;
  double b;
  double c;
};

struct TwoVarLp {
  double cx;
  double cy;
  double box = 10.0;  // 0 <= x, y <= box
  std::vector<Line> rows;
};

bool feasible(const TwoVarLp& lp, double x, double y, double tol = 1e-7) {
  if (x < -tol || y < -tol || x > lp.box + tol || y > lp.box + tol)
    return false;
  for (const Line& row : lp.rows) {
    if (row.a * x + row.b * y > row.c + tol) return false;
  }
  return true;
}

/// Exact optimum by vertex enumeration; nullopt when infeasible.
std::optional<double> reference_optimum(const TwoVarLp& lp) {
  std::vector<Line> all = lp.rows;
  all.push_back({-1, 0, 0});       // x >= 0
  all.push_back({0, -1, 0});       // y >= 0
  all.push_back({1, 0, lp.box});   // x <= box
  all.push_back({0, 1, lp.box});   // y <= box

  std::optional<double> best;
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const double det = all[i].a * all[j].b - all[j].a * all[i].b;
      if (std::abs(det) < 1e-9) continue;
      const double x = (all[i].c * all[j].b - all[j].c * all[i].b) / det;
      const double y = (all[i].a * all[j].c - all[j].a * all[i].c) / det;
      if (!feasible(lp, x, y)) continue;
      const double value = lp.cx * x + lp.cy * y;
      if (!best.has_value() || value < *best) best = value;
    }
  }
  return best;
}

LinearProgram to_program(const TwoVarLp& lp) {
  LinearProgram program;
  const auto x = program.add_variable(0, lp.box, lp.cx);
  const auto y = program.add_variable(0, lp.box, lp.cy);
  for (const Line& row : lp.rows) {
    program.add_constraint({{x, row.a}, {y, row.b}}, Relation::kLessEqual,
                           row.c);
  }
  return program;
}

class SimplexReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexReference, MatchesVertexEnumeration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    TwoVarLp lp;
    lp.cx = rng.uniform_real() * 4 - 2;
    lp.cy = rng.uniform_real() * 4 - 2;
    const int rows = 1 + static_cast<int>(rng.below(5));
    for (int r = 0; r < rows; ++r) {
      lp.rows.push_back({rng.uniform_real() * 4 - 2,
                         rng.uniform_real() * 4 - 2,
                         rng.uniform_real() * 12 - 2});
    }

    const auto reference = reference_optimum(lp);
    const auto solved = solve_lp(to_program(lp));
    if (!reference.has_value()) {
      EXPECT_EQ(solved.status, SolveStatus::kInfeasible)
          << "trial " << trial;
    } else {
      ASSERT_EQ(solved.status, SolveStatus::kOptimal) << "trial " << trial;
      EXPECT_NEAR(solved.objective, *reference, 1e-5)
          << "trial " << trial << " cx=" << lp.cx << " cy=" << lp.cy;
      EXPECT_TRUE(feasible(lp, solved.values[0], solved.values[1]))
          << "trial " << trial;
    }
    lp.rows.clear();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexReference,
                         ::testing::Range<std::uint64_t>(100, 108));

}  // namespace
}  // namespace ocd::lp
