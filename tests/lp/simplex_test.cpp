#include "ocd/lp/simplex.hpp"

#include <gtest/gtest.h>

#include "ocd/util/rng.hpp"

namespace ocd::lp {
namespace {

TEST(Simplex, UnconstrainedSitsAtBounds) {
  LinearProgram lp;
  lp.add_variable(1, 4, 2.0);   // minimized -> lower bound
  lp.add_variable(1, 4, -3.0);  // negative cost -> upper bound
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.values[0], 1.0);
  EXPECT_DOUBLE_EQ(sol.values[1], 4.0);
  EXPECT_DOUBLE_EQ(sol.objective, 2.0 - 12.0);
}

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negative).
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -3);
  const auto y = lp.add_variable(0, kInfinity, -5);
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4);
  lp.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12);
  lp.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.values[1], 6.0, 1e-7);
  EXPECT_NEAR(sol.objective, -36.0, 1e-7);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // min x + y  s.t.  x + y >= 2,  x - y = 0.5.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 1);
  const auto y = lp.add_variable(0, kInfinity, 1);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 2);
  lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::kEqual, 0.5);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
  EXPECT_NEAR(sol.values[0], 1.25, 1e-7);
  EXPECT_NEAR(sol.values[1], 0.75, 1e-7);
}

TEST(Simplex, DetectsInfeasibility) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, 1, 1);
  lp.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 2);
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsContradictoryRows) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, 0);
  const auto y = lp.add_variable(0, kInfinity, 0);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 1);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 2);
  EXPECT_EQ(solve_lp(lp).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1);
  lp.add_constraint({{x, -1.0}}, Relation::kLessEqual, 0);  // x >= 0, vacuous
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(Simplex, BoundedColumnsPreventUnboundedness) {
  LinearProgram lp;
  lp.add_variable(0, 100, -1);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(sol.values[0], 100.0);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x  s.t. x >= -5 with x in [-10, 10].
  LinearProgram lp;
  const auto x = lp.add_variable(-10, 10, 1);
  lp.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, -5);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], -5.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy: many redundant rows through the
  // origin; Bland fallback must terminate.
  LinearProgram lp;
  const auto x = lp.add_variable(0, kInfinity, -1);
  const auto y = lp.add_variable(0, kInfinity, -1);
  for (int i = 0; i < 8; ++i) {
    lp.add_constraint({{x, 1.0 + i * 0.1}, {y, 1.0}}, Relation::kLessEqual,
                      10);
  }
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_LT(sol.objective, 0);
}

TEST(Simplex, FixedVariablesViaBounds) {
  LinearProgram lp;
  const auto x = lp.add_variable(3, 3, 1);  // fixed
  const auto y = lp.add_variable(0, kInfinity, 1);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 5);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 2.0, 1e-7);
}

TEST(Simplex, SolveWithBoundsOverride) {
  LinearProgram lp;
  lp.add_variable(0, 10, -1);
  const auto base = solve_lp(lp);
  ASSERT_EQ(base.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(base.values[0], 10.0);

  const auto overridden = solve_lp_with_bounds(lp, {0}, {4});
  ASSERT_EQ(overridden.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(overridden.values[0], 4.0);

  const auto crossed = solve_lp_with_bounds(lp, {5}, {4});
  EXPECT_EQ(crossed.status, SolveStatus::kInfeasible);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers (supply 20, 30), 3 consumers (demand 10, 25, 15),
  // costs rowwise {8,6,10 / 9,12,13}; known optimum 435... compute via
  // known structure: x11=0? Verify against brute-force-ish expectation
  // by checking feasibility + objective <= any hand-built plan.
  LinearProgram lp;
  std::array<std::array<std::int32_t, 3>, 2> cost{{{8, 6, 10}, {9, 12, 13}}};
  std::array<std::array<std::int32_t, 3>, 2> var{};
  for (int s = 0; s < 2; ++s)
    for (int c = 0; c < 3; ++c)
      var[s][c] = lp.add_variable(0, kInfinity, cost[s][c]);
  lp.add_constraint({{var[0][0], 1.0}, {var[0][1], 1.0}, {var[0][2], 1.0}},
                    Relation::kLessEqual, 20);
  lp.add_constraint({{var[1][0], 1.0}, {var[1][1], 1.0}, {var[1][2], 1.0}},
                    Relation::kLessEqual, 30);
  const double demand[3] = {10, 25, 15};
  for (int c = 0; c < 3; ++c) {
    lp.add_constraint({{var[0][c], 1.0}, {var[1][c], 1.0}},
                      Relation::kGreaterEqual, demand[c]);
  }
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  // Hand-checkable optimum: supplier 1 ships 20 to consumer 2 (cost 6);
  // supplier 2 ships 10,5,15 to consumers 1,2,3: 90+60+195 = 345;
  // total 120 + 345 = 465.
  EXPECT_NEAR(sol.objective, 465.0, 1e-6);
}

TEST(Simplex, RandomLpsSatisfyConstraintsAtOptimum) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    LinearProgram lp;
    const int n = 4 + static_cast<int>(rng.below(4));
    for (int j = 0; j < n; ++j)
      lp.add_variable(0, 1 + rng.uniform_real() * 9,
                      rng.uniform_real() * 4 - 2);
    const int rows = 3 + static_cast<int>(rng.below(4));
    for (int i = 0; i < rows; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.chance(0.6))
          terms.push_back({j, rng.uniform_real() * 2 - 0.5});
      }
      if (terms.empty()) continue;
      lp.add_constraint(std::move(terms), Relation::kLessEqual,
                        rng.uniform_real() * 10);
    }
    const auto sol = solve_lp(lp);
    ASSERT_NE(sol.status, SolveStatus::kIterationLimit) << "trial " << trial;
    if (sol.status == SolveStatus::kOptimal) {
      EXPECT_TRUE(lp.is_feasible(sol.values, 1e-6, false))
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace ocd::lp
