#include "ocd/lp/model.hpp"

#include <gtest/gtest.h>

namespace ocd::lp {
namespace {

TEST(Model, AddVariableValidatesBounds) {
  LinearProgram lp;
  EXPECT_EQ(lp.add_variable(0, 1, 2.5), 0);
  EXPECT_EQ(lp.num_variables(), 1);
  EXPECT_THROW(lp.add_variable(2, 1, 0), ContractViolation);
  EXPECT_THROW(lp.add_variable(-kInfinity, kInfinity, 0), ContractViolation);
  EXPECT_NO_THROW(lp.add_variable(0, kInfinity, 0));
  EXPECT_NO_THROW(lp.add_variable(-kInfinity, 5, 0));
}

TEST(Model, BinaryHelper) {
  LinearProgram lp;
  const auto x = lp.add_binary(3.0, "x");
  EXPECT_EQ(lp.variable(x).lower, 0.0);
  EXPECT_EQ(lp.variable(x).upper, 1.0);
  EXPECT_EQ(lp.variable(x).type, VarType::kInteger);
  EXPECT_EQ(lp.variable(x).name, "x");
  EXPECT_TRUE(lp.has_integer_variables());
}

TEST(Model, ConstraintMergesDuplicateTerms) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, 10, 1);
  const auto c =
      lp.add_constraint({{x, 1.0}, {x, 2.0}}, Relation::kLessEqual, 5);
  ASSERT_EQ(lp.constraint(c).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(lp.constraint(c).terms[0].coeff, 3.0);
}

TEST(Model, ConstraintDropsZeroCoefficients) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, 10, 1);
  const auto y = lp.add_variable(0, 10, 1);
  const auto c = lp.add_constraint({{x, 1.0}, {y, -1.0}, {y, 1.0}},
                                   Relation::kEqual, 2);
  ASSERT_EQ(lp.constraint(c).terms.size(), 1u);
  EXPECT_EQ(lp.constraint(c).terms[0].var, x);
}

TEST(Model, ConstraintRejectsUnknownVariable) {
  LinearProgram lp;
  lp.add_variable(0, 1, 0);
  EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Relation::kLessEqual, 1),
               ContractViolation);
}

TEST(Model, ObjectiveValue) {
  LinearProgram lp;
  lp.add_variable(0, 10, 2);
  lp.add_variable(0, 10, -1);
  EXPECT_DOUBLE_EQ(lp.objective_value({3, 4}), 2.0);
}

TEST(Model, FeasibilityChecker) {
  LinearProgram lp;
  const auto x = lp.add_binary(1);
  const auto y = lp.add_variable(0, 5, 1);
  lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 4);
  lp.add_constraint({{y, 1.0}}, Relation::kGreaterEqual, 1);

  EXPECT_TRUE(lp.is_feasible({1, 2}, 1e-9, true));
  EXPECT_FALSE(lp.is_feasible({1, 4}, 1e-9, true));   // row 1 violated
  EXPECT_FALSE(lp.is_feasible({1, 0.5}, 1e-9, false));  // row 2 violated
  EXPECT_FALSE(lp.is_feasible({0.5, 2}, 1e-9, true));   // integrality
  EXPECT_TRUE(lp.is_feasible({0.5, 2}, 1e-9, false));
  EXPECT_FALSE(lp.is_feasible({2, 2}, 1e-9, false));  // x out of bounds
}

TEST(Model, EqualityRelation) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, 10, 1);
  lp.add_constraint({{x, 2.0}}, Relation::kEqual, 6);
  EXPECT_TRUE(lp.is_feasible({3}, 1e-9, false));
  EXPECT_FALSE(lp.is_feasible({2.9}, 1e-9, false));
}

}  // namespace
}  // namespace ocd::lp
