#include "ocd/lp/mip.hpp"

#include <gtest/gtest.h>

#include <bitset>

#include "ocd/util/rng.hpp"

namespace ocd::lp {
namespace {

TEST(Mip, PureLpPassesThrough) {
  LinearProgram lp;
  const auto x = lp.add_variable(0, 4, -1);
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 2.5);
  const auto result = solve_mip(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, -2.5, 1e-7);
}

TEST(Mip, IntegralityForcesRounding) {
  // max x (x integer) s.t. x <= 2.5  ->  x = 2.
  LinearProgram lp;
  const auto x = lp.add_variable(0, 10, -1, VarType::kInteger);
  lp.add_constraint({{x, 1.0}}, Relation::kLessEqual, 2.5);
  const auto result = solve_mip(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.values[0], 2.0, 1e-9);
  EXPECT_NEAR(result.objective, -2.0, 1e-9);
}

TEST(Mip, KnapsackAgainstBruteForce) {
  // 0/1 knapsack: weights, values; capacity 10.
  const std::vector<double> weight{3, 4, 5, 6};
  const std::vector<double> value{4, 5, 6, 7};
  LinearProgram lp;
  std::vector<Term> row;
  for (std::size_t i = 0; i < weight.size(); ++i) {
    const auto x = lp.add_binary(-value[i]);
    row.push_back({x, weight[i]});
  }
  lp.add_constraint(row, Relation::kLessEqual, 10);
  const auto result = solve_mip(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_TRUE(result.proven_optimal);

  double best = 0;
  for (unsigned mask = 0; mask < 16; ++mask) {
    double w = 0;
    double v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      if ((mask >> i) & 1u) {
        w += weight[i];
        v += value[i];
      }
    }
    if (w <= 10) best = std::max(best, v);
  }
  EXPECT_NEAR(-result.objective, best, 1e-7);
}

TEST(Mip, RandomKnapsacksMatchBruteForce) {
  Rng rng(31337);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 6 + static_cast<int>(rng.below(5));  // 6..10 items
    std::vector<double> weight(static_cast<std::size_t>(n));
    std::vector<double> value(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      weight[static_cast<std::size_t>(i)] =
          1 + static_cast<double>(rng.below(9));
      value[static_cast<std::size_t>(i)] =
          1 + static_cast<double>(rng.below(19));
    }
    const double capacity = 2 + static_cast<double>(rng.below(20));

    LinearProgram lp;
    std::vector<Term> row;
    for (int i = 0; i < n; ++i) {
      const auto x = lp.add_binary(-value[static_cast<std::size_t>(i)]);
      row.push_back({x, weight[static_cast<std::size_t>(i)]});
    }
    lp.add_constraint(row, Relation::kLessEqual, capacity);
    const auto result = solve_mip(lp);
    ASSERT_EQ(result.status, SolveStatus::kOptimal) << "trial " << trial;
    ASSERT_TRUE(result.proven_optimal) << "trial " << trial;

    double best = 0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      double w = 0;
      double v = 0;
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1u) {
          w += weight[static_cast<std::size_t>(i)];
          v += value[static_cast<std::size_t>(i)];
        }
      }
      if (w <= capacity) best = std::max(best, v);
    }
    EXPECT_NEAR(-result.objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(Mip, SetCover) {
  // Universe {0..4}; sets: {0,1},{1,2,3},{3,4},{0,4},{2}; min cover = 2
  // ({1,2,3} + {0,4}).
  const std::vector<std::vector<int>> sets{{0, 1}, {1, 2, 3}, {3, 4}, {0, 4},
                                           {2}};
  LinearProgram lp;
  std::vector<std::int32_t> x;
  for (std::size_t s = 0; s < sets.size(); ++s) x.push_back(lp.add_binary(1));
  for (int e = 0; e < 5; ++e) {
    std::vector<Term> row;
    for (std::size_t s = 0; s < sets.size(); ++s) {
      for (int member : sets[s]) {
        if (member == e) row.push_back({x[s], 1.0});
      }
    }
    lp.add_constraint(std::move(row), Relation::kGreaterEqual, 1);
  }
  const auto result = solve_mip(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-7);
}

TEST(Mip, InfeasibleIntegerProgram) {
  // 2x = 3 with x integer in [0, 5].
  LinearProgram lp;
  const auto x = lp.add_variable(0, 5, 0, VarType::kInteger);
  lp.add_constraint({{x, 2.0}}, Relation::kEqual, 3);
  const auto result = solve_mip(lp);
  EXPECT_EQ(result.status, SolveStatus::kInfeasible);
}

TEST(Mip, AssignmentProblemIsIntegralAtRoot) {
  // 3x3 assignment; LP relaxation is integral (totally unimodular), so
  // few nodes should be explored.
  const double cost[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  LinearProgram lp;
  std::int32_t x[3][3];
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) x[i][j] = lp.add_binary(cost[i][j]);
  for (int i = 0; i < 3; ++i) {
    lp.add_constraint({{x[i][0], 1.0}, {x[i][1], 1.0}, {x[i][2], 1.0}},
                      Relation::kEqual, 1);
    lp.add_constraint({{x[0][i], 1.0}, {x[1][i], 1.0}, {x[2][i], 1.0}},
                      Relation::kEqual, 1);
  }
  const auto result = solve_mip(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  // Optimal assignment: (0,1)=2,(1,2)=7,(2,0)=3 -> 12 ... check brute:
  // permutations: 4+3+6=13, 4+7+1=12, 2+4+6=12, 2+7+3=12, 8+4+1=13,
  // 8+3+3=14 -> minimum 12.
  EXPECT_NEAR(result.objective, 12.0, 1e-7);
}

TEST(Mip, NodeBudgetReportsIterationLimit) {
  // A small hard-ish parity problem with an absurd 1-node budget.
  LinearProgram lp;
  std::vector<Term> row;
  for (int i = 0; i < 10; ++i) row.push_back({lp.add_binary(-1), 1.0});
  lp.add_constraint(row, Relation::kLessEqual, 5.5);
  MipOptions options;
  options.max_nodes = 1;
  const auto result = solve_mip(lp, options);
  // Either it found the (easy) incumbent at the root or it reports the
  // budget; it must not claim proven optimality.
  if (result.status == SolveStatus::kOptimal) {
    EXPECT_FALSE(result.proven_optimal);
  } else {
    EXPECT_EQ(result.status, SolveStatus::kIterationLimit);
  }
}

TEST(Mip, BestBoundNeverExceedsIncumbent) {
  LinearProgram lp;
  std::vector<Term> row;
  for (int i = 0; i < 8; ++i) row.push_back({lp.add_binary(-(1 + i % 3)), 2.0 + i});
  lp.add_constraint(row, Relation::kLessEqual, 17);
  const auto result = solve_mip(lp);
  ASSERT_EQ(result.status, SolveStatus::kOptimal);
  EXPECT_LE(result.best_bound, result.objective + 1e-6);
}

}  // namespace
}  // namespace ocd::lp
