#include "ocd/core/prune.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(2, 0);
  return inst;
}

TEST(Prune, RemovesRepeatDeliveries) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(0, 0, 2);
  s.append(std::move(a));
  Timestep b;
  b.add(0, 0, 2);  // vertex 1 already has token 0
  b.add(1, 0, 2);
  s.append(std::move(b));
  const Schedule pruned = prune(inst, s);
  EXPECT_EQ(pruned.bandwidth(), 2);
  EXPECT_TRUE(is_successful(inst, pruned));
}

TEST(Prune, RemovesUnusedDeliveries) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(0, TokenSet::of(2, {0, 1}));  // token 1 is never wanted or used
  s.append(std::move(a));
  Timestep b;
  b.add(1, 0, 2);
  s.append(std::move(b));
  const Schedule pruned = prune(inst, s);
  EXPECT_EQ(pruned.bandwidth(), 2);  // token 1's move is gone
  for (const Timestep& step : pruned.steps()) {
    for (const ArcSend& send : step.sends()) EXPECT_FALSE(send.tokens.test(1));
  }
}

TEST(Prune, KeepsRelayDeliveriesThatFeedLaterMoves) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(0, 0, 2);  // relay hop: vertex 1 does not want token 0 but
  s.append(std::move(a));
  Timestep b;
  b.add(1, 0, 2);  // ...must hold it to forward here
  s.append(std::move(b));
  const Schedule pruned = prune(inst, s);
  EXPECT_EQ(pruned.bandwidth(), 2);
  EXPECT_TRUE(is_successful(inst, pruned));
}

TEST(Prune, DropsDeliveryToVertexAlreadyHolding) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_have(1, 0);
  inst.add_want(1, 0);
  Schedule s;
  Timestep a;
  a.add(0, 0, 1);
  s.append(std::move(a));
  const Schedule pruned = prune(inst, s);
  EXPECT_EQ(pruned.bandwidth(), 0);
}

TEST(Prune, SameStepDuplicatesCollapseToOne) {
  Digraph g(3);
  g.add_arc(0, 2, 1);
  g.add_arc(1, 2, 1);
  Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_have(1, 0);
  inst.add_want(2, 0);
  Schedule s;
  Timestep a;
  a.add(0, 0, 1);
  a.add(1, 0, 1);
  s.append(std::move(a));
  const Schedule pruned = prune(inst, s);
  EXPECT_EQ(pruned.bandwidth(), 1);
  EXPECT_TRUE(is_successful(inst, pruned));
}

TEST(Prune, IntraStepChainingNotAssumed) {
  // v1 receives token at step 0 and forwards at step 1; pruning must
  // keep the step-0 delivery even though v1 does not want the token.
  // Additionally a same-step (receive, forward) pair would be invalid,
  // and pruning must not create one.
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(0, 0, 2);
  a.add(0, 1, 2);
  s.append(std::move(a));
  Timestep b;
  b.add(1, 0, 2);
  s.append(std::move(b));
  const Schedule pruned = prune(inst, s);
  EXPECT_TRUE(validate(inst, pruned).valid);
  EXPECT_TRUE(is_successful(inst, pruned));
}

TEST(Prune, EmptySchedule) {
  const Instance inst = line_instance();
  const Schedule pruned = prune(inst, Schedule{});
  EXPECT_TRUE(pruned.empty());
}

// ----------------------------------------------------------------------
// Property sweep: for every heuristic on random instances, the pruned
// schedule stays valid and successful, with bandwidth <= the original
// and >= the simple lower bound (outstanding wants).
// ----------------------------------------------------------------------
struct PruneCase {
  std::string policy;
  std::uint64_t seed;
};

class PruneProperty : public ::testing::TestWithParam<PruneCase> {};

TEST_P(PruneProperty, PrunedScheduleRemainsSuccessfulAndSmaller) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Digraph g = topology::random_overlay(24, rng);
  Instance inst = single_source_all_receivers(std::move(g), 12, 0);

  auto policy = heuristics::make_policy(param.policy);
  sim::SimOptions options;
  options.seed = param.seed;
  const auto run = sim::run(inst, *policy, options);
  ASSERT_TRUE(run.success);

  const Schedule pruned = prune(inst, run.schedule);
  EXPECT_TRUE(is_successful(inst, pruned));
  EXPECT_LE(pruned.bandwidth(), run.schedule.bandwidth());
  EXPECT_LE(pruned.length(), run.schedule.length());
  EXPECT_GE(pruned.bandwidth(), inst.total_outstanding());
  // Pruning is idempotent.
  const Schedule twice = prune(inst, pruned);
  EXPECT_EQ(twice.bandwidth(), pruned.bandwidth());
}

std::vector<PruneCase> prune_cases() {
  std::vector<PruneCase> cases;
  for (const std::string& name : heuristics::all_policy_names()) {
    for (std::uint64_t seed : {11ull, 22ull}) cases.push_back({name, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PruneProperty, ::testing::ValuesIn(prune_cases()),
    [](const ::testing::TestParamInfo<PruneCase>& info) {
      std::string name = info.param.policy;
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace ocd::core
