#include "ocd/core/compact.hpp"

#include <gtest/gtest.h>

#include "ocd/core/prune.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/scripted.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(2, 0);
  inst.add_want(2, 1);
  return inst;
}

TEST(Compact, PullsNeedlesslyLateMovesForward) {
  const Instance inst = line_instance();
  // Wasteful schedule: sends one token per step although capacity is 2.
  Schedule sloppy;
  Timestep s1;
  s1.add(0, 0, 2);
  sloppy.append(std::move(s1));
  Timestep s2;
  s2.add(0, 1, 2);
  sloppy.append(std::move(s2));
  Timestep s3;
  s3.add(1, 0, 2);
  sloppy.append(std::move(s3));
  Timestep s4;
  s4.add(1, 1, 2);
  sloppy.append(std::move(s4));
  ASSERT_TRUE(is_successful(inst, sloppy));

  const Schedule tight = compact_schedule(inst, sloppy);
  EXPECT_TRUE(is_successful(inst, tight));
  EXPECT_EQ(tight.length(), 2);  // both tokens move together
  EXPECT_EQ(tight.bandwidth(), sloppy.bandwidth());
}

TEST(Compact, RemovesLeadingIdleSteps) {
  const Instance inst = line_instance();
  Schedule delayed;
  delayed.append(Timestep{});
  delayed.append(Timestep{});
  Timestep s1;
  s1.add(0, TokenSet::of(2, {0, 1}));
  delayed.append(std::move(s1));
  Timestep s2;
  s2.add(1, TokenSet::of(2, {0, 1}));
  delayed.append(std::move(s2));
  const Schedule tight = compact_schedule(inst, delayed);
  EXPECT_EQ(tight.length(), 2);
  EXPECT_TRUE(is_successful(inst, tight));
}

TEST(Compact, RespectsPossessionChains) {
  // The relay hop cannot be compacted below 2 steps.
  const Instance inst = line_instance();
  Schedule minimal;
  Timestep s1;
  s1.add(0, TokenSet::of(2, {0, 1}));
  minimal.append(std::move(s1));
  Timestep s2;
  s2.add(1, TokenSet::of(2, {0, 1}));
  minimal.append(std::move(s2));
  const Schedule same = compact_schedule(inst, minimal);
  EXPECT_EQ(same.length(), 2);
}

TEST(Compact, RespectsCapacity) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance inst(std::move(g), 3);
  for (TokenId t = 0; t < 3; ++t) {
    inst.add_have(0, t);
    inst.add_want(1, t);
  }
  Schedule serial;
  for (TokenId t = 0; t < 3; ++t) {
    Timestep s;
    s.add(0, t, 3);
    serial.append(std::move(s));
  }
  const Schedule tight = compact_schedule(inst, serial);
  EXPECT_EQ(tight.length(), 3);  // capacity 1 forbids speedup
  EXPECT_TRUE(validate(inst, tight).valid);
}

TEST(Compact, MergesIdenticalDuplicateMoves) {
  const Instance inst = line_instance();
  Schedule dup;
  Timestep s1;
  s1.add(0, 0, 2);
  dup.append(std::move(s1));
  Timestep s2;
  s2.add(0, 0, 2);  // same transfer again
  s2.add(1, 0, 2);
  dup.append(std::move(s2));
  const Schedule tight = compact_schedule(inst, dup);
  EXPECT_LE(tight.bandwidth(), dup.bandwidth());
  EXPECT_TRUE(validate(inst, tight).valid);
}

TEST(Compact, EmptyScheduleStaysEmpty) {
  const Instance inst = line_instance();
  EXPECT_TRUE(compact_schedule(inst, Schedule{}).empty());
}

TEST(Compact, ZeroBandwidthScheduleCompactsToEmpty) {
  // A schedule made purely of idle timesteps has bandwidth 0; the
  // OCD_ENSURES postcondition admits it explicitly (length() can only
  // shrink to 0, never "improve" on a moveless schedule).
  const Instance inst = line_instance();
  Schedule idle;
  idle.append(Timestep{});
  idle.append(Timestep{});
  idle.append(Timestep{});
  ASSERT_EQ(idle.bandwidth(), 0);
  const Schedule tight = compact_schedule(inst, idle);
  EXPECT_TRUE(tight.empty());
  EXPECT_EQ(tight.bandwidth(), 0);
}

TEST(Compact, TrailingEmptyTimestepsAreTrimmed) {
  // Trailing idle steps must be dropped by the trim() path while the
  // carried moves land as early as possession allows.
  const Instance inst = line_instance();
  Schedule padded;
  Timestep s1;
  s1.add(0, TokenSet::of(2, {0, 1}));
  padded.append(std::move(s1));
  Timestep s2;
  s2.add(1, TokenSet::of(2, {0, 1}));
  padded.append(std::move(s2));
  padded.append(Timestep{});
  padded.append(Timestep{});
  ASSERT_EQ(padded.length(), 4);
  ASSERT_TRUE(is_successful(inst, padded));

  const Schedule tight = compact_schedule(inst, padded);
  EXPECT_EQ(tight.length(), 2);  // idle tail gone, relay chain kept
  EXPECT_FALSE(tight.steps().back().empty());
  EXPECT_EQ(tight.bandwidth(), padded.bandwidth());
  EXPECT_TRUE(is_successful(inst, tight));
}

TEST(Compact, InterleavedIdleStepsCollapse) {
  // Idle steps scattered through the schedule (not only trailing) are
  // squeezed out as long as possession chains permit.
  const Instance inst = line_instance();
  Schedule sparse;
  sparse.append(Timestep{});
  Timestep s1;
  s1.add(0, TokenSet::of(2, {0, 1}));
  sparse.append(std::move(s1));
  sparse.append(Timestep{});
  Timestep s2;
  s2.add(1, TokenSet::of(2, {0, 1}));
  sparse.append(std::move(s2));
  sparse.append(Timestep{});
  const Schedule tight = compact_schedule(inst, sparse);
  EXPECT_EQ(tight.length(), 2);
  EXPECT_TRUE(is_successful(inst, tight));
}

TEST(Compact, TwoPhaseDelayIsCompactedAway) {
  Rng rng(5);
  Digraph g = topology::random_overlay(15, rng);
  const Instance inst = single_source_all_receivers(std::move(g), 6, 0);
  sim::TwoPhasePolicy policy("global", /*delay=*/4);
  const auto run = sim::run(inst, policy);
  ASSERT_TRUE(run.success);
  const Schedule tight = compact_schedule(inst, run.schedule);
  EXPECT_EQ(tight.length(), run.steps - 4);
  EXPECT_TRUE(is_successful(inst, tight));
}

class CompactProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CompactProperty, NeverWorseAlwaysValid) {
  Rng rng(9);
  Digraph g = topology::random_overlay(20, rng);
  const Instance inst = single_source_all_receivers(std::move(g), 10, 0);
  auto policy = heuristics::make_policy(GetParam());
  const auto run = sim::run(inst, *policy);
  ASSERT_TRUE(run.success);

  const Schedule compacted = compact_schedule(inst, run.schedule);
  EXPECT_TRUE(is_successful(inst, compacted));
  EXPECT_LE(compacted.length(), run.schedule.length());
  EXPECT_LE(compacted.bandwidth(), run.schedule.bandwidth());

  // Full post-pass: prune then compact dominates both dimensions.
  const Schedule optimized = optimize_schedule(inst, run.schedule);
  EXPECT_TRUE(is_successful(inst, optimized));
  EXPECT_LE(optimized.length(), run.schedule.length());
  EXPECT_LE(optimized.bandwidth(),
            prune(inst, run.schedule).bandwidth());

  // Idempotence.
  const Schedule twice = compact_schedule(inst, compacted);
  EXPECT_EQ(twice.length(), compacted.length());
}

INSTANTIATE_TEST_SUITE_P(All, CompactProperty,
                         ::testing::ValuesIn(heuristics::all_policy_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace ocd::core
