#include "ocd/core/instance.hpp"

#include <gtest/gtest.h>

namespace ocd::core {
namespace {

Digraph line3() {
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  return g;
}

TEST(Instance, ConstructionInitializesEmptySets) {
  Instance inst(line3(), 4);
  EXPECT_EQ(inst.num_vertices(), 3);
  EXPECT_EQ(inst.num_tokens(), 4);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_TRUE(inst.have(v).empty());
    EXPECT_TRUE(inst.want(v).empty());
  }
  inst.validate();
}

TEST(Instance, AddHaveWant) {
  Instance inst(line3(), 4);
  inst.add_have(0, 2);
  inst.add_want(2, 2);
  EXPECT_TRUE(inst.have(0).test(2));
  EXPECT_TRUE(inst.want(2).test(2));
  EXPECT_FALSE(inst.have(1).test(2));
}

TEST(Instance, SetHaveRejectsWrongUniverse) {
  Instance inst(line3(), 4);
  EXPECT_THROW(inst.set_have(0, TokenSet(5)), ContractViolation);
  EXPECT_NO_THROW(inst.set_have(0, TokenSet(4)));
}

TEST(Instance, TriviallySatisfied) {
  Instance inst(line3(), 2);
  EXPECT_TRUE(inst.is_trivially_satisfied());
  inst.add_want(2, 0);
  EXPECT_FALSE(inst.is_trivially_satisfied());
  inst.add_have(2, 0);
  EXPECT_TRUE(inst.is_trivially_satisfied());
}

TEST(Instance, SatisfiableFollowsReachability) {
  Instance inst(line3(), 2);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  EXPECT_TRUE(inst.is_satisfiable());  // 0 -> 1 -> 2 path exists

  Instance backward(line3(), 2);
  backward.add_have(2, 0);
  backward.add_want(0, 0);
  EXPECT_FALSE(backward.is_satisfiable());  // arcs point the wrong way
}

TEST(Instance, UnsourcedWantedTokenIsUnsatisfiable) {
  Instance inst(line3(), 2);
  inst.add_want(1, 1);  // nobody has token 1
  EXPECT_FALSE(inst.is_satisfiable());
}

TEST(Instance, SatisfiableIgnoresAlreadyOwnedWants) {
  Instance inst(line3(), 1);
  inst.add_have(2, 0);
  inst.add_want(2, 0);  // wants what it has; no source needed elsewhere
  EXPECT_TRUE(inst.is_satisfiable());
}

TEST(Instance, SourcesOfListsHolders) {
  Instance inst(line3(), 2);
  inst.add_have(0, 0);
  inst.add_have(2, 0);
  inst.add_have(1, 1);
  EXPECT_EQ(inst.sources_of(0), (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(inst.sources_of(1), (std::vector<VertexId>{1}));
}

TEST(Instance, TotalOutstandingCountsMissingWants) {
  Instance inst(line3(), 3);
  inst.add_have(0, 0);
  inst.add_want(1, 0);
  inst.add_want(1, 1);
  inst.add_want(2, 0);
  inst.add_have(2, 0);  // already satisfied
  EXPECT_EQ(inst.total_outstanding(), 2);
}

TEST(Instance, FileBookkeeping) {
  Instance inst(line3(), 10);
  const auto f = inst.add_file(2, 4);
  EXPECT_EQ(f, 0);
  EXPECT_EQ(inst.files().size(), 1u);
  const TokenSet tokens = inst.files()[0].tokens(10);
  EXPECT_EQ(tokens.to_vector(), (std::vector<TokenId>{2, 3, 4, 5}));
  EXPECT_THROW(inst.add_file(8, 4), ContractViolation);  // overruns universe
}

TEST(Instance, SummaryMentionsDimensions) {
  Instance inst(line3(), 4);
  const std::string s = inst.summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("tokens=4"), std::string::npos);
}

}  // namespace
}  // namespace ocd::core
