#include "ocd/core/bounds.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

Instance line_instance(std::int32_t capacity = 1) {
  Digraph g(3);
  g.add_arc(0, 1, capacity);
  g.add_arc(1, 2, capacity);
  Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(2, 0);
  inst.add_want(2, 1);
  return inst;
}

TEST(Bounds, BandwidthCountsOutstandingPairs) {
  const Instance inst = line_instance();
  EXPECT_EQ(bandwidth_lower_bound(inst), 2);
}

TEST(Bounds, BandwidthZeroWhenSatisfied) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  EXPECT_EQ(bandwidth_lower_bound(inst), 0);
}

TEST(Bounds, DistanceBoundIsHopDistance) {
  const Instance inst = line_instance();
  EXPECT_EQ(distance_lower_bound(inst), 2);
}

TEST(Bounds, DistanceBoundThrowsWhenUnreachable) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance inst(std::move(g), 1);
  inst.add_have(1, 0);
  inst.add_want(0, 0);  // arc points the wrong way
  EXPECT_THROW(distance_lower_bound(inst), Error);
}

TEST(Bounds, MakespanAccountsForInCapacity) {
  // Vertex 2 wants 2 tokens over a capacity-1 tail arc at distance 2:
  // the M_i(v) bound gives radius 2 + ceil(0/1) combined with the pure
  // capacity view; the true optimum is 3 (second token trails one step
  // behind the first).
  const Instance inst = line_instance(/*capacity=*/1);
  const auto bound = makespan_lower_bound(inst);
  EXPECT_GE(bound, 2);
  const auto exact = exact::focd_min_makespan(inst, 10);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->makespan, 3);
  EXPECT_LE(bound, exact->makespan);
}

TEST(Bounds, MakespanTightOnWideLink) {
  const Instance inst = line_instance(/*capacity=*/2);
  EXPECT_EQ(makespan_lower_bound(inst), 2);
  const auto exact = exact::focd_min_makespan(inst, 10);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->makespan, 2);
}

TEST(Bounds, OneStepLookahead) {
  Digraph g(2);
  g.add_arc(0, 1, 2);
  Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 0);
  inst.add_want(1, 1);
  std::vector<TokenSet> possession{inst.have(0), inst.have(1)};
  EXPECT_EQ(one_step_lookahead_bound(inst, possession), 1);

  // Shrink capacity: two tokens cannot cross a 1-capacity arc in a step.
  Digraph g2(2);
  g2.add_arc(0, 1, 1);
  Instance narrow(std::move(g2), 2);
  narrow.add_have(0, 0);
  narrow.add_have(0, 1);
  narrow.add_want(1, 0);
  narrow.add_want(1, 1);
  std::vector<TokenSet> possession2{narrow.have(0), narrow.have(1)};
  EXPECT_EQ(one_step_lookahead_bound(narrow, possession2), 2);
}

TEST(Bounds, OneStepLookaheadZeroWhenDone) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  std::vector<TokenSet> possession{inst.have(0), inst.have(1)};
  EXPECT_EQ(one_step_lookahead_bound(inst, possession), 0);
}

TEST(Bounds, SerialSteinerUpperBoundAtLeastLower) {
  Rng rng(9);
  Digraph g = topology::random_overlay(15, rng);
  Instance inst = single_source_all_receivers(std::move(g), 4, 0);
  const auto lower = bandwidth_lower_bound(inst);
  const auto upper = bandwidth_upper_bound_serial_steiner(inst);
  EXPECT_GE(upper, lower);
}

// Property: on small random instances the bounds bracket the exact
// optimum computed by branch and bound.
class BoundsSandwich : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsSandwich, LowerBoundsNeverExceedOptimum) {
  Rng rng(GetParam());
  const Instance inst = random_small_instance(5, 2, 0.4, rng);
  const auto exact = exact::focd_min_makespan(inst, 12);
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(makespan_lower_bound(inst), exact->makespan);
  EXPECT_LE(distance_lower_bound(inst), exact->makespan);
  EXPECT_LE(bandwidth_lower_bound(inst), exact->schedule.bandwidth());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsSandwich,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace ocd::core
