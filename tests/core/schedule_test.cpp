#include "ocd/core/schedule.hpp"

#include <gtest/gtest.h>

namespace ocd::core {
namespace {

TEST(Timestep, AddMergesSendsPerArc) {
  Timestep step;
  step.add(3, TokenSet::of(10, {1, 2}));
  step.add(3, TokenSet::of(10, {2, 5}));
  ASSERT_EQ(step.sends().size(), 1u);
  EXPECT_EQ(step.sends()[0].tokens.to_vector(),
            (std::vector<TokenId>{1, 2, 5}));
  EXPECT_EQ(step.moves(), 3);
}

TEST(Timestep, AddSingleToken) {
  Timestep step;
  step.add(0, 4, 10);
  step.add(0, 7, 10);
  step.add(1, 4, 10);
  EXPECT_EQ(step.sends().size(), 2u);
  EXPECT_EQ(step.moves(), 3);
}

TEST(Timestep, EmptyTokenSetIgnored) {
  Timestep step;
  step.add(0, TokenSet(10));
  EXPECT_TRUE(step.sends().empty());
  EXPECT_TRUE(step.empty());
}

TEST(Timestep, CompactRemovesHollowEntries) {
  Timestep step;
  step.add(0, 1, 10);
  step.sends()[0].tokens.reset(1);
  EXPECT_TRUE(step.empty());
  step.compact();
  EXPECT_TRUE(step.sends().empty());
}

TEST(Timestep, NegativeArcRejected) {
  Timestep step;
  EXPECT_THROW(step.add(-1, 0, 10), ContractViolation);
}

TEST(Schedule, LengthAndBandwidth) {
  Schedule schedule;
  Timestep a;
  a.add(0, TokenSet::of(8, {0, 1}));
  Timestep b;
  b.add(1, TokenSet::of(8, {2}));
  schedule.append(std::move(a));
  schedule.append(std::move(b));
  EXPECT_EQ(schedule.length(), 2);
  EXPECT_EQ(schedule.bandwidth(), 3);
  EXPECT_FALSE(schedule.empty());
}

TEST(Schedule, TrimDropsTrailingEmptySteps) {
  Schedule schedule;
  Timestep a;
  a.add(0, 0, 4);
  schedule.append(std::move(a));
  schedule.append(Timestep{});
  schedule.append(Timestep{});
  EXPECT_EQ(schedule.length(), 3);
  schedule.trim();
  EXPECT_EQ(schedule.length(), 1);
}

TEST(Schedule, TrimKeepsInteriorEmptySteps) {
  Schedule schedule;
  schedule.append(Timestep{});
  Timestep b;
  b.add(0, 0, 4);
  schedule.append(std::move(b));
  schedule.trim();
  EXPECT_EQ(schedule.length(), 2);  // leading empty step preserved
}

TEST(Schedule, EmptyScheduleBasics) {
  Schedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.length(), 0);
  EXPECT_EQ(schedule.bandwidth(), 0);
  schedule.trim();
  EXPECT_TRUE(schedule.empty());
}

}  // namespace
}  // namespace ocd::core
