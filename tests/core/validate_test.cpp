#include "ocd/core/validate.hpp"

#include <gtest/gtest.h>

namespace ocd::core {
namespace {

/// 0 -> 1 -> 2 line with capacity 1, token 0 at vertex 0, wanted by 2.
Instance line_instance() {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  return inst;
}

Schedule relay_schedule() {
  Schedule s;
  Timestep a;
  a.add(0, 0, 1);  // arc 0: 0 -> 1
  s.append(std::move(a));
  Timestep b;
  b.add(1, 0, 1);  // arc 1: 1 -> 2
  s.append(std::move(b));
  return s;
}

TEST(Validate, AcceptsCorrectRelay) {
  const Instance inst = line_instance();
  const auto result = validate(inst, relay_schedule());
  EXPECT_TRUE(result.valid);
  EXPECT_TRUE(result.successful);
  EXPECT_TRUE(result.violation.empty());
  EXPECT_TRUE(result.final_possession[2].test(0));
  EXPECT_TRUE(is_successful(inst, relay_schedule()));
}

TEST(Validate, DetectsPossessionViolation) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(1, 0, 1);  // vertex 1 does not yet have token 0
  s.append(std::move(a));
  const auto result = validate(inst, s);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.violation.find("possession"), std::string::npos);
}

TEST(Validate, SameStepForwardingIsIllegal) {
  // Receiving at step i does not allow sending at step i.
  const Instance inst = line_instance();
  Schedule s;
  Timestep both;
  both.add(0, 0, 1);
  both.add(1, 0, 1);
  s.append(std::move(both));
  EXPECT_FALSE(validate(inst, s).valid);
}

TEST(Validate, DetectsCapacityViolation) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance inst(std::move(g), 3);
  for (TokenId t = 0; t < 3; ++t) inst.add_have(0, t);
  Schedule s;
  Timestep a;
  a.add(0, TokenSet::of(3, {0, 1}));  // 2 tokens > capacity 1
  s.append(std::move(a));
  const auto result = validate(inst, s);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.violation.find("capacity"), std::string::npos);
}

TEST(Validate, DetectsUnknownArc) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(5, 0, 1);
  s.append(std::move(a));
  const auto result = validate(inst, s);
  EXPECT_FALSE(result.valid);
  EXPECT_NE(result.violation.find("unknown arc"), std::string::npos);
}

TEST(Validate, DetectsUniverseMismatch) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(0, 0, 2);  // universe 2 vs instance universe 1
  s.append(std::move(a));
  EXPECT_FALSE(validate(inst, s).valid);
}

TEST(Validate, ValidButUnsuccessful) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(0, 0, 1);  // token reaches vertex 1, never vertex 2
  s.append(std::move(a));
  const auto result = validate(inst, s);
  EXPECT_TRUE(result.valid);
  EXPECT_FALSE(result.successful);
}

TEST(Validate, EmptyScheduleSucceedsOnlyWhenTrivial) {
  const Instance inst = line_instance();
  EXPECT_FALSE(validate(inst, Schedule{}).successful);

  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance trivial(std::move(g), 1);
  trivial.add_have(0, 0);
  EXPECT_TRUE(validate(trivial, Schedule{}).successful);
}

TEST(Validate, PossessionTraceTracksEachStep) {
  const Instance inst = line_instance();
  const auto trace = possession_trace(inst, relay_schedule());
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_TRUE(trace[0][0].test(0));
  EXPECT_FALSE(trace[0][1].test(0));
  EXPECT_TRUE(trace[1][1].test(0));
  EXPECT_FALSE(trace[1][2].test(0));
  EXPECT_TRUE(trace[2][2].test(0));
}

TEST(Validate, PossessionTraceThrowsOnInvalid) {
  const Instance inst = line_instance();
  Schedule s;
  Timestep a;
  a.add(1, 0, 1);
  s.append(std::move(a));
  EXPECT_THROW(possession_trace(inst, s), Error);
}

TEST(Validate, DuplicateDeliverySameStepIsValid) {
  Digraph g(3);
  g.add_arc(0, 2, 1);
  g.add_arc(1, 2, 1);
  Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_have(1, 0);
  inst.add_want(2, 0);
  Schedule s;
  Timestep a;
  a.add(0, 0, 1);
  a.add(1, 0, 1);
  s.append(std::move(a));
  const auto result = validate(inst, s);
  EXPECT_TRUE(result.valid);
  EXPECT_TRUE(result.successful);
}

}  // namespace
}  // namespace ocd::core
