#include "ocd/core/steiner.hpp"

#include <gtest/gtest.h>

#include "ocd/core/bounds.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

Digraph star5() {
  // 0 at the center, arcs 0 -> {1,2,3,4}.
  Digraph g(5);
  for (VertexId v = 1; v < 5; ++v) g.add_arc(0, v, 1);
  return g;
}

TEST(Steiner, StarTreeUsesOneArcPerTerminal) {
  const Digraph g = star5();
  const SteinerTree tree = steiner_tree(g, {0}, {1, 2, 3, 4});
  EXPECT_EQ(tree.cost(), 4);
  EXPECT_EQ(tree.height(), 1);
}

TEST(Steiner, PathTreeDepth) {
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(2, 3, 1);
  const SteinerTree tree = steiner_tree(g, {0}, {3});
  EXPECT_EQ(tree.cost(), 3);
  EXPECT_EQ(tree.height(), 3);
}

TEST(Steiner, SharedPathReused) {
  // 0 -> 1 -> {2, 3}: terminals 2 and 3 share the 0->1 arc.
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(1, 3, 1);
  const SteinerTree tree = steiner_tree(g, {0}, {2, 3});
  EXPECT_EQ(tree.cost(), 3);
  EXPECT_EQ(tree.height(), 2);
}

TEST(Steiner, MultipleRootsActAsOneSource) {
  Digraph g(4);
  g.add_arc(0, 2, 1);
  g.add_arc(1, 3, 1);
  const SteinerTree tree = steiner_tree(g, {0, 1}, {2, 3});
  EXPECT_EQ(tree.cost(), 2);
  EXPECT_EQ(tree.height(), 1);
}

TEST(Steiner, TerminalAlreadyInRootsCostsNothing) {
  const Digraph g = star5();
  const SteinerTree tree = steiner_tree(g, {0}, {0});
  EXPECT_EQ(tree.cost(), 0);
}

TEST(Steiner, UnreachableTerminalThrows) {
  Digraph g(3);
  g.add_arc(0, 1, 1);
  EXPECT_THROW(steiner_tree(g, {0}, {2}), Error);
}

TEST(Steiner, EmptyRootsRejected) {
  const Digraph g = star5();
  EXPECT_THROW(steiner_tree(g, {}, {1}), ContractViolation);
}

TEST(SerialSteiner, ScheduleIsValidAndSuccessful) {
  Rng rng(4);
  Digraph g = topology::random_overlay(12, rng);
  const Instance inst = single_source_all_receivers(std::move(g), 3, 0);
  const Schedule schedule = serial_steiner_schedule(inst);
  EXPECT_TRUE(is_successful(inst, schedule));
}

TEST(SerialSteiner, BandwidthMatchesSteinerCosts) {
  Rng rng(4);
  Digraph g = topology::random_overlay(12, rng);
  const Instance inst = single_source_all_receivers(std::move(g), 3, 0);
  const Schedule schedule = serial_steiner_schedule(inst);
  EXPECT_EQ(schedule.bandwidth(),
            bandwidth_upper_bound_serial_steiner(inst));
}

TEST(SerialSteiner, SingleTokenToAllUsesExactlyNMinusOneMoves) {
  // Every vertex wants the token: the Steiner tree is a spanning tree,
  // whose cost n-1 is also the optimal bandwidth.
  Rng rng(8);
  Digraph g = topology::random_overlay(10, rng);
  const Instance inst = single_source_all_receivers(std::move(g), 1, 0);
  const Schedule schedule = serial_steiner_schedule(inst);
  EXPECT_EQ(schedule.bandwidth(), 9);
}

TEST(SerialSteiner, Figure1BandwidthOptimal) {
  // On the Figure-1 instance the serial Steiner schedule achieves the
  // minimum bandwidth of 4 (the s->w1->w2->{w3,w4} tree).
  const Instance inst = figure1_instance();
  const Schedule schedule = serial_steiner_schedule(inst);
  EXPECT_TRUE(is_successful(inst, schedule));
  EXPECT_EQ(schedule.bandwidth(), 4);
  EXPECT_EQ(schedule.length(), 3);
}


TEST(SteinerPacking, SameBandwidthShorterSchedule) {
  Rng rng(11);
  Digraph g = topology::random_overlay(18, rng);
  const Instance inst = single_source_all_receivers(std::move(g), 6, 0);
  const Schedule serial = serial_steiner_schedule(inst);
  const Schedule packed = steiner_packing_schedule(inst);
  EXPECT_TRUE(is_successful(inst, packed));
  EXPECT_EQ(packed.bandwidth(), serial.bandwidth());
  EXPECT_LT(packed.length(), serial.length());
}

TEST(SteinerPacking, RespectsCapacities) {
  // Narrow source link: packing cannot exceed capacity 2 per step.
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 2);
  Instance inst(std::move(g), 6);
  for (TokenId t = 0; t < 6; ++t) {
    inst.add_have(0, t);
    inst.add_want(2, t);
  }
  const Schedule packed = steiner_packing_schedule(inst);
  EXPECT_TRUE(is_successful(inst, packed));
  EXPECT_TRUE(validate(inst, packed).valid);
  // 6 tokens over a capacity-2 relay chain: 3 batches + pipeline = 4.
  EXPECT_EQ(packed.length(), 4);
}

TEST(SteinerPacking, TrivialAndUnsourcedCases) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  Instance trivial(std::move(g), 1);
  trivial.add_have(0, 0);
  EXPECT_TRUE(steiner_packing_schedule(trivial).empty());

  Digraph g2(2);
  g2.add_arc(0, 1, 1);
  Instance broken(std::move(g2), 1);
  broken.add_want(1, 0);  // no holder anywhere
  EXPECT_THROW(steiner_packing_schedule(broken), Error);
}

TEST(SteinerPacking, Figure1FourMovesThreeSteps) {
  const Instance inst = figure1_instance();
  const Schedule packed = steiner_packing_schedule(inst);
  EXPECT_TRUE(is_successful(inst, packed));
  EXPECT_EQ(packed.bandwidth(), 4);
  EXPECT_EQ(packed.length(), 3);
}

}  // namespace
}  // namespace ocd::core
