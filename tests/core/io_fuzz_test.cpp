// Round-trip fuzzing of the instance text format over randomized
// scenarios, and resilience against randomly corrupted inputs (parse
// errors, never crashes or silent misparses).
#include <gtest/gtest.h>

#include <sstream>

#include "ocd/core/io.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"

namespace ocd::core {
namespace {

Instance random_instance(std::uint64_t seed) {
  Rng rng(seed);
  switch (seed % 4) {
    case 0: {
      Digraph g = topology::random_overlay(10 + seed % 20, rng);
      return single_source_all_receivers(std::move(g), 4 + seed % 12, 0);
    }
    case 1: {
      Digraph g = topology::random_overlay(16, rng);
      return subdivided_files(std::move(g), 12, 3, 0);
    }
    case 2: {
      Digraph g = topology::random_overlay(16, rng);
      return subdivided_files_random_senders(std::move(g), 12, 4, rng);
    }
    default:
      return random_small_instance(6, 3, 0.5, rng);
  }
}

class IoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzz, RoundTripPreservesEverything) {
  const Instance original = random_instance(GetParam());
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);

  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_tokens(), original.num_tokens());
  ASSERT_EQ(loaded.graph().num_arcs(), original.graph().num_arcs());
  for (ArcId a = 0; a < original.graph().num_arcs(); ++a) {
    EXPECT_EQ(loaded.graph().arc(a).from, original.graph().arc(a).from);
    EXPECT_EQ(loaded.graph().arc(a).to, original.graph().arc(a).to);
    EXPECT_EQ(loaded.graph().arc(a).capacity,
              original.graph().arc(a).capacity);
  }
  for (VertexId v = 0; v < original.num_vertices(); ++v) {
    EXPECT_EQ(loaded.have(v), original.have(v)) << "vertex " << v;
    EXPECT_EQ(loaded.want(v), original.want(v)) << "vertex " << v;
  }
  EXPECT_EQ(loaded.total_outstanding(), original.total_outstanding());
  EXPECT_EQ(loaded.is_satisfiable(), original.is_satisfiable());
}

TEST_P(IoFuzz, CorruptedInputNeverCrashes) {
  const Instance original = random_instance(GetParam());
  std::stringstream buffer;
  save_instance(original, buffer);
  std::string text = buffer.str();

  Rng rng(GetParam() * 31 + 3);
  for (int trial = 0; trial < 25; ++trial) {
    std::string corrupted = text;
    switch (rng.below(4)) {
      case 0:  // flip a character
        corrupted[rng.below(corrupted.size())] =
            static_cast<char>('0' + rng.below(10));
        break;
      case 1:  // truncate
        corrupted.resize(rng.below(corrupted.size()));
        break;
      case 2:  // delete a line
      {
        const auto pos = corrupted.find('\n', rng.below(corrupted.size()));
        if (pos != std::string::npos) corrupted.erase(0, pos + 1);
        break;
      }
      default:  // inject garbage
        corrupted.insert(rng.below(corrupted.size()), "zzz ");
        break;
    }
    std::stringstream in(corrupted);
    try {
      const Instance parsed = load_instance(in);
      // Accepting a mutation is fine only if the result still
      // self-validates (e.g. a capacity digit changed).
      parsed.validate();
    } catch (const Error&) {
      // Expected for most corruptions.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace ocd::core
