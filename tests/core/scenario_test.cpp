#include "ocd/core/scenario.hpp"

#include <gtest/gtest.h>

#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

Digraph small_graph(Rng& rng) {
  return topology::random_overlay(20, rng);
}

TEST(Scenario, SingleSourceAllReceivers) {
  Rng rng(1);
  const Instance inst =
      single_source_all_receivers(small_graph(rng), 16, /*source=*/0);
  EXPECT_EQ(inst.have(0).count(), 16u);
  EXPECT_TRUE(inst.want(0).empty());
  for (VertexId v = 1; v < inst.num_vertices(); ++v) {
    EXPECT_TRUE(inst.have(v).empty());
    EXPECT_EQ(inst.want(v).count(), 16u);
  }
  EXPECT_EQ(inst.files().size(), 1u);
  EXPECT_TRUE(inst.is_satisfiable());
}

TEST(Scenario, ReceiverDensityThresholdExtremes) {
  Rng rng(2);
  auto zero = single_source_receiver_density(small_graph(rng), 8, 0, 0.0, rng);
  EXPECT_EQ(zero.num_receivers, 0);
  EXPECT_EQ(zero.instance.total_outstanding(), 0);

  auto one = single_source_receiver_density(small_graph(rng), 8, 0, 1.0, rng);
  EXPECT_EQ(one.num_receivers, one.instance.num_vertices() - 1);
}

TEST(Scenario, ReceiverDensityMonotoneInExpectation) {
  Rng rng(3);
  const Digraph g = small_graph(rng);
  std::int32_t low_total = 0;
  std::int32_t high_total = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng r1(seed);
    Rng r2(seed);
    Digraph g1 = g;
    Digraph g2 = g;
    low_total +=
        single_source_receiver_density(std::move(g1), 4, 0, 0.2, r1)
            .num_receivers;
    high_total +=
        single_source_receiver_density(std::move(g2), 4, 0, 0.8, r2)
            .num_receivers;
  }
  EXPECT_LT(low_total, high_total);
}

TEST(Scenario, SubdividedFilesPartitionTokensAndVertices) {
  Rng rng(4);
  Digraph g = topology::random_overlay(40, rng);
  const Instance inst = subdivided_files(std::move(g), 32, 4, /*source=*/0);
  EXPECT_EQ(inst.files().size(), 4u);
  // Source holds everything, wants nothing.
  EXPECT_EQ(inst.have(0).count(), 32u);
  EXPECT_TRUE(inst.want(0).empty());
  // Every non-source vertex wants exactly one 8-token file.
  std::vector<int> group_sizes(4, 0);
  for (VertexId v = 1; v < inst.num_vertices(); ++v) {
    EXPECT_EQ(inst.want(v).count(), 8u);
    const TokenId first = inst.want(v).first();
    EXPECT_EQ(first % 8, 0);
    ++group_sizes[static_cast<std::size_t>(first / 8)];
  }
  // Groups nearly equal: 39 vertices over 4 groups -> sizes 9..10.
  for (int size : group_sizes) {
    EXPECT_GE(size, 9);
    EXPECT_LE(size, 10);
  }
}

TEST(Scenario, SubdividedFilesOneFileEqualsAllReceivers) {
  Rng rng(5);
  Digraph g = topology::random_overlay(20, rng);
  const Instance inst = subdivided_files(std::move(g), 16, 1, 0);
  for (VertexId v = 1; v < inst.num_vertices(); ++v)
    EXPECT_EQ(inst.want(v).count(), 16u);
}

TEST(Scenario, SubdividedFilesRequiresDivisibility) {
  Rng rng(6);
  Digraph g = topology::random_overlay(20, rng);
  EXPECT_THROW(subdivided_files(std::move(g), 10, 3, 0), ContractViolation);
}

TEST(Scenario, RandomSendersNeverWantTheirOwnFile) {
  Rng rng(7);
  Digraph g = topology::random_overlay(40, rng);
  const Instance inst =
      subdivided_files_random_senders(std::move(g), 32, 8, rng);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    // A sender's haves must not intersect its wants.
    EXPECT_FALSE(inst.have(v).intersects(inst.want(v)))
        << "vertex " << v << " wants part of the file it sources";
  }
  // Every token has exactly one holder.
  for (TokenId t = 0; t < inst.num_tokens(); ++t)
    EXPECT_EQ(inst.sources_of(t).size(), 1u);
  EXPECT_TRUE(inst.is_satisfiable());
}

TEST(Scenario, Figure1InstanceShape) {
  const Instance inst = figure1_instance();
  EXPECT_EQ(inst.num_vertices(), 7);
  EXPECT_EQ(inst.num_tokens(), 1);
  EXPECT_EQ(inst.graph().num_arcs(), 8);
  EXPECT_TRUE(inst.have(0).test(0));
  EXPECT_EQ(inst.total_outstanding(), 4);
  EXPECT_TRUE(inst.is_satisfiable());
}

TEST(Scenario, AdversarialPathShape) {
  const Instance inst = adversarial_path(5, 10, 7);
  EXPECT_EQ(inst.num_vertices(), 6);
  EXPECT_EQ(inst.have(0).count(), 10u);
  EXPECT_EQ(inst.want(5).to_vector(), (std::vector<TokenId>{7}));
  EXPECT_TRUE(inst.is_satisfiable());
  EXPECT_THROW(adversarial_path(3, 4, 4), ContractViolation);
}

TEST(Scenario, RandomSmallInstanceIsSatisfiableAndSeeded) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Instance inst = random_small_instance(5, 3, 0.5, rng);
    EXPECT_TRUE(inst.is_satisfiable()) << "seed " << seed;
    EXPECT_GT(inst.total_outstanding(), 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ocd::core
