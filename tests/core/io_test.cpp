#include "ocd/core/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

bool instances_equal(const Instance& a, const Instance& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_tokens() != b.num_tokens()) return false;
  if (a.graph().num_arcs() != b.graph().num_arcs()) return false;
  for (ArcId i = 0; i < a.graph().num_arcs(); ++i) {
    const Arc& x = a.graph().arc(i);
    const Arc& y = b.graph().arc(i);
    if (x.from != y.from || x.to != y.to || x.capacity != y.capacity)
      return false;
  }
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    if (!(a.have(v) == b.have(v)) || !(a.want(v) == b.want(v))) return false;
  }
  if (a.files().size() != b.files().size()) return false;
  for (std::size_t i = 0; i < a.files().size(); ++i) {
    if (a.files()[i].first != b.files()[i].first ||
        a.files()[i].size != b.files()[i].size)
      return false;
  }
  return true;
}

TEST(InstanceIo, RoundTripFigure1) {
  const Instance original = figure1_instance();
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  EXPECT_TRUE(instances_equal(original, loaded));
}

TEST(InstanceIo, RoundTripRandomScenario) {
  Rng rng(3);
  Digraph g = topology::random_overlay(25, rng);
  const Instance original = subdivided_files(std::move(g), 16, 4, 0);
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  EXPECT_TRUE(instances_equal(original, loaded));
}

TEST(InstanceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "ocd-instance v1\n"
      "\n"
      "vertices 2 tokens 1\n"
      "# arcs\n"
      "arc 0 1 3\n"
      "have 0 0\n"
      "want 1 0\n"
      "end\n");
  const Instance inst = load_instance(in);
  EXPECT_EQ(inst.num_vertices(), 2);
  EXPECT_TRUE(inst.have(0).test(0));
  EXPECT_TRUE(inst.want(1).test(0));
}

TEST(InstanceIo, MalformedInputsRejectedWithLineNumbers) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    std::stringstream in(text);
    try {
      load_instance(in);
      FAIL() << "expected parse error for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("bogus\n", "ocd-instance");
  expect_error("ocd-instance v1\nvertices x tokens 2\n", "expected");
  expect_error("ocd-instance v1\nvertices 2 tokens 1\narc 0 5 1\nend\n",
               "out of range");
  expect_error("ocd-instance v1\nvertices 2 tokens 1\narc 0 1 1\narc 0 1 2\nend\n",
               "duplicate");
  expect_error("ocd-instance v1\nvertices 2 tokens 1\nhave 0 7\nend\n",
               "token id out of range");
  expect_error("ocd-instance v1\nvertices 2 tokens 1\nfile 0 9\nend\n",
               "file range");
  expect_error("ocd-instance v1\nvertices 2 tokens 1\nfrob 1\nend\n",
               "unknown keyword");
  expect_error("ocd-instance v1\nvertices 2 tokens 1\narc 0 1 1\n",
               "missing 'end'");
}

TEST(InstanceIo, FileRoundTrip) {
  const std::string path = "/tmp/ocd_io_test_instance.txt";
  const Instance original = figure1_instance();
  save_instance_file(original, path);
  const Instance loaded = load_instance_file(path);
  EXPECT_TRUE(instances_equal(original, loaded));
  std::remove(path.c_str());
  EXPECT_THROW(load_instance_file(path), Error);
}

TEST(ScheduleIo, FileRoundTripWithRealRun) {
  Rng rng(4);
  Digraph g = topology::random_overlay(15, rng);
  const std::int32_t arcs = g.num_arcs();
  const Instance inst = single_source_all_receivers(std::move(g), 8, 0);
  auto policy = heuristics::make_policy("global");
  const auto run = sim::run(inst, *policy);
  ASSERT_TRUE(run.success);

  const std::string path = "/tmp/ocd_io_test_schedule.bin";
  save_schedule_file(run.schedule, arcs, 8, path);
  const Schedule loaded = load_schedule_file(path);
  EXPECT_EQ(loaded.length(), run.schedule.length());
  EXPECT_EQ(loaded.bandwidth(), run.schedule.bandwidth());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ocd::core
