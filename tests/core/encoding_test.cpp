#include "ocd/core/encoding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::core {
namespace {

Schedule sample_schedule() {
  Schedule s;
  Timestep a;
  a.add(0, TokenSet::of(6, {0, 3}));
  a.add(2, TokenSet::of(6, {5}));
  s.append(std::move(a));
  s.append(Timestep{});  // empty interior step survives the round-trip
  Timestep b;
  b.add(1, TokenSet::of(6, {2}));
  s.append(std::move(b));
  return s;
}

bool schedules_equal(const Schedule& a, const Schedule& b) {
  if (a.length() != b.length()) return false;
  for (std::size_t i = 0; i < a.steps().size(); ++i) {
    // Compare as (arc -> tokens) maps; order within a step is free.
    const auto& sa = a.steps()[i].sends();
    const auto& sb = b.steps()[i].sends();
    if (sa.size() != sb.size()) return false;
    for (const ArcSend& send : sa) {
      bool found = false;
      for (const ArcSend& other : sb) {
        if (other.arc == send.arc && other.tokens == send.tokens) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
  }
  return true;
}

TEST(Encoding, RoundTripSmall) {
  const Schedule original = sample_schedule();
  const auto bytes = encode_schedule(original, /*num_arcs=*/4,
                                     /*num_tokens=*/6);
  const Schedule decoded = decode_schedule(bytes);
  EXPECT_TRUE(schedules_equal(original, decoded));
}

TEST(Encoding, RoundTripEmptySchedule) {
  const auto bytes = encode_schedule(Schedule{}, 10, 10);
  const Schedule decoded = decode_schedule(bytes);
  EXPECT_TRUE(decoded.empty());
}

TEST(Encoding, RejectsBadMagic) {
  auto bytes = encode_schedule(sample_schedule(), 4, 6);
  bytes[0] ^= 0xff;
  EXPECT_THROW(decode_schedule(bytes), Error);
}

TEST(Encoding, RejectsTruncatedInput) {
  auto bytes = encode_schedule(sample_schedule(), 4, 6);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode_schedule(bytes), Error);
}

TEST(Encoding, RejectsOutOfRangeIds) {
  Schedule s;
  Timestep a;
  a.add(7, 0, 6);
  s.append(std::move(a));
  EXPECT_THROW(encode_schedule(s, /*num_arcs=*/4, 6), ContractViolation);
}

TEST(Encoding, RoundTripRealRun) {
  Rng rng(3);
  Digraph g = topology::random_overlay(20, rng);
  const std::int32_t num_arcs = g.num_arcs();
  Instance inst = single_source_all_receivers(std::move(g), 24, 0);
  auto policy = heuristics::make_policy("global");
  const auto run = sim::run(inst, *policy);
  ASSERT_TRUE(run.success);
  const auto bytes = encode_schedule(run.schedule, num_arcs, 24);
  const Schedule decoded = decode_schedule(bytes);
  EXPECT_TRUE(schedules_equal(run.schedule, decoded));
}

TEST(Encoding, Theorem2SizeBound) {
  // O(nm(log n + log m)) bits for a pruned successful schedule: check
  // the concrete bound body_bits <= (moves)*(ceil(lg arcs)+ceil(lg m))
  // + steps * count_bits against the m(n-1) move bound of Theorem 1.
  Rng rng(5);
  Digraph g = topology::random_overlay(16, rng);
  const std::int32_t num_arcs = g.num_arcs();
  const std::int32_t n = g.num_vertices();
  const std::int32_t m = 8;
  Instance inst = single_source_all_receivers(std::move(g), m, 0);
  auto policy = heuristics::make_policy("global");
  const auto run = sim::run(inst, *policy);
  ASSERT_TRUE(run.success);

  const std::int64_t bits = encoded_body_bits(run.schedule, num_arcs, m);
  // Generous constant: 4 * nm * (log2(n^2) + log2(m) + log2(nm) + 2).
  const double logs = 2 * std::log2(static_cast<double>(n)) +
                      2 * std::log2(static_cast<double>(m)) +
                      std::log2(static_cast<double>(n) * m) + 4;
  EXPECT_LT(static_cast<double>(bits),
            4.0 * static_cast<double>(n) * m * logs);
}

}  // namespace
}  // namespace ocd::core
