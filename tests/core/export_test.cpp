#include "ocd/core/export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"

namespace ocd::core {
namespace {

TEST(Export, DotContainsEveryVertexAndArc) {
  const Instance inst = figure1_instance();
  std::ostringstream out;
  write_dot(inst, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    EXPECT_NE(dot.find("v" + std::to_string(v) + " ["), std::string::npos)
        << "vertex " << v;
  }
  EXPECT_NE(dot.find("v0 -> v1"), std::string::npos);
  // Source marked as holder, receivers shaded.
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("lightgray"), std::string::npos);
}

TEST(Export, DotOptionsToggleDecorations) {
  const Instance inst = figure1_instance();
  DotOptions plain;
  plain.show_capacities = false;
  plain.mark_roles = false;
  std::ostringstream out;
  write_dot(inst, out, plain);
  EXPECT_EQ(out.str().find("doublecircle"), std::string::npos);
  // Arc lines carry no capacity annotations when disabled.
  EXPECT_EQ(out.str().find("-> v1 ["), std::string::npos);
}

TEST(Export, StepDotHighlightsActiveArcs) {
  const Instance inst = figure1_instance();
  Schedule schedule;
  Timestep step;
  step.add(0, 0, 1);  // s -> w1
  schedule.append(std::move(step));
  std::ostringstream out;
  write_step_dot(inst, schedule, 0, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("penwidth=2.5"), std::string::npos);
  EXPECT_NE(dot.find("{0}"), std::string::npos);
  EXPECT_NE(dot.find("gray70"), std::string::npos);  // inactive arcs
  EXPECT_THROW(write_step_dot(inst, schedule, 5, out), ContractViolation);
}

TEST(Export, TraceCsvListsEveryMove) {
  const Instance inst = figure1_instance();
  auto policy = heuristics::make_policy("global");
  const auto run = sim::run(inst, *policy);
  ASSERT_TRUE(run.success);
  std::ostringstream out;
  write_trace_csv(inst, run.schedule, out);
  const std::string csv = out.str();
  // Header + one line per move.
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 1 + run.schedule.bandwidth());
  EXPECT_EQ(csv.rfind("step,from,to,token\n", 0), 0u);
}

}  // namespace
}  // namespace ocd::core
