#include "ocd/heuristics/random_useful.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::heuristics {
namespace {

TEST(RandomPolicy, NeverSendsTokensPeerAlreadyHeld) {
  // With staleness 0 the peer view is exact, so every send targets a
  // token the receiver lacked at the start of the step.  Same-step
  // collisions between independent senders are still possible (the
  // paper's "duplicating sends that other peers have also sent"), so
  // redundancy need not be zero — but no send may ever carry a token
  // the receiver possessed at the step boundary.
  Rng rng(2);
  Digraph g = topology::random_overlay(20, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 12, 0);
  RandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  const auto trace = core::possession_trace(inst, result.schedule);
  for (std::size_t i = 0; i < result.schedule.steps().size(); ++i) {
    for (const auto& send : result.schedule.steps()[i].sends()) {
      const VertexId to = inst.graph().arc(send.arc).to;
      EXPECT_FALSE(
          send.tokens.intersects(trace[i][static_cast<std::size_t>(to)]))
          << "step " << i;
    }
  }
}

TEST(RandomPolicy, StalenessIntroducesRedundancy) {
  Rng rng(3);
  Digraph g = topology::random_overlay(25, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 16, 0);

  RandomPolicy fresh;
  sim::SimOptions fresh_options;
  fresh_options.seed = 9;
  const auto fresh_result = sim::run(inst, fresh, fresh_options);

  RandomPolicy stale;
  sim::SimOptions stale_options;
  stale_options.seed = 9;
  stale_options.staleness = 3;
  const auto stale_result = sim::run(inst, stale, stale_options);

  ASSERT_TRUE(fresh_result.success);
  ASSERT_TRUE(stale_result.success);
  // Stale peer views add genuinely-already-delivered resends on top of
  // the same-step collisions fresh knowledge already suffers.
  EXPECT_GT(stale_result.stats.redundant_moves,
            fresh_result.stats.redundant_moves);
  EXPECT_GE(stale_result.bandwidth, fresh_result.bandwidth);
}

TEST(RandomPolicy, RespectsCapacityExactly) {
  // Source with 10 tokens, single arc of capacity 3: exactly 3 per step.
  Digraph g(2);
  g.add_arc(0, 1, 3);
  core::Instance inst(std::move(g), 10);
  for (TokenId t = 0; t < 10; ++t) {
    inst.add_have(0, t);
    inst.add_want(1, t);
  }
  RandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 4);  // ceil(10 / 3)
  for (std::size_t i = 0; i + 1 < result.schedule.steps().size(); ++i)
    EXPECT_EQ(result.schedule.steps()[i].moves(), 3);
}

TEST(RandomPolicy, DifferentSeedsUsuallyDiffer) {
  Rng rng(5);
  Digraph g = topology::random_overlay(20, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 30, 0);
  int differing = 0;
  sim::SimOptions a_options;
  sim::SimOptions b_options;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    RandomPolicy a;
    RandomPolicy b;
    a_options.seed = seed;
    b_options.seed = seed + 1000;
    const auto ra = sim::run(inst, a, a_options);
    const auto rb = sim::run(inst, b, b_options);
    if (ra.bandwidth != rb.bandwidth || ra.steps != rb.steps) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RandomPolicy, FloodsTokensNobodyWants) {
  // Vertex 1 wants nothing, yet the random heuristic still pushes
  // tokens to it (it is a flooding heuristic).
  Digraph g(2);
  g.add_arc(0, 1, 2);
  core::Instance inst(std::move(g), 4);
  for (TokenId t = 0; t < 4; ++t) inst.add_have(0, t);
  inst.add_want(1, 0);  // wants only one
  RandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  // The run ends as soon as wants are met, but with capacity 2 the very
  // first step may already overshoot the single wanted token.
  EXPECT_GE(result.bandwidth, 1);
  EXPECT_LE(result.steps, 2);
}

}  // namespace
}  // namespace ocd::heuristics
