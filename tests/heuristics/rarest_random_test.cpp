#include "ocd/heuristics/rarest_random.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::heuristics {
namespace {

TEST(RarestRandom, RequestsNeverExceedArcCapacity) {
  Rng rng(1);
  Digraph g = topology::random_overlay(20, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 24, 0);
  RarestRandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  for (const auto& step : result.schedule.steps()) {
    for (const auto& send : step.sends()) {
      EXPECT_LE(send.tokens.count(),
                static_cast<std::size_t>(inst.graph().arc(send.arc).capacity));
    }
  }
}

TEST(RarestRandom, NoDuplicateRequestsWithinAStep) {
  // Each vertex requests a token from at most one in-neighbor, so a
  // token is never delivered twice to one vertex in a single step, and
  // with fresh knowledge never redundantly at all.
  Rng rng(2);
  Digraph g = topology::random_overlay(25, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 16, 0);
  RarestRandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.redundant_moves, 0);
}

TEST(RarestRandom, PrefersRareTokens) {
  // Source holds tokens {0,1}; a second holder already spreads token 1
  // widely, making token 0 the rare one.  With capacity 1 the receiver
  // must request the rarer token 0 first.
  Digraph g(4);
  g.add_arc(0, 3, 1);  // the link under test
  g.add_arc(1, 2, 1);  // irrelevant, keeps vertices connected
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_have(1, 1);
  inst.add_have(2, 1);  // token 1 held by 3 vertices, token 0 by 1
  inst.add_want(3, 0);
  inst.add_want(3, 1);
  RarestRandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  const auto& first_step = result.schedule.steps().front();
  ASSERT_FALSE(first_step.sends().empty());
  for (const auto& send : first_step.sends()) {
    if (inst.graph().arc(send.arc).from == 0) {
      EXPECT_TRUE(send.tokens.test(0))
          << "rarest token should be requested first";
    }
  }
}

TEST(RarestRandom, WantedTokensBeforeFloodTokens) {
  // Receiver wants token 1 only; capacity 1: the first delivery must be
  // the wanted token even though token 0 is rarer.
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 1);
  RarestRandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 1);
  EXPECT_TRUE(result.schedule.steps()[0].sends()[0].tokens.test(1));
}

TEST(RarestRandom, DiversifiesAcrossBranches) {
  // Star: source with 2 unit-capacity out-arcs and 4 tokens; after one
  // step the two receivers should hold different tokens (diversity),
  // which the shared rarity order plus per-arc budgets guarantees here.
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(2, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  for (VertexId v : {1, 2}) {
    inst.add_want(v, 0);
    inst.add_want(v, 1);
  }
  RarestRandomPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  // Optimal here is 2 steps: diversify then swap; a non-diversifying
  // policy would need 3.
  EXPECT_EQ(result.steps, 2);
}

TEST(RarestRandom, FloodsBeyondWantSets) {
  // Relay vertex wants nothing but must still receive (flood) for the
  // distant wanter to complete.
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  RarestRandomPolicy policy;
  const auto result = sim::run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.steps, 2);
}

}  // namespace
}  // namespace ocd::heuristics
