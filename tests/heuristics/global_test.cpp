#include "ocd/heuristics/global_greedy.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/random_useful.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::heuristics {
namespace {

TEST(GlobalGreedy, NeverDuplicatesDeliveriesWithinOrAcrossSteps) {
  Rng rng(21);
  Digraph g = topology::random_overlay(25, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 16, 0);
  GlobalGreedyPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  // Coordination means zero redundancy.
  EXPECT_EQ(result.stats.redundant_moves, 0);
  // Useful moves exactly equal bandwidth, and each (vertex, token) pair
  // arrives at most once.
  EXPECT_EQ(result.stats.useful_moves, result.bandwidth);
  EXPECT_LE(result.bandwidth,
            static_cast<std::int64_t>(inst.num_vertices()) * inst.num_tokens());
}

TEST(GlobalGreedy, SaturatesSourceCapacityOnBroadcast) {
  // Star from a source with 3 unit arcs and 3 tokens wanted everywhere:
  // the greedy fills all three arcs every step.
  Digraph g(4);
  for (VertexId v = 1; v < 4; ++v) {
    g.add_arc(0, v, 1);
    g.add_arc(v, 0, 1);
  }
  core::Instance inst(std::move(g), 3);
  for (TokenId t = 0; t < 3; ++t) inst.add_have(0, t);
  for (VertexId v = 1; v < 4; ++v)
    for (TokenId t = 0; t < 3; ++t) inst.add_want(v, t);
  GlobalGreedyPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.schedule.steps()[0].moves(), 3);
}

TEST(GlobalGreedy, DiversityEnablesPeerExchange) {
  // Two receivers on unit links plus a peer link: diversity (different
  // tokens to each) finishes in 2 steps; sending the same token to both
  // would need 3.  The star test above plus this pins the behaviour.
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(1, 2, 1);
  g.add_arc(2, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  for (VertexId v : {1, 2}) {
    inst.add_want(v, 0);
    inst.add_want(v, 1);
  }
  GlobalGreedyPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 2);
}

TEST(GlobalGreedy, WantsPrioritizedOverFloods) {
  // Capacity-1 arc to a vertex wanting token 1 while token 0 is rarer:
  // the want pass must win the slot.
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(1, 1);
  GlobalGreedyPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 1);
  EXPECT_TRUE(result.schedule.steps()[0].sends()[0].tokens.test(1));
}

TEST(GlobalGreedy, AtLeastAsFastAsRandomOnBroadcast) {
  Rng rng(22);
  Digraph g = topology::random_overlay(30, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 24, 0);
  GlobalGreedyPolicy global;
  RandomPolicy random;
  const auto global_run = sim::run(inst, global);
  const auto random_run = sim::run(inst, random);
  ASSERT_TRUE(global_run.success);
  ASSERT_TRUE(random_run.success);
  EXPECT_LE(global_run.steps, random_run.steps + 1);
  EXPECT_LE(global_run.bandwidth, random_run.bandwidth);
}

TEST(GlobalGreedy, CompletesMultiFileWorkload) {
  Rng rng(23);
  Digraph g = topology::random_overlay(40, rng);
  core::Instance inst = core::subdivided_files(std::move(g), 32, 8, 0);
  GlobalGreedyPolicy policy;
  const auto result = sim::run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(core::is_successful(inst, result.schedule));
}

}  // namespace
}  // namespace ocd::heuristics
