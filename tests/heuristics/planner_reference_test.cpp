// Differential test: the rank-space planner kernels against verbatim
// copies of the pre-kernel ("seed") implementations.  The rewritten
// GlobalGreedyPolicy (word-parallel picks, incremental candidate sets,
// wave mask) and the refactored rarest-random / bandwidth pickers must
// produce bit-identical RunResults — success, steps, bandwidth,
// useful/redundant split, per-step moves, completion steps, upload
// counts, and the full recorded schedule — across policies, seeds and
// staleness levels.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <queue>
#include <string>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"

namespace ocd::heuristics {
namespace {

// ---------------------------------------------------------------------
// Verbatim copies of the pre-rewrite plan_step implementations (modulo
// class names).  Do not modernize these: they are the reference.
// ---------------------------------------------------------------------

class ReferenceGlobalGreedy final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "global"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kGlobal;
  }

  void reset(const core::Instance&, std::uint64_t seed) override {
    rng_ = Rng(seed);
  }

  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override {
    const Digraph& graph = view.graph();
    const core::Instance& inst = view.instance();
    const auto& possession = view.global_possession();
    const auto n = static_cast<std::size_t>(graph.num_vertices());
    const auto universe = static_cast<std::size_t>(view.num_tokens());
    const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());

    const auto holders = view.aggregate_holders();
    std::vector<TokenId> rarity_order(universe);
    std::iota(rarity_order.begin(), rarity_order.end(), 0);
    rng_.shuffle(rarity_order);
    std::stable_sort(rarity_order.begin(), rarity_order.end(),
                     [&](TokenId a, TokenId b) {
                       return holders[static_cast<std::size_t>(a)] <
                              holders[static_cast<std::size_t>(b)];
                     });

    std::vector<TokenSet> candidates(num_arcs, TokenSet(universe));
    std::vector<std::int32_t> remaining(num_arcs, 0);
    bool anything = false;
    for (ArcId a = 0; a < graph.num_arcs(); ++a) {
      const Arc& arc = graph.arc(a);
      TokenSet cand(possession.row(static_cast<std::size_t>(arc.from)));
      cand -= possession.row(static_cast<std::size_t>(arc.to));
      anything = anything || !cand.empty();
      candidates[static_cast<std::size_t>(a)] = std::move(cand);
      remaining[static_cast<std::size_t>(a)] = view.capacity(a);
    }
    if (!anything) return;

    std::vector<TokenSet> outstanding(n, TokenSet(universe));
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      outstanding[static_cast<std::size_t>(v)] =
          inst.want(v) - possession.row(static_cast<std::size_t>(v));
    }

    std::vector<TokenSet> granted(n, TokenSet(universe));
    std::vector<std::int32_t> grant_count(universe, 0);

    std::int32_t wave = 0;
    while (true) {
      bool progress = false;
      bool exhausted = true;
      for (ArcId a = 0; a < graph.num_arcs(); ++a) {
        if (remaining[static_cast<std::size_t>(a)] <= 0) continue;
        const auto head = static_cast<std::size_t>(graph.arc(a).to);
        TokenSet cand = candidates[static_cast<std::size_t>(a)];
        cand -= granted[head];
        if (cand.empty()) continue;
        exhausted = false;

        const TokenSet wanted_cand = cand & outstanding[head];
        TokenId pick = -1;
        const std::array<const TokenSet*, 2> pools{&wanted_cand, &cand};
        for (const TokenSet* pool : pools) {
          for (TokenId t : rarity_order) {
            if (pool->test(t) &&
                grant_count[static_cast<std::size_t>(t)] <= wave) {
              pick = t;
              break;
            }
          }
          if (pick >= 0) break;
        }
        if (pick < 0) continue;  // every candidate is over the wave cap

        plan.send(a, pick, universe);
        granted[head].set(pick);
        ++grant_count[static_cast<std::size_t>(pick)];
        --remaining[static_cast<std::size_t>(a)];
        progress = true;
      }
      if (exhausted) break;
      if (!progress) ++wave;
    }
  }

 private:
  Rng rng_{1};
};

class ReferenceRarestRandom final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "local"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kLocalAggregate;
  }

  void reset(const core::Instance&, std::uint64_t seed) override {
    rng_ = Rng(seed);
  }

  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override {
    const Digraph& graph = view.graph();
    const auto universe = static_cast<std::size_t>(view.num_tokens());
    const auto holders = view.aggregate_holders();
    const auto need = view.aggregate_need();

    std::vector<TokenId> rarity_order(universe);
    std::iota(rarity_order.begin(), rarity_order.end(), 0);
    rng_.shuffle(rarity_order);
    std::stable_sort(
        rarity_order.begin(), rarity_order.end(), [&](TokenId a, TokenId b) {
          const bool needed_a = need[static_cast<std::size_t>(a)] > 0;
          const bool needed_b = need[static_cast<std::size_t>(b)] > 0;
          if (needed_a != needed_b) return needed_a;
          return holders[static_cast<std::size_t>(a)] <
                 holders[static_cast<std::size_t>(b)];
        });

    std::vector<TokenSet> requests(static_cast<std::size_t>(graph.num_arcs()),
                                   TokenSet(universe));
    std::vector<std::int32_t> budget(
        static_cast<std::size_t>(graph.num_arcs()));
    for (ArcId a = 0; a < graph.num_arcs(); ++a)
      budget[static_cast<std::size_t>(a)] = view.capacity(a);

    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const TokenSetView mine = view.own_possession(v);
      const auto in_arcs = graph.in_arcs(v);
      if (in_arcs.empty()) continue;

      std::vector<TokenSet> offered;
      offered.reserve(in_arcs.size());
      bool anything = false;
      for (ArcId a : in_arcs) {
        TokenSet tokens(view.peer_possession(v, graph.arc(a).from));
        tokens -= mine;
        anything = anything || !tokens.empty();
        offered.push_back(std::move(tokens));
      }
      if (!anything) continue;

      std::int64_t total_budget = 0;
      for (ArcId a : in_arcs)
        total_budget += budget[static_cast<std::size_t>(a)];

      const TokenSet wanted = view.own_want(v) - mine;
      for (const bool wanted_pass : {true, false}) {
        if (total_budget <= 0) break;
        for (TokenId t : rarity_order) {
          if (total_budget <= 0) break;
          if (wanted.test(t) != wanted_pass) continue;
          if (mine.test(t)) continue;
          bool requested = false;
          for (std::size_t k = 0; k < in_arcs.size() && !requested; ++k)
            requested = requests[static_cast<std::size_t>(in_arcs[k])].test(t);
          if (requested) continue;
          std::int32_t best = -1;
          std::int32_t best_budget = 0;
          for (std::size_t k = 0; k < in_arcs.size(); ++k) {
            const ArcId a = in_arcs[k];
            if (!offered[k].test(t)) continue;
            const std::int32_t b = budget[static_cast<std::size_t>(a)];
            if (b > best_budget) {
              best_budget = b;
              best = a;
            }
          }
          if (best >= 0) {
            requests[static_cast<std::size_t>(best)].set(t);
            --budget[static_cast<std::size_t>(best)];
            --total_budget;
          }
        }
      }
    }

    bool sent = false;
    for (ArcId a = 0; a < graph.num_arcs(); ++a) {
      if (!requests[static_cast<std::size_t>(a)].empty()) {
        plan.send(a, requests[static_cast<std::size_t>(a)]);
        sent = true;
      }
    }
    if (!sent) plan.mark_idle();
  }

 private:
  Rng rng_{1};
};

class ReferenceBandwidthSaver final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "bandwidth"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kGlobal;
  }

  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override {
    const Digraph& graph = view.graph();
    const core::Instance& inst = view.instance();
    const auto& possession = view.global_possession();
    const auto n = static_cast<std::size_t>(graph.num_vertices());
    const auto universe = static_cast<std::size_t>(view.num_tokens());

    std::vector<TokenSet> allowed(n, TokenSet(universe));

    std::vector<std::int32_t> frontier_dist(n);
    std::vector<VertexId> witness(n);
    for (TokenId t = 0; t < view.num_tokens(); ++t) {
      std::vector<VertexId> needy;
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        if (inst.want(v).test(t) &&
            !possession.row(static_cast<std::size_t>(v)).test(t))
          needy.push_back(v);
      }
      if (needy.empty()) continue;
      for (VertexId v : needy) allowed[static_cast<std::size_t>(v)].set(t);

      std::fill(frontier_dist.begin(), frontier_dist.end(), -1);
      std::queue<VertexId> bfs;
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        if (possession.row(static_cast<std::size_t>(v)).test(t)) continue;
        for (ArcId a : graph.in_arcs(v)) {
          if (possession.row(static_cast<std::size_t>(graph.arc(a).from))
                  .test(t)) {
            frontier_dist[static_cast<std::size_t>(v)] = 0;
            witness[static_cast<std::size_t>(v)] = v;
            bfs.push(v);
            break;
          }
        }
      }
      if (bfs.empty()) continue;

      while (!bfs.empty()) {
        const VertexId u = bfs.front();
        bfs.pop();
        for (ArcId a : graph.out_arcs(u)) {
          const VertexId w = graph.arc(a).to;
          if (frontier_dist[static_cast<std::size_t>(w)] < 0) {
            frontier_dist[static_cast<std::size_t>(w)] =
                frontier_dist[static_cast<std::size_t>(u)] + 1;
            witness[static_cast<std::size_t>(w)] =
                witness[static_cast<std::size_t>(u)];
            bfs.push(w);
          }
        }
      }
      for (VertexId v : needy) {
        if (frontier_dist[static_cast<std::size_t>(v)] >= 0) {
          allowed[static_cast<std::size_t>(
                      witness[static_cast<std::size_t>(v)])]
              .set(t);
        }
      }
    }

    const auto holders = view.aggregate_holders();
    std::vector<TokenId> rarity_order(universe);
    std::iota(rarity_order.begin(), rarity_order.end(), 0);
    std::stable_sort(rarity_order.begin(), rarity_order.end(),
                     [&](TokenId a, TokenId b) {
                       return holders[static_cast<std::size_t>(a)] <
                              holders[static_cast<std::size_t>(b)];
                     });

    for (ArcId a = 0; a < graph.num_arcs(); ++a) {
      const Arc& arc = graph.arc(a);
      TokenSet candidates(possession.row(static_cast<std::size_t>(arc.from)));
      candidates -= possession.row(static_cast<std::size_t>(arc.to));
      candidates &= allowed[static_cast<std::size_t>(arc.to)];
      if (candidates.empty()) continue;

      const auto capacity = static_cast<std::size_t>(view.capacity(a));
      if (capacity == 0) continue;
      if (candidates.count() <= capacity) {
        plan.send(a, candidates);
        continue;
      }
      const TokenSet needs = candidates & inst.want(arc.to);
      TokenSet batch(universe);
      std::size_t filled = 0;
      for (const bool need_pass : {true, false}) {
        for (TokenId t : rarity_order) {
          if (filled == capacity) break;
          if (!candidates.test(t) || batch.test(t)) continue;
          if (needs.test(t) != need_pass) continue;
          batch.set(t);
          ++filled;
        }
      }
      plan.send(a, batch);
    }
  }
};

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

sim::PolicyPtr make_reference(std::string_view name) {
  if (name == "global") return std::make_unique<ReferenceGlobalGreedy>();
  if (name == "local") return std::make_unique<ReferenceRarestRandom>();
  if (name == "bandwidth") return std::make_unique<ReferenceBandwidthSaver>();
  throw Error("no reference for policy: " + std::string(name));
}

void expect_identical(const sim::RunResult& actual,
                      const sim::RunResult& expected,
                      const std::string& label) {
  EXPECT_EQ(actual.success, expected.success) << label;
  EXPECT_EQ(actual.steps, expected.steps) << label;
  EXPECT_EQ(actual.bandwidth, expected.bandwidth) << label;
  EXPECT_EQ(actual.stats.useful_moves, expected.stats.useful_moves) << label;
  EXPECT_EQ(actual.stats.redundant_moves, expected.stats.redundant_moves)
      << label;
  EXPECT_EQ(actual.stats.moves_per_step, expected.stats.moves_per_step)
      << label;
  EXPECT_EQ(actual.stats.completion_step, expected.stats.completion_step)
      << label;
  EXPECT_EQ(actual.stats.sent_by_vertex, expected.stats.sent_by_vertex)
      << label;
  ASSERT_EQ(actual.schedule.length(), expected.schedule.length()) << label;
  for (std::size_t i = 0; i < actual.schedule.steps().size(); ++i) {
    const auto& a = actual.schedule.steps()[i].sends();
    const auto& e = expected.schedule.steps()[i].sends();
    ASSERT_EQ(a.size(), e.size()) << label << " step " << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].arc, e[j].arc) << label << " step " << i;
      EXPECT_EQ(a[j].tokens, e[j].tokens) << label << " step " << i;
    }
  }
}

void compare(const core::Instance& inst, const std::string& policy_name,
             const sim::SimOptions& options, const std::string& label) {
  auto rewritten = make_policy(policy_name);
  auto reference = make_reference(policy_name);
  const sim::RunResult actual = sim::run(inst, *rewritten, options);
  const sim::RunResult expected = sim::run(inst, *reference, options);
  expect_identical(actual, expected, label + "/" + policy_name);
}

std::vector<core::Instance> test_instances() {
  std::vector<core::Instance> out;
  out.push_back(core::figure1_instance());
  out.push_back(core::adversarial_path(5, 4, 2));
  {
    Rng rng(51);
    Digraph g = topology::random_overlay(16, rng);
    out.push_back(core::single_source_all_receivers(std::move(g), 11, 0));
  }
  {
    Rng rng(53);
    Digraph g = topology::random_overlay(20, rng);
    out.push_back(
        core::subdivided_files_random_senders(std::move(g), 12, 3, rng));
  }
  {
    // Word-boundary universes: 64 and 65 tokens cross the 63/64-bit
    // edge inside the rank-space kernels.
    Rng rng(57);
    Digraph g = topology::random_overlay(12, rng);
    out.push_back(core::single_source_all_receivers(std::move(g), 64, 0));
  }
  {
    Rng rng(59);
    Digraph g = topology::random_overlay(12, rng);
    out.push_back(core::single_source_all_receivers(std::move(g), 65, 0));
  }
  {
    const auto opt = topology::transit_stub_options_for_size(24);
    Rng rng(61);
    Digraph g = topology::transit_stub(opt, rng);
    out.push_back(core::single_source_all_receivers(std::move(g), 10, 0));
  }
  return out;
}

const char* kRewritten[] = {"global", "local", "bandwidth"};

TEST(PlannerReference, AllSeedsDefaultOptions) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const char* name : kRewritten) {
      for (const std::uint64_t seed : {11ULL, 97ULL, 5000ULL}) {
        sim::SimOptions options;
        options.seed = seed;
        compare(instances[i], name, options,
                "inst" + std::to_string(i) + "/seed" + std::to_string(seed));
      }
    }
  }
}

TEST(PlannerReference, StalePeerKnowledge) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const char* name : kRewritten) {
      for (std::int32_t staleness : {1, 3}) {
        sim::SimOptions options;
        options.seed = 13;
        options.staleness = staleness;
        compare(instances[i], name, options,
                "inst" + std::to_string(i) + "/stale" +
                    std::to_string(staleness));
      }
    }
  }
}

TEST(PlannerReference, StaleAggregates) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const char* name : kRewritten) {
      for (std::int32_t staleness : {0, 2}) {
        sim::SimOptions options;
        options.seed = 17;
        options.staleness = staleness;
        options.stale_aggregates = true;
        compare(instances[i], name, options,
                "inst" + std::to_string(i) + "/staleagg" +
                    std::to_string(staleness));
      }
    }
  }
}

TEST(PlannerReference, MaxStepsExhaustion) {
  const auto instances = test_instances();
  for (std::size_t i = 0; i < instances.size(); ++i) {
    for (const char* name : kRewritten) {
      sim::SimOptions options;
      options.seed = 19;
      options.max_steps = 3;
      compare(instances[i], name, options,
              "inst" + std::to_string(i) + "/maxsteps");
    }
  }
}

}  // namespace
}  // namespace ocd::heuristics
