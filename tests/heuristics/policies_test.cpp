// Cross-policy property tests: every heuristic must complete every
// satisfiable scenario with a schedule that replays cleanly.
#include <gtest/gtest.h>

#include "ocd/core/bounds.hpp"
#include "ocd/heuristics/architectures.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"

namespace ocd::heuristics {
namespace {

TEST(Factory, KnowsAllFiveHeuristics) {
  EXPECT_EQ(all_policy_names().size(), 5u);
  for (const auto& name : all_policy_names()) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_THROW(make_policy("nonsense"), Error);
  EXPECT_EQ(make_all_policies().size(), 5u);
}

TEST(Factory, KnowledgeClassesMatchThePaper) {
  using sim::KnowledgeClass;
  EXPECT_EQ(make_policy("round-robin")->knowledge_class(),
            KnowledgeClass::kLocalOnly);
  EXPECT_EQ(make_policy("random")->knowledge_class(),
            KnowledgeClass::kLocalPeers);
  EXPECT_EQ(make_policy("local")->knowledge_class(),
            KnowledgeClass::kLocalAggregate);
  EXPECT_EQ(make_policy("bandwidth")->knowledge_class(),
            KnowledgeClass::kGlobal);
  EXPECT_EQ(make_policy("global")->knowledge_class(),
            KnowledgeClass::kGlobal);
}

struct ScenarioCase {
  std::string policy;
  std::string scenario;
  std::uint64_t seed;
};

core::Instance build_scenario(const std::string& scenario, std::uint64_t seed) {
  Rng rng(seed);
  if (scenario == "all_receivers") {
    Digraph g = topology::random_overlay(25, rng);
    return core::single_source_all_receivers(std::move(g), 16, 0);
  }
  if (scenario == "sparse_wants") {
    Digraph g = topology::random_overlay(25, rng);
    auto built =
        core::single_source_receiver_density(std::move(g), 16, 0, 0.3, rng);
    return std::move(built.instance);
  }
  if (scenario == "multi_file") {
    Digraph g = topology::random_overlay(30, rng);
    return core::subdivided_files(std::move(g), 16, 4, 0);
  }
  if (scenario == "multi_sender") {
    Digraph g = topology::random_overlay(30, rng);
    return core::subdivided_files_random_senders(std::move(g), 16, 4, rng);
  }
  if (scenario == "transit_stub") {
    topology::TransitStubOptions opt;
    Digraph g = topology::transit_stub(opt, rng);
    return core::single_source_all_receivers(std::move(g), 12, 0);
  }
  throw Error("unknown scenario " + scenario);
}

class PolicyScenario : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(PolicyScenario, CompletesWithValidSchedule) {
  const auto& param = GetParam();
  const core::Instance inst = build_scenario(param.scenario, param.seed);
  ASSERT_TRUE(inst.is_satisfiable());

  auto policy = make_policy(param.policy);
  sim::SimOptions options;
  options.seed = param.seed * 31 + 7;
  options.max_steps = 50'000;
  const auto result = sim::run(inst, *policy, options);

  EXPECT_TRUE(result.success) << param.policy << " on " << param.scenario;
  const auto validation = core::validate(inst, result.schedule);
  EXPECT_TRUE(validation.valid) << validation.violation;
  EXPECT_TRUE(validation.successful);

  // Sanity relations every run must satisfy.
  EXPECT_GE(result.bandwidth, core::bandwidth_lower_bound(inst));
  EXPECT_GE(result.steps, core::distance_lower_bound(inst));
  EXPECT_EQ(result.bandwidth, result.schedule.bandwidth());
}

std::vector<ScenarioCase> scenario_cases() {
  std::vector<ScenarioCase> cases;
  const std::vector<std::string> scenarios{"all_receivers", "sparse_wants",
                                           "multi_file", "multi_sender",
                                           "transit_stub"};
  // The paper's five plus the §2 architecture baselines, several seeds.
  for (const auto& policy : extended_policy_names()) {
    for (const auto& scenario : scenarios) {
      for (const std::uint64_t seed : {42ull, 1042ull}) {
        cases.push_back({policy, scenario, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PolicyScenario, ::testing::ValuesIn(scenario_cases()),
    [](const ::testing::TestParamInfo<ScenarioCase>& info) {
      std::string name = info.param.policy + "_" + info.param.scenario +
                         "_s" + std::to_string(info.param.seed);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// Determinism: identical seeds give identical runs for every policy.
class PolicyDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyDeterminism, SameSeedSameRun) {
  const core::Instance inst = build_scenario("multi_file", 5);
  sim::SimOptions options;
  options.seed = 123;
  auto p1 = make_policy(GetParam());
  auto p2 = make_policy(GetParam());
  const auto r1 = sim::run(inst, *p1, options);
  const auto r2 = sim::run(inst, *p2, options);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.bandwidth, r2.bandwidth);
}

INSTANTIATE_TEST_SUITE_P(All, PolicyDeterminism,
                         ::testing::ValuesIn(all_policy_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace ocd::heuristics
