#include "ocd/heuristics/architectures.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::heuristics {
namespace {

core::Instance broadcast(std::int32_t n, std::int32_t tokens,
                         std::uint64_t seed) {
  Rng rng(seed);
  Digraph g = topology::random_overlay(n, rng);
  return core::single_source_all_receivers(std::move(g), tokens, 0);
}

TEST(Architectures, FactoryKnowsBaselines) {
  EXPECT_NE(make_policy("overcast-tree"), nullptr);
  EXPECT_NE(make_policy("splitstream-forest"), nullptr);
  EXPECT_NE(make_policy("fast-replica"), nullptr);
  EXPECT_EQ(extended_policy_names().size(), 8u);
  // The paper's five stay unchanged.
  EXPECT_EQ(all_policy_names().size(), 5u);
}

TEST(TreePolicy, TreeSpansAllVerticesAndCompletes) {
  const auto inst = broadcast(20, 10, 1);
  TreePolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  // A bidirectional spanning tree over n vertices has 2(n-1) arcs.
  EXPECT_EQ(policy.tree_arcs().size(),
            2u * static_cast<std::size_t>(inst.num_vertices() - 1));
  // Only tree arcs ever carry tokens.
  for (const auto& step : result.schedule.steps()) {
    for (const auto& send : step.sends()) {
      EXPECT_NE(std::find(policy.tree_arcs().begin(),
                          policy.tree_arcs().end(), send.arc),
                policy.tree_arcs().end());
    }
  }
}

TEST(TreePolicy, NoRedundantTraffic) {
  // Fresh peer knowledge + a tree (single path to every vertex) means
  // no duplicate deliveries at all.
  const auto inst = broadcast(15, 8, 2);
  TreePolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.stats.redundant_moves, 0);
  EXPECT_EQ(result.bandwidth,
            static_cast<std::int64_t>(inst.num_vertices() - 1) *
                inst.num_tokens());
}

TEST(TreePolicy, SlowerThanMeshOnBroadcast) {
  // The classic single-tree weakness: everything funnels through one
  // structure while the mesh (local) exploits every link.
  const auto inst = broadcast(30, 24, 3);
  TreePolicy tree;
  const auto tree_run = sim::run(inst, tree);
  auto mesh = make_policy("local");
  const auto mesh_run = sim::run(inst, *mesh);
  ASSERT_TRUE(tree_run.success);
  ASSERT_TRUE(mesh_run.success);
  EXPECT_GE(tree_run.steps, mesh_run.steps);
}

TEST(StripedForest, CompletesAndRespectsStripes) {
  const auto inst = broadcast(20, 12, 4);
  StripedForestPolicy policy(4);
  EXPECT_EQ(policy.stripes(), 4);
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(core::is_successful(inst, result.schedule));
}

TEST(StripedForest, SingleStripeDegeneratesToATree) {
  const auto inst = broadcast(15, 6, 5);
  StripedForestPolicy policy(1);
  const auto result = sim::run(inst, policy);
  EXPECT_TRUE(result.success);
}

TEST(StripedForest, RejectsBadStripeCounts) {
  EXPECT_THROW(StripedForestPolicy(0), ContractViolation);
  EXPECT_THROW(StripedForestPolicy(33), ContractViolation);
}

TEST(StripedForest, UsuallyFasterThanSingleTree) {
  // Striping spreads interior load: across seeds the forest should win
  // (or tie) on most broadcasts.
  int forest_wins_or_ties = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = broadcast(25, 24, 100 + seed);
    TreePolicy tree;
    StripedForestPolicy forest(4);
    sim::SimOptions options;
    options.seed = seed;
    const auto tree_run = sim::run(inst, tree, options);
    const auto forest_run = sim::run(inst, forest, options);
    ASSERT_TRUE(tree_run.success);
    ASSERT_TRUE(forest_run.success);
    if (forest_run.steps <= tree_run.steps) ++forest_wins_or_ties;
  }
  EXPECT_GE(forest_wins_or_ties, 3);
}

TEST(Architectures, MultiSourceInstancesStillComplete) {
  Rng rng(6);
  Digraph g = topology::random_overlay(24, rng);
  const auto inst =
      core::subdivided_files_random_senders(std::move(g), 12, 3, rng);
  for (const std::string name :
       {"overcast-tree", "splitstream-forest", "fast-replica"}) {
    auto policy = make_policy(name);
    sim::SimOptions options;
    options.max_steps = 20'000;
    const auto result = sim::run(inst, *policy, options);
    EXPECT_TRUE(result.success) << name;
  }
}


TEST(FastReplica, ScatterBlocksAreDisjointAcrossNeighbors) {
  const auto inst = broadcast(20, 16, 7);
  FastReplicaPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  // In the first timestep the source sends pairwise-disjoint blocks.
  TokenSet seen(static_cast<std::size_t>(inst.num_tokens()));
  for (const auto& send : result.schedule.steps()[0].sends()) {
    if (inst.graph().arc(send.arc).from != 0) continue;
    EXPECT_FALSE(seen.intersects(send.tokens));
    seen |= send.tokens;
  }
  EXPECT_FALSE(seen.empty());
}

TEST(FastReplica, FasterThanSingleTreeOnBroadcast) {
  int wins_or_ties = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto inst = broadcast(25, 24, 300 + seed);
    TreePolicy tree;
    FastReplicaPolicy fast;
    sim::SimOptions options;
    options.seed = seed;
    const auto tree_run = sim::run(inst, tree, options);
    const auto fast_run = sim::run(inst, fast, options);
    ASSERT_TRUE(tree_run.success);
    ASSERT_TRUE(fast_run.success);
    if (fast_run.steps <= tree_run.steps) ++wins_or_ties;
  }
  EXPECT_GE(wins_or_ties, 4);
}

}  // namespace
}  // namespace ocd::heuristics
