#include "ocd/heuristics/bandwidth_saver.hpp"

#include <gtest/gtest.h>

#include "ocd/core/prune.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/random_useful.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::heuristics {
namespace {

TEST(BandwidthPolicy, DeliversOnlyEventuallyUsefulTokens) {
  // Sparse wants: every token delivered to a vertex must be wanted by
  // it or forwarded later — i.e. pruning the schedule should remove
  // (almost) nothing compared to flooding heuristics.
  Rng rng(11);
  Digraph g = topology::random_overlay(30, rng);
  auto built =
      core::single_source_receiver_density(std::move(g), 12, 0, 0.25, rng);
  const core::Instance& inst = built.instance;
  ASSERT_GT(built.num_receivers, 0);

  BandwidthPolicy bandwidth;
  const auto bw_run = sim::run(inst, bandwidth);
  ASSERT_TRUE(bw_run.success);

  RandomPolicy random;
  const auto random_run = sim::run(inst, random);
  ASSERT_TRUE(random_run.success);

  // The bandwidth heuristic must use less bandwidth than flooding when
  // few vertices want the file (the paper's Figure 4 finding).
  EXPECT_LT(bw_run.bandwidth, random_run.bandwidth);
}

TEST(BandwidthPolicy, NoSpontaneousFloodToUninterestedLeaves) {
  // Star with one wanter: only the wanter's link should carry tokens.
  Digraph g(4);
  g.add_arc(0, 1, 2);
  g.add_arc(0, 2, 2);
  g.add_arc(0, 3, 2);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(2, 0);
  inst.add_want(2, 1);
  BandwidthPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.bandwidth, 2);  // exactly the wanted tokens
  for (const auto& step : result.schedule.steps()) {
    for (const auto& send : step.sends())
      EXPECT_EQ(inst.graph().arc(send.arc).to, 2);
  }
}

TEST(BandwidthPolicy, UsesRelaysWhenNecessary) {
  // Wanter two hops away: the intermediate (uninterested) vertex is the
  // closest one-hop-knowledge vertex and must be fed.
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(2, 0);
  BandwidthPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 2);
  EXPECT_EQ(result.bandwidth, 2);
}

TEST(BandwidthPolicy, ElectsSingleRelayAmongEquivalentPaths) {
  // Diamond: 0 -> {1, 2} -> 3; only one relay should receive the token.
  Digraph g(4);
  g.add_arc(0, 1, 1);
  g.add_arc(0, 2, 1);
  g.add_arc(1, 3, 1);
  g.add_arc(2, 3, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(3, 0);
  BandwidthPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.bandwidth, 2);  // one relay + one delivery
}

TEST(BandwidthPolicy, PrunedBandwidthCloseToRaw) {
  Rng rng(13);
  Digraph g = topology::random_overlay(25, rng);
  auto built =
      core::single_source_receiver_density(std::move(g), 10, 0, 0.3, rng);
  const core::Instance& inst = built.instance;
  BandwidthPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  const auto pruned = core::prune(inst, result.schedule);
  // Cautious sending means little prunable waste; allow a small slack
  // for relay elections that became moot.
  EXPECT_LE(result.bandwidth, pruned.bandwidth() * 2);
}

TEST(BandwidthPolicy, HandlesMultiSourceInstances) {
  Rng rng(14);
  Digraph g = topology::random_overlay(20, rng);
  core::Instance inst =
      core::subdivided_files_random_senders(std::move(g), 8, 2, rng);
  BandwidthPolicy policy;
  const auto result = sim::run(inst, policy);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(core::is_successful(inst, result.schedule));
}

}  // namespace
}  // namespace ocd::heuristics
