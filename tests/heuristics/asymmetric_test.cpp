// Heuristics on asymmetric / adversarial graph shapes: one-way arcs,
// bottleneck bridges, token sources behind a cut, and very heterogenous
// capacities.  The model is directed throughout — these tests pin down
// that no policy silently assumes symmetric links.
#include <gtest/gtest.h>

#include "ocd/core/bounds.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"

namespace ocd::heuristics {
namespace {

/// One-way ring: 0 -> 1 -> 2 -> 3 -> 0, capacity 2.
core::Instance one_way_ring() {
  Digraph g(4);
  for (VertexId v = 0; v < 4; ++v) g.add_arc(v, (v + 1) % 4, 2);
  core::Instance inst(std::move(g), 4);
  for (TokenId t = 0; t < 4; ++t) inst.add_have(0, t);
  for (VertexId v = 1; v < 4; ++v)
    for (TokenId t = 0; t < 4; ++t) inst.add_want(v, t);
  return inst;
}

/// Bridge: clique {0,1,2} -> single arc 2->3 -> clique {3,4,5}; source
/// in the left clique, wanters on the right.
core::Instance bridge_instance() {
  Digraph g(6);
  for (VertexId a : {0, 1, 2})
    for (VertexId b : {0, 1, 2})
      if (a != b) g.add_arc(a, b, 3);
  for (VertexId a : {3, 4, 5})
    for (VertexId b : {3, 4, 5})
      if (a != b) g.add_arc(a, b, 3);
  g.add_arc(2, 3, 1);  // the capacity-1 bridge
  g.add_arc(3, 2, 1);
  core::Instance inst(std::move(g), 5);
  for (TokenId t = 0; t < 5; ++t) inst.add_have(0, t);
  for (VertexId v : {3, 4, 5})
    for (TokenId t = 0; t < 5; ++t) inst.add_want(v, t);
  return inst;
}

class Asymmetric : public ::testing::TestWithParam<std::string> {};

TEST_P(Asymmetric, OneWayRingCompletes) {
  const core::Instance inst = one_way_ring();
  auto policy = make_policy(GetParam());
  sim::SimOptions options;
  options.seed = 7;
  options.max_steps = 10'000;
  const auto result = sim::run(inst, *policy, options);
  ASSERT_TRUE(result.success) << GetParam();
  EXPECT_TRUE(core::is_successful(inst, result.schedule));
  // The farthest vertex is 3 hops downstream; 4 tokens over capacity-2
  // arcs need at least 2 steps per hop-batch: optimal is >= 4.
  EXPECT_GE(result.steps, 4);
}

TEST_P(Asymmetric, BridgeBottleneckDominatesMakespan) {
  const core::Instance inst = bridge_instance();
  auto policy = make_policy(GetParam());
  sim::SimOptions options;
  options.seed = 8;
  options.max_steps = 10'000;
  const auto result = sim::run(inst, *policy, options);
  ASSERT_TRUE(result.success) << GetParam();
  // 5 tokens must cross the capacity-1 bridge one per step, the first
  // no earlier than step 2 — at least 6 steps before the right side is
  // even fed, so any successful run takes >= 6.
  EXPECT_GE(result.steps, 6);
  // The per-vertex closure bound sees the distance but not the shared
  // bridge cut (it is not a cut bound): it certifies >= 3 here.
  EXPECT_GE(core::makespan_lower_bound(inst), 3);
}

TEST_P(Asymmetric, HeterogeneousCapacities) {
  // A fat pipe and a trickle to the same vertex: completion is bounded
  // by ceil(m / total-in-capacity).
  Digraph g(3);
  g.add_arc(0, 2, 10);
  g.add_arc(1, 2, 1);
  g.add_arc(0, 1, 12);
  core::Instance inst(std::move(g), 12);
  for (TokenId t = 0; t < 12; ++t) {
    inst.add_have(0, t);
    inst.add_want(2, t);
  }
  auto policy = make_policy(GetParam());
  sim::SimOptions options;
  options.seed = 9;
  const auto result = sim::run(inst, *policy, options);
  ASSERT_TRUE(result.success) << GetParam();
  EXPECT_GE(result.steps, 2);  // 12 tokens, 11 in-capacity
}

INSTANTIATE_TEST_SUITE_P(All, Asymmetric,
                         ::testing::ValuesIn(all_policy_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(AsymmetricExtra, UnreachableWantReportsFailureNotHang) {
  // Wanter upstream of the only holder on a one-way chain.
  Digraph g(3);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(2, 0);
  inst.add_want(0, 0);
  ASSERT_FALSE(inst.is_satisfiable());
  for (const auto& name : all_policy_names()) {
    auto policy = make_policy(name);
    sim::SimOptions options;
    options.max_steps = 200;
    const auto result = sim::run(inst, *policy, options);
    EXPECT_FALSE(result.success) << name;
  }
}

}  // namespace
}  // namespace ocd::heuristics
