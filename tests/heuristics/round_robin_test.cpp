#include "ocd/heuristics/round_robin.hpp"

#include <gtest/gtest.h>

#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"

namespace ocd::heuristics {
namespace {

TEST(RoundRobin, CyclesThroughTokensOnNarrowLink) {
  // One arc of capacity 1, three tokens: round robin must send 0,1,2
  // over three steps (receiver wants all three).
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 3);
  for (TokenId t = 0; t < 3; ++t) {
    inst.add_have(0, t);
    inst.add_want(1, t);
  }
  RoundRobinPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 3);
  EXPECT_EQ(result.bandwidth, 3);
  // Step i sends token i (circular order, no repetitions until wrap).
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& sends = result.schedule.steps()[i].sends();
    ASSERT_EQ(sends.size(), 1u);
    EXPECT_TRUE(sends[0].tokens.test(static_cast<TokenId>(i)));
  }
}

TEST(RoundRobin, ResendsAfterWrapAround) {
  // Receiver already holds all tokens but wants one it lacks... instead:
  // verify redundancy arises when the link is revisited: two tokens,
  // capacity 2, but receiver keeps receiving while another vertex still
  // needs tokens.
  Digraph g(3);
  g.add_arc(0, 1, 2);
  g.add_arc(1, 2, 1);
  core::Instance inst(std::move(g), 2);
  inst.add_have(0, 0);
  inst.add_have(0, 1);
  inst.add_want(2, 0);
  inst.add_want(2, 1);
  RoundRobinPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  // Vertex 0 re-sends to 1 every step; expect redundant moves.
  EXPECT_GT(result.stats.redundant_moves, 0);
}

TEST(RoundRobin, SkipsTokensItDoesNotHave) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  core::Instance inst(std::move(g), 4);
  inst.add_have(0, 1);
  inst.add_have(0, 3);
  inst.add_want(1, 1);
  inst.add_want(1, 3);
  RoundRobinPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.steps, 2);
  // Only tokens 1 and 3 ever cross.
  for (const auto& step : result.schedule.steps()) {
    for (const auto& send : step.sends()) {
      EXPECT_FALSE(send.tokens.test(0));
      EXPECT_FALSE(send.tokens.test(2));
    }
  }
}

TEST(RoundRobin, VertexWithNoTokensSendsNothing) {
  Digraph g(2);
  g.add_arc(0, 1, 1);
  g.add_arc(1, 0, 1);
  core::Instance inst(std::move(g), 1);
  inst.add_have(0, 0);
  inst.add_want(1, 0);
  RoundRobinPolicy policy;
  const auto result = sim::run(inst, policy);
  ASSERT_TRUE(result.success);
  // Vertex 1 never had anything to send before completion.
  for (const auto& step : result.schedule.steps()) {
    for (const auto& send : step.sends()) EXPECT_EQ(send.arc, 0);
  }
}

TEST(RoundRobin, SlowerThanInformedPoliciesOnBroadcast) {
  Rng rng(6);
  Digraph g = topology::random_overlay(30, rng);
  core::Instance inst = core::single_source_all_receivers(std::move(g), 20, 0);
  RoundRobinPolicy rr;
  const auto rr_result = sim::run(inst, rr);
  auto global = heuristics::make_policy("global");
  const auto global_result = sim::run(inst, *global);
  ASSERT_TRUE(rr_result.success);
  ASSERT_TRUE(global_result.success);
  EXPECT_GE(rr_result.steps, global_result.steps);
  EXPECT_GT(rr_result.bandwidth, global_result.bandwidth);
}

}  // namespace
}  // namespace ocd::heuristics
