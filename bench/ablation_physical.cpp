// §6 "Realistic topologies": logical links share physical links.  We
// project an overlay over a router network, then compare each heuristic
// (a) on the naked overlay, (b) with shared-link capacity groups
// enforced, and report how often unconstrained schedules would have
// violated the physical capacities.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/sim/group_adapter.hpp"
#include "ocd/topology/physical.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_physical",
                      "§6 realistic topologies (shared physical links)");

  topology::PhysicalOptions opt;
  opt.routers = full ? 80 : 40;
  opt.hosts = full ? 24 : 12;
  Rng rng(0xab6'0000);
  auto projection = topology::project_overlay(opt, rng);
  std::cout << "# physical: " << projection.physical.num_vertices()
            << " routers / " << projection.physical.num_arcs() << " links; "
            << "overlay: " << projection.overlay.num_vertices() << " hosts / "
            << projection.overlay.num_arcs() << " arcs; shared groups: "
            << projection.groups.size() << '\n';

  const std::int32_t num_tokens = full ? 64 : 24;
  const auto groups = projection.groups;
  const core::Instance inst = core::single_source_all_receivers(
      std::move(projection.overlay), num_tokens, 0);

  Table table({"policy", "mode", "moves", "bandwidth", "dropped",
               "phys_feasible"});

  for (const auto& name : heuristics::all_policy_names()) {
    // Naked overlay run.
    {
      auto policy = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 3;
      const auto result = sim::run(inst, *policy, options);
      if (!result.success) continue;
      table.add_row({name, std::string("overlay-only"), result.steps,
                     result.bandwidth, std::int64_t{0},
                     std::string(topology::groups_respected(groups,
                                                            result.schedule)
                                     ? "yes"
                                     : "NO")});
    }
    // Physically-constrained run.
    {
      sim::GroupConstrainedPolicy policy(heuristics::make_policy(name),
                                         groups);
      sim::SimOptions options;
      options.seed = 3;
      options.max_steps = 100'000;
      const auto result = sim::run(inst, policy, options);
      if (!result.success) {
        std::cerr << name << "+groups failed\n";
        return 1;
      }
      table.add_row({name, std::string("physical"), result.steps,
                     result.bandwidth, policy.dropped_moves(),
                     std::string("yes")});
    }
  }

  bench::emit(table, csv);
  std::cout << "# expected: overlay-only schedules violate shared links\n"
               "# ('NO' rows); enforcing groups costs extra timesteps —\n"
               "# the overlay-capacity model is optimistic (§6).\n";
  return 0;
}
