// §3.4 / §5: "we calculate bounds ... to provide a rough notion of the
// quality of our local and global heuristics".  On random small
// instances (where the time-indexed IP and the combinatorial BnB are
// exact) we tabulate every heuristic's makespan and bandwidth against
// the optimum and the combinatorial lower bounds.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/exact/ip_solver.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("table_optimality_gap",
                      "§3.4/§5 heuristics vs exact optima on small graphs");

  const int instances = full ? 10 : 5;

  Table table({"seed", "n", "m", "opt_makespan", "opt_bw@opt_t", "lb_makespan",
               "lb_bw", "policy", "moves", "bandwidth", "pruned_bw"});

  struct Workload {
    int seed;
    core::Instance instance;
    std::int64_t opt_makespan;
    std::int64_t opt_bw;
    std::int64_t lb_t;
    std::int64_t lb_bw;
  };
  std::vector<Workload> workloads;
  for (int seed = 0; seed < instances; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) + 0x7ab'0000);
    auto inst = core::random_small_instance(5, 2, 0.5, rng);

    const auto exact_time = exact::focd_min_makespan(inst, 12);
    if (!exact_time.has_value()) continue;
    // Min bandwidth subject to optimal time (the hybrid goal of §3.4).
    const auto exact_bw = exact::solve_eocd(inst, exact_time->makespan);
    const auto lb_t = core::makespan_lower_bound(inst);
    const auto lb_bw = core::bandwidth_lower_bound(inst);
    workloads.push_back({seed, std::move(inst),
                         static_cast<std::int64_t>(exact_time->makespan),
                         exact_bw ? exact_bw->bandwidth : -1, lb_t, lb_bw});
  }

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    const Workload& w = workloads[c.workload];
    return bench::run_policy(w.instance, c.policy, 900 + w.seed);
  });

  double worst_time_ratio = 0.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Workload& w = workloads[configs[i].workload];
    const auto& run = rows[i];
    if (!run.success) continue;
    worst_time_ratio =
        std::max(worst_time_ratio,
                 static_cast<double>(run.moves) /
                     static_cast<double>(w.opt_makespan));
    table.add_row({static_cast<std::int64_t>(w.seed),
                   static_cast<std::int64_t>(w.instance.num_vertices()),
                   static_cast<std::int64_t>(w.instance.num_tokens()),
                   w.opt_makespan, w.opt_bw, w.lb_t, w.lb_bw,
                   configs[i].policy, run.moves, run.bandwidth,
                   run.pruned_bandwidth});
  }

  bench::emit(table, csv);
  std::cout << "# worst heuristic/optimal makespan ratio: "
            << worst_time_ratio << '\n'
            << "# expected: informed heuristics sit within a small factor\n"
               "# of the optimum; lower bounds never exceed it.\n";
  return 0;
}
