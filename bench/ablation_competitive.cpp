// §4.2 / Theorem 4: no c-competitive online algorithm for FOCD.  On the
// proof's adversarial family (a long path, the far endpoint wanting one
// of m tokens) we tabulate each heuristic's makespan against the
// prescient optimum (the path length) as m grows: knowledge-blind
// policies' competitive ratio diverges, knowledge-using ones stay near
// optimum + diameter.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_competitive",
                      "§4.2 / Theorem 4 adversarial competitive ratios");

  const std::int32_t length = full ? 8 : 5;
  const std::vector<std::int32_t> universes =
      full ? std::vector<std::int32_t>{4, 16, 64, 256}
           : std::vector<std::int32_t>{4, 16, 64};

  Table table({"m", "policy", "moves", "optimal", "ratio", "bandwidth"});
  table.set_precision(2);

  struct Workload {
    std::int32_t m;
    core::Instance instance;
  };
  std::vector<Workload> workloads;
  for (const std::int32_t m : universes)
    workloads.push_back({m, core::adversarial_path(length, m, m / 2)});

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    return bench::run_policy(workloads[c.workload].instance, c.policy, 77);
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& run = rows[i];
    if (!run.success) continue;
    table.add_row({static_cast<std::int64_t>(workloads[configs[i].workload].m),
                   configs[i].policy, run.moves,
                   static_cast<std::int64_t>(length),
                   static_cast<double>(run.moves) /
                       static_cast<double>(length),
                   run.bandwidth});
  }

  bench::emit(table, csv);
  std::cout << "# expected: round-robin's ratio grows without bound in m\n"
               "# (Theorem 4's mechanism); want-aware heuristics stay flat.\n";
  return 0;
}
