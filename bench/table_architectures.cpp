// §2 architecture comparison inside the OCD model: single
// bandwidth-optimized tree (Overcast), striped forest (SplitStream),
// and the paper's mesh heuristics, on the canonical broadcast workload.
// The historical progression tree -> forest -> mesh should fall out of
// the numbers.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/heuristics/architectures.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("table_architectures",
                      "§2 overlay architectures under one model");

  const std::int32_t n = full ? 150 : 60;
  const std::int32_t num_tokens = full ? 128 : 48;

  Table table({"topology", "policy", "moves", "bandwidth", "redundant",
               "fairness"});
  table.set_precision(3);

  auto sweep = [&](const std::string& label, Digraph&& graph) {
    const auto inst =
        core::single_source_all_receivers(std::move(graph), num_tokens, 0);
    for (const auto& name : heuristics::extended_policy_names()) {
      auto policy = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 29;
      options.max_steps = 100'000;
      const auto result = sim::run(inst, *policy, options);
      if (!result.success) {
        std::cerr << name << " failed on " << label << '\n';
        std::exit(1);
      }
      table.add_row({label, name, result.steps, result.bandwidth,
                     result.stats.redundant_moves,
                     result.stats.upload_fairness()});
    }
  };

  {
    Rng rng(0xa9c'0001);
    sweep("random", topology::random_overlay(n, rng));
  }
  {
    Rng rng(0xa9c'0002);
    const auto opt = topology::transit_stub_options_for_size(n);
    sweep("transit-stub", topology::transit_stub(opt, rng));
  }

  bench::emit(table, csv);
  std::cout << "# expected: the historical progression — the single tree is\n"
               "# slowest on well-connected overlays (one structure carries\n"
               "# everything); the paper's mesh heuristics dominate on speed;\n"
               "# on transit-stub graphs the access links equalize everyone\n"
               "# but round-robin.\n";
  return 0;
}
