// Figure 5: moves and bandwidth as a function of the number of files.
// 512 tokens at a single source are subdivided into 1, 2, 4, ..., 128
// files; the vertices are partitioned likewise and each group wants
// exactly one file (the total token mass distributed stays constant).
//
// Paper shape: a large initial descent in moves (the single-source
// bottleneck relaxes as wants shrink), then the flooding heuristics
// level off and keep flooding everything; only the bandwidth heuristic's
// consumption keeps improving with more files, tracking the lower bound
// and the pruned flooding bandwidth.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig5_num_files", "Figure 5 (number of files)");

  const std::int32_t n = full ? 200 : 65;
  const std::int32_t total_tokens = full ? 512 : 128;
  const std::vector<std::int32_t> file_counts =
      full ? std::vector<std::int32_t>{1, 2, 4, 8, 16, 32, 64, 128}
           : std::vector<std::int32_t>{1, 2, 4, 8, 16, 32, 64};

  Table table({"files", "policy", "moves", "bandwidth", "pruned_bw", "bw_lb",
               "seconds"});

  Rng graph_rng(0x0f5'0000);
  const Digraph base = topology::random_overlay(n, graph_rng);

  struct Workload {
    std::int32_t files;
    core::Instance instance;
    std::int64_t bw_lb;
  };
  std::vector<Workload> workloads;
  for (const std::int32_t files : file_counts) {
    Digraph graph = base;
    auto inst =
        core::subdivided_files(std::move(graph), total_tokens, files, 0);
    const auto bw_lb = core::bandwidth_lower_bound(inst);
    workloads.push_back({files, std::move(inst), bw_lb});
  }

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    return bench::run_policy(workloads[c.workload].instance, c.policy, 5000);
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Workload& w = workloads[configs[i].workload];
    const auto& run = rows[i];
    if (!run.success) {
      std::cerr << "policy " << configs[i].policy << " failed at files="
                << w.files << '\n';
      return 1;
    }
    table.add_row({static_cast<std::int64_t>(w.files), configs[i].policy,
                   run.moves, run.bandwidth, run.pruned_bandwidth, w.bw_lb,
                   run.wall_seconds});
  }

  bench::emit(table, csv);
  std::cout << "# expected shape: moves descend then level off for the\n"
               "# flooders; only the bandwidth heuristic's bandwidth keeps\n"
               "# falling with more files, tracking bw_lb and pruned_bw.\n";
  return 0;
}
