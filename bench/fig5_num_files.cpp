// Figure 5: moves and bandwidth as a function of the number of files.
// 512 tokens at a single source are subdivided into 1, 2, 4, ..., 128
// files; the vertices are partitioned likewise and each group wants
// exactly one file (the total token mass distributed stays constant).
//
// Paper shape: a large initial descent in moves (the single-source
// bottleneck relaxes as wants shrink), then the flooding heuristics
// level off and keep flooding everything; only the bandwidth heuristic's
// consumption keeps improving with more files, tracking the lower bound
// and the pruned flooding bandwidth.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig5_num_files", "Figure 5 (number of files)");

  const std::int32_t n = full ? 200 : 65;
  const std::int32_t total_tokens = full ? 512 : 128;
  const std::vector<std::int32_t> file_counts =
      full ? std::vector<std::int32_t>{1, 2, 4, 8, 16, 32, 64, 128}
           : std::vector<std::int32_t>{1, 2, 4, 8, 16, 32, 64};

  Table table({"files", "policy", "moves", "bandwidth", "pruned_bw", "bw_lb",
               "seconds"});

  Rng graph_rng(0x0f5'0000);
  const Digraph base = topology::random_overlay(n, graph_rng);

  for (const std::int32_t files : file_counts) {
    Digraph graph = base;
    const auto inst =
        core::subdivided_files(std::move(graph), total_tokens, files, 0);
    const auto bw_lb = core::bandwidth_lower_bound(inst);

    for (const auto& name : heuristics::all_policy_names()) {
      const auto run = bench::run_policy(inst, name, 5000);
      if (!run.success) {
        std::cerr << "policy " << name << " failed at files=" << files
                  << '\n';
        return 1;
      }
      table.add_row({static_cast<std::int64_t>(files), name, run.moves,
                     run.bandwidth, run.pruned_bandwidth, bw_lb,
                     run.wall_seconds});
    }
  }

  bench::emit(table, csv);
  std::cout << "# expected shape: moves descend then level off for the\n"
               "# flooders; only the bandwidth heuristic's bandwidth keeps\n"
               "# falling with more files, tracking bw_lb and pruned_bw.\n";
  return 0;
}
