// §6 "Encoding": redundant coded pieces, any k of n reconstructing the
// file.  We sweep the redundancy factor and report completion time and
// traffic — coding removes the last-rare-piece bottleneck at the cost
// of a larger piece universe.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/coding/coded_instance.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_coding",
                      "§6 encoding (k-of-n pieces) redundancy sweep");

  const std::int32_t n = full ? 100 : 50;
  const std::int32_t data_tokens = full ? 64 : 24;
  const std::vector<double> redundancies =
      full ? std::vector<double>{1.0, 1.25, 1.5, 2.0, 3.0}
           : std::vector<double>{1.0, 1.5, 2.0};

  Rng graph_rng(0xab5'0000);
  const Digraph base = topology::random_overlay(n, graph_rng);

  Table table({"redundancy", "pieces", "policy", "moves", "bandwidth",
               "mean_completion"});
  table.set_precision(2);

  for (const double redundancy : redundancies) {
    Digraph g = base;
    const auto coded = coding::coded_broadcast(std::move(g), data_tokens,
                                               redundancy, 0);
    for (const std::string name : {"random", "local", "global"}) {
      auto policy = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 33;
      options.completion = coded.completion_predicate();
      const auto result = sim::run(coded.instance(), *policy, options);
      if (!result.success) {
        std::cerr << name << " failed at redundancy " << redundancy << '\n';
        return 1;
      }
      table.add_row({redundancy,
                     static_cast<std::int64_t>(coded.instance().num_tokens()),
                     name, result.steps, result.bandwidth,
                     result.stats.mean_completion()});
    }
  }

  bench::emit(table, csv);
  std::cout << "# expected: completion time falls (or holds) as redundancy\n"
               "# grows — receivers stop needing the last specific pieces.\n";
  return 0;
}
