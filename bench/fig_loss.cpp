// Degradation under lossy delivery: completion steps and wasted
// bandwidth vs. uniform loss rate, every heuristic raw and wrapped in
// the reliable-transfer adapter.  Runs the (loss x policy x mode) grid
// on the shared thread pool; rows are scheduling-independent.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig_loss",
                      "robustness: lossy delivery vs reliable transfer "
                      "(fault-injection sweep)");

  const std::int32_t n = full ? 100 : 40;
  const std::int32_t num_tokens = full ? 96 : 24;

  Rng graph_rng(0xf1a'0001);
  Digraph base = topology::random_overlay(n, graph_rng);
  const auto inst =
      core::single_source_all_receivers(std::move(base), num_tokens, 0);

  std::vector<double> loss_rates = {0.0, 0.05, 0.2, 0.4};
  if (full) loss_rates = {0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};

  struct Config {
    double loss = 0.0;
    std::string policy;
    bool reliable = false;
  };
  std::vector<Config> configs;
  for (const double loss : loss_rates) {
    for (const auto& name : heuristics::all_policy_names()) {
      configs.push_back({loss, name, false});
      configs.push_back({loss, name, true});
    }
  }

  struct Row {
    bool success = false;
    std::int64_t steps = 0;
    std::int64_t bandwidth = 0;
    std::int64_t lost = 0;
    std::int64_t wasted = 0;
    std::int64_t retrans = 0;
    double wall_seconds = 0.0;
  };
  // Each worker owns its fault model and policy; sim::run keeps all run
  // state local, so the grid is data-race free by construction.
  const auto run_one = [&](const Config& c) {
    faults::UniformLoss loss(c.loss);
    auto policy = heuristics::make_policy(
        c.reliable ? c.policy + "+reliable" : c.policy);
    sim::SimOptions options;
    options.seed = 77;
    options.faults = &loss;
    options.record_schedule = false;
    options.max_steps = 200'000;
    Stopwatch timer;
    const auto result = sim::run(inst, *policy, options);
    Row row;
    row.success = result.success;
    row.steps = result.steps;
    row.bandwidth = result.bandwidth;
    row.lost = result.stats.lost_moves;
    row.wasted = result.stats.wasted_bandwidth();
    row.retrans = result.stats.retransmissions;
    row.wall_seconds = timer.seconds();
    return row;
  };
  const auto rows = bench::run_grid(configs, run_one);

  Table table({"loss", "policy", "mode", "success", "steps", "bandwidth",
               "lost", "wasted", "retrans", "seconds"});
  table.set_precision(3);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const Row& r = rows[i];
    table.add_row({c.loss, c.policy, std::string(c.reliable ? "reliable" : "raw"),
                   std::string(r.success ? "yes" : "no"), r.steps, r.bandwidth,
                   r.lost, r.wasted, r.retrans, r.wall_seconds});
  }

  bench::emit(table, csv);
  std::cout << "# expected: at loss 0 both modes match; as loss grows raw\n"
               "# policies shed useful deliveries (watchdog may end them)\n"
               "# while +reliable completes every run at the cost of\n"
               "# retransmissions folded into wasted bandwidth.\n";
  return 0;
}
