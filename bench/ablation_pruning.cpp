// Ablation (§5.1 pruning): how much bandwidth does each pruning pass
// recover, per heuristic and receiver density?  The paper uses pruned
// bandwidth as its near-optimal reference series in Figures 4-6.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_pruning",
                      "§5.1 pruning effectiveness per heuristic");

  const std::int32_t n = full ? 120 : 60;
  const std::int32_t num_tokens = full ? 128 : 40;

  Table table({"threshold", "policy", "bandwidth", "pruned_bw",
               "recovered_pct", "bw_lb"});
  table.set_precision(1);

  Rng graph_rng(0xab1'0000);
  const Digraph base = topology::random_overlay(n, graph_rng);

  struct Workload {
    double threshold;
    core::Instance instance;
    std::int64_t bw_lb;
  };
  std::vector<Workload> workloads;
  for (const double threshold : {0.2, 0.6, 1.0}) {
    Rng rng(0xab1'1000 + static_cast<std::uint64_t>(threshold * 100));
    Digraph graph = base;
    auto built = core::single_source_receiver_density(
        std::move(graph), num_tokens, 0, threshold, rng);
    const auto bw_lb = core::bandwidth_lower_bound(built.instance);
    workloads.push_back({threshold, std::move(built.instance), bw_lb});
  }

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    return bench::run_policy(workloads[c.workload].instance, c.policy, 11);
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Workload& w = workloads[configs[i].workload];
    const auto& run = rows[i];
    if (!run.success) continue;
    const double recovered =
        run.bandwidth == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(run.bandwidth - run.pruned_bandwidth) /
                  static_cast<double>(run.bandwidth);
    table.add_row({w.threshold, configs[i].policy, run.bandwidth,
                   run.pruned_bandwidth, recovered, w.bw_lb});
  }

  bench::emit(table, csv);
  std::cout << "# expected: flooding heuristics shed most of their traffic\n"
               "# at low thresholds; the bandwidth heuristic has little to\n"
               "# prune; pruned flooding approaches bw_lb.\n";
  return 0;
}
