// Figure 7 / appendix: the Dominating Set -> FOCD reduction.  For random
// graphs we tabulate, per k, whether the reduced instance is 2-step
// feasible, against the exact domination number — the two must agree
// everywhere (Theorem 5), and a witness schedule yields a dominating
// set.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/reduction/ds_reduction.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig7_reduction",
                      "Figure 7 / Theorem 5 (Dominating Set reduction)");

  const std::int32_t max_n = full ? 6 : 5;
  const int graphs_per_size = full ? 4 : 2;

  Table table({"n", "graph", "gamma", "k", "focd_2step", "agrees",
               "extracted_ds", "bnb_nodes"});

  bool all_agree = true;
  for (std::int32_t n = 4; n <= max_n; ++n) {
    for (int g_idx = 0; g_idx < graphs_per_size; ++g_idx) {
      Rng rng(0x0f7'0000 + static_cast<std::uint64_t>(n) * 100 +
              static_cast<std::uint64_t>(g_idx));
      const auto graph = reduction::random_undirected(n, 0.4, rng);
      const auto gamma = static_cast<std::int32_t>(
          reduction::minimum_dominating_set(graph).size());

      for (std::int32_t k = 0; k <= n; ++k) {
        const auto reduced = reduction::reduce_dominating_set(graph, k);
        exact::BnbOptions options;
        options.max_nodes = 100'000'000;
        options.max_plans_per_step = 100'000'000;
        exact::BnbStats stats;
        core::Schedule witness;
        const bool feasible = exact::dfocd_feasible(reduced.instance, 2,
                                                    options, &witness, &stats);
        const bool agrees = feasible == (k >= gamma);
        all_agree = all_agree && agrees;

        std::int64_t extracted = -1;
        if (feasible) {
          const auto set = reduction::extract_dominating_set(reduced, witness);
          extracted = static_cast<std::int64_t>(set.size());
          if (!reduction::is_dominating_set(graph, set)) all_agree = false;
        }
        table.add_row({static_cast<std::int64_t>(n),
                       static_cast<std::int64_t>(g_idx),
                       static_cast<std::int64_t>(gamma),
                       static_cast<std::int64_t>(k),
                       std::string(feasible ? "yes" : "no"),
                       std::string(agrees ? "yes" : "NO"), extracted,
                       stats.nodes});
      }
    }
  }

  bench::emit(table, csv);
  std::cout << "# Theorem 5: dominating set of size <= k exists  <=>  the\n"
               "# reduced FOCD instance solves in 2 timesteps.\n"
            << "# equivalence " << (all_agree ? "HOLDS" : "VIOLATED")
            << " on every row\n";
  return all_agree ? 0 : 1;
}
