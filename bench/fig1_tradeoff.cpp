// Figure 1: the graph in which minimizing time and bandwidth are at
// odds.  Regenerates the caption's numbers with both exact solvers:
// minimum-time schedule = 2 timesteps / 6 bandwidth; minimum-bandwidth
// schedule = 4 bandwidth / 3 timesteps.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/exact/ip_solver.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  bench::print_header("fig1_tradeoff", "Figure 1 (time/bandwidth tension)");

  const core::Instance inst = core::figure1_instance();
  std::cout << "# instance: " << inst.summary() << '\n';

  Table table({"objective", "solver", "timesteps", "bandwidth"});

  // Minimum time via combinatorial branch and bound.
  const auto fastest = exact::focd_min_makespan(inst, 6);
  if (!fastest.has_value()) {
    std::cerr << "unexpected: instance unsatisfiable\n";
    return 1;
  }
  // The bandwidth a 2-step schedule must spend: IP with horizon 2.
  const auto fast_bw = exact::solve_eocd(inst, fastest->makespan);
  table.add_row({std::string("min-time"), std::string("bnb+ip"),
                 static_cast<std::int64_t>(fastest->makespan),
                 fast_bw ? fast_bw->bandwidth : -1});

  // Minimum bandwidth: widen the horizon until the optimum stabilizes.
  std::int64_t best_bw = -1;
  std::int64_t best_len = -1;
  for (std::int32_t horizon = fastest->makespan; horizon <= 6; ++horizon) {
    const auto solved = exact::solve_eocd(inst, horizon);
    if (solved.has_value() &&
        (best_bw < 0 || solved->bandwidth < best_bw)) {
      best_bw = solved->bandwidth;
      best_len = solved->schedule.length();
    }
  }
  table.add_row({std::string("min-bandwidth"), std::string("ip"), best_len,
                 best_bw});

  bench::emit(table, csv);

  const bool matches_paper = fastest->makespan == 2 && fast_bw &&
                             fast_bw->bandwidth == 6 && best_bw == 4 &&
                             best_len == 3;
  std::cout << "# paper caption: min-time = 2 steps / 6 bandwidth; "
               "min-bandwidth = 4 bandwidth / 3 steps\n"
            << "# reproduction " << (matches_paper ? "MATCHES" : "DIFFERS")
            << '\n';
  return matches_paper ? 0 : 1;
}
