// Figure 6: moves and bandwidth as a function of the number of files,
// with each file initially held by a random vertex that does not want
// it (the multiple-senders adaptation of Figure 5).
//
// Paper shape: closely mimics Figure 5 — the same heuristic trends hold
// whether the content starts at one place or many.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig6_multi_senders",
                      "Figure 6 (number of files, random senders)");

  const std::int32_t n = full ? 200 : 65;
  const std::int32_t total_tokens = full ? 512 : 128;
  const std::vector<std::int32_t> file_counts =
      full ? std::vector<std::int32_t>{1, 2, 4, 8, 16, 32, 64, 128}
           : std::vector<std::int32_t>{1, 2, 4, 8, 16, 32, 64};

  Table table({"files", "policy", "moves", "bandwidth", "pruned_bw", "bw_lb",
               "seconds"});

  Rng graph_rng(0x0f6'0000);
  const Digraph base = topology::random_overlay(n, graph_rng);

  struct Workload {
    std::int32_t files;
    core::Instance instance;
    std::int64_t bw_lb;
  };
  std::vector<Workload> workloads;
  for (const std::int32_t files : file_counts) {
    Digraph graph = base;
    Rng sender_rng(0x0f6'1000 + static_cast<std::uint64_t>(files));
    auto inst = core::subdivided_files_random_senders(
        std::move(graph), total_tokens, files, sender_rng);
    const auto bw_lb = core::bandwidth_lower_bound(inst);
    workloads.push_back({files, std::move(inst), bw_lb});
  }

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    return bench::run_policy(workloads[c.workload].instance, c.policy, 6000);
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Workload& w = workloads[configs[i].workload];
    const auto& run = rows[i];
    if (!run.success) {
      std::cerr << "policy " << configs[i].policy << " failed at files="
                << w.files << '\n';
      return 1;
    }
    table.add_row({static_cast<std::int64_t>(w.files), configs[i].policy,
                   run.moves, run.bandwidth, run.pruned_bandwidth, w.bw_lb,
                   run.wall_seconds});
  }

  bench::emit(table, csv);
  std::cout << "# expected shape: mirrors Figure 5 (same trends with\n"
               "# distributed sources).\n";
  return 0;
}
