// Figure 2: moves and bandwidth as a function of graph size.  Single
// source distributing one file to all receivers on random overlays with
// p = 2 ln n / n and capacities U[3,15].
//
// Paper shape to reproduce: the number of moves (timesteps) does not
// correlate with the number of vertices; bandwidth grows roughly
// linearly with n; round robin is much slower than the informed
// heuristics; the bandwidth heuristic is slower and saves nothing when
// everyone wants everything; random stays within a constant factor of
// the smarter heuristics.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig2_graph_size_random",
                      "Figure 2 (graph size, random graph)");

  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{20, 50, 100, 200, 400, 700, 1000}
           : std::vector<std::int32_t>{20, 50, 100, 200};
  const std::int32_t num_tokens = full ? 200 : 50;
  const int instances = full ? 2 : 1;
  const int repetitions = full ? 3 : 1;

  Table table({"n", "policy", "moves", "bandwidth", "pruned_bw", "bw_lb",
               "seconds"});

  // Build every instance up front, then farm the (instance × policy)
  // grid out to the sweep pool; rows come back in configuration order.
  struct Workload {
    std::int32_t n;
    core::Instance instance;
    std::int64_t bw_lb;
  };
  std::vector<Workload> workloads;
  for (const std::int32_t n : sizes) {
    for (int g_idx = 0; g_idx < instances; ++g_idx) {
      Rng rng(0x0f2'0000 + static_cast<std::uint64_t>(n) * 10 +
              static_cast<std::uint64_t>(g_idx));
      Digraph graph = topology::random_overlay(n, rng);
      auto inst =
          core::single_source_all_receivers(std::move(graph), num_tokens, 0);
      const auto bw_lb = core::bandwidth_lower_bound(inst);
      workloads.push_back({n, std::move(inst), bw_lb});
    }
  }

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  struct Row {
    bool success = true;
    std::int64_t moves = 0;
    std::int64_t bandwidth = 0;
    std::int64_t pruned = 0;
    double seconds = 0;
  };
  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    // The paper repeats each heuristic 3 times per graph; variation is
    // tiny, so quick mode runs once.
    Row row;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto run = bench::run_policy(
          workloads[c.workload].instance, c.policy,
          1000 + static_cast<std::uint64_t>(rep));
      if (!run.success) {
        row.success = false;
        return row;
      }
      row.moves += run.moves;
      row.bandwidth += run.bandwidth;
      row.pruned += run.pruned_bandwidth;
      row.seconds += run.wall_seconds;
    }
    return row;
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Workload& w = workloads[configs[i].workload];
    const Row& row = rows[i];
    if (!row.success) {
      std::cerr << "policy " << configs[i].policy << " failed on n=" << w.n
                << '\n';
      return 1;
    }
    table.add_row({static_cast<std::int64_t>(w.n), configs[i].policy,
                   row.moves / repetitions, row.bandwidth / repetitions,
                   row.pruned / repetitions, w.bw_lb, row.seconds});
  }

  bench::emit(table, csv);
  std::cout << "# expected shape: moves ~flat in n; bandwidth ~linear in n;\n"
               "# round-robin slowest; bandwidth-heuristic slower with no\n"
               "# savings when all receivers want everything.\n";
  return 0;
}
