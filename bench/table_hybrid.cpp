// §3.4 hybrid objective: "a bandwidth-optimal solution subject to the
// constraint that the time be no more than some constant factor of the
// optimal time".  We trace the bandwidth/time Pareto frontier on the
// Figure-1 graph and on random small instances.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/exact/hybrid.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("table_hybrid",
                      "§3.4 hybrid time/bandwidth Pareto frontier");

  Table table({"instance", "horizon", "slack", "bandwidth", "bw_lb"});
  table.set_precision(2);

  auto trace = [&](const std::string& label, const core::Instance& inst) {
    const auto frontier = exact::bandwidth_time_frontier(inst, 6, 2);
    if (frontier.empty()) return;
    const auto bw_lb = core::bandwidth_lower_bound(inst);
    for (const auto& point : frontier) {
      table.add_row({label, static_cast<std::int64_t>(point.horizon),
                     static_cast<double>(point.horizon) /
                         static_cast<double>(point.optimal_makespan),
                     point.bandwidth, bw_lb});
    }
  };

  trace("figure-1", core::figure1_instance());
  const int instances = full ? 6 : 3;
  for (int seed = 0; seed < instances; ++seed) {
    Rng rng(0x1b1'0000 + static_cast<std::uint64_t>(seed));
    trace("random-" + std::to_string(seed),
          core::random_small_instance(5, 2, 0.5, rng));
  }

  bench::emit(table, csv);
  std::cout << "# expected: bandwidth is non-increasing in the horizon and\n"
               "# bottoms out at (or near) the simple lower bound; figure-1\n"
               "# shows the full 6 -> 4 descent between slack 1.0 and 1.5.\n";
  return 0;
}
