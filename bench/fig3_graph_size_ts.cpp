// Figure 3: moves and bandwidth as a function of graph size on
// transit-stub topologies (GT-ITM substitute), single source and file to
// all receivers.  The paper reports the same qualitative behaviour as on
// random graphs (Figure 2).
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/transit_stub.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig3_graph_size_ts",
                      "Figure 3 (graph size, transit-stub graph)");

  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{20, 50, 100, 200, 400, 700, 1000}
           : std::vector<std::int32_t>{20, 50, 100, 200};
  const std::int32_t num_tokens = full ? 200 : 50;
  const int repetitions = full ? 3 : 1;

  Table table({"n_target", "n_actual", "policy", "moves", "bandwidth",
               "pruned_bw", "bw_lb", "seconds"});

  struct Workload {
    std::int32_t n;
    std::int64_t actual;
    core::Instance instance;
    std::int64_t bw_lb;
  };
  std::vector<Workload> workloads;
  for (const std::int32_t n : sizes) {
    const auto opt = topology::transit_stub_options_for_size(n);
    Rng rng(0x0f3'0000 + static_cast<std::uint64_t>(n));
    Digraph graph = topology::transit_stub(opt, rng);
    const std::int64_t actual = graph.num_vertices();
    auto inst =
        core::single_source_all_receivers(std::move(graph), num_tokens, 0);
    const auto bw_lb = core::bandwidth_lower_bound(inst);
    workloads.push_back({n, actual, std::move(inst), bw_lb});
  }

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  struct Row {
    bool success = true;
    std::int64_t moves = 0;
    std::int64_t bandwidth = 0;
    std::int64_t pruned = 0;
    double seconds = 0;
  };
  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    Row row;
    for (int rep = 0; rep < repetitions; ++rep) {
      const auto run = bench::run_policy(
          workloads[c.workload].instance, c.policy,
          2000 + static_cast<std::uint64_t>(rep));
      if (!run.success) {
        row.success = false;
        return row;
      }
      row.moves += run.moves;
      row.bandwidth += run.bandwidth;
      row.pruned += run.pruned_bandwidth;
      row.seconds += run.wall_seconds;
    }
    return row;
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Workload& w = workloads[configs[i].workload];
    const Row& row = rows[i];
    if (!row.success) {
      std::cerr << "policy " << configs[i].policy << " failed on n=" << w.n
                << '\n';
      return 1;
    }
    table.add_row({static_cast<std::int64_t>(w.n), w.actual,
                   configs[i].policy, row.moves / repetitions,
                   row.bandwidth / repetitions, row.pruned / repetitions,
                   w.bw_lb, row.seconds});
  }

  bench::emit(table, csv);
  std::cout << "# expected shape: mirrors Figure 2 (the paper found\n"
               "# transit-stub and random graphs behave alike here).\n";
  return 0;
}
