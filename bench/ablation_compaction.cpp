// Offline post-pass ablation: §5.1's pruning recovers bandwidth; our
// compaction pass (the makespan analogue) advances moves to their
// earliest legal step.  Per heuristic: raw schedule vs pruned vs
// prune+compact, against the combinatorial lower bounds.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/compact.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/sim/scripted.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_compaction",
                      "offline prune+compact post-pass per heuristic");

  const std::int32_t n = full ? 120 : 60;
  const std::int32_t num_tokens = full ? 96 : 36;

  Rng graph_rng(0xab7'0000);
  Digraph base = topology::random_overlay(n, graph_rng);
  auto built = core::single_source_receiver_density(std::move(base),
                                                    num_tokens, 0, 0.5,
                                                    graph_rng);
  const core::Instance& inst = built.instance;
  const auto t_lb = core::makespan_lower_bound(inst);
  const auto bw_lb = core::bandwidth_lower_bound(inst);

  Table table({"policy", "raw_steps", "raw_bw", "pruned_bw", "opt_steps",
               "opt_bw", "t_lb", "bw_lb"});

  auto report = [&](const std::string& label, sim::Policy& policy) {
    sim::SimOptions options;
    options.seed = 13;
    const auto result = sim::run(inst, policy, options);
    if (!result.success) return;
    const auto pruned = core::prune(inst, result.schedule);
    const auto optimized = core::optimize_schedule(inst, result.schedule);
    table.add_row({label, result.steps, result.bandwidth, pruned.bandwidth(),
                   optimized.length(), optimized.bandwidth(), t_lb, bw_lb});
  };

  for (const auto& name : heuristics::all_policy_names()) {
    auto policy = heuristics::make_policy(name);
    report(name, *policy);
  }
  // The §4.2 two-phase algorithm's knowledge-flooding idle prefix is
  // pure compaction fodder — its offline plan needs none of the delay.
  sim::TwoPhasePolicy two_phase("global");
  report("two-phase", two_phase);

  bench::emit(table, csv);
  std::cout << "# expected: opt_bw == pruned_bw (compaction preserves the\n"
               "# pruned move set); opt_steps <= raw_steps.  Dense flooding\n"
               "# schedules barely shorten; two-phase's idle delay prefix\n"
               "# compacts away entirely.\n";
  return 0;
}
