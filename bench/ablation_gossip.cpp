// §4.1 knowledge-propagation ablation: the Local heuristic assumes an
// oracle distributing aggregates every turn; GossipRarest implements the
// same idea strictly within the local model (beliefs merged from
// neighbors, lagging up to a diameter).  The gap between the two is the
// empirical price of §4.1's locality — alongside the additive-diameter
// two-phase algorithm for reference.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/sim/gossip.hpp"
#include "ocd/sim/scripted.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_gossip",
                      "§4.1 locality price: oracle vs gossip knowledge");

  const std::vector<std::int32_t> sizes =
      full ? std::vector<std::int32_t>{20, 50, 100, 200}
           : std::vector<std::int32_t>{20, 50, 100};
  const std::int32_t num_tokens = full ? 96 : 32;

  Table table({"n", "diameter", "policy", "moves", "bandwidth",
               "redundant"});

  for (const std::int32_t n : sizes) {
    Rng rng(0xab8'0000 + static_cast<std::uint64_t>(n));
    Digraph g = topology::random_overlay(n, rng);
    const auto diam = diameter(g);
    const auto inst =
        core::single_source_all_receivers(std::move(g), num_tokens, 0);

    auto report = [&](const std::string& label, sim::Policy& policy) {
      sim::SimOptions options;
      options.seed = 71;
      options.max_steps = 100'000;
      const auto result = sim::run(inst, policy, options);
      if (!result.success) {
        std::cerr << label << " failed at n=" << n << '\n';
        std::exit(1);
      }
      table.add_row({static_cast<std::int64_t>(n),
                     static_cast<std::int64_t>(diam), label, result.steps,
                     result.bandwidth, result.stats.redundant_moves});
    };

    auto oracle = heuristics::make_policy("local");
    report("local(oracle)", *oracle);
    sim::GossipRarestPolicy gossip;
    report("gossip-rarest", gossip);
    sim::TwoPhasePolicy two_phase("global");
    report("two-phase", two_phase);
  }

  bench::emit(table, csv);
  std::cout << "# expected: gossip-rarest within ~a diameter of the oracle\n"
               "# version; two-phase = its plan length + the diameter.\n";
  return 0;
}
