// §6 "Changing network conditions": heuristic robustness under cross
// traffic (capacity jitter), link churn, and node churn (arrivals &
// departures), relative to the static network.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/dynamics/model.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_dynamics",
                      "§6 changing network conditions (robustness sweep)");

  const std::int32_t n = full ? 100 : 50;
  const std::int32_t num_tokens = full ? 128 : 48;

  Rng graph_rng(0xab4'0000);
  Digraph base = topology::random_overlay(n, graph_rng);
  const auto inst =
      core::single_source_all_receivers(std::move(base), num_tokens, 0);

  struct Condition {
    std::string label;
    std::unique_ptr<dynamics::DynamicsModel> model;
  };
  std::vector<Condition> conditions;
  conditions.push_back({"static", nullptr});
  conditions.push_back(
      {"jitter-0.5", std::make_unique<dynamics::CapacityJitter>(0.5)});
  conditions.push_back(
      {"link-churn-10%", std::make_unique<dynamics::LinkChurn>(0.10, 3)});
  conditions.push_back(
      {"node-churn-5%", std::make_unique<dynamics::NodeChurn>(0.05, 4)});
  if (full) {
    conditions.push_back(
        {"jitter-0.8", std::make_unique<dynamics::CapacityJitter>(0.8)});
    conditions.push_back(
        {"link-churn-25%", std::make_unique<dynamics::LinkChurn>(0.25, 5)});
  }

  Table table({"condition", "policy", "moves", "bandwidth", "redundant"});

  for (const auto& condition : conditions) {
    for (const auto& name : heuristics::all_policy_names()) {
      auto policy = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 77;
      options.dynamics = condition.model.get();
      options.max_steps = 100'000;
      const auto result = sim::run(inst, *policy, options);
      if (!result.success) {
        std::cerr << name << " failed under " << condition.label << '\n';
        return 1;
      }
      table.add_row({condition.label, name, result.steps, result.bandwidth,
                     result.stats.redundant_moves});
    }
  }

  bench::emit(table, csv);
  std::cout << "# expected: every heuristic completes under all conditions;\n"
               "# moves grow with churn severity, informed heuristics degrade\n"
               "# more gracefully than round-robin.\n";
  return 0;
}
