// Ablation (§5.1 bounds): tightness of the lower-bound machinery
// against exact optima on small instances — the distance bound, the
// capacity-aware M_i(v) closure bound, the simple bandwidth count, and
// the serial-Steiner bandwidth upper bound bracketing the EOCD optimum.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/exact/ip_solver.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_bounds",
                      "§5.1 lower-bound tightness vs exact optima");

  const int instances = full ? 12 : 6;

  Table table({"seed", "opt_makespan", "lb_dist", "lb_closure", "opt_bw",
               "lb_bw", "lb_lp", "ub_steiner"});

  double sum_t_gap = 0;
  double sum_bw_gap = 0;
  int counted = 0;
  for (int seed = 0; seed < instances; ++seed) {
    Rng rng(0xab3'0000 + static_cast<std::uint64_t>(seed));
    const auto inst = core::random_small_instance(5, 2, 0.5, rng);
    const auto exact_time = exact::focd_min_makespan(inst, 12);
    if (!exact_time.has_value()) continue;

    // EOCD optimum with a generous horizon.
    std::int64_t opt_bw = -1;
    for (std::int32_t horizon = exact_time->makespan;
         horizon <= exact_time->makespan + 3; ++horizon) {
      const auto solved = exact::solve_eocd(inst, horizon);
      if (solved.has_value() && (opt_bw < 0 || solved->bandwidth < opt_bw))
        opt_bw = solved->bandwidth;
    }

    const auto lb_dist = core::distance_lower_bound(inst);
    const auto lb_closure = core::makespan_lower_bound(inst);
    const auto lb_bw = core::bandwidth_lower_bound(inst);
    const auto lb_lp = exact::lp_bandwidth_lower_bound(
        inst, exact_time->makespan + 3);
    const auto ub_steiner = core::bandwidth_upper_bound_serial_steiner(inst);

    table.add_row({static_cast<std::int64_t>(seed),
                   static_cast<std::int64_t>(exact_time->makespan), lb_dist,
                   lb_closure, opt_bw, lb_bw, lb_lp.value_or(-1.0),
                   ub_steiner});
    if (opt_bw > 0) {
      sum_t_gap += static_cast<double>(exact_time->makespan) /
                   static_cast<double>(std::max<std::int64_t>(1, lb_closure));
      sum_bw_gap += static_cast<double>(opt_bw) /
                    static_cast<double>(std::max<std::int64_t>(1, lb_bw));
      ++counted;
    }
  }

  bench::emit(table, csv);
  if (counted > 0) {
    std::cout << "# mean optimum/lower-bound ratio: makespan "
              << sum_t_gap / counted << ", bandwidth " << sum_bw_gap / counted
              << '\n';
  }
  std::cout << "# invariants: lb_dist <= lb_closure <= opt_makespan;\n"
               "# lb_bw <= lb_lp <= opt_bw <= ub_steiner (lb_lp is the §3.4\n"
               "# IP's LP relaxation — the approximation-algorithm handle the\n"
               "# paper's conclusion asks for).\n";
  return 0;
}
