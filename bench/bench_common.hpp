// Shared plumbing for the figure-reproduction bench binaries.
//
// Every binary prints an aligned table of the series the paper's figure
// plots (plus our lower bounds), using reduced default parameters that
// finish in seconds.  Set OCD_FULL=1 for the paper's full sweep, and
// pass --csv to emit machine-readable output instead of the box table.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "ocd/core/bounds.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/util/parallel.hpp"
#include "ocd/util/stopwatch.hpp"
#include "ocd/util/table.hpp"

namespace ocd::bench {

/// True when the paper's full-scale parameters were requested.
inline bool full_scale() {
  const char* env = std::getenv("OCD_FULL");
  return env != nullptr && std::string_view(env) != "0" &&
         std::string_view(env) != "";
}

inline bool csv_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--csv") return true;
  }
  return false;
}

inline void emit(const Table& table, bool csv) {
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// One policy run with the derived metrics the figures report.
struct PolicyRun {
  bool success = false;
  std::int64_t moves = 0;      ///< timesteps ("moves" in the figures)
  std::int64_t bandwidth = 0;  ///< token-transfers
  std::int64_t pruned_bandwidth = 0;
  double wall_seconds = 0.0;
};

inline PolicyRun run_policy(const core::Instance& instance,
                            std::string_view policy_name, std::uint64_t seed,
                            std::int32_t staleness = 0) {
  auto policy = heuristics::make_policy(policy_name);
  sim::SimOptions options;
  options.seed = seed;
  options.staleness = staleness;
  options.max_steps = 500'000;
  Stopwatch timer;
  const auto result = sim::run(instance, *policy, options);
  PolicyRun out;
  out.success = result.success;
  out.moves = result.steps;
  out.bandwidth = result.bandwidth;
  out.pruned_bandwidth =
      result.success ? core::prune(instance, result.schedule).bandwidth() : 0;
  out.wall_seconds = timer.seconds();
  return out;
}

/// Worker count for threaded sweeps: the shared ocd::util budget —
/// OCD_JOBS when set (validated; garbage throws ocd::Error), hardware
/// concurrency otherwise.
inline unsigned sweep_jobs() { return util::parallel_jobs(); }

/// Runs fn(config) for every entry of `configs` on the shared ocd::util
/// worker pool, `jobs` wide, and returns the results in configuration
/// order — the output is independent of scheduling, so a threaded sweep
/// emits the same rows as a serial (OCD_JOBS=1) one.
///
/// `fn` must be safe to call concurrently on distinct configs: no
/// shared mutable state (run_policy qualifies — each call builds a
/// fresh policy and Rng, and sim::run keeps all run state local).
/// Nested parallelism is safe and budget-shared: a parallel_for issued
/// inside fn (a planner step, the simulator apply phase) runs inline on
/// the sweep worker instead of fanning out again.  The lowest-config
/// exception is rethrown on the caller's thread after the pool drains.
template <typename Config, typename Fn>
auto run_grid(const std::vector<Config>& configs, Fn fn,
              unsigned jobs = sweep_jobs())
    -> std::vector<std::invoke_result_t<Fn&, const Config&>> {
  using Result = std::invoke_result_t<Fn&, const Config&>;
  std::vector<Result> results(configs.size());
  if (configs.empty()) return results;
  if (jobs < 1) jobs = 1;
  // Grain 1 = one chunk per config (up to the runtime's chunk cap, when
  // configs rides above it a chunk covers a few consecutive configs);
  // each chunk writes only its own slice of `results`.
  util::parallel_for_capped(configs.size(), 1, jobs,
                            [&](util::ChunkRange chunk) {
                              for (std::size_t i = chunk.begin; i < chunk.end;
                                   ++i)
                                results[i] = fn(configs[i]);
                            });
  return results;
}

inline void print_header(std::string_view title, std::string_view paper_ref) {
  std::cout << "# " << title << '\n'
            << "# reproduces: " << paper_ref << '\n'
            << "# mode: " << (full_scale() ? "full (OCD_FULL=1)" : "quick")
            << '\n';
}

}  // namespace ocd::bench
