// §6 "Arrivals and departures": swarm lifecycle sweep.  Simultaneous
// start (the paper's base model) vs flash crowd vs steady arrivals, with
// altruistic (seed forever) vs selfish (depart shortly after finishing)
// peers.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/dynamics/sessions.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_arrivals",
                      "§6 arrivals & departures (swarm lifecycle)");

  const std::int32_t n = full ? 100 : 40;
  const std::int32_t num_tokens = full ? 96 : 32;

  Rng graph_rng(0xab9'0000);
  Digraph base = topology::random_overlay(n, graph_rng);
  const auto inst =
      core::single_source_all_receivers(std::move(base), num_tokens, 0);

  Table table({"arrivals", "peers", "policy", "completed", "moves",
               "bandwidth", "mean_completion"});
  table.set_precision(1);

  struct Shape {
    std::string arrivals;
    std::string peers;  // altruistic | selfish
  };
  const std::vector<Shape> shapes = {
      {"simultaneous", "altruistic"}, {"flash-crowd", "altruistic"},
      {"steady", "altruistic"},       {"flash-crowd", "selfish"},
      {"steady", "selfish"},
  };

  for (const auto& shape : shapes) {
    Rng rng(0xab9'1000);
    std::optional<dynamics::SessionTrace> trace;
    if (shape.arrivals == "flash-crowd") {
      trace = dynamics::SessionTrace::flash_crowd(inst, 8, rng);
    } else if (shape.arrivals == "steady") {
      trace = dynamics::SessionTrace::steady(inst, 0.5, rng);
    }

    for (const std::string name : {"random", "local"}) {
      std::optional<dynamics::SessionDynamics> dynamics_model;
      if (trace.has_value()) {
        dynamics::SessionTrace copy = *trace;
        if (shape.peers == "selfish") {
          // Rebuild with a linger rule on every non-source vertex.
          std::vector<dynamics::Session> sessions;
          for (VertexId v = 0; v < inst.num_vertices(); ++v) {
            dynamics::Session s = copy.session(v);
            if (inst.have(v).empty()) s.linger_after_complete = 3;
            sessions.push_back(s);
          }
          copy = dynamics::SessionTrace(std::move(sessions));
        }
        dynamics_model.emplace(std::move(copy));
      }

      auto policy = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 55;
      options.dynamics =
          dynamics_model.has_value() ? &*dynamics_model : nullptr;
      options.max_steps = 20'000;
      const auto result = sim::run(inst, *policy, options);
      // Non-completion is a *finding* here: with selfish departures the
      // swarm can starve (all relays of a late joiner already left) —
      // the availability failure real systems fight with tit-for-tat
      // and seeding incentives.
      table.add_row({shape.arrivals, shape.peers, name,
                     std::string(result.success ? "yes" : "STARVED"),
                     result.success ? result.steps : -1, result.bandwidth,
                     result.stats.mean_completion()});
    }
  }

  bench::emit(table, csv);
  std::cout << "# expected: completion stretches from simultaneous ->\n"
               "# flash-crowd -> steady arrivals (the last joiner gates the\n"
               "# makespan).  Selfish departures can STARVE late joiners\n"
               "# whose relays all left — the §6 availability problem that\n"
               "# motivates seeding incentives in deployed systems.\n";
  return 0;
}
