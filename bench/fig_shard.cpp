// Vertex-sharded scaling sweep: the same broadcast instance run at
// shards x {1, 2, 4} over both transports and both planner families
// (local "round-robin", coordinated "global"), with the partitioner's
// cut statistics and the barrier traffic accounting alongside the run
// metrics.  The point of the figure is not speedup (on a small host the
// barrier protocol is pure overhead) but the properties the shard
// runtime promises: every row of a policy reports the same
// steps/bandwidth (bit-identity across shard counts and transports),
// the full-scale instance — a million-vertex sparse overlay that would
// be impractical under the O(n^2) generator — completes across 4
// shards, and the coordinated planner's ghost-delta frames ship a
// small fraction of what a full per-barrier possession re-broadcast
// would cost (the delta_x column: full-baseline bytes / actual bytes).
// Rows are emitted in a fixed (transport, policy, shards) loop order,
// so the output is diff-stable across runs.
//
// --crash-rate=<r> arms crash recovery (checkpoints every 3 steps) with
// a seeded random crash schedule at rate r per (shard, step, phase).
// The crashes/replayed/ckpt_b columns then snapshot the recovery
// overhead, and the bit-identity check extends over the crashed rows:
// recovery must not change a single reported number.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"

namespace {

double crash_rate_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--crash-rate=", 0) == 0)
      return std::atof(arg.data() + std::string_view("--crash-rate=").size());
  }
  return 0.0;
}

std::int64_t varint_len(std::uint64_t v) {
  std::int64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const double crash_rate = crash_rate_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig_shard",
                      "vertex-sharded runtime: scaling + bit-identity "
                      "across shard counts, transports and planners");

  const std::int32_t n = full ? 1'000'000 : 20'000;
  const std::int32_t num_tokens = 8;
  const double expected_degree = 8.0;

  Stopwatch build_timer;
  Rng graph_rng(0x5a4d'0001);
  Digraph base = topology::sparse_random_overlay(n, expected_degree,
                                                 graph_rng);
  const auto inst =
      core::single_source_all_receivers(std::move(base), num_tokens, 0);
  std::cout << "# instance: " << n << " vertices, "
            << inst.graph().num_arcs() << " arcs, " << num_tokens
            << " tokens, built in " << build_timer.seconds() << " s\n";

  const std::vector<std::int32_t> shard_counts = {1, 2, 4};
  const struct {
    shard::TransportKind kind;
    const char* name;
  } transports[] = {
      {shard::TransportKind::kInProcess, "inproc"},
      {shard::TransportKind::kForked, "forked"},
  };
  const char* policies[] = {"round-robin", "global"};

  shard::CrashPlan crash_plan;
  if (crash_rate > 0.0) {
    crash_plan.random_crashes(crash_rate, 0xc4a5'0001);
    std::cout << "# crash-rate: " << crash_rate
              << " per (shard, step, phase); checkpoints every 3 steps\n";
  }

  // Full-replication baseline for the coordinated planner: without
  // ghost-delta frames, every barrier would re-broadcast every owned
  // possession row to every peer — vertex id + a full raw-encoded set
  // (universe varint + tag byte + 8 bytes per word).  delta_x is that
  // baseline divided by the bytes the runtime actually shipped.
  const std::int64_t set_words = (num_tokens + 63) / 64;
  const std::int64_t full_row_bytes = varint_len(
      static_cast<std::uint64_t>(n - 1)) +
      varint_len(static_cast<std::uint64_t>(num_tokens)) + 1 + 8 * set_words;

  Table table({"transport", "policy", "part", "shards", "cut_arcs",
               "cut_pct", "imb_pct", "ghosts", "success", "steps",
               "bandwidth", "kb_per_step", "delta_x", "crashes", "replayed",
               "ckpt_b", "part_ms", "run_s"});
  table.set_precision(3);

  // Partition variants per shard count: the default greedy partition at
  // every count, plus the flow-refined eps=5 partition at the largest —
  // the greedy-vs-flow comparison rows.  The flow rows join the same
  // bit-identity check: a partition may only move ownership, never the
  // schedule.
  struct PartitionCase {
    std::int32_t shards;
    bool flow;
  };
  const std::vector<PartitionCase> partition_cases = {
      {1, false}, {2, false}, {4, false}, {4, true}};
  constexpr std::int32_t kFlowEps = 5;
  // The head-to-head section runs at a wider slack: transit-stub
  // separators sit off-center, so the band needs room before the min
  // cut's reassignment is adoptable at every shard count.
  constexpr std::int32_t kCompareEps = 10;

  bool identical = true;
  for (const auto& transport : transports) {
    for (const char* policy : policies) {
      std::int64_t first_steps = -1;
      std::int64_t first_bandwidth = -1;
      for (const PartitionCase& pc : partition_cases) {
        const std::int32_t shards = pc.shards;
        shard::PartitionOptions part_options;
        part_options.num_shards = shards;
        part_options.balance_eps = pc.flow ? kFlowEps : 0;
        part_options.flow_refine = pc.flow;
        Stopwatch part_timer;
        const shard::Partition part =
            shard::partition_vertices(inst.graph(), part_options);
        const double part_seconds = part_timer.seconds();

        shard::ShardOptions options;
        options.num_shards = shards;
        options.transport = transport.kind;
        options.sim.seed = 7;
        options.sim.record_schedule = false;
        options.sim.max_steps = 500'000;
        if (crash_rate > 0.0) {
          options.recovery.crash_plan = &crash_plan;
          options.recovery.checkpoint_interval = 3;
          options.recovery.max_respawns = 64;
        }
        Stopwatch run_timer;
        const auto result = shard::run_sharded(inst, policy, options, part);
        const double run_seconds = run_timer.seconds();

        // Bit-identity is per policy: every (transport, shards) row of
        // one planner must report the same trajectory.
        if (first_steps < 0) {
          first_steps = result.steps;
          first_bandwidth = result.bandwidth;
        } else if (result.steps != first_steps ||
                   result.bandwidth != first_bandwidth) {
          identical = false;
        }
        const double kb_per_step =
            result.steps == 0
                ? 0.0
                : static_cast<double>(result.stats.shard_bytes_sent) /
                      (1024.0 * static_cast<double>(result.steps));
        const bool coordinated =
            std::string_view(policy) == "global" && shards > 1;
        const double delta_x =
            coordinated && result.stats.shard_bytes_sent > 0
                ? static_cast<double>(shards - 1) *
                      static_cast<double>(n) *
                      static_cast<double>(full_row_bytes) *
                      static_cast<double>(result.steps) /
                      static_cast<double>(result.stats.shard_bytes_sent)
                : 0.0;
        // Achieved imbalance: largest ownership class over the perfect
        // n/k average, in percent (0 = perfectly balanced).
        const double imb_pct =
            100.0 * (static_cast<double>(part.stats.max_owned) *
                         static_cast<double>(shards) /
                         static_cast<double>(n) -
                     1.0);
        table.add_row({std::string(transport.name), std::string(policy),
                       std::string(pc.flow ? "flow" : "greedy"), shards,
                       part.stats.cut_arcs,
                       100.0 * part.stats.cut_fraction(), imb_pct,
                       part.stats.total_ghosts,
                       std::string(result.success ? "yes" : "no"),
                       result.steps, result.bandwidth, kb_per_step,
                       delta_x, result.stats.worker_crashes,
                       result.stats.replayed_steps,
                       result.stats.checkpoint_bytes,
                       1000.0 * part_seconds, run_seconds});
      }
    }
  }

  bench::emit(table, csv);

  // Partitioner refinement depth: the runtime's default single sweep vs
  // a deeper budget, on the same overlay.  The reduction is the cut
  // traffic the deeper refinement would save a deployment that can
  // afford the extra partitioning time.  Reported at shard counts that
  // do not divide n: the balance bounds give refinement exactly
  // ceil(n/k) - floor(n/k) vertices of slack per shard, so when k | n
  // the bounds pin every class size and no sweep can move anything —
  // the sweep loop is only exercised where slack exists.
  std::cout << "# multi-sweep refinement (cut arcs, sweeps=1 -> sweeps=8):\n";
  for (const std::int32_t shards : {3, 7}) {
    const shard::Partition one =
        shard::partition_vertices(inst.graph(), shards, 1);
    const shard::Partition deep =
        shard::partition_vertices(inst.graph(), shards, 8);
    const double reduction =
        one.stats.cut_arcs == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(one.stats.cut_arcs -
                                      deep.stats.cut_arcs) /
                  static_cast<double>(one.stats.cut_arcs);
    std::cout << "#   shards=" << shards << ": " << one.stats.cut_arcs
              << " -> " << deep.stats.cut_arcs << " (-" << reduction
              << "%)\n";
  }

  // Greedy vs flow-refined partitions on the paper's structured
  // topology: transit-stub graphs have genuinely small separators (the
  // stub-transit attachment edges), which local greedy moves cannot
  // reach but a min cut finds — the measured cut reduction is the
  // barrier traffic the flow stage saves at the same balance slack.
  std::cout << "# greedy vs flow partitions, transit-stub overlay (eps="
            << kCompareEps << "):\n";
  {
    Rng ts_rng(0x5a4d'0002);
    const Digraph ts = topology::transit_stub(
        topology::transit_stub_options_for_size(20'000), ts_rng);
    std::cout << "#   (" << ts.num_vertices() << " vertices, "
              << ts.num_arcs() << " arcs)\n";
    for (const std::int32_t shards : {3, 4, 7}) {
      shard::PartitionOptions greedy_options;
      greedy_options.num_shards = shards;
      greedy_options.balance_eps = kCompareEps;
      Stopwatch greedy_timer;
      const shard::Partition greedy =
          shard::partition_vertices(ts, greedy_options);
      const double greedy_ms = 1000.0 * greedy_timer.seconds();
      shard::PartitionOptions flow_options = greedy_options;
      flow_options.flow_refine = true;
      Stopwatch flow_timer;
      const shard::Partition flow = shard::partition_vertices(ts,
                                                              flow_options);
      const double flow_ms = 1000.0 * flow_timer.seconds();
      const double reduction =
          greedy.stats.cut_arcs == 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(greedy.stats.cut_arcs -
                                        flow.stats.cut_arcs) /
                    static_cast<double>(greedy.stats.cut_arcs);
      std::cout << "#   shards=" << shards << ": " << greedy.stats.cut_arcs
                << " -> " << flow.stats.cut_arcs << " cut arcs (-"
                << reduction << "%), " << greedy_ms << " -> " << flow_ms
                << " ms\n";
    }
  }

  std::cout << "# bit-identity across rows (per policy): "
            << (identical ? "yes" : "NO — INVARIANT VIOLATED") << '\n'
            << "# expected: steps/bandwidth identical on every row of a\n"
               "# policy (flow-refined rows included — partitioning only\n"
               "# moves ownership); the coordinated planner's delta_x\n"
               "# stays well above 1 (ghost-delta frames beat a full\n"
               "# per-barrier possession re-broadcast); the cut fraction\n"
               "# stays well below the ~"
            << 100.0 * (1.0 - 1.0 / 4.0)
            << "% a random 4-way assignment would pay.\n";
  return identical ? 0 : 1;
}
