// Vertex-sharded scaling sweep: the same broadcast instance run at
// shards x {1, 2, 4} over both transports, with the partitioner's cut
// statistics alongside the run metrics.  The point of the figure is not
// speedup (on a small host the barrier protocol is pure overhead) but
// the two properties the shard runtime promises: every row reports the
// same steps/bandwidth (bit-identity across shard counts and
// transports), and the full-scale instance — a million-vertex sparse
// overlay that would be impractical under the O(n^2) generator —
// completes across 4 shards.  Rows are emitted in a fixed (transport,
// shards) loop order, so the output is diff-stable across runs.
//
// --crash-rate=<r> arms crash recovery (checkpoints every 3 steps) with
// a seeded random crash schedule at rate r per (shard, step, phase).
// The crashes/replayed/ckpt_b columns then snapshot the recovery
// overhead, and the bit-identity check extends over the crashed rows:
// recovery must not change a single reported number.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/topology/random_graph.hpp"

namespace {

double crash_rate_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--crash-rate=", 0) == 0)
      return std::atof(arg.data() + std::string_view("--crash-rate=").size());
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const double crash_rate = crash_rate_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig_shard",
                      "vertex-sharded runtime: scaling + bit-identity "
                      "across shard counts and transports");

  const std::int32_t n = full ? 1'000'000 : 20'000;
  const std::int32_t num_tokens = 8;
  const double expected_degree = 8.0;

  Stopwatch build_timer;
  Rng graph_rng(0x5a4d'0001);
  Digraph base = topology::sparse_random_overlay(n, expected_degree,
                                                 graph_rng);
  const auto inst =
      core::single_source_all_receivers(std::move(base), num_tokens, 0);
  std::cout << "# instance: " << n << " vertices, "
            << inst.graph().num_arcs() << " arcs, " << num_tokens
            << " tokens, built in " << build_timer.seconds() << " s\n";

  const std::vector<std::int32_t> shard_counts = {1, 2, 4};
  const struct {
    shard::TransportKind kind;
    const char* name;
  } transports[] = {
      {shard::TransportKind::kInProcess, "inproc"},
      {shard::TransportKind::kForked, "forked"},
  };

  shard::CrashPlan crash_plan;
  if (crash_rate > 0.0) {
    crash_plan.random_crashes(crash_rate, 0xc4a5'0001);
    std::cout << "# crash-rate: " << crash_rate
              << " per (shard, step, phase); checkpoints every 3 steps\n";
  }

  Table table({"transport", "shards", "cut_arcs", "cut_pct", "ghosts",
               "success", "steps", "bandwidth", "crashes", "replayed",
               "ckpt_b", "part_s", "run_s"});
  table.set_precision(3);

  std::int64_t first_steps = -1;
  std::int64_t first_bandwidth = -1;
  bool identical = true;
  for (const auto& transport : transports) {
    for (const std::int32_t shards : shard_counts) {
      Stopwatch part_timer;
      const shard::Partition part =
          shard::partition_vertices(inst.graph(), shards);
      const double part_seconds = part_timer.seconds();

      shard::ShardOptions options;
      options.num_shards = shards;
      options.transport = transport.kind;
      options.sim.seed = 7;
      options.sim.record_schedule = false;
      options.sim.max_steps = 500'000;
      if (crash_rate > 0.0) {
        options.recovery.crash_plan = &crash_plan;
        options.recovery.checkpoint_interval = 3;
        options.recovery.max_respawns = 64;
      }
      Stopwatch run_timer;
      const auto result =
          shard::run_sharded(inst, "round-robin", options, part);
      const double run_seconds = run_timer.seconds();

      if (first_steps < 0) {
        first_steps = result.steps;
        first_bandwidth = result.bandwidth;
      } else if (result.steps != first_steps ||
                 result.bandwidth != first_bandwidth) {
        identical = false;
      }
      table.add_row({std::string(transport.name), shards,
                     part.stats.cut_arcs,
                     100.0 * part.stats.cut_fraction(),
                     part.stats.total_ghosts,
                     std::string(result.success ? "yes" : "no"),
                     result.steps, result.bandwidth,
                     result.stats.worker_crashes,
                     result.stats.replayed_steps,
                     result.stats.checkpoint_bytes, part_seconds,
                     run_seconds});
    }
  }

  bench::emit(table, csv);
  std::cout << "# bit-identity across rows: "
            << (identical ? "yes" : "NO — INVARIANT VIOLATED") << '\n'
            << "# expected: steps/bandwidth identical on every row; the\n"
               "# partitioner's cut fraction stays well below the ~"
            << 100.0 * (1.0 - 1.0 / 4.0)
            << "%\n# a random 4-way assignment would pay.\n";
  return identical ? 0 : 1;
}
