// Vertex-sharded scaling sweep: the same broadcast instance run at
// shards x {1, 2, 4} over both transports and both planner families
// (local "round-robin", coordinated "global"), with the partitioner's
// cut statistics and the barrier traffic accounting alongside the run
// metrics.  The point of the figure is not speedup (on a small host the
// barrier protocol is pure overhead) but the properties the shard
// runtime promises: every row of a policy reports the same
// steps/bandwidth (bit-identity across shard counts and transports),
// the full-scale instance — a million-vertex sparse overlay that would
// be impractical under the O(n^2) generator — completes across 4
// shards, and the coordinated planner's ghost-delta frames ship a
// small fraction of what a full per-barrier possession re-broadcast
// would cost (the delta_x column: full-baseline bytes / actual bytes).
// Rows are emitted in a fixed (transport, policy, shards) loop order,
// so the output is diff-stable across runs.
//
// --crash-rate=<r> arms crash recovery (checkpoints every 3 steps) with
// a seeded random crash schedule at rate r per (shard, step, phase).
// The crashes/replayed/ckpt_b columns then snapshot the recovery
// overhead, and the bit-identity check extends over the crashed rows:
// recovery must not change a single reported number.
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/topology/random_graph.hpp"

namespace {

double crash_rate_requested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--crash-rate=", 0) == 0)
      return std::atof(arg.data() + std::string_view("--crash-rate=").size());
  }
  return 0.0;
}

std::int64_t varint_len(std::uint64_t v) {
  std::int64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const double crash_rate = crash_rate_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig_shard",
                      "vertex-sharded runtime: scaling + bit-identity "
                      "across shard counts, transports and planners");

  const std::int32_t n = full ? 1'000'000 : 20'000;
  const std::int32_t num_tokens = 8;
  const double expected_degree = 8.0;

  Stopwatch build_timer;
  Rng graph_rng(0x5a4d'0001);
  Digraph base = topology::sparse_random_overlay(n, expected_degree,
                                                 graph_rng);
  const auto inst =
      core::single_source_all_receivers(std::move(base), num_tokens, 0);
  std::cout << "# instance: " << n << " vertices, "
            << inst.graph().num_arcs() << " arcs, " << num_tokens
            << " tokens, built in " << build_timer.seconds() << " s\n";

  const std::vector<std::int32_t> shard_counts = {1, 2, 4};
  const struct {
    shard::TransportKind kind;
    const char* name;
  } transports[] = {
      {shard::TransportKind::kInProcess, "inproc"},
      {shard::TransportKind::kForked, "forked"},
  };
  const char* policies[] = {"round-robin", "global"};

  shard::CrashPlan crash_plan;
  if (crash_rate > 0.0) {
    crash_plan.random_crashes(crash_rate, 0xc4a5'0001);
    std::cout << "# crash-rate: " << crash_rate
              << " per (shard, step, phase); checkpoints every 3 steps\n";
  }

  // Full-replication baseline for the coordinated planner: without
  // ghost-delta frames, every barrier would re-broadcast every owned
  // possession row to every peer — vertex id + a full raw-encoded set
  // (universe varint + tag byte + 8 bytes per word).  delta_x is that
  // baseline divided by the bytes the runtime actually shipped.
  const std::int64_t set_words = (num_tokens + 63) / 64;
  const std::int64_t full_row_bytes = varint_len(
      static_cast<std::uint64_t>(n - 1)) +
      varint_len(static_cast<std::uint64_t>(num_tokens)) + 1 + 8 * set_words;

  Table table({"transport", "policy", "shards", "cut_arcs", "cut_pct",
               "ghosts", "success", "steps", "bandwidth", "kb_per_step",
               "delta_x", "crashes", "replayed", "ckpt_b", "part_s",
               "run_s"});
  table.set_precision(3);

  bool identical = true;
  for (const auto& transport : transports) {
    for (const char* policy : policies) {
      std::int64_t first_steps = -1;
      std::int64_t first_bandwidth = -1;
      for (const std::int32_t shards : shard_counts) {
        Stopwatch part_timer;
        const shard::Partition part =
            shard::partition_vertices(inst.graph(), shards);
        const double part_seconds = part_timer.seconds();

        shard::ShardOptions options;
        options.num_shards = shards;
        options.transport = transport.kind;
        options.sim.seed = 7;
        options.sim.record_schedule = false;
        options.sim.max_steps = 500'000;
        if (crash_rate > 0.0) {
          options.recovery.crash_plan = &crash_plan;
          options.recovery.checkpoint_interval = 3;
          options.recovery.max_respawns = 64;
        }
        Stopwatch run_timer;
        const auto result = shard::run_sharded(inst, policy, options, part);
        const double run_seconds = run_timer.seconds();

        // Bit-identity is per policy: every (transport, shards) row of
        // one planner must report the same trajectory.
        if (first_steps < 0) {
          first_steps = result.steps;
          first_bandwidth = result.bandwidth;
        } else if (result.steps != first_steps ||
                   result.bandwidth != first_bandwidth) {
          identical = false;
        }
        const double kb_per_step =
            result.steps == 0
                ? 0.0
                : static_cast<double>(result.stats.shard_bytes_sent) /
                      (1024.0 * static_cast<double>(result.steps));
        const bool coordinated =
            std::string_view(policy) == "global" && shards > 1;
        const double delta_x =
            coordinated && result.stats.shard_bytes_sent > 0
                ? static_cast<double>(shards - 1) *
                      static_cast<double>(n) *
                      static_cast<double>(full_row_bytes) *
                      static_cast<double>(result.steps) /
                      static_cast<double>(result.stats.shard_bytes_sent)
                : 0.0;
        table.add_row({std::string(transport.name), std::string(policy),
                       shards, part.stats.cut_arcs,
                       100.0 * part.stats.cut_fraction(),
                       part.stats.total_ghosts,
                       std::string(result.success ? "yes" : "no"),
                       result.steps, result.bandwidth, kb_per_step,
                       delta_x, result.stats.worker_crashes,
                       result.stats.replayed_steps,
                       result.stats.checkpoint_bytes, part_seconds,
                       run_seconds});
      }
    }
  }

  bench::emit(table, csv);

  // Partitioner refinement depth: the runtime's default single sweep vs
  // a deeper budget, on the same overlay.  The reduction is the cut
  // traffic the deeper refinement would save a deployment that can
  // afford the extra partitioning time.  Reported at shard counts that
  // do not divide n: the balance bounds give refinement exactly
  // ceil(n/k) - floor(n/k) vertices of slack per shard, so when k | n
  // the bounds pin every class size and no sweep can move anything —
  // the sweep loop is only exercised where slack exists.
  std::cout << "# multi-sweep refinement (cut arcs, sweeps=1 -> sweeps=8):\n";
  for (const std::int32_t shards : {3, 7}) {
    const shard::Partition one =
        shard::partition_vertices(inst.graph(), shards, 1);
    const shard::Partition deep =
        shard::partition_vertices(inst.graph(), shards, 8);
    const double reduction =
        one.stats.cut_arcs == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(one.stats.cut_arcs -
                                      deep.stats.cut_arcs) /
                  static_cast<double>(one.stats.cut_arcs);
    std::cout << "#   shards=" << shards << ": " << one.stats.cut_arcs
              << " -> " << deep.stats.cut_arcs << " (-" << reduction
              << "%)\n";
  }

  std::cout << "# bit-identity across rows (per policy): "
            << (identical ? "yes" : "NO — INVARIANT VIOLATED") << '\n'
            << "# expected: steps/bandwidth identical on every row of a\n"
               "# policy; the coordinated planner's delta_x stays well\n"
               "# above 1 (ghost-delta frames beat a full per-barrier\n"
               "# possession re-broadcast); the cut fraction stays well\n"
               "# below the ~"
            << 100.0 * (1.0 - 1.0 / 4.0)
            << "% a random 4-way assignment would pay.\n";
  return identical ? 0 : 1;
}
