// Ablation (§5.1 Random): "Further exploration may also relax this
// requirement, instead allowing peers to know about the state 'k' turns
// ago of their peers."  We sweep the staleness k for the knowledge-using
// local heuristics and measure the slowdown and redundancy cost.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/sim/overhead.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("ablation_staleness",
                      "§5.1 peer-knowledge staleness sweep (k turns ago)");

  const std::int32_t n = full ? 120 : 60;
  const std::int32_t num_tokens = full ? 128 : 48;
  const std::vector<std::int32_t> staleness_values =
      full ? std::vector<std::int32_t>{0, 1, 2, 4, 8, 16}
           : std::vector<std::int32_t>{0, 1, 2, 4};

  Table table({"staleness", "policy", "moves", "bandwidth", "redundant",
               "bw_lb", "knowledge_kbits"});

  Rng graph_rng(0xab2'0000);
  Digraph base = topology::random_overlay(n, graph_rng);
  const auto inst =
      core::single_source_all_receivers(std::move(base), num_tokens, 0);
  const auto bw_lb = core::bandwidth_lower_bound(inst);

  for (const std::int32_t k : staleness_values) {
    for (const std::string name : {"random", "local"}) {
      auto policy = heuristics::make_policy(name);
      sim::SimOptions options;
      options.seed = 21;
      options.staleness = k;
      const auto result = sim::run(inst, *policy, options);
      if (!result.success) {
        std::cerr << name << " failed at staleness " << k << '\n';
        return 1;
      }
      table.add_row({static_cast<std::int64_t>(k), name, result.steps,
                     result.bandwidth, result.stats.redundant_moves, bw_lb,
                     sim::knowledge_bits_total(inst, policy->knowledge_class(),
                                               result.steps) /
                         1024});
    }
  }

  bench::emit(table, csv);
  std::cout << "# expected: bandwidth and redundancy grow with k while\n"
               "# completion time degrades gracefully.  knowledge_kbits is\n"
               "# the control-plane price of each policy's knowledge class\n"
               "# (§4.2: competitive bounds depend on the cost of sending\n"
               "# knowledge).\n";
  return 0;
}
