// Figure 4: moves and bandwidth as a function of receiver density.
// Single source, single file, 200 vertices; each vertex joins the want
// set when its random score falls under the threshold on the x-axis.
//
// Paper shape: flooding heuristics' moves and bandwidth stay roughly
// constant across thresholds (they do not exploit small want sets);
// random costs ~2x the smarter heuristics in bandwidth; the bandwidth
// heuristic is slightly slower but uses much less bandwidth at small
// thresholds; pruned flooding bandwidth is roughly optimal.
#include <iostream>

#include "bench_common.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/topology/random_graph.hpp"

int main(int argc, char** argv) {
  using namespace ocd;
  const bool csv = bench::csv_requested(argc, argv);
  const bool full = bench::full_scale();
  bench::print_header("fig4_receiver_density",
                      "Figure 4 (receiver density threshold sweep)");

  const std::int32_t n = full ? 200 : 80;
  const std::int32_t num_tokens = full ? 200 : 50;
  const std::vector<double> thresholds =
      full ? std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8,
                                 0.9, 1.0}
           : std::vector<double>{0.1, 0.25, 0.5, 0.75, 1.0};

  Table table({"threshold", "receivers", "policy", "moves", "bandwidth",
               "pruned_bw", "bw_lb", "seconds"});
  table.set_precision(2);

  Rng graph_rng(0x0f4'0000);
  const Digraph base = topology::random_overlay(n, graph_rng);

  struct Workload {
    double threshold;
    std::int64_t receivers;
    core::Instance instance;
    std::int64_t bw_lb;
  };
  std::vector<Workload> workloads;
  for (const double threshold : thresholds) {
    Rng rng(0x0f4'1000 + static_cast<std::uint64_t>(threshold * 1000));
    Digraph graph = base;
    auto built = core::single_source_receiver_density(std::move(graph),
                                                      num_tokens, 0,
                                                      threshold, rng);
    const auto bw_lb = core::bandwidth_lower_bound(built.instance);
    workloads.push_back({threshold,
                         static_cast<std::int64_t>(built.num_receivers),
                         std::move(built.instance), bw_lb});
  }

  struct Config {
    std::size_t workload;
    std::string policy;
  };
  std::vector<Config> configs;
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (const auto& name : heuristics::all_policy_names())
      configs.push_back({w, name});
  }

  const auto rows = bench::run_grid(configs, [&](const Config& c) {
    return bench::run_policy(workloads[c.workload].instance, c.policy, 4000);
  });

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Workload& w = workloads[configs[i].workload];
    const auto& run = rows[i];
    if (!run.success) {
      std::cerr << "policy " << configs[i].policy << " failed at threshold "
                << w.threshold << '\n';
      return 1;
    }
    table.add_row({w.threshold, w.receivers, configs[i].policy, run.moves,
                   run.bandwidth, run.pruned_bandwidth, w.bw_lb,
                   run.wall_seconds});
  }

  bench::emit(table, csv);
  std::cout
      << "# expected shape: flooding rows ~constant across thresholds;\n"
         "# bandwidth-heuristic bandwidth tracks bw_lb at small thresholds\n"
         "# and rejoins the flooders as threshold -> 1.\n";
  return 0;
}
