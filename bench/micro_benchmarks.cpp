// Component micro-benchmarks (google-benchmark): TokenSet kernels,
// topology generation, simplex pivoting, policy planning steps, and the
// validation/pruning passes that every figure pipeline leans on.
#include <benchmark/benchmark.h>

#include "ocd/core/compact.hpp"
#include "ocd/core/prune.hpp"
#include "ocd/core/steiner.hpp"
#include "ocd/sim/gossip.hpp"
#include "ocd/core/scenario.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/exact/ip_builder.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/lp/simplex.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/sim/simulator.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/topology/transit_stub.hpp"
#include "ocd/util/parallel.hpp"
#include "ocd/util/simd.hpp"

#include <cstring>
#include <thread>

namespace {

using namespace ocd;
namespace simd = ocd::util::simd;

void BM_TokenSetUnion(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  TokenSet a(universe);
  TokenSet b(universe);
  for (std::size_t i = 0; i < universe / 3; ++i) {
    a.set(static_cast<TokenId>(rng.below(universe)));
    b.set(static_cast<TokenId>(rng.below(universe)));
  }
  for (auto _ : state) {
    TokenSet c = a;
    c |= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_TokenSetUnion)->Arg(64)->Arg(512)->Arg(4096);

void BM_TokenSetCount(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  TokenSet a = TokenSet::full(universe);
  for (auto _ : state) benchmark::DoNotOptimize(a.count());
}
BENCHMARK(BM_TokenSetCount)->Arg(512)->Arg(4096);

void BM_TokenSetForEach(benchmark::State& state) {
  const auto universe = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  TokenSet a(universe);
  for (std::size_t i = 0; i < universe / 4; ++i)
    a.set(static_cast<TokenId>(rng.below(universe)));
  for (auto _ : state) {
    std::int64_t sum = 0;
    a.for_each([&](TokenId t) { sum += t; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TokenSetForEach)->Arg(512)->Arg(4096);

// Word-kernel micro-benchmarks, one family per (kernel, dispatch
// level), so a vectorization win (or regression) is attributable to a
// specific kernel instead of being smeared across a whole planner run.
// Inputs are sized by universe bits (state.range(0)); items/sec counts
// universe bits per call, so families are comparable across levels at
// the same size.  Subset/intersects/first run their worst case (full
// scan, no early exit); fresh-union runs the full four-array pass.
// Levels the host cannot run are skipped with a note instead of
// silently benchmarking the wrong code.
void BM_TokenKernel(benchmark::State& state, const char* kernel,
                    simd::Level level) {
  if (level > simd::max_supported_level()) {
    state.SkipWithError("simd level unsupported on this host");
    return;
  }
  simd::set_simd_level(level);
  const auto universe = static_cast<std::size_t>(state.range(0));
  Rng rng(31);
  TokenSet a(universe);
  TokenSet b(universe);
  for (std::size_t i = 0; i < universe / 2; ++i) {
    a.set(static_cast<TokenId>(rng.below(universe)));
    b.set(static_cast<TokenId>(rng.below(universe)));
  }
  TokenSet superset = a;
  superset |= b;
  TokenSet disjoint = TokenSet::full(universe);
  disjoint -= a;
  TokenSet dst = b;
  TokenSet uni(universe);
  TokenSet fresh(universe);
  std::int64_t sink = 0;
  if (std::strcmp(kernel, "count_intersection") == 0) {
    for (auto _ : state)
      sink += static_cast<std::int64_t>(TokenSet::count_intersection(a, b));
  } else if (std::strcmp(kernel, "first_in_intersection") == 0) {
    for (auto _ : state)
      sink += TokenSet::first_in_intersection(a, disjoint);  // full scan
  } else if (std::strcmp(kernel, "for_each_in_intersection") == 0) {
    for (auto _ : state) {
      TokenSet::for_each_in_intersection(a, b,
                                         [&](TokenId t) { sink += t; });
    }
  } else if (std::strcmp(kernel, "is_subset") == 0) {
    for (auto _ : state)
      sink += static_cast<std::int64_t>(a.is_subset_of(superset));
  } else if (std::strcmp(kernel, "intersects") == 0) {
    for (auto _ : state)
      sink += static_cast<std::int64_t>(a.intersects(disjoint));
  } else if (std::strcmp(kernel, "fresh_union_apply") == 0) {
    for (auto _ : state) {
      sink += static_cast<std::int64_t>(MutableTokenSetView::apply_fresh_union(
          dst, a, fresh));
    }
  } else if (std::strcmp(kernel, "fresh_union_apply_merge") == 0) {
    for (auto _ : state) {
      sink += static_cast<std::int64_t>(
          MutableTokenSetView::apply_fresh_union_merge(dst, uni, a, fresh));
    }
  } else {
    state.SkipWithError("unknown kernel");
  }
  benchmark::DoNotOptimize(sink);
  simd::clear_simd_level();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(universe));
}
#define OCD_TOKEN_KERNEL_BENCH(kernel)                                      \
  BENCHMARK_CAPTURE(BM_TokenKernel, kernel##_scalar, #kernel,               \
                    simd::Level::kScalar)                                   \
      ->Arg(512)                                                            \
      ->Arg(4096);                                                          \
  BENCHMARK_CAPTURE(BM_TokenKernel, kernel##_avx2, #kernel,                 \
                    simd::Level::kAvx2)                                     \
      ->Arg(512)                                                            \
      ->Arg(4096);                                                          \
  BENCHMARK_CAPTURE(BM_TokenKernel, kernel##_avx512, #kernel,               \
                    simd::Level::kAvx512)                                   \
      ->Arg(512)                                                            \
      ->Arg(4096)
OCD_TOKEN_KERNEL_BENCH(count_intersection);
OCD_TOKEN_KERNEL_BENCH(first_in_intersection);
OCD_TOKEN_KERNEL_BENCH(for_each_in_intersection);
OCD_TOKEN_KERNEL_BENCH(is_subset);
OCD_TOKEN_KERNEL_BENCH(intersects);
OCD_TOKEN_KERNEL_BENCH(fresh_union_apply);
OCD_TOKEN_KERNEL_BENCH(fresh_union_apply_merge);
#undef OCD_TOKEN_KERNEL_BENCH

void BM_RandomOverlay(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(topology::random_overlay(n, rng));
  }
}
BENCHMARK(BM_RandomOverlay)->Arg(50)->Arg(200)->Arg(500);

void BM_TransitStub(benchmark::State& state) {
  const auto opt =
      topology::transit_stub_options_for_size(static_cast<std::int32_t>(state.range(0)));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(topology::transit_stub(opt, rng));
  }
}
BENCHMARK(BM_TransitStub)->Arg(50)->Arg(200);

void BM_AllPairsDistances(benchmark::State& state) {
  Rng rng(3);
  const Digraph g =
      topology::random_overlay(static_cast<std::int32_t>(state.range(0)), rng);
  for (auto _ : state) benchmark::DoNotOptimize(all_pairs_distances(g));
}
BENCHMARK(BM_AllPairsDistances)->Arg(100)->Arg(300);

void BM_SimplexTransportation(benchmark::State& state) {
  // Random dense transportation LP: s suppliers x s consumers.
  const auto s = static_cast<std::int32_t>(state.range(0));
  Rng rng(7);
  lp::LinearProgram program;
  std::vector<std::vector<std::int32_t>> var(
      static_cast<std::size_t>(s),
      std::vector<std::int32_t>(static_cast<std::size_t>(s)));
  for (auto& row : var)
    for (auto& v : row)
      v = program.add_variable(0, lp::kInfinity,
                               1.0 + rng.uniform_real() * 9.0);
  for (std::int32_t i = 0; i < s; ++i) {
    std::vector<lp::Term> supply;
    std::vector<lp::Term> demand;
    for (std::int32_t j = 0; j < s; ++j) {
      supply.push_back({var[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(j)],
                        1.0});
      demand.push_back({var[static_cast<std::size_t>(j)]
                           [static_cast<std::size_t>(i)],
                        1.0});
    }
    program.add_constraint(std::move(supply), lp::Relation::kLessEqual, 10);
    program.add_constraint(std::move(demand), lp::Relation::kGreaterEqual, 5);
  }
  for (auto _ : state) benchmark::DoNotOptimize(lp::solve_lp(program));
}
BENCHMARK(BM_SimplexTransportation)->Arg(5)->Arg(10)->Arg(20);

void BM_IpBuildFigure1(benchmark::State& state) {
  const auto inst = core::figure1_instance();
  for (auto _ : state) {
    exact::TimeIndexedIp ip(inst, 3);
    benchmark::DoNotOptimize(ip.program().num_variables());
  }
}
BENCHMARK(BM_IpBuildFigure1);

void BM_PolicyFullRun(benchmark::State& state, const char* name) {
  Rng rng(11);
  Digraph g = topology::random_overlay(60, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 32, 0);
  for (auto _ : state) {
    auto policy = heuristics::make_policy(name);
    sim::SimOptions options;
    options.seed = 5;
    options.record_schedule = false;
    benchmark::DoNotOptimize(sim::run(inst, *policy, options));
  }
}
BENCHMARK_CAPTURE(BM_PolicyFullRun, round_robin, "round-robin");
BENCHMARK_CAPTURE(BM_PolicyFullRun, random, "random");
BENCHMARK_CAPTURE(BM_PolicyFullRun, local, "local");
BENCHMARK_CAPTURE(BM_PolicyFullRun, bandwidth, "bandwidth");
BENCHMARK_CAPTURE(BM_PolicyFullRun, global, "global");

// Simulator hot-loop throughput (steps/sec) on a large random instance.
// The policy runs a bounded window of steps per iteration so the figure
// isolates per-step cost rather than time-to-completion.  The ISSUE-1
// target: >= 3x steps/sec on 1000 vertices x 512 tokens with a
// local-only policy versus the seed implementation.
void BM_SimulatorStepsPerSec(benchmark::State& state, const char* name,
                             std::int32_t staleness) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto tokens = static_cast<std::int32_t>(state.range(1));
  Rng rng(29);
  Digraph g = topology::random_overlay(n, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), tokens, 0);
  auto policy = heuristics::make_policy(name);
  sim::SimOptions options;
  options.seed = 7;
  options.record_schedule = false;
  options.staleness = staleness;
  options.max_steps = 24;  // bounded window: measures steps, not runs
  std::int64_t steps = 0;
  for (auto _ : state) {
    const auto result = sim::run(inst, *policy, options);
    steps += result.steps;
    benchmark::DoNotOptimize(result.bandwidth);
  }
  state.SetItemsProcessed(steps);  // items/sec == simulated steps/sec
}
BENCHMARK_CAPTURE(BM_SimulatorStepsPerSec, round_robin, "round-robin", 0)
    ->Args({200, 128})
    ->Args({1000, 512})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorStepsPerSec, local, "local", 0)
    ->Args({200, 128})
    ->Args({1000, 512})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SimulatorStepsPerSec, random_stale4, "random", 4)
    ->Args({200, 128})
    ->Args({1000, 512})
    ->Unit(benchmark::kMillisecond);

// Per-policy planning throughput (steps/sec) on a fixed workload.  A
// bounded window of steps per iteration isolates plan_step cost; the
// 1000v x 512t point is the ISSUE-2 acceptance workload (>= 5x for
// `global` vs the pre-kernel planner).  The third argument is the
// intra-run worker budget (ISSUE 5: /threads:1 is the serial baseline,
// /threads:2 and /threads:8 exercise the sharded planner + apply
// paths — outputs are bit-identical, only the wall clock may move).
// reproduce_all.sh snapshots these series to BENCH_planner.json so
// scripts/compare_bench.py can flag regressions across PRs; per-step
// plan time is 1 / items_per_sec.
void BM_PlannerStepsPerSec(benchmark::State& state, const char* name) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto tokens = static_cast<std::int32_t>(state.range(1));
  util::set_parallel_jobs(static_cast<unsigned>(state.range(2)));
  Rng rng(29);
  Digraph g = topology::random_overlay(n, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), tokens, 0);
  auto policy = heuristics::make_policy(name);
  sim::SimOptions options;
  options.seed = 7;
  options.record_schedule = false;
  options.max_steps = 24;  // bounded window: measures steps, not runs
  sim::Simulator simulator;  // arena reused across iterations (steady state)
  std::int64_t steps = 0;
  for (auto _ : state) {
    const auto result = simulator.run(inst, *policy, options);
    steps += result.steps;
    benchmark::DoNotOptimize(result.bandwidth);
  }
  util::set_parallel_jobs(0);
  state.SetItemsProcessed(steps);  // items/sec == planned steps/sec
}
BENCHMARK_CAPTURE(BM_PlannerStepsPerSec, global, "global")
    ->ArgNames({"", "", "threads"})
    ->Args({200, 128, 1})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PlannerStepsPerSec, local, "local")
    ->ArgNames({"", "", "threads"})
    ->Args({200, 128, 1})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PlannerStepsPerSec, random, "random")
    ->ArgNames({"", "", "threads"})
    ->Args({200, 128, 1})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PlannerStepsPerSec, round_robin, "round-robin")
    ->ArgNames({"", "", "threads"})
    ->Args({200, 128, 1})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PlannerStepsPerSec, bandwidth, "bandwidth")
    ->ArgNames({"", "", "threads"})
    ->Args({200, 128, 1})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 8})
    ->Unit(benchmark::kMillisecond);

// Fault path: the same bounded-window workload with 20% uniform loss
// and the reliable-transfer adapter in the loop, so the snapshot in
// BENCH_planner.json also guards the lossy apply phase and the
// adapter's ack/retransmit bookkeeping.
void BM_PlannerStepsPerSecLossy(benchmark::State& state, const char* name) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto tokens = static_cast<std::int32_t>(state.range(1));
  Rng rng(29);
  Digraph g = topology::random_overlay(n, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), tokens, 0);
  std::int64_t steps = 0;
  for (auto _ : state) {
    faults::UniformLoss loss(0.2);
    auto policy = heuristics::make_policy(name);
    sim::SimOptions options;
    options.seed = 7;
    options.record_schedule = false;
    options.faults = &loss;
    options.max_steps = 24;  // bounded window: measures steps, not runs
    const auto result = sim::run(inst, *policy, options);
    steps += result.steps;
    benchmark::DoNotOptimize(result.bandwidth);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK_CAPTURE(BM_PlannerStepsPerSecLossy, random_reliable,
                  "random+reliable")
    ->Args({200, 128})
    ->Args({1000, 512})
    ->Unit(benchmark::kMillisecond);

// Sharded-runtime per-step cost: the same bounded-window workload as
// BM_PlannerStepsPerSec, run through shard::run_sharded with the
// in-process transport, so the snapshot prices the barrier protocol
// (plan / apply / commit rounds + BinStream codec) against the
// single-process planner at matched shard counts.  shards:1 isolates
// the protocol's fixed overhead; shards:2/4 add the cross-shard
// delivery traffic.  Outputs are bit-identical at every shard count,
// only the wall clock may move.
void BM_ShardStep(benchmark::State& state, const char* name) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto tokens = static_cast<std::int32_t>(state.range(1));
  const auto shards = static_cast<std::int32_t>(state.range(2));
  Rng rng(29);
  Digraph g = topology::random_overlay(n, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), tokens, 0);
  shard::ShardOptions options;
  options.num_shards = shards;
  options.sim.seed = 7;
  options.sim.record_schedule = false;
  options.sim.max_steps = 24;  // bounded window: measures steps, not runs
  std::int64_t steps = 0;
  for (auto _ : state) {
    const auto result = shard::run_sharded(inst, name, options);
    steps += result.steps;
    benchmark::DoNotOptimize(result.bandwidth);
  }
  state.SetItemsProcessed(steps);  // items/sec == simulated steps/sec
}
BENCHMARK_CAPTURE(BM_ShardStep, round_robin, "round-robin")
    ->ArgNames({"", "", "shards"})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 4})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ShardStep, local, "local")
    ->ArgNames({"", "", "shards"})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 4})
    ->Unit(benchmark::kMillisecond);
// Coordinated planning: shards > 1 adds the wave round (top-k summary
// broadcast + replicated merge) on top of full possession replication.
BENCHMARK_CAPTURE(BM_ShardStep, global, "global")
    ->ArgNames({"", "", "shards"})
    ->Args({1000, 512, 1})
    ->Args({1000, 512, 2})
    ->Args({1000, 512, 4})
    ->Unit(benchmark::kMillisecond);

// Partitioner cost at both refinement tiers on the paper's structured
// topology.  "k" (not "shards") in the arg name on purpose: the
// undersized-host waiver keys on /shards:N and /threads:N, and the
// partitioner is single-threaded — its numbers are valid on any host.
// items/sec == arcs scanned/sec; the cut quality each tier buys at
// these shard counts is recorded by bench/fig_shard.
void BM_Partition(benchmark::State& state, bool flow_refine) {
  const auto shards = static_cast<std::int32_t>(state.range(0));
  Rng rng(41);
  const Digraph g = topology::transit_stub(
      topology::transit_stub_options_for_size(2'000), rng);
  shard::PartitionOptions options;
  options.num_shards = shards;
  options.balance_eps = 5;
  options.flow_refine = flow_refine;
  std::int64_t cut = 0;
  for (auto _ : state) {
    const shard::Partition part = shard::partition_vertices(g, options);
    cut = part.stats.cut_arcs;
    benchmark::DoNotOptimize(cut);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
  state.counters["cut_arcs"] = static_cast<double>(cut);
}
BENCHMARK_CAPTURE(BM_Partition, greedy, false)
    ->ArgNames({"k"})
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Partition, flow, true)
    ->ArgNames({"k"})
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ValidateAndPrune(benchmark::State& state) {
  Rng rng(13);
  Digraph g = topology::random_overlay(60, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 32, 0);
  auto policy = heuristics::make_policy("random");
  const auto run = sim::run(inst, *policy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::validate(inst, run.schedule));
    benchmark::DoNotOptimize(core::prune(inst, run.schedule));
  }
}
BENCHMARK(BM_ValidateAndPrune);

void BM_GossipAdvance(benchmark::State& state) {
  Rng rng(17);
  const auto n = static_cast<std::int32_t>(state.range(0));
  Digraph g = topology::random_overlay(n, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 32, 0);
  sim::GossipState gossip(inst);
  std::vector<TokenSet> possession;
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession.push_back(inst.have(v));
  std::int64_t step = 0;
  for (auto _ : state) gossip.advance(possession, step++);
}
BENCHMARK(BM_GossipAdvance)->Arg(30)->Arg(100);

void BM_CompactSchedule(benchmark::State& state) {
  Rng rng(19);
  Digraph g = topology::random_overlay(50, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 24, 0);
  auto policy = heuristics::make_policy("local");
  const auto run = sim::run(inst, *policy);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::compact_schedule(inst, run.schedule));
}
BENCHMARK(BM_CompactSchedule);

void BM_SteinerPacking(benchmark::State& state) {
  Rng rng(23);
  Digraph g = topology::random_overlay(60, rng);
  const auto inst = core::single_source_all_receivers(std::move(g), 24, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::steiner_packing_schedule(inst));
}
BENCHMARK(BM_SteinerPacking);

}  // namespace

// The stock "library_build_type" context field describes how the
// google-benchmark *library* was compiled (the distro package ships a
// debug build), not how this code was.  Record the flavor that actually
// matters for snapshot hygiene — whether the ocd library and these
// benchmarks were built with NDEBUG — so scripts/compare_bench.py can
// refuse genuinely-debug captures without tripping on the packaging.
int main(int argc, char** argv) {
#ifdef NDEBUG
  benchmark::AddCustomContext("ocd_build_type", "release");
#else
  benchmark::AddCustomContext("ocd_build_type", "debug");
#endif
  // The stock "num_cpus" context reports what the benchmark *library*
  // saw at its build/run; record what this process observes so
  // scripts/compare_bench.py can refuse /threads:N gates against
  // snapshots captured on hosts with fewer than N cores ("parity" on a
  // single-core box says nothing about contention).
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
  // The intra-run worker budget these benchmarks actually ran under
  // (OCD_JOBS when set, hardware concurrency otherwise) — /shards:N
  // rows step all N shards on this pool, so a snapshot captured under
  // a clamped budget must say so.
  benchmark::AddCustomContext("ocd_jobs",
                              std::to_string(util::parallel_jobs()));
  benchmark::AddCustomContext(
      "ocd_simd", simd::level_name(simd::active_level()));
  benchmark::AddCustomContext(
      "ocd_simd_max", simd::level_name(simd::max_supported_level()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
