// Sender-side reliable transfer over a lossy network.
//
// ReliableAdapter wraps any Policy with the classic ack/timeout/
// retransmission loop: every token it puts on an arc is tracked as
// in-flight, delivery is acknowledged implicitly through the knowledge
// view (the peer's possession snapshot eventually shows the token), and
// transfers still unacknowledged after a timeout are rescheduled with
// capped exponential backoff.  Retransmissions take arc capacity ahead
// of the inner policy's fresh sends; fresh sends that no longer fit are
// trimmed (counted as adapter drops, the same axis as GroupAdapter's
// congestion drops).
//
// With staleness k the peer snapshot lags k steps, so acknowledgements
// arrive at the earliest k+1 steps after delivery; `base_timeout` must
// exceed that lag or every send is retransmitted at least once (wasted
// bandwidth, never incorrect — a retransmission of a delivered token is
// simply redundant).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ocd/sim/policy.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::faults {

class ReliableAdapter final : public sim::Policy {
 public:
  /// `base_timeout`: steps to wait for an acknowledgement before the
  /// first retransmission (doubles per retry up to `max_backoff`).
  explicit ReliableAdapter(sim::PolicyPtr inner, std::int32_t base_timeout = 2,
                           std::int32_t max_backoff = 16);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override;

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;
  void finish_run(sim::RunStats& stats) override;

  [[nodiscard]] std::int64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  /// Inner-policy tokens trimmed because retransmissions had taken the
  /// arc's capacity (they never reached the wire).
  [[nodiscard]] std::int64_t trimmed_moves() const noexcept {
    return trimmed_moves_;
  }
  /// Transfers currently awaiting acknowledgement.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return inflight_.size();
  }

 private:
  struct InFlight {
    std::int64_t retry_at = 0;  ///< next step eligible for retransmission
    std::int32_t backoff = 0;   ///< current timeout (doubles per retry)
  };

  sim::PolicyPtr inner_;
  std::string name_;
  std::int32_t base_timeout_;
  std::int32_t max_backoff_;
  /// Ordered by (arc, token) so capacity contention resolves
  /// deterministically.
  std::map<std::pair<ArcId, TokenId>, InFlight> inflight_;
  std::int64_t retransmissions_ = 0;
  std::int64_t trimmed_moves_ = 0;
  // Per-step scratch, reused across steps (sized at reset).  Budgets are
  // flat per-arc arrays initialized lazily for touched arcs only and
  // cleaned up arc-by-arc at the start of the next step.
  sim::StepPlan scratch_;
  std::vector<std::int32_t> budget_remaining_;
  std::vector<char> budget_touched_;
  util::TokenMatrix planned_;  ///< per-arc tokens already on the wire
  std::vector<ArcId> touched_arcs_;
  TokenSet fresh_;
};

}  // namespace ocd::faults
