// Lossy-delivery fault injection (§6 changing network conditions, the
// delivery half).
//
// The DynamicsModel layer rewrites per-arc *capacities* — what a policy
// is allowed to send.  A FaultModel attacks the other half of the §6
// story: transfers that the sender legitimately planned (and that
// consumed arc capacity) are silently lost in flight.  The simulator
// queries the model once per ArcSend during the apply phase; the tokens
// it reports lost never reach the receiver's possession set, never
// touch the incremental aggregates, and are charged to
// RunStats::lost_moves and the per-step loss trace.
//
// Loss semantics (documented in docs/MODEL.md "Fault model & recovery"):
//   * capacity is consumed — a lost transfer still occupied the arc;
//   * possession is not mutated — monotonicity of p_i(v) is preserved;
//   * knowledge stays truthful — peer snapshots show the receiver still
//     lacking the token; only a *sender's private belief* that its send
//     landed can be wrong, which is exactly the gap ReliableAdapter
//     closes with ack/timeout/retransmission.
//
// All models are deterministic: the same (instance, seed, send
// sequence) yields a bit-identical loss trace, and channel state (the
// Gilbert-Elliott chain) evolves per step independently of traffic, so
// two runs with the same seed agree even when their policies differ in
// *when* they send.  Drop decisions are additionally derived per
// (step, arc) rather than drawn from one sequential stream, which makes
// lost() mutation-free: the sharded runtime can query a shared model
// from several shards concurrently (or replicate it per process) and
// every evaluator computes the same losses.  Only begin_step mutates,
// and must run exactly once per process per step.
#pragma once

#include <cstdint>
#include <set>
#include <string_view>
#include <tuple>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::faults {

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once per run before the first step.
  virtual void reset(const core::Instance& instance, std::uint64_t seed);

  /// Called once per timestep (whether or not traffic flows), before
  /// any lost() query for that step.  Stateful channels advance here so
  /// their trajectory is a function of (seed, step) alone, never of the
  /// policy's send pattern.  Default: no-op.
  virtual void begin_step(std::int64_t step, const Digraph& graph);

  /// Fills `lost` (caller scratch, same universe as `sent`, cleared on
  /// entry) with the subset of `sent` dropped on `arc` this step.
  virtual void lost(std::int64_t step, ArcId arc, const TokenSet& sent,
                    TokenSet& lost) = 0;
};

/// Every token-transfer is lost independently with probability `rate`.
class UniformLoss final : public FaultModel {
 public:
  explicit UniformLoss(double rate);

  [[nodiscard]] std::string_view name() const override {
    return "uniform-loss";
  }
  [[nodiscard]] double rate() const noexcept { return rate_; }
  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void lost(std::int64_t step, ArcId arc, const TokenSet& sent,
            TokenSet& lost) override;

 private:
  double rate_;
  std::uint64_t seed_ = 1;  ///< per-(step, arc) drop streams derive from this
};

/// Bursty loss: each arc is an independent two-state Markov channel
/// (Gilbert-Elliott).  A good arc turns bad with probability
/// `p_good_to_bad` per step and recovers with `p_bad_to_good`; tokens
/// are lost with `loss_good` / `loss_bad` depending on the arc's state.
/// Channel states advance once per step for every arc (in begin_step),
/// so the state trajectory is independent of which arcs carry traffic.
class GilbertElliott final : public FaultModel {
 public:
  GilbertElliott(double p_good_to_bad, double p_bad_to_good,
                 double loss_good = 0.0, double loss_bad = 1.0);

  [[nodiscard]] std::string_view name() const override {
    return "gilbert-elliott";
  }
  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void begin_step(std::int64_t step, const Digraph& graph) override;
  void lost(std::int64_t step, ArcId arc, const TokenSet& sent,
            TokenSet& lost) override;

  /// True when `arc` is in the bad state for the current step.
  [[nodiscard]] bool bad(ArcId arc) const;

 private:
  double p_good_to_bad_;
  double p_bad_to_good_;
  double loss_good_;
  double loss_bad_;
  std::vector<char> bad_;   ///< per-arc channel state
  Rng state_rng_{1};        ///< drives the per-step state chain
  std::uint64_t drop_seed_ = 1;  ///< per-(step, arc) drop streams
};

/// Scriptable drops: loses exactly the (step, arc, token) events added
/// with drop().  Seed-independent by construction — the reproducible
/// regression harness for "this exact transfer failed".
class FaultPlan final : public FaultModel {
 public:
  FaultPlan() = default;

  [[nodiscard]] std::string_view name() const override { return "fault-plan"; }

  /// Schedules the loss of `token` on `arc` at `step`.  Returns *this
  /// so scripts chain: plan.drop(0, 2, 5).drop(1, 2, 5);
  FaultPlan& drop(std::int64_t step, ArcId arc, TokenId token);

  void lost(std::int64_t step, ArcId arc, const TokenSet& sent,
            TokenSet& lost) override;

  [[nodiscard]] std::size_t size() const noexcept { return drops_.size(); }

 private:
  std::set<std::tuple<std::int64_t, ArcId, TokenId>> drops_;
};

}  // namespace ocd::faults
