// Arc-indexed weighted digraph.
//
// This is the G = (V, E), c : E -> N of the paper: a simple directed
// graph whose arc weights are capacities (tokens per timestep).  Arcs are
// identified by dense ArcIds so per-arc simulator state (send sets,
// round-robin cursors, plans) lives in flat vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ocd/util/error.hpp"

namespace ocd {

using VertexId = std::int32_t;
using ArcId = std::int32_t;

/// One directed arc (u, v) with capacity c(u, v) >= 1.
struct Arc {
  VertexId from = -1;
  VertexId to = -1;
  std::int32_t capacity = 0;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::int32_t num_vertices);

  [[nodiscard]] std::int32_t num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::int32_t num_arcs() const noexcept {
    return static_cast<std::int32_t>(arcs_.size());
  }

  /// Adds arc (from, to) with the given capacity and returns its id.
  /// The graph must stay simple: adding a duplicate arc is a contract
  /// violation (the paper folds multi-arcs into one arc whose capacity is
  /// the sum; callers wanting that behaviour use add_or_merge_arc).
  ArcId add_arc(VertexId from, VertexId to, std::int32_t capacity);

  /// Adds (from, to) or, if present, increases its capacity.
  ArcId add_or_merge_arc(VertexId from, VertexId to, std::int32_t capacity);

  [[nodiscard]] const Arc& arc(ArcId id) const {
    OCD_EXPECTS(id >= 0 && static_cast<std::size_t>(id) < arcs_.size());
    return arcs_[static_cast<std::size_t>(id)];
  }

  /// Id of arc (from, to), or -1 when absent.  O(out-degree).
  [[nodiscard]] ArcId find_arc(VertexId from, VertexId to) const;

  [[nodiscard]] bool has_arc(VertexId from, VertexId to) const {
    return find_arc(from, to) >= 0;
  }

  /// Ids of arcs leaving / entering v.  After finalize() these are
  /// slices of one contiguous CSR array, so iterating all vertices in
  /// order walks memory linearly.
  [[nodiscard]] std::span<const ArcId> out_arcs(VertexId v) const;
  [[nodiscard]] std::span<const ArcId> in_arcs(VertexId v) const;

  /// Builds the CSR (compressed sparse row) adjacency arrays: flat
  /// out/in offset + arc-id vectors in vertex order, preserving each
  /// vertex's arc insertion order, so planner iteration over
  /// out_arcs/in_arcs touches contiguous memory.  Idempotent; adding a
  /// new arc afterwards invalidates the CSR form (accessors fall back
  /// to the per-vertex lists until finalize() is called again).
  /// Instance finalizes its graph eagerly at construction, so the
  /// simulator hot path always sees CSR adjacency.
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return csr_valid_; }

  /// Out-/in-neighbour vertex lists (deduplicated by simplicity).
  [[nodiscard]] std::vector<VertexId> out_neighbors(VertexId v) const;
  [[nodiscard]] std::vector<VertexId> in_neighbors(VertexId v) const;

  /// Sum of capacities into v (the paper's indegree used by the M_i(v)
  /// bound counts incoming capacity).
  [[nodiscard]] std::int64_t in_capacity(VertexId v) const;
  [[nodiscard]] std::int64_t out_capacity(VertexId v) const;

  [[nodiscard]] bool valid_vertex(VertexId v) const noexcept {
    return v >= 0 && v < num_vertices_;
  }

  [[nodiscard]] const std::vector<Arc>& arcs() const noexcept { return arcs_; }

 private:
  std::int32_t num_vertices_ = 0;
  std::vector<Arc> arcs_;
  // Per-vertex lists, maintained incrementally during construction so
  // add_arc's simplicity check (find_arc) stays O(out-degree).
  std::vector<std::vector<ArcId>> out_;
  std::vector<std::vector<ArcId>> in_;
  // CSR form built by finalize(): offsets_[v]..offsets_[v+1] slices the
  // flat arc-id array for vertex v.
  bool csr_valid_ = false;
  std::vector<std::int32_t> out_offsets_;
  std::vector<std::int32_t> in_offsets_;
  std::vector<ArcId> out_csr_;
  std::vector<ArcId> in_csr_;
};

}  // namespace ocd
