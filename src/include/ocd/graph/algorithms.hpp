// Graph algorithms used across the library: BFS hop distances,
// connectivity tests, diameter, and the radius-i closures that power the
// paper's M_i(v) makespan lower bound.
#pragma once

#include <limits>
#include <vector>

#include "ocd/graph/digraph.hpp"

namespace ocd {

/// Marker for "unreachable" in hop-distance vectors.
inline constexpr std::int32_t kUnreachable =
    std::numeric_limits<std::int32_t>::max();

/// Hop distances from `source` following arcs forward.
std::vector<std::int32_t> bfs_distances(const Digraph& g, VertexId source);

/// Hop distances *to* `target` following arcs backward (distance each
/// vertex must cover to reach target).
std::vector<std::int32_t> bfs_distances_to(const Digraph& g, VertexId target);

/// All-pairs hop distances (n BFS passes); dist[u][v].
std::vector<std::vector<std::int32_t>> all_pairs_distances(const Digraph& g);

/// Every vertex reachable from every other (following arc direction).
bool is_strongly_connected(const Digraph& g);

/// Connected when arc directions are ignored.
bool is_weakly_connected(const Digraph& g);

/// Largest finite pairwise hop distance; kUnreachable when disconnected,
/// 0 for graphs with fewer than two vertices.
std::int32_t diameter(const Digraph& g);

/// Vertices within `radius` hops of v following arcs *backward* — the
/// in-ball used by the paper's closure bound (tokens inside the ball
/// could reach v within `radius` timesteps, capacity permitting).
std::vector<VertexId> in_ball(const Digraph& g, VertexId v,
                              std::int32_t radius);

}  // namespace ocd
