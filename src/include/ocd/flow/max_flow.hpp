// Reusable s-t max-flow core.
//
// One solver object, two algorithms over the same residual network:
//
//   * run()         — Dinic's algorithm with the current-arc
//                     optimization: BFS level phases, iterative
//                     blocking-flow DFS that never rescans an arc it
//                     has already saturated or pruned within a phase.
//   * run_scaling() — the capacity-scaling variant: the same phases,
//                     restricted to residual capacities >= Δ for Δ
//                     halving from the largest power of two under the
//                     maximum capacity down to 1.  The final Δ = 1
//                     rounds are plain Dinic on what is left, so the
//                     result is exact; the early rounds route the fat
//                     paths first, which bounds augmentations by
//                     O(E log U) on networks with large capacities.
//
// Storage is CSR-style flat arrays throughout: arcs live in paired
// slots (arc 2i is add_edge() call i, arc 2i^1 its reverse) in flat
// to/from/capacity vectors, and adjacency is a counting-sorted offset +
// arc-id table rebuilt only when edges changed.  Every scratch buffer
// (levels, current-arc cursors, BFS queue, DFS path) is owned by the
// solver and only ever grows: once a MaxFlow instance has solved a
// network of some size, re-filling and re-solving networks of at most
// that size performs **zero heap allocations** — the contract the
// shard partitioner's per-pair refinement loop and (later) per-step
// flow planners rely on, pinned by tests/flow/flow_alloc_test.cpp.
//
// The solver is deterministic: identical add_edge sequences yield
// identical flows, residual networks, and min-cut sides on every host.
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/util/error.hpp"

namespace ocd::flow {

class MaxFlow {
 public:
  using Flow = std::int64_t;
  /// Largest admissible edge capacity.  Leaves headroom so that sums
  /// of parallel capacities and the scaling threshold never overflow.
  static constexpr Flow kInfinity =
      std::int64_t{1} << 60;

  MaxFlow() = default;

  /// Starts a fresh network of `num_vertices` vertices.  Previously
  /// grown buffers are kept (capacity is never released), so rebuilding
  /// same-or-smaller networks is allocation-free.
  void reset(std::int32_t num_vertices);

  /// Adds a directed edge with `capacity` and a paired reverse edge
  /// with `reverse_capacity` (0 = plain directed edge; equal values
  /// model an undirected edge).  Returns the edge id for flow().
  /// Requires 0 <= capacity, reverse_capacity <= kInfinity.
  std::int32_t add_edge(std::int32_t from, std::int32_t to, Flow capacity,
                        Flow reverse_capacity = 0);

  [[nodiscard]] std::int32_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::int32_t num_edges() const noexcept {
    return static_cast<std::int32_t>(to_.size() / 2);
  }

  /// Dinic max flow from `source` to `sink` over the *current* residual
  /// capacities (a second call continues where the first stopped and
  /// returns 0; use reload() to restart from the original capacities).
  /// Requires source != sink, both valid.
  Flow run(std::int32_t source, std::int32_t sink);

  /// Capacity-scaling Dinic; same contract and same final residual
  /// invariants as run(), identical return value on any network.
  Flow run_scaling(std::int32_t source, std::int32_t sink);

  /// Restores every residual capacity to its add_edge() value, so the
  /// same network can be re-solved (e.g. with the other algorithm).
  void reload();

  /// Flow pushed over edge `e` (an add_edge id) by the last run; the
  /// paired reverse edge's flow is its negation clamped at 0.
  [[nodiscard]] Flow flow(std::int32_t e) const {
    OCD_EXPECTS(e >= 0 && e < num_edges());
    const auto a = static_cast<std::size_t>(e) * 2;
    return init_cap_[a] - cap_[a];
  }

  /// After run()/run_scaling(): true iff `v` is on the source side of
  /// the canonical (source-reachable) min cut — reachable from the
  /// source in the final residual network.
  [[nodiscard]] bool in_source_side(std::int32_t v) const {
    OCD_EXPECTS(v >= 0 && v < n_);
    return level_[static_cast<std::size_t>(v)] >= 0;
  }

  /// Computes the other canonical min cut: the sink side becomes the
  /// set of vertices that can still reach the sink in the residual
  /// network (the inclusion-minimal sink side; the source-reachable cut
  /// is the inclusion-minimal source side).  Call after run().
  void compute_sink_side();
  [[nodiscard]] bool in_sink_side(std::int32_t v) const {
    OCD_EXPECTS(v >= 0 && v < n_);
    return sink_mark_[static_cast<std::size_t>(v)] != 0;
  }

 private:
  void build_csr();
  bool bfs(std::int32_t source, std::int32_t sink, Flow min_cap);
  Flow blocking_flow(std::int32_t source, std::int32_t sink, Flow min_cap);

  std::int32_t n_ = 0;
  // Paired arcs in flat arrays; arc a's reverse is a ^ 1.
  std::vector<std::int32_t> to_;
  std::vector<std::int32_t> from_;
  std::vector<Flow> cap_;       // residual capacities (mutated by runs)
  std::vector<Flow> init_cap_;  // capacities as added (for flow/reload)
  // CSR adjacency over arc ids, counting-sorted by from-vertex.
  bool csr_dirty_ = true;
  std::vector<std::int32_t> offsets_;  // n_ + 1
  std::vector<std::int32_t> adj_;      // arc ids grouped by from-vertex
  // Phase scratch: BFS levels double as the source-side marks (a vertex
  // is source-reachable iff the final, failed BFS levelled it).
  std::vector<std::int32_t> level_;
  std::vector<std::int32_t> cur_;    // current-arc cursor per vertex
  std::vector<std::int32_t> queue_;  // BFS ring buffer
  std::vector<std::int32_t> path_;   // DFS path as arc ids
  std::vector<char> sink_mark_;      // compute_sink_side() result
  std::int32_t last_sink_ = -1;
};

}  // namespace ocd::flow
