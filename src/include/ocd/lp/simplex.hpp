// Two-phase bounded-variable primal simplex (dense tableau).
//
// Solves   min cᵀx   s.t.  constraints of a LinearProgram,  l ≤ x ≤ u
// ignoring integrality markers.  Designed for the moderate model sizes
// produced by the paper's time-indexed IP on small graphs (up to a few
// thousand rows/columns); a dense tableau keeps the implementation
// simple and auditable.
//
// Method: rows are normalized to `a·x + s = b` with slack bounds
// encoding the relation; phase 1 minimizes the sum of artificial
// variables added for rows whose slack-basic start is out of bounds;
// phase 2 minimizes the true objective.  Dantzig pricing with an
// automatic switch to Bland's rule under degeneracy guarantees
// termination.
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/lp/model.hpp"

namespace ocd::lp {

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(SolveStatus status);

struct SimplexOptions {
  std::int64_t max_iterations = 200000;
  double eps = 1e-9;
  /// Iterations without objective progress before switching to Bland.
  std::int64_t stall_threshold = 256;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  /// Values of the structural variables (empty unless kOptimal).
  std::vector<double> values;
  std::int64_t iterations = 0;
};

/// Solves the LP relaxation of `lp`.
LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options = {});

/// Solves with per-variable bound overrides (used by branch and bound).
/// `lower`/`upper` must have one entry per structural variable.
LpSolution solve_lp_with_bounds(const LinearProgram& lp,
                                const std::vector<double>& lower,
                                const std::vector<double>& upper,
                                const SimplexOptions& options = {});

}  // namespace ocd::lp
