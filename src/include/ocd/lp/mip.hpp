// Branch-and-bound mixed-integer solver on top of the simplex.
//
// Depth-first search branching on the most fractional integer variable;
// nodes are pruned against the incumbent, and a root rounding heuristic
// seeds the incumbent early.  This is the solver the paper's
// time-indexed IP (§3.4) runs through — the role CBC/GLPK played for
// the authors.
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/lp/simplex.hpp"

namespace ocd::lp {

struct MipOptions {
  SimplexOptions lp;
  std::int64_t max_nodes = 200000;
  double integrality_tol = 1e-6;
  /// Accept incumbents as optimal when bound gap falls below this.
  double gap_tol = 1e-6;
  /// Wall-clock budget; <= 0 disables the limit.
  double time_limit_seconds = 120.0;
};

struct MipResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// True when the search proved optimality (vs. merely found a feasible
  /// incumbent before hitting a limit).
  bool proven_optimal = false;
  double objective = 0.0;
  /// Best lower bound on the optimum established by the search.
  double best_bound = 0.0;
  std::vector<double> values;
  std::int64_t nodes_explored = 0;
  std::int64_t lp_iterations = 0;
};

/// Minimizes `lp` subject to the integrality markers.
MipResult solve_mip(const LinearProgram& lp, const MipOptions& options = {});

}  // namespace ocd::lp
