// Linear/integer program model builder.
//
// This is the interface the paper's time-indexed IP (§3.4) is built
// against.  The model is always a *minimization* over variables with
// explicit bounds; constraints are linear with <=, >= or = relations.
// Integrality is a per-variable marker honoured by the MIP solver
// (lp/mip.hpp) and ignored by the pure LP relaxation (lp/simplex.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "ocd/util/error.hpp"

namespace ocd::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Relation : std::uint8_t { kLessEqual, kGreaterEqual, kEqual };

enum class VarType : std::uint8_t { kContinuous, kInteger };

/// One coefficient of a constraint row.
struct Term {
  std::int32_t var = -1;
  double coeff = 0.0;
};

struct Variable {
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;
  VarType type = VarType::kContinuous;
  std::string name;
};

struct Constraint {
  std::vector<Term> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

class LinearProgram {
 public:
  /// Adds a variable and returns its index.  Requires lower <= upper and
  /// at least one finite bound (the simplex starts variables at a finite
  /// bound; genuinely free variables are not needed by this library).
  std::int32_t add_variable(double lower, double upper, double objective,
                            VarType type = VarType::kContinuous,
                            std::string name = {});

  /// Convenience for 0/1 variables.
  std::int32_t add_binary(double objective, std::string name = {});

  /// Adds a constraint row and returns its index.  Duplicate variable
  /// entries within a row are merged.
  std::int32_t add_constraint(std::vector<Term> terms, Relation relation,
                              double rhs, std::string name = {});

  [[nodiscard]] std::int32_t num_variables() const noexcept {
    return static_cast<std::int32_t>(variables_.size());
  }
  [[nodiscard]] std::int32_t num_constraints() const noexcept {
    return static_cast<std::int32_t>(constraints_.size());
  }

  [[nodiscard]] const Variable& variable(std::int32_t i) const;
  [[nodiscard]] const Constraint& constraint(std::int32_t i) const;
  [[nodiscard]] const std::vector<Variable>& variables() const noexcept {
    return variables_;
  }
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  [[nodiscard]] bool has_integer_variables() const noexcept;

  /// Objective value of an assignment (no feasibility check).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// True when `x` satisfies bounds, constraints, and (optionally)
  /// integrality to within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x, double tol,
                                 bool check_integrality) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

}  // namespace ocd::lp
