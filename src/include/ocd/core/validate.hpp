// Schedule validation: replays a schedule against the formal constraints
// of §3.1 (capacity, possession, initial assignment) and checks success
// (w(v) ⊆ p_t(v) for all v).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"

namespace ocd::core {

/// Outcome of replaying a schedule.
struct ValidationResult {
  bool valid = false;       ///< All constraints hold at every timestep.
  bool successful = false;  ///< valid and every want satisfied at the end.
  std::string violation;    ///< Empty when valid; else a human-readable
                            ///< description of the first violation found.
  /// Final possession sets p_t(v) (populated when valid).
  std::vector<TokenSet> final_possession;
};

/// Replays the schedule; never throws for mere invalidity.
ValidationResult validate(const Instance& instance, const Schedule& schedule);

/// Replays and returns possession after every timestep:
/// result[0] = p_0 = h, result[i] = possession after timestep i-1... i.e.
/// result.size() == schedule.length() + 1.  Throws ocd::Error if the
/// schedule violates a constraint.
std::vector<std::vector<TokenSet>> possession_trace(const Instance& instance,
                                                    const Schedule& schedule);

/// True when the schedule is valid and satisfies every want.
bool is_successful(const Instance& instance, const Schedule& schedule);

}  // namespace ocd::core
