// Compact binary schedule encoding realizing Theorem 2 of the paper:
// a successful run can be described in O(nm(log n + log m)) bits — each
// move as (arc id, token id) plus per-timestep move counts.
//
// The format is self-describing:
//   header: magic 'OCDS', u32 num_arcs, u32 num_tokens, u32 num_steps
//   body:   for each timestep, an Elias-gamma-style count followed by
//           `count` moves, each ceil(log2 num_arcs) + ceil(log2
//           num_tokens) bits.
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/core/schedule.hpp"

namespace ocd::core {

/// Serializes `schedule` for a graph with `num_arcs` arcs and a token
/// universe of `num_tokens`.  All arc/token ids must be in range.
std::vector<std::uint8_t> encode_schedule(const Schedule& schedule,
                                          std::int32_t num_arcs,
                                          std::int32_t num_tokens);

/// Inverse of encode_schedule; throws ocd::Error on malformed input.
Schedule decode_schedule(const std::vector<std::uint8_t>& bytes);

/// Size, in bits, of the body encoding (excludes the fixed header);
/// useful for asserting the Theorem-2 bound in tests.
std::int64_t encoded_body_bits(const Schedule& schedule,
                               std::int32_t num_arcs,
                               std::int32_t num_tokens);

}  // namespace ocd::core
