// Lower/upper bound machinery (§5.1 of the paper):
//
//  * remaining-bandwidth lower bound — one move per (vertex, token) pair
//    wanted but not possessed;
//  * distance lower bound on makespan — a token must travel at least the
//    hop distance from its nearest holder;
//  * the paper's capacity-aware closure bound M_i(v) = i +
//    ceil(|T outside the radius-i in-closure of v| / in-capacity(v)),
//    maximized over i and v, including the explicit one-step lookahead
//    special case;
//  * a bandwidth upper bound from serial Steiner-tree distribution
//    (§3.3: optimal bandwidth ignoring time is a min-cost Steiner tree
//    per token; we use the 2-approximate shortest-path heuristic, see
//    steiner.hpp).
#pragma once

#include <span>

#include "ocd/core/instance.hpp"

namespace ocd::core {

/// Bandwidth LB from the current possession state (defaults to h).
std::int64_t bandwidth_lower_bound(const Instance& instance);
std::int64_t bandwidth_lower_bound(const Instance& instance,
                                   std::span<const TokenSet> possession);

/// Makespan LB: max over wanted (v, t) of hop distance from the nearest
/// holder of t to v.  Returns 0 when nothing is outstanding; throws
/// ocd::Error when some wanted token is unreachable.
std::int64_t distance_lower_bound(const Instance& instance);
std::int64_t distance_lower_bound(const Instance& instance,
                                  std::span<const TokenSet> possession);

/// The paper's M_i(v) closure bound, maximized over all vertices and all
/// radii 0..diameter.  Always >= distance_lower_bound-1-ish in shape but
/// additionally accounts for limited in-capacity; we return the max of
/// both so callers get the strongest available combinatorial LB.
std::int64_t makespan_lower_bound(const Instance& instance);
std::int64_t makespan_lower_bound(const Instance& instance,
                                  std::span<const TokenSet> possession);

/// One-step lookahead (§5.1 "special case"): 0 when done, 1 when every
/// outstanding token sits at an in-neighbor within capacity, else 2.
std::int64_t one_step_lookahead_bound(const Instance& instance,
                                      std::span<const TokenSet> possession);

/// Bandwidth *upper* bound for EOCD: sum over tokens of the arc count of
/// a 2-approximate Steiner tree from the token's holders to its wanters
/// (§3.3 serial distribution).  Throws when unsatisfiable.
std::int64_t bandwidth_upper_bound_serial_steiner(const Instance& instance);

}  // namespace ocd::core
