// Distribution schedules (§3.1): a sequence of timesteps, each mapping
// arcs to the token sets sent across them.
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/graph/digraph.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd::core {

/// Tokens sent across one arc during one timestep.
struct ArcSend {
  ArcId arc = -1;
  TokenSet tokens;
};

/// One timestep: a set of simultaneous moves, stored sparsely (only arcs
/// that carry at least one token appear).
class Timestep {
 public:
  Timestep() = default;

  /// Adds `tokens` to the send set of `arc` (unioning with any previous
  /// entry for that arc).
  void add(ArcId arc, const TokenSet& tokens);
  void add(ArcId arc, TokenId token, std::size_t universe);

  [[nodiscard]] const std::vector<ArcSend>& sends() const noexcept {
    return sends_;
  }
  [[nodiscard]] std::vector<ArcSend>& sends() noexcept { return sends_; }

  /// Token-transfers in this timestep.
  [[nodiscard]] std::int64_t moves() const noexcept;

  [[nodiscard]] bool empty() const noexcept;

  /// Removes arcs whose send set became empty.
  void compact();

 private:
  std::vector<ArcSend> sends_;
  // arc -> index into sends_, built lazily; small schedules just scan.
};

/// A full distribution schedule.
class Schedule {
 public:
  Schedule() = default;

  void append(Timestep step) { steps_.push_back(std::move(step)); }

  [[nodiscard]] const std::vector<Timestep>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::vector<Timestep>& steps() noexcept { return steps_; }

  /// Number of timesteps ("moves" on the paper's evaluation figures).
  [[nodiscard]] std::int64_t length() const noexcept {
    return static_cast<std::int64_t>(steps_.size());
  }

  /// Total token-transfers ("bandwidth").
  [[nodiscard]] std::int64_t bandwidth() const noexcept;

  /// Drops empty trailing timesteps (can appear after pruning).
  void trim();

  [[nodiscard]] bool empty() const noexcept { return steps_.empty(); }

 private:
  std::vector<Timestep> steps_;
};

}  // namespace ocd::core
