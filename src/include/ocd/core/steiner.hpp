// Steiner-tree machinery for the EOCD bandwidth analysis (§3.3).
//
// The paper observes that ignoring time, the optimal bandwidth for one
// token is a minimum Steiner tree from its holders to its wanters (with
// 0-cost identification of multiple holders).  Computing it exactly is
// NP-hard, so we implement the classical shortest-path heuristic (grow
// the tree by repeatedly attaching the terminal nearest to it), a
// 2-approximation on the metric closure; plus a scheduler that realizes
// the serial token-by-token distribution of §3.3.
#pragma once

#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"

namespace ocd::core {

/// A Steiner arborescence for one token: the arcs used, in an order
/// where every arc's tail is reached before the arc is listed.
struct SteinerTree {
  std::vector<ArcId> arcs;
  /// Hop depth at which each arc becomes sendable when the tree is
  /// scheduled level-parallel (depth of the arc's tail from the roots).
  std::vector<std::int32_t> depth;
  [[nodiscard]] std::int64_t cost() const {
    return static_cast<std::int64_t>(arcs.size());
  }
  /// Levels needed to push one token down the whole tree.
  [[nodiscard]] std::int32_t height() const;
};

/// Shortest-path-heuristic Steiner arborescence from `roots` (vertices
/// already holding the token) spanning `terminals`.  Throws ocd::Error
/// when some terminal is unreachable.
SteinerTree steiner_tree(const Digraph& graph,
                         const std::vector<VertexId>& roots,
                         const std::vector<VertexId>& terminals);

/// §3.3 construction: distributes each token serially over its Steiner
/// tree (levels of one token's tree run in parallel; distinct tokens run
/// back-to-back).  Bandwidth equals the summed tree costs; length is the
/// summed tree heights.  A bandwidth-frugal but slow offline scheduler.
Schedule serial_steiner_schedule(const Instance& instance);

/// Time-multiplexed variant: all tokens' Steiner trees run concurrently,
/// list-scheduled against arc capacities and possession precedence.
/// Same bandwidth as serial_steiner_schedule (the identical move set),
/// but the makespan shrinks to roughly the deepest tree when capacity
/// permits — a fast *and* frugal offline planner.
Schedule steiner_packing_schedule(const Instance& instance);

}  // namespace ocd::core
