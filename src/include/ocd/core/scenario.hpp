// Workload builders for every scenario in the paper's evaluation, plus
// the Figure-1 tension example and the Theorem-4 adversarial family.
#pragma once

#include "ocd/core/instance.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::core {

/// §5.2 "Graph size" (Figs 2 & 3): one source holds a single file of
/// `num_tokens` tokens; every other vertex wants the whole file.
Instance single_source_all_receivers(Digraph graph, std::int32_t num_tokens,
                                     VertexId source);

/// §5.2 "Receiver density" (Fig 4): one source holds the file; each other
/// vertex draws a uniform score and joins the want set iff
/// score < threshold (threshold 1.0 reproduces the all-receivers case).
/// Returns the instance and the number of receivers selected.
struct DensityScenario {
  Instance instance;
  std::int32_t num_receivers = 0;
};
DensityScenario single_source_receiver_density(Digraph graph,
                                               std::int32_t num_tokens,
                                               VertexId source,
                                               double threshold, Rng& rng);

/// §5.3 "Number of files" (Fig 5): `total_tokens` tokens at one source
/// are subdivided into `num_files` equal files; the vertices are
/// partitioned into `num_files` equal groups and group f wants exactly
/// file f.  `num_files` must divide `total_tokens`; the vertex groups
/// absorb remainders.  The source wants nothing.
Instance subdivided_files(Digraph graph, std::int32_t total_tokens,
                          std::int32_t num_files, VertexId source);

/// §5.3 "Multiple senders" (Fig 6): as subdivided_files, but each file is
/// initially held by a random vertex chosen among vertices that do not
/// want it.
Instance subdivided_files_random_senders(Digraph graph,
                                         std::int32_t total_tokens,
                                         std::int32_t num_files, Rng& rng);

/// The Figure-1 graph: a 7-vertex single-token instance in which the
/// minimum-time schedule takes 2 timesteps and 6 units of bandwidth while
/// a minimum-bandwidth schedule takes 4 units of bandwidth in 3 steps.
Instance figure1_instance();

/// Theorem-4 adversarial family: a bidirectional path of `path_length`
/// arcs; the head holds `num_tokens` tokens, the tail wants exactly one
/// of them (`wanted`, chosen by the adversary).  The prescient optimum
/// finishes in `path_length` steps; a local-knowledge algorithm cannot
/// know which token matters until want-information has crossed the path.
Instance adversarial_path(std::int32_t path_length, std::int32_t num_tokens,
                          TokenId wanted);

/// Small random instance used by exact-solver cross-validation tests:
/// `n` vertices, `m` tokens, each token held by one random vertex and
/// wanted by each other vertex with probability `want_probability`.
Instance random_small_instance(std::int32_t n, std::int32_t m,
                               double want_probability, Rng& rng);

}  // namespace ocd::core
