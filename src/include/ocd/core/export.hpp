// Human-facing exports: Graphviz DOT renderings of instances and
// schedule steps, and a flat CSV trace of every move — the debugging
// and paper-writing companions to the binary/text formats in io.hpp.
#pragma once

#include <iosfwd>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"

namespace ocd::core {

struct DotOptions {
  /// Label arcs with their capacities.
  bool show_capacities = true;
  /// Mark vertices holding tokens (doublecircle) and wanting tokens
  /// (filled) — the visual language used for instance snapshots.
  bool mark_roles = true;
};

/// The instance as a directed graph.  Sources render as doublecircles,
/// wanters shaded; arc labels carry capacities.
void write_dot(const Instance& instance, std::ostream& out,
               const DotOptions& options = {});

/// One timestep overlaid on the instance: arcs active during
/// `step_index` are bold and labelled with the tokens they carry.
void write_step_dot(const Instance& instance, const Schedule& schedule,
                    std::size_t step_index, std::ostream& out,
                    const DotOptions& options = {});

/// Flat move trace: one CSV row per (step, arc, token).
/// Columns: step,from,to,token.
void write_trace_csv(const Instance& instance, const Schedule& schedule,
                     std::ostream& out);

}  // namespace ocd::core
