// Schedule compaction — the makespan analogue of §5.1's bandwidth
// pruning.  Pruning removes moves a successful schedule never used;
// compaction repeatedly *advances* moves to the earliest timestep where
// their possession and capacity constraints still hold, shortening the
// schedule without changing what is delivered.  Both transformations
// preserve validity and success, so heuristic output can be post-
// processed into a strictly better offline plan (prune, then compact).
#pragma once

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"

namespace ocd::core {

/// Moves every send as early as possible (stable greedy sweep repeated
/// to a fixpoint), then trims empty trailing steps.  The result is
/// valid, delivers a superset-in-time of the original possessions, and
/// has length() <= the input's and equal bandwidth.
Schedule compact_schedule(const Instance& instance, const Schedule& schedule);

/// Convenience: prune then compact — the full offline post-pass.
Schedule optimize_schedule(const Instance& instance, const Schedule& schedule);

}  // namespace ocd::core
