// Plain-text instance serialization and file-based schedule storage —
// lets experiments be saved, shared and replayed.
//
// Format (line-oriented, '#' comments allowed):
//
//   ocd-instance v1
//   vertices <n> tokens <m>
//   arc <from> <to> <capacity>        (one per arc)
//   have <vertex> <token> [token...]  (optional, repeatable)
//   want <vertex> <token> [token...]  (optional, repeatable)
//   file <first> <size>               (optional, repeatable)
//   end
//
// Schedules use the Theorem-2 binary codec (core/encoding.hpp) wrapped
// in a small file header.
#pragma once

#include <iosfwd>
#include <string>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"

namespace ocd::core {

/// Writes the textual form of `instance`.
void save_instance(const Instance& instance, std::ostream& out);
void save_instance_file(const Instance& instance, const std::string& path);

/// Parses an instance; throws ocd::Error with a line-numbered message
/// on malformed input.
Instance load_instance(std::istream& in);
Instance load_instance_file(const std::string& path);

/// Binary schedule files (magic + Theorem-2 body).
void save_schedule_file(const Schedule& schedule, std::int32_t num_arcs,
                        std::int32_t num_tokens, const std::string& path);
Schedule load_schedule_file(const std::string& path);

}  // namespace ocd::core
