// Schedule pruning (§5.1 of the paper):
//
//   "Pruning first removes all moves that deliver a token repeatedly to
//    the same vertex, and then works back from the last move to the
//    first, removing moves that deliver tokens which were never used by
//    the destination vertex."
//
// Pruning preserves validity and success while never increasing length
// or bandwidth; it is used to report the "pruned bandwidth" series of
// Figures 4-6.
#pragma once

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"

namespace ocd::core {

/// Returns the pruned schedule.  The input must be valid for `instance`
/// (success is not required; unsatisfied wants simply keep their moves).
Schedule prune(const Instance& instance, const Schedule& schedule);

/// Convenience: bandwidth of the pruned schedule.
std::int64_t pruned_bandwidth(const Instance& instance,
                              const Schedule& schedule);

}  // namespace ocd::core
