// The OCD problem instance: (G, T, h, w) from §3.1 of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ocd/graph/digraph.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd::core {

/// Files are represented as contiguous token ranges; the model itself
/// only sees tokens (§3: "files can be represented as sets of tokens").
struct File {
  TokenId first = 0;
  std::int32_t size = 0;

  [[nodiscard]] TokenSet tokens(std::size_t universe) const;
};

class Instance {
 public:
  Instance() = default;

  /// Builds an instance over `graph` with `num_tokens` tokens; have and
  /// want start empty.
  Instance(Digraph graph, std::int32_t num_tokens);

  [[nodiscard]] const Digraph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::int32_t num_vertices() const noexcept {
    return graph_.num_vertices();
  }
  [[nodiscard]] std::int32_t num_tokens() const noexcept {
    return num_tokens_;
  }

  [[nodiscard]] const TokenSet& have(VertexId v) const;
  [[nodiscard]] const TokenSet& want(VertexId v) const;

  void add_have(VertexId v, TokenId t);
  void add_want(VertexId v, TokenId t);
  void set_have(VertexId v, TokenSet tokens);
  void set_want(VertexId v, TokenSet tokens);

  /// Declares a file (contiguous token range) for bookkeeping; returns
  /// its index.  Purely descriptive — the solver and heuristics operate
  /// on tokens.
  std::int32_t add_file(TokenId first, std::int32_t size);
  [[nodiscard]] const std::vector<File>& files() const noexcept {
    return files_;
  }

  /// Tokens some vertex still wants but does not have.
  [[nodiscard]] bool is_trivially_satisfied() const;

  /// Every wanted token is held by at least one vertex that can reach
  /// the wanter; a necessary and sufficient condition for FOCD
  /// satisfiability (flooding eventually succeeds on reachable tokens).
  [[nodiscard]] bool is_satisfiable() const;

  /// Vertices initially holding token t.
  [[nodiscard]] std::vector<VertexId> sources_of(TokenId t) const;

  /// Total count of (vertex, token) pairs wanted but not initially held.
  [[nodiscard]] std::int64_t total_outstanding() const;

  /// Sanity checks (universe sizes, vertex arities); throws on failure.
  void validate() const;

  [[nodiscard]] std::string summary() const;

 private:
  Digraph graph_;
  std::int32_t num_tokens_ = 0;
  std::vector<TokenSet> have_;
  std::vector<TokenSet> want_;
  std::vector<File> files_;
};

}  // namespace ocd::core
