// The synchronous round simulator implementing the model of §3.1.
//
// Each timestep: build the knowledge views, let the policy plan,
// validate the whole plan against capacity and possession (a buggy
// policy throws), and apply all sends simultaneously.  Runs terminate
// when every want is satisfied, when `max_steps` elapses, or when a
// step produces no moves while wants remain outstanding (a stalled
// policy).
//
// The hot loop does work proportional to what changed and what the
// policy can observe, not O(n·|T|) per step:
//  * validate-then-apply delivery — every send is checked against the
//    start-of-step possession first, then recipients are mutated in
//    place (no per-step deep copy of the possession state);
//  * per-arc capacity is enforced on the aggregate of all sends
//    sharing an arc, not per ArcSend;
//  * satisfaction is tracked with an unsatisfied-vertex counter updated
//    on delivery instead of a full rescan;
//  * aggregate vectors are materialized only for kLocalAggregate+
//    policies and maintained incrementally on delivery;
//  * zero-staleness snapshot views alias the live possession matrix.
// On every exit path, `stats.moves_per_step.size() == steps` holds.
//
// Memory layout (ISSUE 4): all per-vertex possession state lives in one
// row-major util::TokenMatrix; policies receive TokenSetView rows, the
// staleness buffer is a fixed ring of matrices copied in place, and the
// per-step working set (StepPlan send pool, capacity/load arrays,
// delivery scratch) is a SimScratch arena owned by the Simulator and
// cleared — never reallocated — each step.  With schedule recording
// off, a steady-state step performs zero heap allocations (asserted by
// tests/sim/alloc_count_test.cpp).
//
// Parallel apply (ISSUE 5): with OCD_JOBS > 1, steps with enough sends
// shard the apply phase over destination vertices on the shared
// ocd::util worker pool — fault trimming and counters stay serial in
// plan order, each destination's sends are applied to its own
// possession row (disjoint rows per chunk), and aggregates/touched
// bookkeeping merges serially in destination order.  The result is
// bit-identical to the serial apply for any OCD_JOBS (asserted by
// tests/faults/determinism_test.cpp).
//
// With a FaultModel installed the apply phase becomes lossy: validated
// sends consume capacity, but tokens the model eats never mutate
// possession, aggregates, or snapshots (knowledge stays truthful — a
// peer view shows the receiver still lacking the token).  The recorded
// schedule keeps only delivered tokens, so it remains a valid
// loss-free schedule reaching the same final state; moves_per_step and
// RunStats::total_moves() count what hit the wire, lost included.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"
#include "ocd/sim/policy.hpp"
#include "ocd/sim/stats.hpp"

namespace ocd::dynamics {
class DynamicsModel;
}

namespace ocd::faults {
class FaultModel;
}

namespace ocd::sim {

struct SimOptions {
  std::int64_t max_steps = 1'000'000;
  /// Peer-knowledge staleness k (§5.1: "the state 'k' turns ago").
  std::int32_t staleness = 0;
  /// When true, the per-token aggregate vectors handed to
  /// kLocalAggregate+ policies are computed from the k-stale snapshot
  /// instead of the step-initial state — modelling a delayed aggregate
  /// multicast (§5.1 notes "the potential need to support a delay in
  /// the aggregate knowledge").
  bool stale_aggregates = false;
  /// Record the full schedule (needed for pruning/validation; costs
  /// memory proportional to bandwidth).
  bool record_schedule = true;
  /// Seed for the policy's internal randomness.
  std::uint64_t seed = 1;
  /// Precompute all-pairs distances for kGlobal policies.  Enabled
  /// automatically when the policy requires them.
  bool precompute_distances = false;
  /// Optional §6 changing-network-conditions model (caller-owned; must
  /// outlive the run — the simulator stores only this raw pointer and
  /// calls it every step).  Rewrites per-arc effective capacities each
  /// step; a step in which the network leaves no sendable capacity is
  /// then a legitimate (idle) step rather than a policy stall.
  dynamics::DynamicsModel* dynamics = nullptr;
  /// Optional lossy-delivery fault model (caller-owned; must outlive
  /// the run, like `dynamics`).  Queried during the apply phase: tokens
  /// it reports lost consume arc capacity but never mutate possession
  /// (see ocd/faults/model.hpp for the full loss semantics).
  faults::FaultModel* faults = nullptr;
  /// Progress watchdog: terminate after this many consecutive steps
  /// without a single useful delivery while wants remain outstanding —
  /// distinguishing "the network ate everything" (and a policy that
  /// retries forever) from an infinite run.  0 (default) arms the
  /// watchdog with a 256-step window whenever a fault model is active;
  /// -1 disables it; any positive value arms it unconditionally.
  std::int64_t no_progress_window = 0;
  /// Optional completion override (§6 encoding): a vertex counts as
  /// satisfied when this predicate accepts its possession set, instead
  /// of the default w(v) ⊆ p(v).  Policies still see the instance's
  /// want sets; only run termination and completion_step change.  The
  /// view borrows the simulator's state and is only valid during the
  /// call.
  std::function<bool(VertexId, TokenSetView)> completion;
};

/// Why a run ended.  kSatisfied is the only successful outcome; the
/// others separate "the policy gave up" (kPolicyStalled: empty step,
/// no dynamics excuse) from "the policy kept trying but nothing useful
/// landed for a whole watchdog window" (kNoProgress — under heavy loss
/// the network, not the policy, is the culprit; RunStats::lost_per_step
/// over the final window tells which).
enum class Termination : std::uint8_t {
  kSatisfied,      ///< every want satisfied
  kPolicyStalled,  ///< empty non-idle step without a dynamics model
  kNoProgress,     ///< watchdog: no useful delivery for a full window
  kMaxSteps,       ///< step budget exhausted
};

const char* to_string(Termination t);

struct RunResult {
  bool success = false;
  std::int64_t steps = 0;
  std::int64_t bandwidth = 0;
  Termination termination = Termination::kSatisfied;
  core::Schedule schedule;  ///< Empty unless options.record_schedule.
  RunStats stats;
};

/// The simulator's reusable arena: everything a step touches that is
/// not per-run output lives here and is cleared in place each step /
/// resized (reusing capacity) each run.  Owned by a Simulator; separate
/// Simulators share nothing, so one-per-thread is safe.
struct SimScratch {
  util::TokenMatrix possession;  ///< live p_i(v), one row per vertex
  StepPlan plan;                 ///< send pool + arc index, rebound per step
  Aggregates aggregates;
  std::vector<std::int32_t> static_capacity;
  std::vector<std::int32_t> effective_capacity;
  std::vector<std::int32_t> arc_load;
  TokenSet fresh;  ///< delivery scratch: tokens new to the receiver
  TokenSet lost;   ///< fault scratch: tokens the channel ate
  std::vector<VertexId> touched;
  std::vector<char> touched_flag;
  std::vector<char> satisfied;
  std::vector<std::vector<std::int32_t>> distances;
  // Sharded apply-phase arenas, sized only when the run may shard
  // deliveries over destination vertices (OCD_JOBS > 1; see the apply
  // phase in simulator.cpp).  Sends are grouped into per-destination
  // chains so each chunk of destinations owns disjoint possession rows.
  util::TokenMatrix apply_fresh;  ///< per-chunk fresh scratch, one row each
  util::TokenMatrix apply_union;  ///< per-vertex union of fresh deliveries
  std::vector<VertexId> dest_list;
  std::vector<std::int32_t> dest_head;  ///< per-vertex first send index, -1
  std::vector<std::int32_t> dest_tail;
  std::vector<std::int32_t> send_next;  ///< per-send chain links
};

/// Runs policies on instances, reusing one SimScratch arena across runs
/// and steps.  Sequential runs on similarly sized instances settle into
/// a zero-allocation steady state.
class Simulator {
 public:
  RunResult run(const core::Instance& instance, Policy& policy,
                const SimOptions& options = {});

 private:
  SimScratch scratch_;
};

/// Convenience wrapper: one-shot run with a private arena.
RunResult run(const core::Instance& instance, Policy& policy,
              const SimOptions& options = {});

/// Validates planned sends against the start-of-step `possession` and
/// the per-arc `effective_capacity`, throwing ocd::Error on a capacity
/// or possession violation.  Capacity is checked on the aggregate load
/// per arc, so multiple sends sharing an arc cannot jointly exceed
/// c(u,v) even if each fits individually.  `arc_load` is caller-owned
/// scratch of size num_arcs that must be all-zero on entry; it is
/// restored to all-zero before returning or throwing.
void validate_sends(const core::Instance& instance,
                    std::span<const core::ArcSend> sends,
                    std::span<const std::int32_t> effective_capacity,
                    const util::TokenMatrix& possession,
                    std::span<std::int32_t> arc_load,
                    std::string_view policy_name, std::int64_t step);

}  // namespace ocd::sim
