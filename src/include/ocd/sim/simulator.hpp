// The synchronous round simulator implementing the model of §3.1.
//
// Each timestep: build the knowledge views, let the policy plan, verify
// the plan against capacity and possession (a buggy policy throws), and
// apply all sends simultaneously.  Runs terminate when every want is
// satisfied, when `max_steps` elapses, or when a step produces no moves
// while wants remain outstanding (a stalled policy).
#pragma once

#include <cstdint>
#include <functional>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"
#include "ocd/sim/policy.hpp"
#include "ocd/sim/stats.hpp"

namespace ocd::dynamics {
class DynamicsModel;
}

namespace ocd::sim {

struct SimOptions {
  std::int64_t max_steps = 1'000'000;
  /// Peer-knowledge staleness k (§5.1: "the state 'k' turns ago").
  std::int32_t staleness = 0;
  /// When true, the per-token aggregate vectors handed to
  /// kLocalAggregate+ policies are computed from the k-stale snapshot
  /// instead of the step-initial state — modelling a delayed aggregate
  /// multicast (§5.1 notes "the potential need to support a delay in
  /// the aggregate knowledge").
  bool stale_aggregates = false;
  /// Record the full schedule (needed for pruning/validation; costs
  /// memory proportional to bandwidth).
  bool record_schedule = true;
  /// Seed for the policy's internal randomness.
  std::uint64_t seed = 1;
  /// Precompute all-pairs distances for kGlobal policies.  Enabled
  /// automatically when the policy requires them.
  bool precompute_distances = false;
  /// Optional §6 changing-network-conditions model (caller-owned; must
  /// outlive the run).  Rewrites per-arc effective capacities each
  /// step; a step in which the network leaves no sendable capacity is
  /// then a legitimate (idle) step rather than a policy stall.
  dynamics::DynamicsModel* dynamics = nullptr;
  /// Optional completion override (§6 encoding): a vertex counts as
  /// satisfied when this predicate accepts its possession set, instead
  /// of the default w(v) ⊆ p(v).  Policies still see the instance's
  /// want sets; only run termination and completion_step change.
  std::function<bool(VertexId, const TokenSet&)> completion;
};

struct RunResult {
  bool success = false;
  std::int64_t steps = 0;
  std::int64_t bandwidth = 0;
  core::Schedule schedule;  ///< Empty unless options.record_schedule.
  RunStats stats;
};

/// Runs `policy` on `instance` until completion or budget exhaustion.
RunResult run(const core::Instance& instance, Policy& policy,
              const SimOptions& options = {});

}  // namespace ocd::sim
