// Policy interface: the decision procedure of an online heuristic.
#pragma once

#include <memory>
#include <string_view>

#include "ocd/core/schedule.hpp"
#include "ocd/sim/views.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::util {
class BinStream;
}

namespace ocd::sim {

struct RunStats;

/// Mutable plan for one timestep.  Policies add sends; the simulator
/// validates them against capacity and possession afterwards, so a
/// buggy policy is caught rather than silently corrupting a run.
///
/// A StepPlan is an arena: its send slots (TokenSet storage included)
/// and arc-slot index persist across steps.  The simulator constructs
/// one plan per run and calls rebind() each step, which clears the
/// previous step's sends in O(sends) without freeing anything, so the
/// steady-state planning loop performs no heap allocation.
class StepPlan {
 public:
  StepPlan() = default;
  explicit StepPlan(const Digraph& graph);
  /// With per-step effective capacities (dynamics); remaining_capacity
  /// then reports against the effective values.
  StepPlan(const Digraph& graph,
           std::span<const std::int32_t> effective_capacity);

  /// Re-targets the plan at (graph, effective_capacity) and clears it
  /// for a new step.  All storage — send pool, bitsets, arc index — is
  /// reused; only a first-time bind (or a larger graph) allocates.
  void rebind(const Digraph& graph,
              std::span<const std::int32_t> effective_capacity);

  /// Adds tokens to an arc's send set.
  void send(ArcId arc, TokenSetView tokens);
  void send(ArcId arc, TokenId token, std::size_t universe);

  /// Capacity still unclaimed on `arc` within this plan.
  [[nodiscard]] std::int32_t remaining_capacity(ArcId arc) const;

  /// Declares an intentionally empty timestep (e.g. the knowledge-
  /// flooding phase of the §4.2 two-phase algorithm).  Without this
  /// mark, an empty plan with outstanding wants is reported as a
  /// stalled policy.
  void mark_idle() noexcept { idle_ = true; }
  [[nodiscard]] bool idle_marked() const noexcept { return idle_; }

  [[nodiscard]] bool empty() const noexcept { return used_ == 0; }

  /// The planned sends, in first-touch arc order.  The spans borrow the
  /// pool: valid until the next rebind().  The mutable overload lets
  /// the simulator trim lost tokens in place before recording.
  [[nodiscard]] std::span<const core::ArcSend> sends() const noexcept {
    return {pool_.data(), used_};
  }
  [[nodiscard]] std::span<core::ArcSend> sends() noexcept {
    return {pool_.data(), used_};
  }

  /// Copies the planned sends out as an owning Timestep (allocates;
  /// used by schedule recording and adapter-style callers, not by the
  /// simulator hot loop).  Empty send sets are skipped.
  [[nodiscard]] core::Timestep take() const;

 private:
  core::ArcSend& acquire_slot(ArcId arc);

  const Digraph* graph_ = nullptr;
  std::span<const std::int32_t> effective_capacity_;
  /// Persistent send pool; the first used_ entries are this step's plan.
  /// Slots beyond used_ hold retired TokenSet storage awaiting reuse.
  std::vector<core::ArcSend> pool_;
  std::size_t used_ = 0;
  /// arc -> index into pool_, -1 when absent.  Keeps send() and
  /// remaining_capacity() O(1) instead of scanning the send list — the
  /// scan is quadratic for policies that touch every arc each step.
  std::vector<std::int32_t> arc_slot_;
  bool idle_ = false;
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual KnowledgeClass knowledge_class() const = 0;

  /// Called once before a run.  `seed` derives any internal randomness.
  virtual void reset(const core::Instance& instance, std::uint64_t seed);

  /// Plans one timestep.  The default implementation calls plan_vertex
  /// for every vertex — the shape of a genuinely distributed algorithm;
  /// coordinated policies (Global) may override plan_step wholesale.
  virtual void plan_step(const StepView& view, StepPlan& plan);

  /// Per-vertex decision: fill sends for `self`'s out-arcs.
  virtual void plan_vertex(VertexId self, const StepView& view,
                           StepPlan& plan);

  /// Plans one timestep for a subset of vertices — the sharded
  /// runtime's entry point.  `owned` is sorted ascending and lists the
  /// vertices this shard decides for; the view may be shard-local (see
  /// StepView::set_row_map) but must cover every owned vertex and its
  /// neighbors.  The contract that makes sharding bit-identical: the
  /// union of plan_shard over a partition of the vertex set must plan,
  /// per vertex, exactly the sends plan_step would.  The default —
  /// plan_vertex over `owned` in order — satisfies this for any policy
  /// whose per-vertex decisions are independent; policies that override
  /// plan_step with cross-vertex coordination must either override this
  /// consistently or be refused by the shard runtime's envelope check.
  virtual void plan_shard(const StepView& view, StepPlan& plan,
                          std::span<const VertexId> owned);

  /// Called once by the simulator on every exit path, after the last
  /// step.  Adapters fold their private counters (congestion drops,
  /// retransmissions) into the run's stats here; wrappers must forward
  /// to their inner policy.  Default: no-op.
  virtual void finish_run(RunStats& stats);

  /// Serializes the policy's mutable per-run state (RNG positions,
  /// cursors) so the shard runtime can checkpoint and later restore a
  /// mid-run worker.  The contract: after reset(inst, seed) followed by
  /// load_state(s), the policy plans exactly as the policy s was saved
  /// from would.  Immutable reset()-derived state need not be written.
  /// Default: no state (writes and reads nothing) — correct for
  /// stateless policies, silently wrong for stateful ones, which is why
  /// the shard envelope only admits policies that implement the pair.
  virtual void save_state(util::BinStream& out) const;
  virtual void load_state(util::BinStream& in);
};

using PolicyPtr = std::unique_ptr<Policy>;

}  // namespace ocd::sim
