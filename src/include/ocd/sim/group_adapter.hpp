// Enforces shared-physical-link capacity groups (§6 realistic
// topologies) on top of any policy: the inner policy plans against the
// overlay as usual; the adapter then trims each send so that every
// CapacityGroup's per-step total fits.  The excess is dropped uniformly
// at random (congestion loss of the shared physical link) — random
// rather than deterministic so that stateful senders like round-robin
// cannot fall into periodic livelock with the drop pattern.
#pragma once

#include <vector>

#include "ocd/sim/policy.hpp"
#include "ocd/util/rng.hpp"
#include "ocd/topology/physical.hpp"

namespace ocd::sim {

class GroupConstrainedPolicy final : public Policy {
 public:
  GroupConstrainedPolicy(PolicyPtr inner,
                         std::vector<topology::CapacityGroup> groups);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return inner_->knowledge_class();
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const StepView& view, StepPlan& plan) override;
  /// Folds the congestion drops into RunStats::adapter_dropped_moves so
  /// they land on the same wasted-bandwidth axis as fault losses.
  void finish_run(RunStats& stats) override;

  /// Tokens dropped so far because a shared physical link was full.
  [[nodiscard]] std::int64_t dropped_moves() const noexcept {
    return dropped_moves_;
  }

 private:
  PolicyPtr inner_;
  std::string name_;
  std::vector<topology::CapacityGroup> groups_;
  /// Group indices per overlay arc (built at reset).
  std::vector<std::vector<std::int32_t>> arc_groups_;
  std::int64_t dropped_moves_ = 0;
  Rng rng_{1};
  // Per-step scratch, reused across steps (sized at reset).
  StepPlan scratch_;
  std::vector<std::int32_t> remaining_;
  TokenSet trimmed_;
  std::vector<TokenId> pool_;
  std::vector<std::size_t> chosen_;
};

}  // namespace ocd::sim
