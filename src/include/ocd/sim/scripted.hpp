// Scripted execution and the §4.2 two-phase construction.
//
// The paper observes that an on-line algorithm can always finish within
// an additive factor of the graph diameter: spend the first D timesteps
// flooding full state knowledge, after which every vertex can
// (deterministically) compute the same global plan and follow it.
//
//  * ScriptedPolicy replays a precomputed core::Schedule move-for-move.
//  * TwoPhasePolicy idles for `delay` steps (knowledge flooding; data
//    arcs stay silent), then computes a plan with an inner planner
//    policy simulated offline, and replays it shifted by the delay.
//    With delay = diameter(G) this realizes the §4.2 argument and its
//    optimal + D guarantee relative to the inner planner's length.
#pragma once

#include <optional>

#include "ocd/core/schedule.hpp"
#include "ocd/sim/policy.hpp"

namespace ocd::sim {

/// Replays a fixed schedule.  Classified kGlobal: a script is by
/// definition globally-informed content.
class ScriptedPolicy : public Policy {
 public:
  explicit ScriptedPolicy(core::Schedule schedule);

  [[nodiscard]] std::string_view name() const override { return "scripted"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kGlobal;
  }
  void plan_step(const StepView& view, StepPlan& plan) override;

 private:
  core::Schedule schedule_;
};

/// §4.2: idle for `delay` steps, then follow a plan computed by the
/// named inner policy (simulated offline against the initial state).
class TwoPhasePolicy : public Policy {
 public:
  /// delay < 0 selects the graph diameter at reset time.
  explicit TwoPhasePolicy(std::string inner_policy = "global",
                          std::int32_t delay = -1);

  [[nodiscard]] std::string_view name() const override { return "two-phase"; }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kGlobal;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const StepView& view, StepPlan& plan) override;

  [[nodiscard]] std::int32_t delay() const noexcept { return delay_; }
  [[nodiscard]] std::int64_t planned_length() const noexcept {
    return plan_.length();
  }

 private:
  std::string inner_policy_;
  std::int32_t requested_delay_;
  std::int32_t delay_ = 0;
  core::Schedule plan_;
};

}  // namespace ocd::sim
