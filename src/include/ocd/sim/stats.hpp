// Run statistics collected by the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocd/graph/digraph.hpp"

namespace ocd::sim {

struct RunStats {
  /// Token-transfers per timestep (transmissions put on the wire,
  /// whether or not they were delivered).
  std::vector<std::int64_t> moves_per_step;
  /// Transfers that delivered a token the receiver lacked.
  std::int64_t useful_moves = 0;
  /// Transfers of tokens the receiver already possessed.
  std::int64_t redundant_moves = 0;
  /// Transfers eaten by the fault model: they consumed arc capacity but
  /// never reached the receiver (faults/model.hpp loss semantics).
  std::int64_t lost_moves = 0;
  /// Per-step loss trace (same length as moves_per_step; all zeros when
  /// no fault model is active).  The reproducibility signal the
  /// determinism suite compares bit-for-bit.
  std::vector<std::int64_t> lost_per_step;
  /// Sender-side recoveries scheduled by ReliableAdapter (a subset of
  /// the moves above — every retransmission is also a transmission).
  std::int64_t retransmissions = 0;
  /// Tokens adapters removed from plans before they reached the wire:
  /// GroupAdapter congestion drops on shared physical links plus
  /// ReliableAdapter trims when retransmissions took the capacity.
  std::int64_t adapter_dropped_moves = 0;
  /// Step at which each vertex first satisfied its want set (-1 when a
  /// vertex never completed; 0 when satisfied initially).
  std::vector<std::int64_t> completion_step;
  /// Tokens each vertex uploaded over the run — the fairness signal the
  /// paper's introduction lists ("nodes contribute roughly in
  /// proportion to one another").
  std::vector<std::int64_t> sent_by_vertex;
  /// Crash-recovery accounting, filled only by shard::run_sharded (all
  /// zero for sim::run and crash-free sharded runs).  These are the only
  /// fields a recovered run may differ from its crash-free twin in —
  /// the recovery differential suite compares everything else
  /// bit-for-bit.
  std::int64_t worker_crashes = 0;   ///< workers that died or hung
  std::int64_t recoveries = 0;       ///< successful respawn+rejoin cycles
  std::int64_t replayed_steps = 0;   ///< full steps re-executed from logs
  std::int64_t checkpoint_bytes = 0; ///< total checkpoint bytes written
  /// Barrier traffic accounting, filled only by shard::run_sharded (all
  /// zero for sim::run): frame bytes each worker handed the transport
  /// and received from it, summed over shards and phases (wave, plan,
  /// apply, init).  Crash-invariant — checkpointed and rebuilt by
  /// replay, so a recovered run reports the crash-free totals.
  std::int64_t shard_bytes_sent = 0;
  std::int64_t shard_bytes_received = 0;
  /// Coordinated planning (kGlobal policies, > 1 shard): summary
  /// entries emitted by the wave pre-scores, and steps whose top-k
  /// horizon was exhausted so the exact serial rescan decided the step.
  std::int64_t shard_summary_entries = 0;
  std::int64_t shard_wave_fallbacks = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] std::int64_t total_moves() const noexcept {
    return useful_moves + redundant_moves + lost_moves;
  }

  /// Bandwidth (and pre-send budget) spent without growing anyone's
  /// possession: in-flight losses, redundant deliveries, and adapter
  /// drops — congestion and fault losses on one axis.
  [[nodiscard]] std::int64_t wasted_bandwidth() const noexcept {
    return lost_moves + redundant_moves + adapter_dropped_moves;
  }

  /// True when the per-step series matches a run of `steps` timesteps,
  /// the per-step moves sum to the useful/redundant/lost totals, and
  /// the loss trace (when present) mirrors the step series.  The
  /// simulator enforces this on every exit path (including stalls,
  /// watchdog terminations, and max_steps exhaustion).
  [[nodiscard]] bool consistent_with_steps(std::int64_t steps) const noexcept;
  /// Mean completion step over vertices with nonempty wants.
  [[nodiscard]] double mean_completion() const;

  /// Jain's fairness index over per-vertex upload contributions:
  /// (Σx)² / (n·Σx²) ∈ (0, 1]; 1 = perfectly even contribution.
  /// Vertices that sent nothing are included; 0 when nobody sent.
  [[nodiscard]] double upload_fairness() const;

  [[nodiscard]] std::string summary() const;
};

}  // namespace ocd::sim
