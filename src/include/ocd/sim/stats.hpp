// Run statistics collected by the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocd/graph/digraph.hpp"

namespace ocd::sim {

struct RunStats {
  /// Token-transfers per timestep.
  std::vector<std::int64_t> moves_per_step;
  /// Transfers that delivered a token the receiver lacked.
  std::int64_t useful_moves = 0;
  /// Transfers of tokens the receiver already possessed.
  std::int64_t redundant_moves = 0;
  /// Step at which each vertex first satisfied its want set (-1 when a
  /// vertex never completed; 0 when satisfied initially).
  std::vector<std::int64_t> completion_step;
  /// Tokens each vertex uploaded over the run — the fairness signal the
  /// paper's introduction lists ("nodes contribute roughly in
  /// proportion to one another").
  std::vector<std::int64_t> sent_by_vertex;
  double wall_seconds = 0.0;

  [[nodiscard]] std::int64_t total_moves() const noexcept {
    return useful_moves + redundant_moves;
  }

  /// True when the per-step series matches a run of `steps` timesteps
  /// and the per-step moves sum to the useful/redundant totals.  The
  /// simulator enforces this on every exit path (including stalls and
  /// max_steps exhaustion).
  [[nodiscard]] bool consistent_with_steps(std::int64_t steps) const noexcept;
  /// Mean completion step over vertices with nonempty wants.
  [[nodiscard]] double mean_completion() const;

  /// Jain's fairness index over per-vertex upload contributions:
  /// (Σx)² / (n·Σx²) ∈ (0, 1]; 1 = perfectly even contribution.
  /// Vertices that sent nothing are included; 0 when nobody sent.
  [[nodiscard]] double upload_fairness() const;

  [[nodiscard]] std::string summary() const;
};

}  // namespace ocd::sim
