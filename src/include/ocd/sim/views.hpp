// Knowledge-scoped views handed to policies.
//
// A policy declares a KnowledgeClass; the simulator hands it a StepView
// whose accessors *runtime-check* that the declared class permits the
// query.  A policy peeking beyond its class trips a contract violation,
// which the test suite exercises — this keeps the LOCD locality claims
// of §4.1 honest rather than merely conventional.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/sim/knowledge.hpp"

namespace ocd::sim {

enum class KnowledgeClass : std::uint8_t {
  /// Own state only (RoundRobin): possession, wants, incident arcs.
  kLocalOnly,
  /// + neighbors' (possibly stale) possession sets (Random).
  kLocalPeers,
  /// + per-token global aggregates (Local / rarest-random).
  kLocalAggregate,
  /// Full system state (Bandwidth, Global).
  kGlobal,
};

const char* to_string(KnowledgeClass k);

/// Read-only window onto the simulation at the start of one timestep.
///
/// Possession state is handed out as TokenSetView rows of the
/// simulator's flat TokenMatrix; views borrow and are only valid while
/// the StepView (and the matrices behind it) lives — policies must not
/// retain them across steps.
class StepView {
 public:
  /// `aggregates` may be null for policies below kLocalAggregate — the
  /// simulator materializes aggregate vectors lazily, only when the
  /// declared knowledge class can observe them.
  StepView(const core::Instance& instance,
           const util::TokenMatrix& possession,
           const util::TokenMatrix& stale_possession,
           const Aggregates* aggregates,
           const std::vector<std::vector<std::int32_t>>* distances,
           KnowledgeClass granted, std::int64_t step,
           std::span<const std::int32_t> effective_capacity = {});

  [[nodiscard]] std::int64_t step() const noexcept { return step_; }
  [[nodiscard]] KnowledgeClass granted() const noexcept { return granted_; }

  /// Sharded runtime: the possession matrices behind this view hold
  /// only shard-local rows (owned vertices plus ghost neighbors), and
  /// `row_map` translates a global vertex id into a matrix row (-1 for
  /// vertices this shard cannot see).  own_possession/peer_possession
  /// remap through it; whole-matrix access (global_possession) is
  /// forbidden while a row map is active, since the matrix is not the
  /// global state.  The span must outlive the view.
  void set_row_map(std::span<const std::int32_t> row_map) noexcept {
    row_map_ = row_map;
  }

  /// Effective capacity of `arc` for this step.  Equals the static
  /// capacity unless a dynamics model is active (§6 changing network
  /// conditions); 0 means the arc is down this turn.  Available at
  /// every knowledge class — a vertex always knows the current state of
  /// its incident links.
  [[nodiscard]] std::int32_t capacity(ArcId arc) const;

  // ---- kLocalOnly ----------------------------------------------------
  [[nodiscard]] const Digraph& graph() const noexcept;  // topology is
  // public knowledge in the paper's model (k_0 includes neighbors and
  // capacities; we expose the whole overlay map, matching §4.1's
  // optional "additional information about the graph topology").
  [[nodiscard]] std::int32_t num_tokens() const noexcept;
  [[nodiscard]] TokenSetView own_possession(VertexId v) const;
  [[nodiscard]] const TokenSet& own_want(VertexId v) const;

  // ---- kLocalPeers ---------------------------------------------------
  /// Neighbor's possession as known this step (staleness applied).
  /// `neighbor` must share an arc with `self` in either direction.
  [[nodiscard]] TokenSetView peer_possession(VertexId self,
                                             VertexId neighbor) const;

  // ---- kLocalAggregate -----------------------------------------------
  [[nodiscard]] std::span<const std::int32_t> aggregate_holders() const;
  [[nodiscard]] std::span<const std::int32_t> aggregate_need() const;

  // ---- kGlobal ---------------------------------------------------------
  [[nodiscard]] const util::TokenMatrix& global_possession() const;
  [[nodiscard]] const core::Instance& instance() const;
  /// All-pairs hop distances (precomputed once per run).
  [[nodiscard]] const std::vector<std::vector<std::int32_t>>& distances()
      const;

 private:
  void require(KnowledgeClass needed) const;
  [[nodiscard]] std::size_t row_of(VertexId v) const;

  const core::Instance& instance_;
  const util::TokenMatrix& possession_;
  const util::TokenMatrix& stale_possession_;
  const Aggregates* aggregates_;
  const std::vector<std::vector<std::int32_t>>* distances_;
  KnowledgeClass granted_;
  std::int64_t step_;
  std::span<const std::int32_t> effective_capacity_;
  std::span<const std::int32_t> row_map_;  ///< empty = rows are vertex ids
};

}  // namespace ocd::sim
