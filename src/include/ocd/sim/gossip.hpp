// §4.1 made literal: per-vertex knowledge states updated only by
// neighbor exchange.
//
// The paper requires k_{i+1}(v) to be computable from k_i(v) and
// k_i(u) for neighbors u (information travels bidirectionally along
// arcs).  GossipState implements exactly that: every vertex keeps, for
// every other vertex w, its freshest belief about w's possession set
// tagged with the step it was observed; each timestep a vertex refreshes
// its own entry from ground truth and adopts any fresher entry a
// neighbor holds.  Beliefs therefore lag by at most dist(w, v) steps —
// the mechanism behind §4.2's "additive factor of the diameter".
//
// GossipRarestPolicy is a rarest-random variant that consumes ONLY this
// gossip state plus its own possession — a policy that is local by
// construction (declared kLocalOnly; the runtime view enforcement
// guarantees it never touches the oracle accessors).  Comparing it with
// the aggregate-oracle Local heuristic quantifies what the paper's
// "implementation problem" of distributing aggregates actually costs.
#pragma once

#include <vector>

#include "ocd/sim/policy.hpp"

namespace ocd::sim {

/// One belief: what some vertex thinks `target`'s possession was at
/// `observed_step` (-1 = never heard of it; the token set is then
/// empty, the safe under-approximation).
struct Belief {
  TokenSet tokens;
  std::int64_t observed_step = -1;
};

class GossipState {
 public:
  explicit GossipState(const core::Instance& instance);

  /// Advances one round: every vertex refreshes its own entry from
  /// `possession` (stamped `step`), then adopts fresher entries from
  /// neighbors' *previous-round* states (synchronous gossip).
  void advance(const std::vector<TokenSet>& possession, std::int64_t step);

  /// What `vertex` currently believes about `target`.
  [[nodiscard]] const Belief& belief(VertexId vertex, VertexId target) const;

  /// Age of the freshest information `vertex` has about `target` at
  /// time `now` (kUnknownAge when it has none).
  [[nodiscard]] std::int64_t age(VertexId vertex, VertexId target,
                                 std::int64_t now) const;

  static constexpr std::int64_t kUnknownAge = -1;

 private:
  const core::Instance& instance_;
  // beliefs_[v][w]: v's belief about w.
  std::vector<std::vector<Belief>> beliefs_;
  std::vector<std::vector<Belief>> scratch_;
};

/// Rarest-random requests driven purely by gossip beliefs.
class GossipRarestPolicy final : public Policy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "gossip-rarest";
  }
  [[nodiscard]] KnowledgeClass knowledge_class() const override {
    return KnowledgeClass::kLocalOnly;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const StepView& view, StepPlan& plan) override;

 private:
  std::unique_ptr<GossipState> gossip_;
  Rng rng_{1};
};

}  // namespace ocd::sim
