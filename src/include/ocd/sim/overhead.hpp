// Control-plane overhead accounting.
//
// §4.2 notes that a competitive bound for EOCD "depends on the
// bandwidth cost of sending knowledge".  This utility prices the
// knowledge each class consumes per timestep, in bits, under the
// natural encodings:
//
//   kLocalOnly      — nothing crosses the network (own state only);
//   kLocalPeers     — each edge carries one possession bitmap per
//                     direction: m bits per arc;
//   kLocalAggregate — peers' bitmaps plus an aggregate broadcast of two
//                     per-token counters (need & holders, ceil(log2 n+1)
//                     bits each) delivered to every vertex;
//   kGlobal         — the full possession matrix (n·m bits) delivered
//                     to every vertex.
//
// These are per-step *costs of the assumption*, not traffic the
// simulator moves; benches report them so the heuristics' data-plane
// savings can be weighed against their knowledge appetite.
#pragma once

#include <cstdint>

#include "ocd/core/instance.hpp"
#include "ocd/sim/views.hpp"

namespace ocd::sim {

/// Bits of knowledge delivered per timestep under `klass`.
std::int64_t knowledge_bits_per_step(const core::Instance& instance,
                                     KnowledgeClass klass);

/// Total knowledge bits for a run of `steps` timesteps.
std::int64_t knowledge_bits_total(const core::Instance& instance,
                                  KnowledgeClass klass, std::int64_t steps);

}  // namespace ocd::sim
