// The LOCD knowledge model (§4.1).
//
// k_i(v) — what vertex v may use when planning timestep i — is factored
// into three ingredients the views hand to policies:
//   * the vertex's own state (possession, wants, incident arcs),
//   * per-neighbor possession snapshots, optionally `staleness` steps
//     old (§5.1 discusses relaxing Random's perfect peer knowledge to
//     the state "k turns ago"),
//   * per-token aggregate vectors distributed each step (the Local
//     heuristic's "aggregate need and knowledge": how many vertices
//     still need each token, and how many hold it).
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::sim {

/// Per-token aggregates over the whole system.  The simulator
/// materializes them only for policies whose knowledge class is
/// kLocalAggregate or above, and keeps them consistent incrementally
/// via apply_delivery instead of an O(n·|T|) per-step recompute.
struct Aggregates {
  /// holders[t]: vertices currently possessing t (the Local heuristic's
  /// rarity signal — smaller is rarer).
  std::vector<std::int32_t> holders;
  /// need[t]: vertices that want t and do not yet have it.
  std::vector<std::int32_t> need;

  /// Incremental update for one delivery: `fresh` are the tokens a
  /// vertex just gained (none of which it previously held) and `want`
  /// is that vertex's want set.  Equivalent to a full recompute on the
  /// post-delivery possession.
  void apply_delivery(TokenSetView fresh, TokenSetView want);
};

Aggregates compute_aggregates(const core::Instance& instance,
                              const util::TokenMatrix& possession);

/// In-place recompute reusing `out`'s storage (the per-step path of the
/// stale-aggregates ablation).
void compute_aggregates_into(const core::Instance& instance,
                             const util::TokenMatrix& possession,
                             Aggregates& out);

/// Fixed ring buffer of possession matrices providing `staleness`-
/// steps-old peer views.  With staleness 0 the freshest snapshot is
/// returned (peers' state at the start of the current turn).
///
/// The ring holds staleness+1 slots.  Slots are allocated during the
/// first staleness+1 pushes (warm-up) and thereafter updated strictly
/// in place — push() is one contiguous matrix copy, never an
/// allocation, so steady-state steps stay allocation-free.
///
/// Zero-staleness runs can avoid the per-step full-universe copy
/// entirely: after alias_live(live), push() is a no-op and stale_view()
/// aliases `live` directly — valid because the freshest snapshot IS the
/// start-of-step state, and the simulator only mutates `live` after
/// planning finishes.
class SnapshotBuffer {
 public:
  explicit SnapshotBuffer(std::int32_t staleness);

  /// Binds the buffer to the simulator's live possession matrix instead
  /// of copying it each step.  Requires staleness() == 0; `live` must
  /// outlive the buffer and keep its address stable.
  void alias_live(const util::TokenMatrix& live);

  /// Installs the possession at the start of a new timestep.  A no-op
  /// in aliased mode; otherwise copies into the expiring ring slot.
  void push(const util::TokenMatrix& possession);

  /// The snapshot policies may consult this step: after the push for
  /// step i, the state at the start of step max(0, i - staleness).
  [[nodiscard]] const util::TokenMatrix& stale_view() const;

  [[nodiscard]] std::int32_t staleness() const noexcept { return staleness_; }
  [[nodiscard]] bool aliased() const noexcept { return live_ != nullptr; }

 private:
  std::int32_t staleness_;
  const util::TokenMatrix* live_ = nullptr;
  std::vector<util::TokenMatrix> slots_;  ///< ring of staleness+1 matrices
  std::int64_t pushes_ = 0;
};

}  // namespace ocd::sim
