// The LOCD knowledge model (§4.1).
//
// k_i(v) — what vertex v may use when planning timestep i — is factored
// into three ingredients the views hand to policies:
//   * the vertex's own state (possession, wants, incident arcs),
//   * per-neighbor possession snapshots, optionally `staleness` steps
//     old (§5.1 discusses relaxing Random's perfect peer knowledge to
//     the state "k turns ago"),
//   * per-token aggregate vectors distributed each step (the Local
//     heuristic's "aggregate need and knowledge": how many vertices
//     still need each token, and how many hold it).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ocd/core/instance.hpp"

namespace ocd::sim {

/// Per-token aggregates over the whole system, recomputed at the start
/// of each timestep from the step-initial possession.
struct Aggregates {
  /// holders[t]: vertices currently possessing t (the Local heuristic's
  /// rarity signal — smaller is rarer).
  std::vector<std::int32_t> holders;
  /// need[t]: vertices that want t and do not yet have it.
  std::vector<std::int32_t> need;
};

Aggregates compute_aggregates(const core::Instance& instance,
                              const std::vector<TokenSet>& possession);

/// Ring buffer of possession snapshots providing `staleness`-steps-old
/// peer views.  With staleness 0 the freshest snapshot is returned
/// (peers' state at the start of the current turn).
class SnapshotBuffer {
 public:
  explicit SnapshotBuffer(std::int32_t staleness);

  /// Installs the possession at the start of a new timestep.
  void push(const std::vector<TokenSet>& possession);

  /// The snapshot policies may consult this step.
  [[nodiscard]] const std::vector<TokenSet>& stale_view() const;

  [[nodiscard]] std::int32_t staleness() const noexcept { return staleness_; }

 private:
  std::int32_t staleness_;
  std::deque<std::vector<TokenSet>> snapshots_;
};

}  // namespace ocd::sim
