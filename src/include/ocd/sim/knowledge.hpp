// The LOCD knowledge model (§4.1).
//
// k_i(v) — what vertex v may use when planning timestep i — is factored
// into three ingredients the views hand to policies:
//   * the vertex's own state (possession, wants, incident arcs),
//   * per-neighbor possession snapshots, optionally `staleness` steps
//     old (§5.1 discusses relaxing Random's perfect peer knowledge to
//     the state "k turns ago"),
//   * per-token aggregate vectors distributed each step (the Local
//     heuristic's "aggregate need and knowledge": how many vertices
//     still need each token, and how many hold it).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ocd/core/instance.hpp"

namespace ocd::sim {

/// Per-token aggregates over the whole system.  The simulator
/// materializes them only for policies whose knowledge class is
/// kLocalAggregate or above, and keeps them consistent incrementally
/// via apply_delivery instead of an O(n·|T|) per-step recompute.
struct Aggregates {
  /// holders[t]: vertices currently possessing t (the Local heuristic's
  /// rarity signal — smaller is rarer).
  std::vector<std::int32_t> holders;
  /// need[t]: vertices that want t and do not yet have it.
  std::vector<std::int32_t> need;

  /// Incremental update for one delivery: `fresh` are the tokens a
  /// vertex just gained (none of which it previously held) and `want`
  /// is that vertex's want set.  Equivalent to a full recompute on the
  /// post-delivery possession.
  void apply_delivery(const TokenSet& fresh, const TokenSet& want);
};

Aggregates compute_aggregates(const core::Instance& instance,
                              const std::vector<TokenSet>& possession);

/// Ring buffer of possession snapshots providing `staleness`-steps-old
/// peer views.  With staleness 0 the freshest snapshot is returned
/// (peers' state at the start of the current turn).
///
/// Zero-staleness runs can avoid the per-step full-universe copy
/// entirely: after alias_live(live), push() is a no-op and stale_view()
/// aliases `live` directly — valid because the freshest snapshot IS the
/// start-of-step state, and the simulator only mutates `live` after
/// planning finishes.
class SnapshotBuffer {
 public:
  explicit SnapshotBuffer(std::int32_t staleness);

  /// Binds the buffer to the simulator's live possession vector instead
  /// of copying it each step.  Requires staleness() == 0; `live` must
  /// outlive the buffer and keep its address stable.
  void alias_live(const std::vector<TokenSet>& live);

  /// Installs the possession at the start of a new timestep.  A no-op
  /// in aliased mode; otherwise copies, recycling the storage of the
  /// expiring snapshot rather than reallocating.
  void push(const std::vector<TokenSet>& possession);

  /// The snapshot policies may consult this step.
  [[nodiscard]] const std::vector<TokenSet>& stale_view() const;

  [[nodiscard]] std::int32_t staleness() const noexcept { return staleness_; }
  [[nodiscard]] bool aliased() const noexcept { return live_ != nullptr; }

 private:
  std::int32_t staleness_;
  const std::vector<TokenSet>* live_ = nullptr;
  std::deque<std::vector<TokenSet>> snapshots_;
};

}  // namespace ocd::sim
