// The Dominating Set -> FOCD reduction from the paper's appendix
// (Theorem 5, illustrated in Figure 7):
//
// Given an undirected graph G = (V, E) with |V| = n and an integer k,
// build a FOCD instance with vertices {s, t} ∪ V ∪ V' and tokens
// {0} ∪ {1..n-k}:
//   * s holds every token;
//   * t wants {1..n-k}; every v'_i wants {0};
//   * arcs (capacity 1): s -> v_i, v_i -> t, v_i -> v'_i, and
//     v_i -> v'_j for every (v_i, v_j) in E.
//
// G has a dominating set of size <= k  ⟺  the instance is satisfiable
// in 2 timesteps.
#pragma once

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"
#include "ocd/reduction/dominating_set.hpp"

namespace ocd::reduction {

/// Vertex-index layout of the constructed instance.
struct ReductionLayout {
  VertexId s = 0;
  VertexId t = 1;
  /// v_i = first_v + i, v'_i = first_v_prime + i.
  VertexId first_v = 2;
  VertexId first_v_prime = 0;
  std::int32_t n = 0;
  std::int32_t k = 0;
};

struct ReducedInstance {
  core::Instance instance;
  ReductionLayout layout;
};

/// Builds the FOCD instance deciding "does g have a dominating set of
/// size <= k?".  Requires 0 <= k <= n.
ReducedInstance reduce_dominating_set(const UndirectedGraph& g,
                                      std::int32_t k);

/// Reads a dominating set out of a 2-step witness schedule: the set of
/// v_i that receive token 0 in the first timestep.  The result is a
/// valid dominating set of size <= k whenever the schedule is a valid
/// 2-step solution.
std::vector<std::int32_t> extract_dominating_set(
    const ReducedInstance& reduced, const core::Schedule& schedule);

}  // namespace ocd::reduction
