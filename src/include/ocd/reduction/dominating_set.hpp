// Dominating-set solvers used to cross-validate the NP-hardness
// reduction (appendix / Figure 7 of the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ocd/graph/digraph.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::reduction {

/// An undirected graph for the Dominating Set problem, stored as an
/// adjacency-mask vector (n <= 64).
class UndirectedGraph {
 public:
  explicit UndirectedGraph(std::int32_t n);

  void add_edge(std::int32_t u, std::int32_t v);
  [[nodiscard]] std::int32_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] bool has_edge(std::int32_t u, std::int32_t v) const;
  /// Closed neighborhood of v (v plus its neighbors) as a bitmask.
  [[nodiscard]] std::uint64_t closed_neighborhood(std::int32_t v) const;

 private:
  std::int32_t n_;
  std::vector<std::uint64_t> adjacency_;
};

/// Smallest dominating set, by exact branch-and-bound over closed
/// neighborhoods.  Practical for n <= ~30.
std::vector<std::int32_t> minimum_dominating_set(const UndirectedGraph& g);

/// True when `set` dominates g.
bool is_dominating_set(const UndirectedGraph& g,
                       const std::vector<std::int32_t>& set);

/// Greedy ln(n)-approximation, for comparison in benches.
std::vector<std::int32_t> greedy_dominating_set(const UndirectedGraph& g);

/// Uniform random undirected graph (every pair with probability p).
UndirectedGraph random_undirected(std::int32_t n, double p, Rng& rng);

}  // namespace ocd::reduction
