// Random (§5.1): "peers have current knowledge about the tokens known by
// each of their peers at the beginning of the turn.  Each vertex then
// independently chooses at random which tokens to send over the edge."
//
// Knowledge class kLocalPeers.  The peer snapshot honours the
// simulator's staleness option (the paper's "state 'k' turns ago"
// relaxation).  A flooding heuristic: it sends any token the peer lacks,
// wanted or not.
#pragma once

#include <vector>

#include "ocd/sim/policy.hpp"

namespace ocd::heuristics {

class RandomPolicy final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "random"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kLocalPeers;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_vertex(VertexId self, const sim::StepView& view,
                   sim::StepPlan& plan) override;
  /// Checkpointable state: just the base seed (per-step randomness is
  /// re-derived from (seed, step, vertex), never consumed sequentially).
  void save_state(util::BinStream& out) const override;
  void load_state(util::BinStream& in) override;

 private:
  // Sampling draws from an Rng derived per (seed, step, vertex) rather
  // than one sequential stream, so a vertex's choices depend only on
  // its own coordinates — any shard (or thread) planning it computes
  // the same sends, in any order.
  std::uint64_t seed_ = 1;
  // Planner scratch, sized once in reset() and rewritten in place each
  // step so steady-state planning does not allocate.
  TokenSet useful_;
  TokenSet batch_;
  std::vector<TokenId> pool_;
  std::vector<std::size_t> chosen_;
};

}  // namespace ocd::heuristics
