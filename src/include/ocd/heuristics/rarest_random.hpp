// Local (§5.1): rarest-random with request subdivision.
//
// "Rarest random is often used in multicast flooding because, by
//  diversifying the set of tokens known by various vertices, they can
//  share them with each other for increased bandwidth... our heuristic
//  subdivides a vertex's needs to their peers.  This is analogous to a
//  request for blocks... we distribute both aggregates of what vertices
//  want and what they do not have."
//
// Knowledge class kLocalAggregate: per-peer possession snapshots plus
// the per-step global aggregate vectors (rarity and need).  Each
// timestep runs in two conceptually-distributed passes:
//   1. every vertex partitions the tokens it lacks among its in-arcs
//      (a block request), rarest tokens first, wanted tokens before
//      flood tokens, at most `capacity` requests per arc;
//   2. every sender transmits exactly the requested tokens.
#pragma once

#include <vector>

#include "ocd/sim/policy.hpp"
#include "ocd/util/rarity.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::heuristics {

class RarestRandomPolicy final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "local"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kLocalAggregate;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;
  /// Sharded entry point: identical per-receiver decisions restricted
  /// to the owned vertices.  Bit-identity with plan_step holds because
  /// (a) the shared rank order consumes exactly one shuffle per step on
  /// every shard, (b) a receiver's request subdivision reads and writes
  /// only its own in-arc budgets/rows (in-arc sets of distinct
  /// receivers are disjoint), and (c) emission is arc-ascending, so
  /// disjoint per-shard fragments merge back into plan_step's order.
  void plan_shard(const sim::StepView& view, sim::StepPlan& plan,
                  std::span<const VertexId> owned) override;
  /// Checkpointable state: the tie-break RNG position (one shuffle is
  /// consumed per planned step; everything else is per-step scratch).
  void save_state(util::BinStream& out) const override;
  void load_state(util::BinStream& in) override;

 private:
  /// Pass-1 body for one receiver: subdivide the tokens `v` lacks into
  /// per-in-arc request rows, spending the arcs' budgets.
  void plan_receiver(VertexId v, const sim::StepView& view);
  /// Shared per-step prologue (rank order + request/budget reset) and
  /// epilogue (arc-ascending emission, idle mark).
  void begin_plan(const sim::StepView& view);
  void emit_requests(const sim::StepView& view, sim::StepPlan& plan);

  Rng rng_{1};
  // Planner scratch, sized once in reset() and rewritten in place each
  // step so steady-state planning does not allocate.
  RarityRanker ranker_;
  util::TokenMatrix requests_;  ///< per-arc request sets
  util::TokenMatrix offered_;   ///< per-in-arc offers (max in-degree rows)
  std::vector<std::int32_t> budget_;
  TokenSet offered_any_;
  TokenSet wanted_;
  TokenSet ranked_offered_;
  TokenSet ranked_wanted_;
  TokenSet wanted_pool_;
  TokenSet flood_pool_;
};

}  // namespace ocd::heuristics
