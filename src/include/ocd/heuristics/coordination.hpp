// Cross-shard planning coordination for the kGlobal policies.
//
// The sharded runtime can run the local heuristics by unioning
// independent per-shard decisions, but a coordinated planner (Global,
// Bandwidth) makes cross-vertex choices: every pick depends on picks
// made for vertices other shards own.  The barrier therefore gains a
// *wave round* before the plan phase: every shard pre-scores its owned
// slice of the decision into a compact summary frame, the frames are
// broadcast, and every shard replays one and the same merge over the
// union — the decision is replicated, not partitioned, so the merged
// schedule stays bit-identical to the single-process planner.
//
// The summary is a top-k horizon (OCD_SHARD_WAVE_TOPK): whenever a
// merge step would need a candidate beyond the horizon, the
// coordinator abandons the summaries and re-derives the step with the
// exact serial rescan over its fully replicated possession state —
// bit-identity is never traded for frame size.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/sim/policy.hpp"

namespace ocd::heuristics {

/// Static facts about the shard layout, handed to a coordinator once
/// per run (after Policy::reset).  Spans borrow the runtime's storage
/// and must outlive the coordinated run.
struct CoordinationSetup {
  const core::Instance* instance = nullptr;
  /// vertex id -> owning shard, over all vertices.
  std::span<const std::int32_t> shard_of;
  std::int32_t shard = 0;       ///< this worker's shard id
  std::int32_t num_shards = 1;  ///< total shards in the run
  std::int32_t wave_topk = 8;   ///< candidate-summary horizon (>= 1)
};

/// Interface a kGlobal policy implements to run under shard::run_sharded.
/// Per step the runtime calls, in barrier order:
///   1. coord_prescore  — score the owned slice, emit the summary frame
///      (the frame every peer receives verbatim; the shard's own
///      summary stays internal and is never serialized).
///   2. coord_absorb    — merge the peers' frames with the internal
///      summary; every shard replays the identical merge.
///   3. coord_emit      — emit the owned arcs' share of the merged
///      schedule into the plan.
/// All per-step randomness must be drawn in coord_prescore, exactly as
/// plan_step would draw it, so the RNG stream stays in lockstep with
/// the single-process run (and with save_state/load_state checkpoints).
class ShardCoordinator {
 public:
  virtual ~ShardCoordinator() = default;

  virtual void begin_coordination(const CoordinationSetup& setup) = 0;

  /// Pre-scores the shard's owned slice of this step's decision into
  /// `frame` (overwritten) and returns the number of summary entries
  /// it carries, for the RunStats accounting.
  [[nodiscard]] virtual std::int64_t coord_prescore(const sim::StepView& view,
                                                    std::string& frame) = 0;

  /// Replays the merged decision.  `frames` has one slot per shard in
  /// shard order; the own slot is ignored (the internal summary from
  /// coord_prescore stands in for it).  Returns true when the top-k
  /// horizon was exhausted and the exact local rescan decided the step
  /// instead — the result is bit-identical either way.
  virtual bool coord_absorb(const sim::StepView& view,
                            std::span<const std::string> frames) = 0;

  /// Emits the owned share of the merged schedule.  For every send
  /// that creates a new plan slot, appends the slot's global
  /// first-touch ordinal to `ordinals` — the merge position the
  /// single-process planner would have created the slot at, which the
  /// fragment merge uses to interleave per-shard schedules back into
  /// the exact plan_step send order.  Policies whose plan order is
  /// arc-ascending may leave `ordinals` untouched.
  virtual void coord_emit(const sim::StepView& view, sim::StepPlan& plan,
                          std::vector<std::int64_t>& ordinals) = 0;
};

}  // namespace ocd::heuristics
