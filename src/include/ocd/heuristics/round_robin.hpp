// Round Robin (§5.1): "simply sends the circular queue of tokens over
// each link (skipping tokens it does not have)".
//
// Knowledge class kLocalOnly: the only state is the set of tokens held
// locally and the last token sent to each peer, so the heuristic happily
// re-sends tokens the receiver already has and duplicates other peers'
// sends — exactly the waste the paper attributes to it.
#pragma once

#include <vector>

#include "ocd/sim/policy.hpp"

namespace ocd::heuristics {

class RoundRobinPolicy final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "round-robin"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kLocalOnly;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_vertex(VertexId self, const sim::StepView& view,
                   sim::StepPlan& plan) override;
  /// Checkpointable state: the per-arc cursors (the only mutation
  /// plan_vertex performs).
  void save_state(util::BinStream& out) const override;
  void load_state(util::BinStream& in) override;

 private:
  /// Per-arc circular cursor: the token id after which the next scan
  /// starts.
  std::vector<TokenId> cursor_;
  /// Per-arc batch scratch, reused across steps (no per-step allocation).
  TokenSet batch_;
};

}  // namespace ocd::heuristics
