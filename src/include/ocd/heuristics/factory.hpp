// Heuristic registry: construct any of the paper's five policies by
// name; enumerate them for sweeps.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ocd/sim/policy.hpp"

namespace ocd::heuristics {

/// Names in the order the paper introduces them:
/// round-robin, random, local, bandwidth, global.
const std::vector<std::string>& all_policy_names();

/// Constructs a policy by name; throws ocd::Error for unknown names.
/// A "+reliable" suffix (e.g. "random+reliable") wraps the base policy
/// in faults::ReliableAdapter for recovery under lossy delivery.
sim::PolicyPtr make_policy(std::string_view name);

/// Convenience: all five policies, paper order.
std::vector<sim::PolicyPtr> make_all_policies();

}  // namespace ocd::heuristics
