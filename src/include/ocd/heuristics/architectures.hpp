// Architecture baselines from the paper's related-work survey (§2).
//
// The paper motivates the OCD formulation by the zoo of deployed
// overlay architectures; these policies implement idealized versions of
// the two classic structures so benches can compare *architectures*
// (single tree vs striped forest vs mesh) inside one formal model:
//
//  * TreePolicy ("overcast-tree") — Overcast [9]: a single
//    bandwidth-optimized distribution tree.  We build the widest-path
//    (maximum bottleneck capacity) spanning tree rooted at the richest
//    source and flood useful tokens along tree edges only.
//
//  * StripedForestPolicy ("splitstream-forest") — SplitStream [3] /
//    CoopNet [12]: content split into k stripes, each pushed down its
//    own randomized tree so interior load spreads across vertices.
//
//  * FastReplicaPolicy ("fast-replica") — FastReplica [4]: the source
//    partitions the file across its direct neighbors (one block each),
//    who then exchange blocks among themselves; remaining vertices pull
//    blocks mesh-style.
//
// Both use only per-peer possession knowledge (kLocalPeers) and assume
// the overlay's links are bidirectional (true for every generator in
// ocd::topology); on one-way graphs they may fail to complete, which
// the simulator reports as an unsuccessful run.
#pragma once

#include <vector>

#include "ocd/sim/policy.hpp"

namespace ocd::heuristics {

class TreePolicy final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "overcast-tree";
  }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kLocalPeers;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;

  /// Tree arcs in use (both directions where present); for tests.
  [[nodiscard]] const std::vector<ArcId>& tree_arcs() const noexcept {
    return tree_arcs_;
  }

 private:
  std::vector<ArcId> tree_arcs_;
  std::vector<bool> arc_in_tree_;
};

class StripedForestPolicy final : public sim::Policy {
 public:
  explicit StripedForestPolicy(std::int32_t stripes = 4);

  [[nodiscard]] std::string_view name() const override {
    return "splitstream-forest";
  }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kLocalPeers;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;

  [[nodiscard]] std::int32_t stripes() const noexcept { return stripes_; }

 private:
  std::int32_t stripes_;
  /// arc_stripes_[a]: bitmask of stripes allowed to use arc a.
  std::vector<std::uint32_t> arc_stripes_;
  std::vector<TokenSet> stripe_tokens_;
};

class FastReplicaPolicy final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "fast-replica";
  }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kLocalPeers;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;

 private:
  VertexId source_ = 0;
  /// Block assigned to each of the source's out-neighbors (the initial
  /// scatter); tokens outside any block travel with block 0.
  std::vector<TokenSet> block_of_arc_;
};

/// The paper's five heuristics plus the §2 architecture baselines.
const std::vector<std::string>& extended_policy_names();

}  // namespace ocd::heuristics
