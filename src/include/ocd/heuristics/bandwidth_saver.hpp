// Bandwidth (§5.1): an online heuristic with global knowledge that
// "more cautiously adds tokens to a move ... each vertex shall obtain
// from its peers in its next turn only tokens that it will eventually
// use": tokens it needs, or tokens for which it is the closest
// one-hop-knowledge vertex to a node that needs them (a one-hop-
// knowledge vertex could obtain the token in a single turn).
//
// Knowledge class kGlobal.  Each step we compute, per token, the needy
// set and the one-hop frontier, then a multi-source BFS elects for each
// needy node its nearest frontier vertex; only elected relays and needy
// nodes are allowed to receive the token.  Senders then fill arc
// capacity with allowed tokens, needs before relays, rarest first.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ocd/heuristics/coordination.hpp"
#include "ocd/sim/policy.hpp"
#include "ocd/util/rarity.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::heuristics {

class BandwidthPolicy final : public sim::Policy, public ShardCoordinator {
 public:
  [[nodiscard]] std::string_view name() const override { return "bandwidth"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kGlobal;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;

  // Sharded coordination (ocd/heuristics/coordination.hpp): the
  // per-token needy/frontier/witness elections are sliced by token
  // (token t belongs to shard t % num_shards); each shard scores its
  // slice, broadcasts the elected receiver sets, and the arc fill then
  // runs per shard over its owned arcs against the merged allowed_
  // matrix.  The election is deterministic per token, so no fallback
  // path is ever needed.
  void begin_coordination(const CoordinationSetup& setup) override;
  [[nodiscard]] std::int64_t coord_prescore(const sim::StepView& view,
                                            std::string& frame) override;
  bool coord_absorb(const sim::StepView& view,
                    std::span<const std::string> frames) override;
  void coord_emit(const sim::StepView& view, sim::StepPlan& plan,
                  std::vector<std::int64_t>& ordinals) override;

 private:
  /// The per-token election: fills allowed_ rows for token `t`.  When
  /// `receivers` is non-null the vertices whose allowed_ bit was set
  /// are also appended there (unsorted, may repeat).
  void score_token(TokenId t, const sim::StepView& view,
                   std::vector<VertexId>* receivers);
  /// The per-arc capacity fill over the finished allowed_ matrix.
  void fill_arc(ArcId a, const sim::StepView& view, sim::StepPlan& plan);

  // Planner scratch, sized once in reset() and rewritten in place each
  // step so steady-state planning does not allocate.
  RarityRanker ranker_;
  util::TokenMatrix allowed_;  ///< per-vertex receivable tokens
  std::vector<std::int32_t> frontier_dist_;
  std::vector<VertexId> witness_;
  std::vector<VertexId> needy_;
  std::vector<VertexId> bfs_;  ///< BFS worklist (vector + head cursor)
  TokenSet candidates_;
  TokenSet ranked_cand_;
  TokenSet ranked_want_;
  TokenSet ranked_needs_;
  TokenSet ranked_flood_;
  TokenSet batch_;

  // ---- sharded coordination state (idle in single-process runs) ----
  CoordinationSetup coord_{};
  std::vector<ArcId> owned_arcs_;      ///< arcs with an owned tail
  std::vector<VertexId> receivers_;    ///< per-token election scratch
};

}  // namespace ocd::heuristics
