// Global (§5.1): the coordinated variant of the Local heuristic —
// "vertices have the ability to coordinate across each other at each
// timestep to ensure that they maximize diversity ... Our implementation
// of this technique applies a greedy selection algorithm over the set of
// tokens and edges, and is thus not guaranteed to maximize diversity."
//
// Knowledge class kGlobal with full per-step coordination: tokens are
// processed rarest-first; each (arc, token) assignment delivers the
// token to a vertex that does not have it and has not been granted it
// by another arc this step, so no capacity is wasted on duplicates.
// Wanted deliveries are assigned before pure diversity floods.
#pragma once

#include <vector>

#include "ocd/sim/policy.hpp"
#include "ocd/util/rarity.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::heuristics {

class GlobalGreedyPolicy final : public sim::Policy {
 public:
  [[nodiscard]] std::string_view name() const override { return "global"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kGlobal;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;

 private:
  Rng rng_{1};
  // Planner scratch, sized once in reset() and rewritten in place each
  // step so steady-state planning does not allocate.
  RarityRanker ranker_;
  util::TokenMatrix ranked_poss_;   ///< per-vertex possession, rank space
  util::TokenMatrix candidates_;    ///< per-arc (tail has, head lacks)
  util::TokenMatrix outstanding_;   ///< per-vertex wants still missing
  std::vector<std::int32_t> remaining_;
  std::vector<std::int32_t> grant_count_;
  TokenSet full_;     ///< all-ones mask, built once per reset
  TokenSet wave_ok_;  ///< ranks whose grant count is still <= wave
  TokenSet capped_;
  std::vector<ArcId> active_;
  std::vector<char> asleep_;  ///< capped arcs sleep until a wave relax
  // Per-arc pre-scored picks from the sharded phase-A wave scan (rank
  // ids, -1 = none); validated against the only-shrinking masks during
  // the serial phase-B merge.
  std::vector<TokenId> scan_wanted_;
  std::vector<TokenId> scan_flood_;
};

}  // namespace ocd::heuristics
