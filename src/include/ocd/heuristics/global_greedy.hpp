// Global (§5.1): the coordinated variant of the Local heuristic —
// "vertices have the ability to coordinate across each other at each
// timestep to ensure that they maximize diversity ... Our implementation
// of this technique applies a greedy selection algorithm over the set of
// tokens and edges, and is thus not guaranteed to maximize diversity."
//
// Knowledge class kGlobal with full per-step coordination: tokens are
// processed rarest-first; each (arc, token) assignment delivers the
// token to a vertex that does not have it and has not been granted it
// by another arc this step, so no capacity is wasted on duplicates.
// Wanted deliveries are assigned before pure diversity floods.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ocd/heuristics/coordination.hpp"
#include "ocd/sim/policy.hpp"
#include "ocd/util/rarity.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::heuristics {

class GlobalGreedyPolicy final : public sim::Policy, public ShardCoordinator {
 public:
  [[nodiscard]] std::string_view name() const override { return "global"; }
  [[nodiscard]] sim::KnowledgeClass knowledge_class() const override {
    return sim::KnowledgeClass::kGlobal;
  }

  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void plan_step(const sim::StepView& view, sim::StepPlan& plan) override;
  void save_state(util::BinStream& out) const override;
  void load_state(util::BinStream& in) override;

  // Sharded coordination (ocd/heuristics/coordination.hpp): the owned
  // arcs are pre-scored into top-k (wanted, flood) rank lists; every
  // shard replays the same wave merge over the union, falling back to
  // the exact serial rescan whenever a merge step would need a
  // candidate beyond the summarized horizon.
  void begin_coordination(const CoordinationSetup& setup) override;
  [[nodiscard]] std::int64_t coord_prescore(const sim::StepView& view,
                                            std::string& frame) override;
  bool coord_absorb(const sim::StepView& view,
                    std::span<const std::string> frames) override;
  void coord_emit(const sim::StepView& view, sim::StepPlan& plan,
                  std::vector<std::int64_t>& ordinals) override;

 private:
  /// Everything plan_step does after the per-step rarity assignment:
  /// rank-space row rebuilds, the candidate/outstanding scaffolding and
  /// the wave loop.  `grant(arc, rank)` is invoked for every pick in
  /// the exact serial order; plan_step sends each pick, the
  /// coordinator's fallback records the owned ones with their global
  /// first-touch ordinals.
  template <typename Grant>
  void plan_waves(const sim::StepView& view, Grant&& grant);

  Rng rng_{1};
  // Planner scratch, sized once in reset() and rewritten in place each
  // step so steady-state planning does not allocate.
  RarityRanker ranker_;
  util::TokenMatrix ranked_poss_;   ///< per-vertex possession, rank space
  util::TokenMatrix candidates_;    ///< per-arc (tail has, head lacks)
  util::TokenMatrix outstanding_;   ///< per-vertex wants still missing
  std::vector<std::int32_t> remaining_;
  std::vector<std::int32_t> grant_count_;
  TokenSet full_;     ///< all-ones mask, built once per reset
  TokenSet wave_ok_;  ///< ranks whose grant count is still <= wave
  TokenSet capped_;
  std::vector<ArcId> active_;
  std::vector<char> asleep_;  ///< capped arcs sleep until a wave relax
  // Per-arc pre-scored picks from the sharded phase-A wave scan (rank
  // ids, -1 = none); validated against the only-shrinking masks during
  // the serial phase-B merge.
  std::vector<TokenId> scan_wanted_;
  std::vector<TokenId> scan_flood_;

  // ---- sharded coordination state (idle in single-process runs) ----
  /// One summarized candidate arc: the k smallest wanted/flood ranks of
  /// its step-start candidate set (slices of list_ranks_) plus
  /// beyond-horizon flags.  cand_now = cand_0 minus the ranks granted
  /// to the head, so a listed rank is valid iff it is ungranted and
  /// uncapped — the exactness argument lives in coord_absorb.
  struct WaveEntry {
    ArcId arc = 0;
    VertexId head = 0;
    std::int32_t w_begin = 0, w_end = 0;  ///< wanted ranks, ascending
    std::int32_t f_begin = 0, f_end = 0;  ///< flood ranks, ascending
    bool more_w = false, more_f = false;  ///< ranks beyond the horizon
    bool asleep = false;
    std::int32_t remaining = 0;
    std::int64_t ordinal = -1;  ///< global first-touch slot, -1 untouched
  };
  struct CoordPick {
    ArcId arc;
    TokenId rank;
    std::int64_t ordinal;
  };

  CoordinationSetup coord_{};
  std::vector<char> arc_owned_;     ///< arc tail owned by this shard
  std::vector<ArcId> owned_arcs_;   ///< ascending
  std::vector<VertexId> touched_;   ///< endpoints of owned arcs, unique
  util::TokenMatrix granted_;       ///< per-head ranks granted in merge
  std::vector<char> head_dirty_;
  std::vector<VertexId> dirty_heads_;
  std::vector<WaveEntry> entries_;  ///< own summary, then decoded peers
  std::vector<TokenId> list_ranks_;
  std::vector<std::size_t> merge_active_;
  std::vector<CoordPick> picks_;    ///< owned grants of the merged step
  std::vector<std::int64_t> ord_of_arc_;  ///< fallback first-touch scan
  TokenSet cand_scratch_;
  TokenSet flood_scratch_;
  std::size_t own_entries_ = 0;  ///< entries_ prefix from coord_prescore
  bool own_any_ = false;         ///< local `anything` ORed into the merge
};

}  // namespace ocd::heuristics
