// Vertex-sharded simulation runtime.
//
// run_sharded() replays the single-process simulator's synchronous
// round loop across `num_shards` shards, each owning a block of the
// vertex partition (ocd/shard/partition.hpp).  Per step, every shard:
//
//   plan    — plans sends for its owned vertices only (via
//             Policy::plan_shard on a shard-local StepView), validates
//             them, applies the fault model's per-(step, arc) loss, and
//             routes surviving cross-shard deliveries as BinStream
//             messages to the destination's owner;
//   apply   — merges inbound deliveries into its owned possession rows
//             and prepares ghost updates for the shards that replicate
//             its owned vertices;
//   commit  — identical on every shard: folds the broadcast summaries
//             (empty/idle flags, move/loss/useful counters, aggregate
//             deltas, unsatisfied counts) into the replicated global
//             decision state, so termination, the watchdog, and the
//             aggregate vectors never need a coordinator.
//
// Bit-identity guarantee: for every supported planner the merged
// schedule and RunStats are bit-for-bit identical to sim::run on the
// same (instance, options), for every shard count and both transports —
// pinned by tests/shard/determinism_test.cpp.  Two planner families:
//
//   * Local planners (round-robin, random, local): per-vertex planning
//     is independent (plan_shard contract), all randomness is derived
//     per-(step, coordinate) rather than drawn from execution-order-
//     dependent streams (util::derive_seed), and merges are keyed sums
//     or deterministic sorts.
//
//   * Coordinated planners (global, bandwidth): every shard fully
//     replicates possession (every owned-vertex delta is broadcast as a
//     ghost update), and the barrier gains a *wave round* before plan:
//     shards pre-score their owned slice into compact top-k summaries
//     (OCD_SHARD_WAVE_TOPK / ShardOptions.wave_topk), broadcast them,
//     and replay one and the same merge — falling back to the exact
//     serial rescan whenever the summarized horizon is exhausted, so
//     the schedule never depends on the horizon.  See
//     ocd/heuristics/coordination.hpp and DESIGN.md "Sharded
//     coordinated planning".
//
// Envelope: staleness, stale aggregates, dynamics models, completion
// overrides, precomputed distances, and adapter-wrapped policies
// ("+reliable") are refused with ocd::Error — each would need state the
// barrier protocol does not replicate.  Fault models are supported
// verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/shard/partition.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/sim/simulator.hpp"

namespace ocd::shard {

enum class TransportKind : std::uint8_t {
  /// Shards stepped as chunks of the ocd::util worker pool, messages
  /// through in-memory mailboxes (still BinStream-encoded, same codec
  /// path as the process transport).  The tests/CI default.
  kInProcess,
  /// One process per shard (fork), a socketpair star routed by the
  /// parent.  Breaks the single-address-space ceiling on one host:
  /// each child's private state is its possession slice + planner
  /// scratch; the instance is shared copy-on-write.
  kForked,
};

struct ShardOptions {
  /// Shard count; 0 resolves OCD_SHARDS from the environment
  /// (validated), defaulting to 1.
  std::int32_t num_shards = 0;
  TransportKind transport = TransportKind::kInProcess;
  /// Hard deadline on every cross-process read and write in the forked
  /// transport.  A peer that neither answers nor dies within this
  /// window is declared hung: killed and respawned when recovery is
  /// armed, surfaced as a field-named ocd::Error otherwise — never a
  /// silent stall.  Generous by default because a child legitimately
  /// waits its turn while the parent drains its siblings.
  std::int64_t barrier_timeout_ms = 120'000;
  /// Crash tolerance: checkpoint cadence, respawn budget, scripted
  /// failure injection (ocd/shard/recovery.hpp).
  RecoveryOptions recovery;
  /// Candidate-summary horizon of the coordinated planners' wave round:
  /// each shard ships at most this many wanted and flood ranks per
  /// candidate arc.  0 consults OCD_SHARD_WAVE_TOPK (validated),
  /// defaulting to 8.  Any value yields the identical schedule — a
  /// smaller horizon only trades summary bytes for exact-rescan
  /// fallbacks.  Ignored by the local planners.
  std::int32_t wave_topk = 0;
  /// Partition balance slack ε in percent; -1 consults
  /// OCD_SHARD_BALANCE_EPS (validated, default 0 — the historical exact
  /// band).  A resolved ε > 0 also enables the flow-based min-cut
  /// refinement stage (shard/partition.hpp), trading a bounded
  /// ownership imbalance for fewer cut arcs and hence less barrier
  /// traffic.  The merged schedule is bit-identical either way —
  /// partitioning only moves ownership, never planning decisions.
  std::int32_t balance_eps = -1;
  /// Simulator options; see the envelope note above for the supported
  /// subset.  faults (if any) must outlive the run.
  sim::SimOptions sim;
};

/// Resolves a requested shard count: positive values pass through,
/// 0 consults OCD_SHARDS (throwing ocd::Error on garbage), else 1.
std::int32_t resolve_num_shards(std::int32_t requested);

/// Resolves a requested wave-summary horizon: positive values pass
/// through, 0 consults OCD_SHARD_WAVE_TOPK (throwing ocd::Error on
/// garbage), else 8.
std::int32_t resolve_wave_topk(std::int32_t requested);

/// Runs `policy_name` (round-robin / random / local / global /
/// bandwidth — each shard constructs its own instance via
/// heuristics::make_policy) over the instance, sharded.  Throws
/// ocd::Error for unsupported options.
/// The result is bit-identical to sim::run for every shard count.
sim::RunResult run_sharded(const core::Instance& instance,
                           std::string_view policy_name,
                           const ShardOptions& options);

/// As run_sharded with a precomputed partition (must match
/// resolve_num_shards(options.num_shards) shards).
sim::RunResult run_sharded(const core::Instance& instance,
                           std::string_view policy_name,
                           const ShardOptions& options,
                           const Partition& partition);

}  // namespace ocd::shard
