// Vertex-sharded simulation runtime.
//
// run_sharded() replays the single-process simulator's synchronous
// round loop across `num_shards` shards, each owning a block of the
// vertex partition (ocd/shard/partition.hpp).  Per step, every shard:
//
//   plan    — plans sends for its owned vertices only (via
//             Policy::plan_shard on a shard-local StepView), validates
//             them, applies the fault model's per-(step, arc) loss, and
//             routes surviving cross-shard deliveries as BinStream
//             messages to the destination's owner;
//   apply   — merges inbound deliveries into its owned possession rows
//             and prepares ghost updates for the shards that replicate
//             its owned vertices;
//   commit  — identical on every shard: folds the broadcast summaries
//             (empty/idle flags, move/loss/useful counters, aggregate
//             deltas, unsatisfied counts) into the replicated global
//             decision state, so termination, the watchdog, and the
//             aggregate vectors never need a coordinator.
//
// Bit-identity guarantee: for the local planners (round-robin, random,
// local) the merged schedule and RunStats are bit-for-bit identical to
// sim::run on the same (instance, options), for every shard count and
// both transports — pinned by tests/shard/determinism_test.cpp.  The
// three ingredients: per-vertex planning is independent (plan_shard
// contract), all randomness is derived per-(step, coordinate) rather
// than drawn from execution-order-dependent streams (util::derive_seed),
// and merges are keyed sums or deterministic sorts.
//
// Envelope: coordinated planners (global, bandwidth), staleness,
// stale aggregates, dynamics models, completion overrides, and
// precomputed distances are refused with ocd::Error — each would need
// state the barrier protocol does not replicate.  Fault models are
// supported verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/shard/partition.hpp"
#include "ocd/shard/recovery.hpp"
#include "ocd/sim/simulator.hpp"

namespace ocd::shard {

enum class TransportKind : std::uint8_t {
  /// Shards stepped as chunks of the ocd::util worker pool, messages
  /// through in-memory mailboxes (still BinStream-encoded, same codec
  /// path as the process transport).  The tests/CI default.
  kInProcess,
  /// One process per shard (fork), a socketpair star routed by the
  /// parent.  Breaks the single-address-space ceiling on one host:
  /// each child's private state is its possession slice + planner
  /// scratch; the instance is shared copy-on-write.
  kForked,
};

struct ShardOptions {
  /// Shard count; 0 resolves OCD_SHARDS from the environment
  /// (validated), defaulting to 1.
  std::int32_t num_shards = 0;
  TransportKind transport = TransportKind::kInProcess;
  /// Hard deadline on every cross-process read and write in the forked
  /// transport.  A peer that neither answers nor dies within this
  /// window is declared hung: killed and respawned when recovery is
  /// armed, surfaced as a field-named ocd::Error otherwise — never a
  /// silent stall.  Generous by default because a child legitimately
  /// waits its turn while the parent drains its siblings.
  std::int64_t barrier_timeout_ms = 120'000;
  /// Crash tolerance: checkpoint cadence, respawn budget, scripted
  /// failure injection (ocd/shard/recovery.hpp).
  RecoveryOptions recovery;
  /// Simulator options; see the envelope note above for the supported
  /// subset.  faults (if any) must outlive the run.
  sim::SimOptions sim;
};

/// Resolves a requested shard count: positive values pass through,
/// 0 consults OCD_SHARDS (throwing ocd::Error on garbage), else 1.
std::int32_t resolve_num_shards(std::int32_t requested);

/// Runs `policy_name` (one of round-robin / random / local — each shard
/// constructs its own instance via heuristics::make_policy) over the
/// instance, sharded.  Throws ocd::Error for unsupported options.
/// The result is bit-identical to sim::run for every shard count.
sim::RunResult run_sharded(const core::Instance& instance,
                           std::string_view policy_name,
                           const ShardOptions& options);

/// As run_sharded with a precomputed partition (must match
/// resolve_num_shards(options.num_shards) shards).
sim::RunResult run_sharded(const core::Instance& instance,
                           std::string_view policy_name,
                           const ShardOptions& options,
                           const Partition& partition);

}  // namespace ocd::shard
