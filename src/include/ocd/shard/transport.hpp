// Shard execution engines: one ShardWorker per shard plus a Transport
// that steps all workers through the barrier protocol and moves their
// BinStream messages.
//
// The protocol is phase-synchronous; a Transport only provides message
// motion and the barrier, never decisions.  Per step:
//
//   phase_plan    -> round-1 messages (plan summary + routed deliveries)
//   phase_apply   -> round-2 messages (apply summary + ghost updates)
//   phase_commit  -> replicated global decision; every worker agrees on
//                    running()/termination() afterwards
//
// plus one init round before the loop (initial unsatisfied counts) and
// one finish_fragment() per worker after it, which run_sharded merges
// into the final RunResult.  Both transports move the same encoded
// bytes, so the in-process engine exercises the full codec path the
// process engine ships over sockets.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ocd/core/schedule.hpp"
#include "ocd/shard/partition.hpp"
#include "ocd/shard/runtime.hpp"
#include "ocd/sim/knowledge.hpp"
#include "ocd/sim/policy.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::heuristics {
class ShardCoordinator;
}

namespace ocd::shard {

/// Everything a worker needs to run one shard, resolved once by
/// run_sharded.  Borrowed pointers must outlive the transport run.
struct RunContext {
  const core::Instance* instance = nullptr;
  const Partition* partition = nullptr;
  std::string policy_name;
  sim::SimOptions sim;
  sim::KnowledgeClass knowledge = sim::KnowledgeClass::kLocalOnly;
  /// Resolved watchdog window (-1 = off), mirroring the simulator's
  /// auto-arming rule.
  std::int64_t watchdog_window = -1;
  /// Fault-model stepping: the forked transport replicates the model
  /// per process (each child advances its copy-on-write copy in
  /// phase_plan); the in-process transport shares one model and the
  /// driver advances it exactly once per step.
  bool worker_advances_faults = false;
  /// In-process replay cannot re-query the shared fault model for past
  /// steps (its chain state has moved on), so when recovery is armed
  /// with faults on the in-process path, every phase_plan also records
  /// its per-send loss sets for the driver's log.
  bool log_losses = false;
  /// Resolved recovery knobs (ocd/shard/recovery.hpp).  recovery_armed:
  /// a failed worker is respawned and replayed; otherwise it surfaces
  /// as an ocd::Error.
  bool recovery_armed = false;
  std::int64_t checkpoint_interval = 0;  ///< 0 = checkpoints off
  std::int32_t max_respawns = 0;
  const CrashPlan* crash_plan = nullptr;
  std::int64_t barrier_timeout_ms = 120'000;
  std::vector<std::int32_t> static_capacity;
  /// Coordinated planning (kGlobal policies): workers fully replicate
  /// possession, and on > 1 shard the transports run one extra *wave*
  /// message round (phase_wave / absorb_wave) before every plan phase.
  bool coordinated = false;
  /// Resolved wave-summary horizon (resolve_wave_topk).
  std::int32_t wave_topk = 8;
};

/// One shard's replica of the simulator loop.  Owns the shard-local
/// possession rows (owned vertices plus ghosts), its policy instance,
/// and the replicated global decision state; communicates only through
/// the phase methods' message vectors (indexed by peer shard; the self
/// slot stays empty).
class ShardWorker {
 public:
  ShardWorker(const RunContext& ctx, std::int32_t shard);

  /// Init round: broadcast the initial owned unsatisfied count.
  void phase_init(std::vector<std::string>& out);
  void absorb_init(const std::vector<std::string>& in);

  /// Coordinated wave round (ctx.coordinated, > 1 shard only): pre-score
  /// the owned slice of this step's decision into one summary frame,
  /// broadcast verbatim to every peer.  Requires running().
  void phase_wave(std::vector<std::string>& out);
  /// Merge the peers' summary frames; afterwards the worker holds the
  /// replicated merged decision phase_plan's coord_emit will draw from.
  void absorb_wave(const std::vector<std::string>& in);

  /// Plan owned vertices, validate, apply channel loss, route surviving
  /// deliveries to their destination's owner.  Requires running().
  /// `replay_losses` (in-process replay only) substitutes a recorded
  /// loss trace for live fault-model queries: the policy still plans in
  /// full (its state must advance), but the per-send loss sets are read
  /// from the record instead of the shared model, whose chain has
  /// already moved past this step.
  void phase_plan(std::vector<std::string>& out,
                  const std::string* replay_losses = nullptr);
  /// Merge inbound deliveries into owned possession rows; emit apply
  /// summaries and ghost updates.
  void phase_apply(const std::vector<std::string>& in,
                   std::vector<std::string>& out);
  /// Fold the apply summaries into the replicated global state and
  /// decide termination — identically on every shard.
  void phase_commit(const std::vector<std::string>& in);

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Committed step count == the step the next phase_plan would plan.
  [[nodiscard]] std::int64_t step() const noexcept { return step_; }
  [[nodiscard]] sim::Termination termination() const;

  /// Final per-shard results (schedule fragment, completion, upload
  /// counts; shard 0 adds the global per-step series), BinStream-
  /// encoded for run_sharded's merge.
  [[nodiscard]] std::string finish_fragment();

  /// Serializes this worker's complete restartable state (see
  /// shard::Checkpoint).  Capture point: a committed barrier, i.e.
  /// between phase_commit and the next phase_plan.
  [[nodiscard]] std::string save_checkpoint() const;
  /// Restores a save_checkpoint() blob into a freshly constructed
  /// worker: validates shard identity and every shape against this
  /// worker's layout, loads the policy state, and (forked transport)
  /// fast-forwards the private fault-model copy to the fault cursor.
  void restore_checkpoint(const std::string& bytes);
  /// The loss record phase_plan captured (empty unless ctx.log_losses
  /// and a fault model are active).
  [[nodiscard]] const std::string& loss_record() const noexcept {
    return loss_record_;
  }

 private:
  void deliver(VertexId to, TokenSetView tokens);
  void validate_shard_sends(std::span<const core::ArcSend> sends);

  const RunContext& ctx_;
  std::int32_t shard_;
  std::int32_t num_shards_;
  bool faulted_;
  bool needs_aggregates_;

  sim::PolicyPtr policy_;
  /// The policy's coordination interface (ctx.coordinated && > 1 shard;
  /// null otherwise).
  heuristics::ShardCoordinator* coord_ = nullptr;
  std::span<const VertexId> owned_;
  std::vector<VertexId> rows_;             ///< row -> global vertex id
  std::vector<std::int32_t> row_map_;      ///< global vertex id -> row, -1
  std::vector<std::int32_t> owned_index_;  ///< vertex -> owned slot, -1
  util::TokenMatrix possession_;           ///< one row per rows_ entry
  util::TokenMatrix uni_;  ///< per-owned union of this step's fresh sets
  sim::Aggregates aggregates_;             ///< replicated global vectors
  std::vector<std::int64_t> dh_, dn_;      ///< per-step aggregate deltas
  sim::StepPlan plan_;
  std::vector<std::int32_t> arc_load_;
  std::vector<char> satisfied_;            ///< per owned slot
  std::vector<std::int64_t> completion_;   ///< per owned slot, -1 pending
  std::vector<std::int64_t> sent_by_;      ///< per vertex (senders may be
                                           ///< ghosts under "local")
  std::vector<char> touched_flag_;         ///< per owned slot
  std::vector<std::int32_t> touched_;      ///< owned slots hit this step
  /// Per peer: owned vertices that peer ghosts (its subscriptions).
  std::vector<std::vector<VertexId>> out_ghost_;
  /// Per peer: plan send indices routed to it this step.
  std::vector<std::vector<std::uint32_t>> deliv_for_;
  std::vector<std::uint32_t> local_deliv_;
  TokenSet fresh_;        ///< apply kernel scratch
  TokenSet lost_;         ///< fault scratch
  TokenSet msg_tokens_;   ///< decode scratch
  std::string loss_record_;  ///< this step's loss sets (ctx.log_losses)
  std::string wave_frame_;   ///< phase_wave's summary, reused per step
  /// Coordinated "global" only: per plan slot, the merged decision's
  /// global first-touch ordinal (coord_emit contract), and the per
  /// recorded timestep copies finish_fragment ships for the merge.
  std::vector<std::int64_t> ordinals_;
  std::vector<std::vector<std::int64_t>> schedule_ordinals_;
  bool ordinal_schedule_ = false;

  // Barrier traffic accounting (sim/stats.hpp shard_* counters).
  std::int64_t bytes_sent_ = 0;
  std::int64_t bytes_received_ = 0;
  std::int64_t summary_entries_ = 0;
  std::int64_t wave_fallbacks_ = 0;

  // Replicated global decision state (identical on every shard).
  std::int64_t step_ = 0;
  std::int64_t unsatisfied_ = 0;
  std::int64_t local_unsatisfied_ = 0;
  std::int64_t no_progress_ = 0;
  bool running_ = false;
  bool stalled_ = false;
  bool watchdog_hit_ = false;
  bool pending_stall_ = false;

  // Per-step counters (this shard / folded global).
  std::int64_t step_moves_ = 0;
  std::int64_t step_lost_ = 0;
  std::int64_t step_useful_ = 0;
  std::int64_t global_moves_ = 0;
  std::int64_t global_lost_ = 0;

  // Shard 0 only: the global per-step series for RunStats.
  std::vector<std::int64_t> moves_per_step_;
  std::vector<std::int64_t> lost_per_step_;
  std::int64_t useful_total_ = 0;
  std::int64_t lost_total_ = 0;

  core::Schedule schedule_;  ///< this shard's fragment (when recording)
};

/// A transport run's outcome: one finish fragment per shard, plus the
/// recovery counters (all zero for a crash-free run).
struct TransportResult {
  std::vector<std::string> fragments;
  RecoveryStats recovery;
};

class Transport {
 public:
  virtual ~Transport() = default;
  /// Runs the full protocol; returns one finish fragment per shard.
  virtual TransportResult run(const RunContext& ctx) = 0;
};

/// Workers stepped as chunks of the ocd::util worker pool; messages
/// pass through two in-memory mailbox grids (one per round, so a
/// phase never reads a grid another worker is writing).  When recovery
/// is armed, the driver logs committed message rows and checkpoints so
/// an injected crash (CrashPlan) discards the worker and rebuilds it —
/// hang injection is handled as a crash, since there is no deadline to
/// expire inside one address space.  All recovery bookkeeping runs on
/// the driver thread between parallel phases, so the suite is
/// TSan-clean.
class InProcessTransport final : public Transport {
 public:
  TransportResult run(const RunContext& ctx) override;
};

/// One forked child process per shard, each owning a private
/// ShardWorker; the parent routes frames over a socketpair star.  The
/// instance and partition are shared copy-on-write; only possession
/// slices and planner scratch are private dirty pages.
///
/// Every read and write carries ctx.barrier_timeout_ms; SIGPIPE is
/// suppressed (MSG_NOSIGNAL + SIG_IGN in the parent for the run), so a
/// dead child surfaces as EOF/EPIPE and a hung one as an expired
/// deadline.  When recovery is armed the supervisor kills the failed
/// child, respawns it from the latest checkpoint (or from scratch),
/// replays the committed steps from the logged mail, and re-enters the
/// barrier protocol at the exact sub-stage that failed; otherwise the
/// failure is rethrown as a field-named ocd::Error.
class ForkTransport final : public Transport {
 public:
  TransportResult run(const RunContext& ctx) override;
};

}  // namespace ocd::shard
