// Vertex partitioning for the sharded runtime.
//
// A Partition splits the vertex set into `num_shards` ownership classes.
// Each shard owns a contiguous-ish block of the overlay (BFS-grown, then
// greedily refined to shrink the edge cut) and additionally *ghosts* the
// vertices it can see but does not own: every non-owned endpoint of an
// arc incident to an owned vertex.  Ghosts are the read-only possession
// replicas the barrier protocol keeps fresh between steps, and the cut
// arc table is exactly the traffic that must cross shard boundaries.
//
// The partitioner is deterministic and seedless: the same (graph,
// num_shards) always yields the same Partition, on every shard of every
// transport — the runtime relies on this to let each process derive the
// partition independently instead of shipping it.
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/graph/digraph.hpp"

namespace ocd::shard {

/// One arc whose endpoints live on different shards.
struct CutArc {
  ArcId arc = -1;
  std::int32_t from_shard = -1;
  std::int32_t to_shard = -1;
};

/// Edge-cut quality report, printed by bench/fig_shard and asserted
/// loosely by tests (a partitioner regression shows up as a cut blowup).
struct PartitionStats {
  std::int32_t num_shards = 1;
  std::int64_t total_arcs = 0;
  std::int64_t cut_arcs = 0;        ///< arcs crossing shards
  std::int64_t min_owned = 0;       ///< smallest ownership class
  std::int64_t max_owned = 0;       ///< largest ownership class
  std::int64_t total_ghosts = 0;    ///< sum of per-shard ghost counts

  [[nodiscard]] double cut_fraction() const noexcept {
    return total_arcs == 0
               ? 0.0
               : static_cast<double>(cut_arcs) /
                     static_cast<double>(total_arcs);
  }
};

struct Partition {
  std::int32_t num_shards = 1;
  /// Owning shard per vertex.
  std::vector<std::int32_t> shard_of;
  /// Owned vertices per shard, ascending.
  std::vector<std::vector<VertexId>> owned;
  /// Ghost vertices per shard (non-owned endpoints of arcs incident to
  /// owned vertices, either direction), ascending.
  std::vector<std::vector<VertexId>> ghosts;
  /// Cross-shard arcs, ascending arc id.
  std::vector<CutArc> cut_arcs;
  PartitionStats stats;
};

/// Partitions the graph's vertices into `num_shards` ownership classes:
/// BFS-grow blocks of (near-)equal size in deterministic traversal
/// order, then up to `refinement_sweeps` greedy refinement sweeps, each
/// moving vertices to their neighbor-majority shard where that strictly
/// reduces the cut without breaking the size bounds.  Sweeps after the
/// first act on the previous sweep's labels, so they keep converging
/// toward a local cut minimum; the loop stops early at the first sweep
/// that moves nothing.  0 sweeps = raw BFS blocks; the runtime default
/// is 1 (bit-compatible with the historical single-sweep partition);
/// bench/fig_shard reports the cut reduction of deeper refinement.
/// Requires 1 <= num_shards <= num_vertices and refinement_sweeps >= 0.
Partition partition_vertices(const Digraph& graph, std::int32_t num_shards,
                             std::int32_t refinement_sweeps = 1);

/// A shard's slice of an instance, relabeled to dense local ids — the
/// unit a genuinely distributed deployment would ship to a remote host
/// (BinStream-serializable via put_instance).  Local vertices are the
/// shard's owned plus ghost vertices in ascending global order; arcs
/// are every arc incident to an owned vertex (ghost-ghost arcs are
/// dropped — no owned planner ever consults them).  have/want are
/// copied for all local vertices so ghost possession can be seeded.
///
/// The one-host runtime does NOT plan on sub-instances — it keeps
/// global vertex ids and maps them onto shard-local possession rows
/// (StepView::set_row_map), which is what makes bit-identity with the
/// single-process simulator a per-vertex statement instead of a
/// relabeling argument.
struct SubInstance {
  core::Instance instance;
  /// Local vertex id -> global vertex id, ascending.
  std::vector<VertexId> to_global;
  /// Local arc id -> global arc id, ascending.
  std::vector<ArcId> arc_to_global;
};

SubInstance extract_sub_instance(const core::Instance& instance,
                                 const Partition& partition,
                                 std::int32_t shard);

}  // namespace ocd::shard
