// Vertex partitioning for the sharded runtime.
//
// A Partition splits the vertex set into `num_shards` ownership classes.
// Each shard owns a contiguous-ish block of the overlay (BFS-grown, then
// greedily refined to shrink the edge cut) and additionally *ghosts* the
// vertices it can see but does not own: every non-owned endpoint of an
// arc incident to an owned vertex.  Ghosts are the read-only possession
// replicas the barrier protocol keeps fresh between steps, and the cut
// arc table is exactly the traffic that must cross shard boundaries.
//
// The partitioner is deterministic and seedless: the same (graph,
// options) always yields the same Partition, on every shard of every
// transport — the runtime relies on this to let each process derive the
// partition independently instead of shipping it.
//
// Two refinement stages run after the BFS-grown seed blocks:
//
//   * greedy sweeps — move vertices to their neighbor-majority shard
//     where the balance band allows it (cheap, local);
//   * flow refinement (opt-in) — FlowCutter-style pair improvement:
//     for every adjacent block pair, extract the region around the
//     boundary, contract the remainder of each block into an s/t
//     terminal, solve s-t max-flow over the unit-capacity undirected
//     skeleton (ocd/flow/max_flow.hpp), and adopt the min cut's
//     reassignment when it shrinks the pair cut within the band.
//
// Both stages honor the same balance band: with slack ε (percent,
// resolve_balance_eps / OCD_SHARD_BALANCE_EPS) ownership sizes may
// range over [max(1, ⌊n/k⌋ - ⌊ε·⌊n/k⌋/100⌋), ⌈n/k⌉ + ⌊ε·⌊n/k⌋/100⌋].
// ε = 0 keeps the historical exact band [⌊n/k⌋, ⌈n/k⌉] — note that
// band pins every class size when k | n, which froze the greedy sweep
// entirely until ε existed (flow refinement can still improve a tight
// band via offsetting swaps between the two sides).
#pragma once

#include <cstdint>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/graph/digraph.hpp"

namespace ocd::shard {

/// One arc whose endpoints live on different shards.
struct CutArc {
  ArcId arc = -1;
  std::int32_t from_shard = -1;
  std::int32_t to_shard = -1;
};

/// Edge-cut quality report, printed by bench/fig_shard and asserted
/// loosely by tests (a partitioner regression shows up as a cut blowup).
struct PartitionStats {
  std::int32_t num_shards = 1;
  std::int64_t total_arcs = 0;
  std::int64_t cut_arcs = 0;        ///< arcs crossing shards
  std::int64_t min_owned = 0;       ///< smallest ownership class
  std::int64_t max_owned = 0;       ///< largest ownership class
  std::int64_t total_ghosts = 0;    ///< sum of per-shard ghost counts

  [[nodiscard]] double cut_fraction() const noexcept {
    return total_arcs == 0
               ? 0.0
               : static_cast<double>(cut_arcs) /
                     static_cast<double>(total_arcs);
  }
};

struct Partition {
  std::int32_t num_shards = 1;
  /// Owning shard per vertex.
  std::vector<std::int32_t> shard_of;
  /// Owned vertices per shard, ascending.
  std::vector<std::vector<VertexId>> owned;
  /// Ghost vertices per shard (non-owned endpoints of arcs incident to
  /// owned vertices, either direction), ascending.
  std::vector<std::vector<VertexId>> ghosts;
  /// Cross-shard arcs, ascending arc id.
  std::vector<CutArc> cut_arcs;
  PartitionStats stats;
};

/// Resolves a balance-band slack request (percent of ⌊n/k⌋): values in
/// [0, 100] pass through, -1 consults OCD_SHARD_BALANCE_EPS (validated
/// as a non-negative integer <= 100, throwing ocd::Error on garbage),
/// defaulting to 0 — the historical exact band, so existing partitions
/// stay bit-compatible unless a caller or the environment opts in.
std::int32_t resolve_balance_eps(std::int32_t requested);

struct PartitionOptions {
  std::int32_t num_shards = 1;
  /// Greedy neighbor-majority refinement sweep budget (see below).
  std::int32_t refinement_sweeps = 1;
  /// Balance slack ε in percent; -1 = consult OCD_SHARD_BALANCE_EPS
  /// (default 0, the exact band).  See resolve_balance_eps.
  std::int32_t balance_eps = -1;
  /// Opt-in flow-based pair refinement after the greedy sweeps.  Off by
  /// default: the flow stage is bit-compatible only with itself.
  bool flow_refine = false;
  /// Per-side cap on the boundary region the flow stage extracts from
  /// each block of a pair; 0 picks max(256, 4 * (hi - lo + 1), 2 *
  /// boundary vertices on that side) — a region smaller than its own
  /// boundary cannot improve anything.  Either way a region never
  /// exceeds half its block, so the contracted core anchoring the s/t
  /// terminal stays non-empty.  Larger regions find better cuts and
  /// cost more flow time; the core outside the region is contracted
  /// into the s/t terminals either way, so any cap yields a valid
  /// refinement.
  std::int32_t flow_region_limit = 0;
};

/// Partitions the graph's vertices into `num_shards` ownership classes:
/// BFS-grow blocks of (near-)equal size in deterministic traversal
/// order, then up to `refinement_sweeps` greedy refinement sweeps, each
/// moving vertices to their neighbor-majority shard where that strictly
/// reduces the cut without breaking the size bounds.  Sweeps after the
/// first act on the previous sweep's labels, so they keep converging
/// toward a local cut minimum; the loop stops early at the first sweep
/// that moves nothing.  0 sweeps = raw BFS blocks; the runtime default
/// is 1 (bit-compatible with the historical single-sweep partition);
/// bench/fig_shard reports the cut reduction of deeper refinement.
/// Requires 1 <= num_shards <= num_vertices and refinement_sweeps >= 0.
Partition partition_vertices(const Digraph& graph, std::int32_t num_shards,
                             std::int32_t refinement_sweeps = 1);

/// As above with the full option set: the eps-relaxed balance band and,
/// when options.flow_refine is set, one pass of flow-based min-cut
/// refinement over every adjacent block pair in ascending (a, b) order
/// after the greedy sweeps.  A pair's reassignment is adopted only when
/// it strictly shrinks that pair's cut and both new sizes stay inside
/// the band (the source-reachable min cut is tried first, then the
/// sink-reaching one; if both are out of band the pair is retried on a
/// band-safe corridor whose region caps make every cut adoptable).
/// Deterministic and seedless like the two-arg
/// overload, which it generalizes: {k, sweeps, balance_eps: 0,
/// flow_refine: false} reproduces it bit-for-bit.
Partition partition_vertices(const Digraph& graph,
                             const PartitionOptions& options);

/// A shard's slice of an instance, relabeled to dense local ids — the
/// unit a genuinely distributed deployment would ship to a remote host
/// (BinStream-serializable via put_instance).  Local vertices are the
/// shard's owned plus ghost vertices in ascending global order; arcs
/// are every arc incident to an owned vertex (ghost-ghost arcs are
/// dropped — no owned planner ever consults them).  have/want are
/// copied for all local vertices so ghost possession can be seeded.
///
/// The one-host runtime does NOT plan on sub-instances — it keeps
/// global vertex ids and maps them onto shard-local possession rows
/// (StepView::set_row_map), which is what makes bit-identity with the
/// single-process simulator a per-vertex statement instead of a
/// relabeling argument.
struct SubInstance {
  core::Instance instance;
  /// Local vertex id -> global vertex id, ascending.
  std::vector<VertexId> to_global;
  /// Local arc id -> global arc id, ascending.
  std::vector<ArcId> arc_to_global;
};

SubInstance extract_sub_instance(const core::Instance& instance,
                                 const Partition& partition,
                                 std::int32_t shard);

}  // namespace ocd::shard
