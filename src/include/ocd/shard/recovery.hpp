// Crash tolerance for the vertex-sharded runtime.
//
// Three pieces, shared by both transports:
//
//   * Checkpoint — the complete restartable state of one ShardWorker
//     (possession rows incl. ghosts, replicated decision state, policy
//     RNG/cursor state, the fault cursor, shard-0 series, schedule
//     fragment), BinStream-encoded with the codec's usual hostile-input
//     discipline: every field is named, counts are bounds-checked, a
//     checkpoint presented to the wrong shard is rejected.
//
//   * CrashPlan — scripted crash/hang injection, the failure-side
//     mirror of faults::FaultPlan: exact (shard, step, phase) kill
//     points plus a seeded random model whose decisions derive per
//     (seed, shard, step, phase) so they are identical across
//     transports and respawns.  Scripted points and the random model
//     fire only on a worker's first incarnation (so a respawned worker
//     makes progress); crash_always() points fire on every incarnation
//     (for respawn-exhaustion tests).
//
//   * RecoveryOptions — the knobs run_sharded threads into the
//     transports: checkpoint cadence (0 consults
//     OCD_SHARD_CHECKPOINT_INTERVAL, else off), the per-shard respawn
//     budget, and an optional CrashPlan.
//
// The recovery invariant (pinned by tests/shard/recovery_test.cpp): a
// run with any schedule of injected crashes produces a schedule and
// RunStats bit-identical to the crash-free run, except the four
// recovery counters.  See docs/MODEL.md "Crash model & recovery".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ocd/core/schedule.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::util {
class BinStream;
}

namespace ocd::shard {

/// The barrier phases a worker can be killed in front of.  A crash
/// "at" a phase destroys the worker before the phase executes.  kWave
/// (the coordinated planners' summary round) fires only on runs that
/// actually execute a wave round — a kGlobal policy on > 1 shard; the
/// numeric values of the original three phases are pinned so seeded
/// random crash schedules stay stable.
enum class CrashPhase : std::uint8_t {
  kPlan = 0,
  kApply = 1,
  kCommit = 2,
  kWave = 3,
};

enum class CrashAction : std::uint8_t {
  kNone = 0,
  kCrash = 1,  ///< the worker dies (forked: _exit; in-process: discarded)
  kHang = 2,   ///< the worker wedges; detected when the barrier deadline
               ///< expires (in-process: handled as kCrash immediately)
};

[[nodiscard]] const char* crash_phase_name(CrashPhase phase) noexcept;

/// Scripted failure injection.  Build once, pass by pointer through
/// RecoveryOptions; both transports query it read-only (forked children
/// see a copy-on-write copy), so a const CrashPlan is safe to share.
class CrashPlan {
 public:
  /// Kill `shard` immediately before `phase` of `step` — first
  /// incarnation only, so the respawned worker completes the phase.
  CrashPlan& crash(std::int32_t shard, std::int64_t step, CrashPhase phase);
  /// As crash(), but the worker wedges instead of dying; only a barrier
  /// deadline surfaces it.
  CrashPlan& hang(std::int32_t shard, std::int64_t step, CrashPhase phase);
  /// Kill on every incarnation — the point never clears, so the shard
  /// exhausts its respawn budget (graceful-degradation tests).
  CrashPlan& crash_always(std::int32_t shard, std::int64_t step,
                          CrashPhase phase);
  /// Seeded random crashes: each (shard, step, phase) of a first
  /// incarnation crashes with probability `rate`, derived per
  /// coordinate (never drawn from a sequential stream), so the crash
  /// schedule is reproducible and transport-independent.
  CrashPlan& random_crashes(double rate, std::uint64_t seed);

  /// The action for a worker about to execute (shard, step, phase) in
  /// its `incarnation`-th life (0 = original).
  [[nodiscard]] CrashAction action(std::int32_t shard, std::int64_t step,
                                   CrashPhase phase,
                                   std::int32_t incarnation) const;

  [[nodiscard]] bool empty() const noexcept {
    return points_.empty() && rate_ <= 0.0;
  }

 private:
  struct Point {
    CrashAction action = CrashAction::kNone;
    bool every_incarnation = false;
  };
  std::map<std::tuple<std::int32_t, std::int64_t, std::uint8_t>, Point>
      points_;
  double rate_ = 0.0;
  std::uint64_t seed_ = 0;
};

/// Recovery knobs, embedded in ShardOptions.
struct RecoveryOptions {
  /// Checkpoint every N committed steps.  0 consults
  /// OCD_SHARD_CHECKPOINT_INTERVAL (validated positive integer),
  /// defaulting to off.  Checkpointing arms crash recovery: without it
  /// (and without a crash_plan) a dead or hung shard surfaces as a
  /// structured ocd::Error instead of being respawned.
  std::int64_t checkpoint_interval = 0;
  /// Respawn budget per shard; exceeding it throws an ocd::Error naming
  /// the shard, step, and phase.  0 = never respawn.
  std::int32_t max_respawns = 3;
  /// Optional scripted failure injection; must outlive the run.
  const CrashPlan* crash_plan = nullptr;
};

/// Resolves a requested checkpoint interval: positive passes through,
/// 0 consults OCD_SHARD_CHECKPOINT_INTERVAL (0 = off when unset),
/// negative throws.
std::int64_t resolve_checkpoint_interval(std::int64_t requested);

/// One worker's complete restartable state.  The codec (put_checkpoint
/// / get_checkpoint) is a plain record over the BinStream primitives so
/// the binstream hostile-encoding suite can hammer it directly;
/// ShardWorker::restore_checkpoint adds the shape checks that need the
/// live worker (row counts, universe, schedule presence).
struct Checkpoint {
  std::int32_t shard = 0;
  std::int32_t num_shards = 0;
  /// Committed steps at capture == the step the next plan would run.
  std::int64_t step = 0;
  /// How many begin_step() advances the fault model has consumed; a
  /// respawned forked worker fast-forwards its copy-on-write model by
  /// exactly this many steps.  Always equals `step` today; serialized
  /// separately so the invariant is checked, not assumed.
  std::int64_t fault_cursor = 0;
  std::int64_t unsatisfied = 0;
  std::int64_t local_unsatisfied = 0;
  std::int64_t no_progress = 0;
  /// Barrier traffic counters (sim/stats.hpp): checkpointed so a
  /// recovered run reports the crash-free totals — replay re-counts
  /// only the steps after the restore point.
  std::int64_t bytes_sent = 0;
  std::int64_t bytes_received = 0;
  std::int64_t summary_entries = 0;
  std::int64_t wave_fallbacks = 0;
  /// Owned + ghost possession rows, in the worker's row order.
  util::TokenMatrix possession;
  std::vector<char> satisfied;            ///< per owned slot
  std::vector<std::int64_t> completion;   ///< per owned slot, -1 pending
  /// Sparse upload counters: (vertex, count), vertex strictly
  /// increasing, count > 0.
  std::vector<std::pair<std::int64_t, std::int64_t>> sent_by;
  /// Replicated aggregate vectors; empty when the policy's knowledge
  /// class does not maintain them.
  std::vector<std::int32_t> holders;
  std::vector<std::int32_t> need;
  /// Opaque Policy::save_state payload.
  std::string policy_state;
  /// Shard-0-only global series (empty elsewhere).
  std::vector<std::int64_t> moves_per_step;
  std::vector<std::int64_t> lost_per_step;
  std::int64_t useful_total = 0;
  std::int64_t lost_total = 0;
  bool has_schedule = false;
  core::Schedule schedule;  ///< this shard's fragment (when recording)
  /// Coordinated "global" planning only: per recorded timestep, the
  /// global first-touch ordinal of each send (same length as the
  /// timestep's send list) — the merge key run_sharded uses to
  /// interleave fragments back into plan_step order.  Empty otherwise.
  std::vector<std::vector<std::int64_t>> schedule_ordinals;
};

void put_checkpoint(util::BinStream& out, const Checkpoint& checkpoint);

/// Decodes and validates a checkpoint record.  `expect_shard` >= 0
/// rejects a checkpoint captured by a different shard ("checkpoint from
/// the wrong shard") — the guard against a supervisor handing a
/// respawned worker a peer's state.
Checkpoint get_checkpoint(util::BinStream& in, const char* field,
                          std::int32_t expect_shard = -1);

/// Recovery counters a transport reports back to run_sharded; folded
/// into RunStats verbatim.
struct RecoveryStats {
  std::int64_t worker_crashes = 0;
  std::int64_t recoveries = 0;
  std::int64_t replayed_steps = 0;
  std::int64_t checkpoint_bytes = 0;
};

}  // namespace ocd::shard
