// Realistic topologies (§6 open problems):
//
// "In our work, we consider only the overlay topology, and not the
//  physical links making up our logical links.  We are likely ignoring
//  the reality that many of our logical links share the same physical
//  link, hence their capacities are not independent.  To properly model
//  this, we need to take into account physical links and routers, which
//  do not participate in overlay forwarding."
//
// project_overlay builds a router-level physical network, places
// overlay hosts on routers, routes each logical link along a shortest
// physical path, and derives:
//   * per-overlay-arc capacities (min physical capacity en route), and
//   * CapacityGroups — one per physical arc carrying >= 2 logical links,
//     capping the *sum* of tokens those links move per timestep.
// sim::GroupConstrainedPolicy (sim/group_adapter.hpp) enforces the
// groups on any policy; groups_respected() audits schedules.
#pragma once

#include <vector>

#include "ocd/core/schedule.hpp"
#include "ocd/graph/digraph.hpp"
#include "ocd/topology/random_graph.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::topology {

/// Overlay arcs sharing one physical arc: their per-timestep total may
/// not exceed `capacity`.
struct CapacityGroup {
  std::vector<ArcId> members;   ///< overlay arc ids
  std::int32_t capacity = 0;    ///< the shared physical arc's capacity
  ArcId physical_arc = -1;      ///< id in the physical graph (diagnostic)
};

struct OverlayProjection {
  Digraph physical;  ///< routers + links (hosts are a subset of routers)
  Digraph overlay;   ///< the logical graph the OCD instance runs on
  /// Physical router hosting each overlay vertex.
  std::vector<VertexId> host_router;
  /// Physical arcs traversed by each overlay arc (in path order).
  std::vector<std::vector<ArcId>> route;
  /// Sharing constraints (only physical arcs with >= 2 logical users).
  std::vector<CapacityGroup> groups;
};

struct PhysicalOptions {
  std::int32_t routers = 40;
  double router_edge_probability = 0.12;
  CapacityRange physical_capacities{6, 30};
  /// Overlay hosts (placed on distinct routers).  Must be <= routers.
  std::int32_t hosts = 12;
  double overlay_edge_probability = 0.4;
  /// Cap applied to derived overlay capacities (the paper's overlay
  /// weights live in [3,15]).
  std::int32_t max_overlay_capacity = 15;
};

/// Builds the physical network and the projected overlay.  The overlay
/// is strongly connected; every overlay arc has capacity >= 1.
OverlayProjection project_overlay(const PhysicalOptions& options, Rng& rng);

/// True when every timestep of `schedule` respects every group.
bool groups_respected(const std::vector<CapacityGroup>& groups,
                      const core::Schedule& schedule);

}  // namespace ocd::topology
