// Random overlay topologies.
//
// The paper's evaluation runs on "random graphs": undirected G(n, p)
// with p = 2 ln n / n (keeping the expected edge count O(n ln n) and the
// graph connected w.h.p.), realized as a pair of directed arcs whose
// capacities are drawn independently and uniformly from [3, 15] tokens.
#pragma once

#include <cstdint>

#include "ocd/graph/digraph.hpp"
#include "ocd/util/rng.hpp"

namespace ocd::topology {

/// Inclusive capacity range for generated arcs; the paper uses [3, 15].
struct CapacityRange {
  std::int32_t lo = 3;
  std::int32_t hi = 15;
};

struct RandomGraphOptions {
  /// Edge probability; <= 0 selects the paper's default 2 ln n / n.
  double edge_probability = 0.0;
  CapacityRange capacities;
  /// When true (default), augment a disconnected sample with a random
  /// Hamiltonian-cycle backbone so every generated instance is solvable.
  /// The augmentation adds at most n arcs per direction and is recorded
  /// in DESIGN.md as a (rare) deviation from pure G(n, p).
  bool force_connected = true;
};

/// The paper's default edge probability for an n-vertex random graph.
double default_edge_probability(std::int32_t n);

/// Samples an overlay graph: each unordered pair {u, v} becomes a
/// bidirectional pair of arcs with independent random capacities.
Digraph random_overlay(std::int32_t n, const RandomGraphOptions& options,
                       Rng& rng);

/// Convenience: paper defaults.
Digraph random_overlay(std::int32_t n, Rng& rng);

/// Sparse Erdős–Rényi sampler for million-vertex overlays.  Equivalent
/// in distribution to G(n, p) with p = expected_degree / (n - 1), but
/// realized with Batagelj–Brandes geometric skip sampling over the
/// ordered pair sequence, so the cost is O(n + |E|) instead of the
/// O(n^2) candidate loop in random_overlay.  A separate entry point —
/// NOT a fast path inside random_overlay — because the two consume the
/// rng differently; existing seeded topologies stay bit-identical.
/// Honors options.capacities and options.force_connected (Hamiltonian
/// backbone, as in random_overlay); options.edge_probability is ignored
/// in favor of expected_degree.
Digraph sparse_random_overlay(std::int32_t n, double expected_degree,
                              const RandomGraphOptions& options, Rng& rng);

/// Convenience: paper capacities [3, 15], forced connectivity.
Digraph sparse_random_overlay(std::int32_t n, double expected_degree,
                              Rng& rng);

}  // namespace ocd::topology
