// Session traces — the §6 "Arrivals and departures" variant made
// concrete:
//
// "In any real system, participants are unlikely to join
//  simultaneously...  This variant may be viewed as an instance of the
//  'Changing network conditions' with capacities to and from particular
//  nodes going from zero to non-zero and back depending on whether a
//  node is arriving or departing."
//
// A SessionTrace assigns each vertex a join step and an optional
// departure rule; SessionDynamics implements it as a DynamicsModel
// (absent vertices have zero incident capacity).  Generators produce
// the classic swarm shapes: steady Poisson-like arrivals and flash
// crowds.  Departure after completion models selfish peers that stop
// seeding `linger` steps after their own download finishes.
#pragma once

#include <optional>
#include <vector>

#include "ocd/dynamics/model.hpp"

namespace ocd::dynamics {

struct Session {
  std::int64_t join_step = 0;
  /// Steps the vertex keeps seeding after its wants complete; nullopt =
  /// stays forever (altruistic peer).
  std::optional<std::int64_t> linger_after_complete;
};

class SessionTrace {
 public:
  explicit SessionTrace(std::vector<Session> sessions);

  [[nodiscard]] const Session& session(VertexId v) const;
  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }

  /// Steady arrivals: geometric inter-arrival gaps with mean
  /// 1/arrival_rate; sources (nonempty have-sets) join at step 0.
  static SessionTrace steady(const core::Instance& instance,
                             double arrival_rate, Rng& rng);

  /// Flash crowd: everyone (but the always-present sources) joins within
  /// the first `burst_window` steps, uniformly.
  static SessionTrace flash_crowd(const core::Instance& instance,
                                  std::int64_t burst_window, Rng& rng);

 private:
  std::vector<Session> sessions_;
};

/// DynamicsModel view of a trace.  Vertices outside their session have
/// zero incident capacity; a vertex with a linger rule departs that many
/// steps after its wants first complete (completion is tracked through
/// the observe() hook the simulator calls with step-initial possession).
class SessionDynamics final : public DynamicsModel {
 public:
  explicit SessionDynamics(SessionTrace trace);

  [[nodiscard]] std::string_view name() const override { return "sessions"; }
  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void observe(std::int64_t step, const core::Instance& instance,
               const util::TokenMatrix& possession) override;
  void apply(std::int64_t step, const Digraph& graph,
             std::span<std::int32_t> capacity) override;

  [[nodiscard]] bool present(VertexId v, std::int64_t step) const;

 private:
  SessionTrace trace_;
  const core::Instance* instance_ = nullptr;
  std::vector<std::int64_t> completed_at_;  // -1 = not yet
};

}  // namespace ocd::dynamics
