// Changing network conditions (§6 open problems).
//
// "We can consider that the capacity of each arc, or even the set of
//  arcs themselves changes between turns.  By restricting the types of
//  possible changes, this could model cross traffic, dynamic channel
//  conditions, intermittent mobility, or even denial-of-service
//  attacks."  ...  "Arrivals and departures ... may be viewed as an
//  instance of 'Changing network conditions' with capacities to and
//  from particular nodes going from zero to non-zero and back."
//
// A DynamicsModel rewrites the per-arc effective capacities at the
// start of every timestep (0 disables an arc for the step).  The
// simulator hands policies the *effective* capacities through
// StepView::capacity — the "network oracle [with] knowledge of current
// network conditions" the paper compares against.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "ocd/core/instance.hpp"
#include "ocd/util/rng.hpp"
#include "ocd/util/token_matrix.hpp"

namespace ocd::dynamics {

class DynamicsModel {
 public:
  virtual ~DynamicsModel() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Called once per run before the first step.
  virtual void reset(const core::Instance& instance, std::uint64_t seed);

  /// Called once per step (before apply) with the step-initial
  /// possession (one TokenMatrix row per vertex) — lets state-dependent
  /// models (e.g. departure after completion) track progress.
  /// Default: ignored.
  virtual void observe(std::int64_t step, const core::Instance& instance,
                       const util::TokenMatrix& possession);

  /// Overwrites `capacity` (pre-initialized to the static capacities,
  /// one entry per arc) for this step.  Entries must stay >= 0.
  virtual void apply(std::int64_t step, const Digraph& graph,
                     std::span<std::int32_t> capacity) = 0;
};

/// Cross traffic: every step each arc's capacity is an independent
/// uniform draw from [floor(c*(1-intensity)), c], never below min_cap.
class CapacityJitter final : public DynamicsModel {
 public:
  explicit CapacityJitter(double intensity, std::int32_t min_capacity = 1);

  [[nodiscard]] std::string_view name() const override { return "jitter"; }
  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void apply(std::int64_t step, const Digraph& graph,
             std::span<std::int32_t> capacity) override;

 private:
  double intensity_;
  std::int32_t min_capacity_;
  Rng rng_{1};
};

/// Link churn: each up arc fails with probability `fail_probability`
/// per step and stays down for `outage_steps` steps (capacity 0).
class LinkChurn final : public DynamicsModel {
 public:
  LinkChurn(double fail_probability, std::int32_t outage_steps);

  [[nodiscard]] std::string_view name() const override { return "link-churn"; }
  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void apply(std::int64_t step, const Digraph& graph,
             std::span<std::int32_t> capacity) override;

 private:
  double fail_probability_;
  std::int32_t outage_steps_;
  std::vector<std::int64_t> down_until_;
  Rng rng_{1};
};

/// Node churn (arrivals & departures): each present vertex departs with
/// probability `leave_probability` per step; while absent (for
/// `absence_steps`), every incident arc has capacity 0.  Vertices keep
/// their state across absences (they re-join with what they had).
class NodeChurn final : public DynamicsModel {
 public:
  NodeChurn(double leave_probability, std::int32_t absence_steps);

  [[nodiscard]] std::string_view name() const override { return "node-churn"; }
  void reset(const core::Instance& instance, std::uint64_t seed) override;
  void apply(std::int64_t step, const Digraph& graph,
             std::span<std::int32_t> capacity) override;

  /// Vertices never taken down (defaults to every vertex with a
  /// nonempty initial have-set, so content cannot vanish entirely).
  void set_pinned(std::vector<VertexId> pinned);

 private:
  double leave_probability_;
  std::int32_t absence_steps_;
  std::vector<std::int64_t> away_until_;
  std::vector<bool> pinned_;
  std::vector<VertexId> pinned_vertices_;
  bool pinned_overridden_ = false;
  Rng rng_{1};
};

}  // namespace ocd::dynamics
