// Exact EOCD/FOCD solving through the time-indexed IP (§3.4).
#pragma once

#include <optional>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"
#include "ocd/exact/ip_builder.hpp"
#include "ocd/lp/mip.hpp"

namespace ocd::exact {

struct IpSolveResult {
  core::Schedule schedule;
  std::int64_t bandwidth = 0;
  bool proven_optimal = false;
  std::int64_t nodes_explored = 0;
};

/// Minimum-bandwidth schedule within `horizon` timesteps (EOCD with a
/// makespan budget), or nullopt when infeasible within the horizon or
/// the solver budget was exhausted without an incumbent.
std::optional<IpSolveResult> solve_eocd(const core::Instance& instance,
                                        std::int32_t horizon,
                                        const lp::MipOptions& options = {});

/// Linear-programming lower bound on the EOCD optimum within
/// `horizon` timesteps: the §3.4 IP's relaxation objective.  Stronger
/// than the simple counting bound whenever relaying is unavoidable
/// (every relay hop costs fractional mass too).  Returns nullopt when
/// the relaxation is infeasible (horizon too small) or the simplex
/// budget is exhausted.
std::optional<double> lp_bandwidth_lower_bound(
    const core::Instance& instance, std::int32_t horizon,
    const lp::SimplexOptions& options = {});

struct MakespanResult {
  std::int32_t makespan = 0;
  core::Schedule schedule;
};

/// Minimum makespan (FOCD) by sweeping the horizon upward from the
/// combinatorial lower bound until the IP becomes feasible.  Returns
/// nullopt when no horizon <= max_horizon is feasible.
std::optional<MakespanResult> min_makespan_ip(
    const core::Instance& instance, std::int32_t max_horizon,
    const lp::MipOptions& options = {});

}  // namespace ocd::exact
