// Combinatorial branch-and-bound search for FOCD / DFOCD (the paper's
// "simple algorithm ... and a branch-and-bound search strategy").
//
// The search enumerates timestep plans depth-first.  Three observations
// keep it tractable on the small instances the paper targets:
//
//  1. Dominance — for makespan, sending *more* useful tokens never
//     hurts (possession is monotone), so every arc sends exactly
//     min(capacity, |useful|) tokens and branching only happens over
//     *which* tokens when an arc's useful set exceeds its capacity.
//  2. Last-step exactness — whether all outstanding wants can be
//     satisfied in one final step is a bipartite transportation
//     feasibility question, decided exactly by max-flow instead of
//     enumeration.
//  3. Memoization + bounds — possession states that already failed with
//     at least as many steps remaining are pruned, as are states whose
//     distance/capacity lower bound exceeds the remaining budget.
//
// The solver throws ocd::Error when branching would exceed the
// configured node budget, rather than silently degrading to a heuristic.
#pragma once

#include <cstdint>
#include <optional>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"

namespace ocd::exact {

struct BnbOptions {
  /// Hard cap on search nodes before giving up with ocd::Error.
  std::int64_t max_nodes = 5'000'000;
  /// Hard cap on candidate plans enumerated per timestep.
  std::int64_t max_plans_per_step = 2'000'000;
};

struct BnbStats {
  std::int64_t nodes = 0;
  std::int64_t memo_hits = 0;
  std::int64_t bound_prunes = 0;
  std::int64_t flow_checks = 0;
};

/// DFOCD: is the instance satisfiable within `tau` timesteps?
/// When satisfiable and `out_schedule` is non-null, a witness schedule of
/// length <= tau is stored there.
bool dfocd_feasible(const core::Instance& instance, std::int32_t tau,
                    const BnbOptions& options = {},
                    core::Schedule* out_schedule = nullptr,
                    BnbStats* stats = nullptr);

struct BnbMakespanResult {
  std::int32_t makespan = 0;
  core::Schedule schedule;
  BnbStats stats;
};

/// FOCD: minimum makespan by iterative deepening from the combinatorial
/// lower bound.  nullopt when unsatisfiable or `max_tau` exceeded.
std::optional<BnbMakespanResult> focd_min_makespan(
    const core::Instance& instance, std::int32_t max_tau,
    const BnbOptions& options = {});

}  // namespace ocd::exact
