// The paper's time-indexed integer program (§3.4).
//
// For a horizon of tau timesteps we create binary variables
//   hold[v][t][i]  — vertex v possesses token t at the start of step i+1
//                    (i = 0..tau; i = 0 encodes the initial assignment,
//                    realized as fixed bounds),
//   send[a][t][i]  — token t crosses arc a during timestep i (1..tau),
// and constraints
//   possession:  send[a][t][i]   <= hold[tail(a)][t][i-1]
//   no minting:  hold[v][t][i]   <= hold[v][t][i-1] + sum_in send[a][t][i]
//   capacity:    sum_t send[a][t][i] <= c(a)
//   wants:       hold[v][t][tau] = 1 for t in w(v)   (via fixed bounds)
// with objective  min  sum send  (EOCD restricted to the horizon).
//
// Any IP solution maps back to a valid distribution schedule; see
// extract_schedule.
#pragma once

#include <cstdint>
#include <optional>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"
#include "ocd/lp/model.hpp"

namespace ocd::exact {

/// The built model plus the variable index maps needed to read back a
/// schedule from a solution vector.
class TimeIndexedIp {
 public:
  TimeIndexedIp(const core::Instance& instance, std::int32_t horizon);

  [[nodiscard]] const lp::LinearProgram& program() const noexcept {
    return program_;
  }
  [[nodiscard]] std::int32_t horizon() const noexcept { return horizon_; }

  /// Variable index of send[arc][token][step] with step in 1..horizon.
  [[nodiscard]] std::int32_t send_var(ArcId arc, TokenId token,
                                      std::int32_t step) const;

  /// Variable index of hold[vertex][token][step] with step in 0..horizon.
  [[nodiscard]] std::int32_t hold_var(VertexId vertex, TokenId token,
                                      std::int32_t step) const;

  /// Reads a schedule out of a solution vector (values in {0,1} within
  /// tolerance).  The result has exactly `horizon` timesteps; callers
  /// may trim().
  [[nodiscard]] core::Schedule extract_schedule(
      const std::vector<double>& solution) const;

 private:
  const core::Instance& instance_;
  std::int32_t horizon_ = 0;
  lp::LinearProgram program_;
  // Index bases: send vars laid out arc-major then token then step;
  // hold vars vertex-major then token then step.
  std::int32_t send_base_ = 0;
  std::int32_t hold_base_ = 0;
};

}  // namespace ocd::exact
