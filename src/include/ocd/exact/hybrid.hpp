// The hybrid time/bandwidth objective sketched at the end of §3.4:
// "search for a bandwidth-optimal solution subject to the constraint
// that the time be no more than some constant factor of the optimal
// time".
//
// solve_hybrid computes the FOCD optimum T*, then minimizes bandwidth
// under the horizon ceil(slack * T*).  bandwidth_time_frontier sweeps
// the horizon upward from T*, tracing the Pareto front until the
// bandwidth optimum stops improving (it is non-increasing in the
// horizon and bounded below by the bandwidth lower bound).
#pragma once

#include <optional>
#include <vector>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"
#include "ocd/lp/mip.hpp"

namespace ocd::exact {

struct HybridResult {
  std::int32_t optimal_makespan = 0;  ///< T* from the FOCD sweep
  std::int32_t horizon = 0;           ///< the budget actually used
  std::int64_t bandwidth = 0;
  core::Schedule schedule;
};

/// Bandwidth-optimal within `slack` x the optimal makespan.
/// Requires slack >= 1.  nullopt when unsatisfiable or over budget.
std::optional<HybridResult> solve_hybrid(const core::Instance& instance,
                                         double slack,
                                         const lp::MipOptions& options = {});

/// One frontier point per horizon T*, T*+1, ..., stopping after the
/// bandwidth optimum stabilizes for `patience` consecutive horizons or
/// `max_points` points were produced.
std::vector<HybridResult> bandwidth_time_frontier(
    const core::Instance& instance, std::int32_t max_points = 6,
    std::int32_t patience = 2, const lp::MipOptions& options = {});

}  // namespace ocd::exact
