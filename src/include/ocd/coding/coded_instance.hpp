// Encoding (§6 open problems):
//
// "In our problem, we consider a static set of tokens ... it may be
//  useful to introduce redundancy into the system by generating
//  multiple sub-tokens, only a subset of which are necessary to
//  reconstruct the original token."
//
// We model an MDS-style code at the file level: a file of `data`
// original tokens is published as `coded >= data` coded pieces, and a
// receiver has the file once it holds ANY `data` of those pieces.  The
// pieces are ordinary tokens to the transport (heuristics are
// unchanged); only the *completion condition* weakens from "all wanted
// tokens" to "enough pieces of every wanted file", which plugs into the
// simulator through SimOptions::completion.
#pragma once

#include <functional>
#include <vector>

#include "ocd/core/instance.hpp"

namespace ocd::coding {

/// One coded file: pieces occupy token ids [first, first+coded).
struct CodedFile {
  TokenId first = 0;
  std::int32_t data = 0;   ///< pieces needed to reconstruct
  std::int32_t coded = 0;  ///< pieces published

  [[nodiscard]] TokenSet pieces(std::size_t universe) const;
};

/// An OCD instance whose success criterion is piece-threshold based.
class CodedInstance {
 public:
  CodedInstance(core::Instance instance, std::vector<CodedFile> files,
                std::vector<std::vector<std::int32_t>> wanted_files);

  [[nodiscard]] const core::Instance& instance() const noexcept {
    return instance_;
  }
  [[nodiscard]] const std::vector<CodedFile>& files() const noexcept {
    return files_;
  }
  /// Indices into files() wanted by vertex v.
  [[nodiscard]] const std::vector<std::int32_t>& wanted_files(
      VertexId v) const;

  /// True when `possession` reconstructs every file v wants.
  [[nodiscard]] bool vertex_satisfied(VertexId v,
                                      TokenSetView possession) const;

  /// Completion predicate pluggable into sim::SimOptions::completion.
  [[nodiscard]] std::function<bool(VertexId, TokenSetView)>
  completion_predicate() const;

 private:
  core::Instance instance_;
  std::vector<CodedFile> files_;
  std::vector<std::vector<std::int32_t>> wanted_files_;
};

/// Single-source broadcast of one coded file: `data_tokens` expanded by
/// `redundancy` (>= 1.0; coded = round(data * redundancy)).  Every
/// vertex but the source wants the file; the underlying instance's want
/// sets list all coded pieces (so flooding heuristics chase them), the
/// coded completion stops at the threshold.
CodedInstance coded_broadcast(Digraph graph, std::int32_t data_tokens,
                              double redundancy, VertexId source);

}  // namespace ocd::coding
