// Deterministic intra-run parallelism: a lazily started, process-shared
// worker pool plus parallel_for / parallel_reduce primitives whose
// results are bit-identical for ANY worker count.
//
// The determinism contract, which every user of this header relies on
// (the planner wave scan, the simulator apply phase, the bench sweep
// grid):
//  * Chunking is FIXED: the number of chunks and their boundaries are a
//    pure function of (range size, grain) — never of the thread count,
//    the machine, or scheduling.  parallel_chunk_count/parallel_chunk
//    expose the exact split so callers can pre-size per-chunk scratch.
//  * Each chunk writes only to storage indexed by its chunk index (or
//    disjoint slices of shared output), so which worker executes a
//    chunk — the only scheduling freedom — cannot change any output.
//  * Merges are ORDERED: parallel_reduce combines per-chunk results in
//    ascending chunk index on the calling thread.  No atomics-ordering-
//    dependent output exists anywhere in the runtime.
//  * Exceptions propagate deterministically: every chunk always runs
//    (no cancellation), and the pending exception of the LOWEST chunk
//    index is rethrown on the caller once the region drains.
//
// Worker budget: OCD_JOBS when set (validated — garbage or non-positive
// values throw ocd::Error), a set_parallel_jobs() override for tests
// and benchmarks, hardware concurrency otherwise.  OCD_JOBS=1 runs
// every primitive inline on the caller with no pool interaction at all:
// the serial path is the jobs==1 special case of the same code.
//
// Nesting: a parallel_for issued from inside a pool worker (e.g. a
// planner step inside a bench sweep row) runs inline and serially on
// that worker.  Sweep-level and intra-run parallelism therefore share
// one budget instead of multiplying, and the pool cannot deadlock on
// itself.
//
// Allocation: publishing a region allocates nothing — the callable is
// type-erased through a stack-held context pointer, completion is a
// mutex/condvar handshake, and per-chunk bookkeeping lives in fixed
// pool storage.  Worker threads are spawned lazily on first use (and
// grown on demand); steady-state parallel steps are heap-free, which
// tests/sim/alloc_count_test.cpp asserts.
#pragma once

#include <array>
#include <cstddef>
#include <utility>

#include "ocd/util/error.hpp"

namespace ocd::util {

/// Hard cap on chunks per region.  Small enough that per-chunk scratch
/// (TokenMatrix rows, counter slots) stays cheap to pre-size, large
/// enough to load-balance any realistic OCD_JOBS.
inline constexpr std::size_t kMaxParallelChunks = 64;

/// One contiguous slice [begin, end) of a parallel range, plus its
/// fixed chunk index (stable across thread counts).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;
};

/// Parses an OCD_JOBS-style value.  Throws ocd::Error naming the
/// variable unless `text` is a plain positive integer.
unsigned parse_jobs_value(const char* text);

/// The current worker budget: the set_parallel_jobs override when set,
/// else OCD_JOBS from the environment (validated via parse_jobs_value),
/// else hardware concurrency (minimum 1).
unsigned parallel_jobs();

/// Programmatic budget override (tests, benchmarks).  0 clears the
/// override, restoring environment/hardware resolution.
void set_parallel_jobs(unsigned jobs);

/// True on a pool worker thread (where parallel primitives run inline).
bool on_parallel_worker();

/// True when a parallel_for issued here would actually fan out.
inline bool parallel_active() {
  return !on_parallel_worker() && parallel_jobs() > 1;
}

/// Number of chunks [0, kMaxParallelChunks] a range of `n` items splits
/// into with at least `grain` items per chunk.  Pure function of its
/// arguments — the heart of the determinism contract.
inline std::size_t parallel_chunk_count(std::size_t n, std::size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  const std::size_t wanted = (n + grain - 1) / grain;
  return wanted < kMaxParallelChunks ? wanted : kMaxParallelChunks;
}

/// Bounds of chunk `index` of the fixed split of [0, n).  Chunks are
/// contiguous, non-overlapping, cover the range exactly, and differ in
/// size by at most one item.
inline ChunkRange parallel_chunk(std::size_t n, std::size_t grain,
                                 std::size_t index) {
  const std::size_t chunks = parallel_chunk_count(n, grain);
  OCD_EXPECTS(index < chunks);
  return {index * n / chunks, (index + 1) * n / chunks, index};
}

namespace detail {

/// Runs chunks [0, n_chunks) of the published region on the shared
/// pool, using at most `workers` threads (caller included).  Returns
/// false — having run nothing — when the region should run inline
/// instead (single chunk, budget of one, or already on a worker).
/// Rethrows the lowest-chunk exception after the region drains.
bool pool_run(std::size_t n_chunks, unsigned workers,
              void (*invoke)(void*, std::size_t), void* ctx);

}  // namespace detail

/// Runs fn(ChunkRange) for every chunk of the fixed split of [0, n),
/// using at most `workers` threads (an explicit cap that OVERRIDES the
/// parallel_jobs() budget — bench sweeps pass their own count through
/// here).  Blocks until all chunks finished.  fn must write only
/// chunk-indexed / disjoint outputs (see the determinism contract
/// above); it may be invoked concurrently.
template <typename Fn>
void parallel_for_capped(std::size_t n, std::size_t grain, unsigned workers,
                         Fn&& fn) {
  const std::size_t chunks = parallel_chunk_count(n, grain);
  if (chunks == 0) return;
  struct Ctx {
    Fn* fn;
    std::size_t n, grain;
  } ctx{&fn, n, grain};
  const auto invoke = [](void* p, std::size_t index) {
    Ctx* c = static_cast<Ctx*>(p);
    (*c->fn)(parallel_chunk(c->n, c->grain, index));
  };
  if (chunks == 1 || !detail::pool_run(chunks, workers, +invoke, &ctx)) {
    for (std::size_t i = 0; i < chunks; ++i)
      fn(parallel_chunk(n, grain, i));
  }
}

/// parallel_for_capped with the full parallel_jobs() budget.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
  parallel_for_capped(n, grain, parallel_jobs(), std::forward<Fn>(fn));
}

/// Chunked reduction: map(ChunkRange) -> T per chunk (in parallel),
/// then merge(acc, chunk_result) folded in ascending chunk order on the
/// calling thread — an ordered merge, so the result is bit-identical
/// for any worker count even when merge is not associative.  T must be
/// default-constructible (per-chunk slots live in a fixed array).
template <typename T, typename Map, typename Merge>
T parallel_reduce(std::size_t n, std::size_t grain, T init, Map map,
                  Merge merge) {
  const std::size_t chunks = parallel_chunk_count(n, grain);
  if (chunks == 0) return init;
  std::array<T, kMaxParallelChunks> slots{};
  parallel_for(n, grain,
               [&](ChunkRange chunk) { slots[chunk.index] = map(chunk); });
  T acc = std::move(init);
  for (std::size_t i = 0; i < chunks; ++i)
    acc = merge(std::move(acc), std::move(slots[i]));
  return acc;
}

}  // namespace ocd::util
