// TokenSet: a fixed-universe dynamic bitset over token ids.
//
// Possession sets p_i(v), have/want sets, per-arc send sets and all
// aggregate vectors in the simulator are TokenSets.  The universe size m
// (|T|) is fixed at construction; all binary operations require equal
// universes, which is enforced with contract checks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "ocd/util/error.hpp"

namespace ocd {

using TokenId = std::int32_t;

class TokenSet {
 public:
  /// Empty set over an empty universe.
  TokenSet() = default;

  /// Empty set over a universe of `universe` tokens (ids 0..universe-1).
  explicit TokenSet(std::size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  /// Full set over a universe of `universe` tokens.
  static TokenSet full(std::size_t universe);

  /// Set containing exactly the listed tokens.
  static TokenSet of(std::size_t universe, std::initializer_list<TokenId> ids);

  [[nodiscard]] std::size_t universe_size() const noexcept { return universe_; }

  [[nodiscard]] bool test(TokenId t) const {
    OCD_EXPECTS(in_universe(t));
    return (words_[word_of(t)] >> bit_of(t)) & 1ULL;
  }

  void set(TokenId t) {
    OCD_EXPECTS(in_universe(t));
    words_[word_of(t)] |= 1ULL << bit_of(t);
  }

  void reset(TokenId t) {
    OCD_EXPECTS(in_universe(t));
    words_[word_of(t)] &= ~(1ULL << bit_of(t));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of tokens in the set.
  [[nodiscard]] std::size_t count() const noexcept;

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] bool any() const noexcept { return !empty(); }

  /// True when every token of this set is also in `other`.
  [[nodiscard]] bool is_subset_of(const TokenSet& other) const;

  [[nodiscard]] bool intersects(const TokenSet& other) const;

  TokenSet& operator|=(const TokenSet& other);
  TokenSet& operator&=(const TokenSet& other);
  /// Set difference: removes every token of `other`.
  TokenSet& operator-=(const TokenSet& other);
  TokenSet& operator^=(const TokenSet& other);

  friend TokenSet operator|(TokenSet a, const TokenSet& b) { return a |= b; }
  friend TokenSet operator&(TokenSet a, const TokenSet& b) { return a &= b; }
  friend TokenSet operator-(TokenSet a, const TokenSet& b) { return a -= b; }
  friend TokenSet operator^(TokenSet a, const TokenSet& b) { return a ^= b; }

  bool operator==(const TokenSet& other) const = default;

  /// Smallest token id in the set, or -1 when empty.
  [[nodiscard]] TokenId first() const noexcept;

  /// Smallest token id >= t in the set, or -1 when none.
  [[nodiscard]] TokenId next(TokenId t) const;

  /// Smallest token id >= t in the set wrapping around the universe
  /// (circular scan), or -1 when the set is empty.  Used by the
  /// round-robin heuristic.
  [[nodiscard]] TokenId next_circular(TokenId t) const;

  /// Invokes fn(TokenId) for every member in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        fn(static_cast<TokenId>(wi * 64 + static_cast<std::size_t>(b)));
        w &= w - 1;
      }
    }
  }

  /// Smallest id present in both sets, or -1 when the intersection is
  /// empty.  Word-parallel; neither set is materialized.
  [[nodiscard]] static TokenId first_in_intersection(const TokenSet& a,
                                                     const TokenSet& b);

  /// |a & b| without materializing the intersection.
  [[nodiscard]] static std::size_t count_intersection(const TokenSet& a,
                                                      const TokenSet& b);

  /// Masked-word iteration: invokes fn for every id of a & b in
  /// increasing order.  fn may return void, or bool to stop early
  /// (false = stop).  Returns false iff the iteration was stopped.
  template <typename Fn>
  static bool for_each_in_intersection(const TokenSet& a, const TokenSet& b,
                                       Fn&& fn) {
    a.check_same_universe(b);
    for (std::size_t wi = 0; wi < a.words_.size(); ++wi) {
      std::uint64_t w = a.words_[wi] & b.words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        const auto t =
            static_cast<TokenId>(wi * 64 + static_cast<std::size_t>(bit));
        if constexpr (std::is_invocable_r_v<bool, Fn&, TokenId>) {
          if (!fn(t)) return false;
        } else {
          fn(t);
        }
        w &= w - 1;
      }
    }
    return true;
  }

  /// Members as a vector, in increasing order.
  [[nodiscard]] std::vector<TokenId> to_vector() const;

  /// Keep only the first k members (lowest ids); no-op when count() <= k.
  void truncate(std::size_t k);

  /// "{0,3,7}" rendering for diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// FNV-style hash usable in unordered containers and memo tables.
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Raw word access (read-only) for bulk algorithms.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  [[nodiscard]] bool in_universe(TokenId t) const noexcept {
    return t >= 0 && static_cast<std::size_t>(t) < universe_;
  }
  static std::size_t word_of(TokenId t) noexcept {
    return static_cast<std::size_t>(t) / 64;
  }
  static unsigned bit_of(TokenId t) noexcept {
    return static_cast<unsigned>(t) % 64;
  }
  void check_same_universe(const TokenSet& other) const {
    OCD_EXPECTS(universe_ == other.universe_);
  }

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

struct TokenSetHash {
  std::size_t operator()(const TokenSet& s) const noexcept { return s.hash(); }
};

}  // namespace ocd
