// TokenSet: a fixed-universe dynamic bitset over token ids, plus the
// non-owning TokenSetView / MutableTokenSetView span types that share
// its word-level kernel API.
//
// Possession sets p_i(v), have/want sets, per-arc send sets and all
// aggregate vectors in the simulator are token sets.  The universe size
// m (|T|) is fixed at construction; all binary operations require equal
// universes, which is enforced with contract checks.
//
// The views exist for the flat-memory hot path: a TokenMatrix (see
// ocd/util/token_matrix.hpp) stores every per-vertex bitset row-major
// in one contiguous buffer, and hands out views onto its rows.  A view
// is two words (pointer + universe); every kernel — count, first/next,
// for_each, the intersection kernels — is implemented once on views,
// and TokenSet delegates to them.  A TokenSet converts implicitly to a
// TokenSetView, so every kernel accepts either representation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "ocd/util/error.hpp"
#include "ocd/util/simd.hpp"

namespace ocd {

using TokenId = std::int32_t;

class TokenSet;

/// Read-only view of a token set: a borrowed span of 64-bit words plus
/// the universe size.  The referee storage must outlive the view and
/// hold (universe + 63) / 64 words.
class TokenSetView {
 public:
  constexpr TokenSetView() noexcept = default;
  constexpr TokenSetView(const std::uint64_t* words,
                         std::size_t universe) noexcept
      : words_(words), universe_(universe) {}
  /// Implicit: any TokenSet can be passed where a view is expected.
  TokenSetView(const TokenSet& set) noexcept;  // NOLINT(runtime/explicit)

  [[nodiscard]] constexpr std::size_t universe_size() const noexcept {
    return universe_;
  }
  [[nodiscard]] constexpr std::size_t num_words() const noexcept {
    return (universe_ + 63) / 64;
  }

  [[nodiscard]] bool test(TokenId t) const {
    OCD_EXPECTS(in_universe(t));
    return (words_[word_of(t)] >> bit_of(t)) & 1ULL;
  }

  /// Number of tokens in the set.
  [[nodiscard]] std::size_t count() const {
    return util::simd::kernels().count(words_, num_words());
  }

  [[nodiscard]] bool empty() const noexcept {
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi)
      if (words_[wi] != 0) return false;
    return true;
  }
  [[nodiscard]] bool any() const noexcept { return !empty(); }

  /// True when every token of this set is also in `other`.
  [[nodiscard]] bool is_subset_of(TokenSetView other) const {
    check_same_universe(other);
    return util::simd::kernels().is_subset(words_, other.words_, num_words());
  }

  [[nodiscard]] bool intersects(TokenSetView other) const {
    check_same_universe(other);
    return util::simd::kernels().intersects(words_, other.words_, num_words());
  }

  /// Smallest token id in the set, or -1 when empty.
  [[nodiscard]] TokenId first() const noexcept {
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi) {
      if (words_[wi] != 0) {
        return static_cast<TokenId>(
            wi * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[wi])));
      }
    }
    return -1;
  }

  /// Smallest token id >= t in the set, or -1 when none.
  [[nodiscard]] TokenId next(TokenId t) const {
    if (t < 0) t = 0;
    if (static_cast<std::size_t>(t) >= universe_) return -1;
    std::size_t wi = word_of(t);
    const std::size_t e = num_words();
    std::uint64_t w = words_[wi] & (~0ULL << bit_of(t));
    while (true) {
      if (w != 0) {
        return static_cast<TokenId>(
            wi * 64 + static_cast<std::size_t>(__builtin_ctzll(w)));
      }
      if (++wi >= e) return -1;
      w = words_[wi];
    }
  }

  /// Smallest token id >= t in the set wrapping around the universe
  /// (circular scan), or -1 when the set is empty.  Used by the
  /// round-robin heuristic.
  [[nodiscard]] TokenId next_circular(TokenId t) const {
    if (universe_ == 0) return -1;
    if (t < 0 || static_cast<std::size_t>(t) >= universe_) t = 0;
    const TokenId found = next(t);
    if (found >= 0) return found;
    return first();
  }

  /// Invokes fn(TokenId) for every member in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        fn(static_cast<TokenId>(wi * 64 + static_cast<std::size_t>(b)));
        w &= w - 1;
      }
    }
  }

  /// Smallest id present in both sets, or -1 when the intersection is
  /// empty.  Word-parallel; neither set is materialized.
  [[nodiscard]] static TokenId first_in_intersection(TokenSetView a,
                                                     TokenSetView b) {
    a.check_same_universe(b);
    const std::size_t e = a.num_words();
    const std::size_t wi =
        util::simd::kernels().first_and_word(a.words_, b.words_, 0, e);
    if (wi >= e) return -1;
    return static_cast<TokenId>(
        wi * 64 + static_cast<std::size_t>(
                      __builtin_ctzll(a.words_[wi] & b.words_[wi])));
  }

  /// |a & b| without materializing the intersection.
  [[nodiscard]] static std::size_t count_intersection(TokenSetView a,
                                                      TokenSetView b) {
    a.check_same_universe(b);
    return util::simd::kernels().count_intersection(a.words_, b.words_,
                                                    a.num_words());
  }

  /// Masked-word iteration: invokes fn for every id of a & b in
  /// increasing order.  fn may return void, or bool to stop early
  /// (false = stop).  Returns false iff the iteration was stopped.
  /// Nonzero masked words are consumed bit by bit exactly as before;
  /// runs of zero masked words are skipped through the vectorized
  /// first_and_word kernel, so dense iterations pay no dispatch cost
  /// and sparse ones scan whole vectors at a time.
  template <typename Fn>
  static bool for_each_in_intersection(TokenSetView a, TokenSetView b,
                                       Fn&& fn) {
    a.check_same_universe(b);
    const std::size_t e = a.num_words();
    for (std::size_t wi = 0; wi < e; ++wi) {
      std::uint64_t w = a.words_[wi] & b.words_[wi];
      if (w == 0) {
        wi = util::simd::kernels().first_and_word(a.words_, b.words_, wi + 1,
                                                  e);
        if (wi >= e) break;
        w = a.words_[wi] & b.words_[wi];
      }
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        const auto t =
            static_cast<TokenId>(wi * 64 + static_cast<std::size_t>(bit));
        if constexpr (std::is_invocable_r_v<bool, Fn&, TokenId>) {
          if (!fn(t)) return false;
        } else {
          fn(t);
        }
        w &= w - 1;
      }
    }
    return true;
  }

  /// Members as a vector, in increasing order.
  [[nodiscard]] std::vector<TokenId> to_vector() const {
    std::vector<TokenId> out;
    out.reserve(count());
    for_each([&](TokenId t) { out.push_back(t); });
    return out;
  }

  /// Members appended into `out` (cleared first; capacity is reused).
  void to_vector_into(std::vector<TokenId>& out) const {
    out.clear();
    for_each([&](TokenId t) { out.push_back(t); });
  }

  /// "{0,3,7}" rendering for diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// Raw word access (read-only) for bulk algorithms.
  [[nodiscard]] const std::uint64_t* words_data() const noexcept {
    return words_;
  }
  [[nodiscard]] std::uint64_t word(std::size_t wi) const noexcept {
    return words_[wi];
  }

  /// Mask of the valid bits in the last word (all ones when the
  /// universe is a multiple of 64).
  [[nodiscard]] constexpr std::uint64_t tail_mask() const noexcept {
    const unsigned rem = static_cast<unsigned>(universe_ % 64);
    return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  }

  /// Tail-word invariant: bits at index >= universe in the last word
  /// are zero.  Every kernel — scalar and vectorized alike — iterates
  /// whole words, so popcounts and scans are only correct under this
  /// invariant.  Mutation paths assert it after any word-level write;
  /// callers of mutable_words() that fill or complement raw words must
  /// re-establish it (mask with tail_mask()) before using any kernel.
  void assert_tail_zero() const {
    OCD_ASSERT_MSG(
        universe_ == 0 || (words_[num_words() - 1] & ~tail_mask()) == 0,
        "tail bits past the universe must stay zero");
  }

  friend bool operator==(TokenSetView a, TokenSetView b) noexcept {
    if (a.universe_ != b.universe_) return false;
    for (std::size_t wi = 0, e = a.num_words(); wi < e; ++wi)
      if (a.words_[wi] != b.words_[wi]) return false;
    return true;
  }

 protected:
  [[nodiscard]] bool in_universe(TokenId t) const noexcept {
    return t >= 0 && static_cast<std::size_t>(t) < universe_;
  }
  static std::size_t word_of(TokenId t) noexcept {
    return static_cast<std::size_t>(t) / 64;
  }
  static unsigned bit_of(TokenId t) noexcept {
    return static_cast<unsigned>(t) % 64;
  }
  void check_same_universe(TokenSetView other) const {
    OCD_EXPECTS(universe_ == other.universe_);
  }

  const std::uint64_t* words_ = nullptr;
  std::size_t universe_ = 0;
};

/// Mutable view of a token set (e.g. a TokenMatrix row).  Mutating
/// methods are const in the span sense: the view itself is a cheap
/// handle; constness of the referee is decided at construction.
class MutableTokenSetView : public TokenSetView {
 public:
  constexpr MutableTokenSetView() noexcept = default;
  constexpr MutableTokenSetView(std::uint64_t* words,
                                std::size_t universe) noexcept
      : TokenSetView(words, universe) {}
  /// Implicit: any mutable TokenSet can be passed where a mutable view
  /// is expected.
  MutableTokenSetView(TokenSet& set) noexcept;  // NOLINT(runtime/explicit)

  void set(TokenId t) const {
    OCD_EXPECTS(in_universe(t));
    mut()[word_of(t)] |= 1ULL << bit_of(t);
  }

  void reset(TokenId t) const {
    OCD_EXPECTS(in_universe(t));
    mut()[word_of(t)] &= ~(1ULL << bit_of(t));
  }

  void clear() const noexcept {
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi) mut()[wi] = 0;
  }

  /// Same-universe overwrite.
  void assign(TokenSetView other) const {
    check_same_universe(other);
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi)
      mut()[wi] = other.word(wi);
    assert_tail_zero();
  }

  const MutableTokenSetView& operator|=(TokenSetView other) const {
    check_same_universe(other);
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi)
      mut()[wi] |= other.word(wi);
    assert_tail_zero();
    return *this;
  }

  const MutableTokenSetView& operator&=(TokenSetView other) const {
    check_same_universe(other);
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi)
      mut()[wi] &= other.word(wi);
    return *this;
  }

  /// Set difference: removes every token of `other`.
  const MutableTokenSetView& operator-=(TokenSetView other) const {
    check_same_universe(other);
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi)
      mut()[wi] &= ~other.word(wi);
    return *this;
  }

  const MutableTokenSetView& operator^=(TokenSetView other) const {
    check_same_universe(other);
    for (std::size_t wi = 0, e = num_words(); wi < e; ++wi)
      mut()[wi] ^= other.word(wi);
    assert_tail_zero();
    return *this;
  }

  /// Fused simulator-apply kernel: in one pass over memory,
  ///   fresh = src - dst (set difference), dst |= src,
  /// returning |fresh| — the tokens of `src` genuinely new to `dst`.
  /// Equivalent to the assign / subtract / count / or-assign sequence
  /// the apply phase used to issue, at a quarter of the word traffic.
  /// All three views must share a universe.
  static std::size_t apply_fresh_union(MutableTokenSetView dst,
                                       TokenSetView src,
                                       MutableTokenSetView fresh) {
    dst.check_same_universe(src);
    dst.check_same_universe(fresh);
    const std::size_t n = util::simd::kernels().fresh_union_apply(
        dst.mut(), src.words_data(), fresh.mut(), dst.num_words());
    dst.assert_tail_zero();
    return n;
  }

  /// apply_fresh_union that additionally folds the fresh set into an
  /// accumulator: uni |= fresh.  The sharded apply phase keeps the
  /// union of a destination's fresh deliveries for the serial merge.
  static std::size_t apply_fresh_union_merge(MutableTokenSetView dst,
                                             MutableTokenSetView uni,
                                             TokenSetView src,
                                             MutableTokenSetView fresh) {
    dst.check_same_universe(src);
    dst.check_same_universe(fresh);
    dst.check_same_universe(uni);
    const std::size_t n = util::simd::kernels().fresh_union_apply_merge(
        dst.mut(), uni.mut(), src.words_data(), fresh.mut(), dst.num_words());
    dst.assert_tail_zero();
    return n;
  }

  [[nodiscard]] std::uint64_t* mutable_words() const noexcept { return mut(); }

 private:
  // The pointer was taken from mutable storage at construction, so the
  // cast only restores what the base class type erased.
  [[nodiscard]] std::uint64_t* mut() const noexcept {
    return const_cast<std::uint64_t*>(words_);
  }
};

class TokenSet {
 public:
  /// Empty set over an empty universe.
  TokenSet() = default;

  /// Empty set over a universe of `universe` tokens (ids 0..universe-1).
  explicit TokenSet(std::size_t universe)
      : universe_(universe), words_((universe + 63) / 64, 0) {}

  /// Owning copy of a view's contents.
  explicit TokenSet(TokenSetView view)
      : universe_(view.universe_size()),
        words_(view.words_data(), view.words_data() + view.num_words()) {}

  /// Full set over a universe of `universe` tokens.
  static TokenSet full(std::size_t universe);

  /// Set containing exactly the listed tokens.
  static TokenSet of(std::size_t universe, std::initializer_list<TokenId> ids);

  [[nodiscard]] std::size_t universe_size() const noexcept { return universe_; }

  [[nodiscard]] bool test(TokenId t) const {
    OCD_EXPECTS(in_universe(t));
    return (words_[word_of(t)] >> bit_of(t)) & 1ULL;
  }

  void set(TokenId t) {
    OCD_EXPECTS(in_universe(t));
    words_[word_of(t)] |= 1ULL << bit_of(t);
  }

  void reset(TokenId t) {
    OCD_EXPECTS(in_universe(t));
    words_[word_of(t)] &= ~(1ULL << bit_of(t));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Overwrites this set with the view's contents, adopting its
  /// universe.  Reuses the existing word storage when it is large
  /// enough — the allocation-free path the simulator hot loop uses.
  TokenSet& assign(TokenSetView view) {
    universe_ = view.universe_size();
    words_.assign(view.words_data(), view.words_data() + view.num_words());
    return *this;
  }

  /// Number of tokens in the set.
  [[nodiscard]] std::size_t count() const {
    return TokenSetView(*this).count();
  }

  [[nodiscard]] bool empty() const noexcept {
    return TokenSetView(*this).empty();
  }
  [[nodiscard]] bool any() const noexcept { return !empty(); }

  /// True when every token of this set is also in `other`.
  [[nodiscard]] bool is_subset_of(TokenSetView other) const {
    return TokenSetView(*this).is_subset_of(other);
  }

  [[nodiscard]] bool intersects(TokenSetView other) const {
    return TokenSetView(*this).intersects(other);
  }

  TokenSet& operator|=(TokenSetView other) {
    MutableTokenSetView(*this) |= other;
    return *this;
  }
  TokenSet& operator&=(TokenSetView other) {
    MutableTokenSetView(*this) &= other;
    return *this;
  }
  /// Set difference: removes every token of `other`.
  TokenSet& operator-=(TokenSetView other) {
    MutableTokenSetView(*this) -= other;
    return *this;
  }
  TokenSet& operator^=(TokenSetView other) {
    MutableTokenSetView(*this) ^= other;
    return *this;
  }

  friend TokenSet operator|(TokenSet a, TokenSetView b) { return a |= b; }
  friend TokenSet operator&(TokenSet a, TokenSetView b) { return a &= b; }
  friend TokenSet operator-(TokenSet a, TokenSetView b) { return a -= b; }
  friend TokenSet operator^(TokenSet a, TokenSetView b) { return a ^= b; }

  bool operator==(const TokenSet& other) const = default;

  /// Smallest token id in the set, or -1 when empty.
  [[nodiscard]] TokenId first() const noexcept {
    return TokenSetView(*this).first();
  }

  /// Smallest token id >= t in the set, or -1 when none.
  [[nodiscard]] TokenId next(TokenId t) const {
    return TokenSetView(*this).next(t);
  }

  /// Smallest token id >= t in the set wrapping around the universe
  /// (circular scan), or -1 when the set is empty.  Used by the
  /// round-robin heuristic.
  [[nodiscard]] TokenId next_circular(TokenId t) const {
    return TokenSetView(*this).next_circular(t);
  }

  /// Invokes fn(TokenId) for every member in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    TokenSetView(*this).for_each(std::forward<Fn>(fn));
  }

  /// Smallest id present in both sets, or -1 when the intersection is
  /// empty.  Word-parallel; neither set is materialized.
  [[nodiscard]] static TokenId first_in_intersection(TokenSetView a,
                                                     TokenSetView b) {
    return TokenSetView::first_in_intersection(a, b);
  }

  /// |a & b| without materializing the intersection.
  [[nodiscard]] static std::size_t count_intersection(TokenSetView a,
                                                      TokenSetView b) {
    return TokenSetView::count_intersection(a, b);
  }

  /// Masked-word iteration: invokes fn for every id of a & b in
  /// increasing order.  fn may return void, or bool to stop early
  /// (false = stop).  Returns false iff the iteration was stopped.
  template <typename Fn>
  static bool for_each_in_intersection(TokenSetView a, TokenSetView b,
                                       Fn&& fn) {
    return TokenSetView::for_each_in_intersection(a, b, std::forward<Fn>(fn));
  }

  /// Members as a vector, in increasing order.
  [[nodiscard]] std::vector<TokenId> to_vector() const {
    return TokenSetView(*this).to_vector();
  }

  /// Members into `out` (cleared first), in increasing order; reuses
  /// the vector's capacity.
  void to_vector_into(std::vector<TokenId>& out) const {
    TokenSetView(*this).to_vector_into(out);
  }

  /// Keep only the first k members (lowest ids); no-op when count() <= k.
  void truncate(std::size_t k);

  /// "{0,3,7}" rendering for diagnostics.
  [[nodiscard]] std::string to_string() const;

  /// FNV-style hash usable in unordered containers and memo tables.
  [[nodiscard]] std::size_t hash() const noexcept;

  /// Raw word access (read-only) for bulk algorithms.
  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  [[nodiscard]] bool in_universe(TokenId t) const noexcept {
    return t >= 0 && static_cast<std::size_t>(t) < universe_;
  }
  static std::size_t word_of(TokenId t) noexcept {
    return static_cast<std::size_t>(t) / 64;
  }
  static unsigned bit_of(TokenId t) noexcept {
    return static_cast<unsigned>(t) % 64;
  }

  std::size_t universe_ = 0;
  std::vector<std::uint64_t> words_;
};

inline TokenSetView::TokenSetView(const TokenSet& set) noexcept
    : words_(set.words().data()), universe_(set.universe_size()) {}

inline MutableTokenSetView::MutableTokenSetView(TokenSet& set) noexcept
    : TokenSetView(set) {}

struct TokenSetHash {
  std::size_t operator()(const TokenSet& s) const noexcept { return s.hash(); }
};

}  // namespace ocd
