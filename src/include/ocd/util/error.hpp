// Error and contract-checking primitives shared by every ocd module.
//
// Following the C++ Core Guidelines (I.5, I.7, E.2): preconditions and
// invariants are checked with the OCD_EXPECTS / OCD_ENSURES / OCD_ASSERT
// macros which throw ocd::ContractViolation (so tests can observe them),
// while recoverable user-facing failures throw ocd::Error subclasses.
#pragma once

#include <stdexcept>
#include <string>

namespace ocd {

/// Base class for all recoverable errors raised by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a caller violates a documented precondition or when an
/// internal invariant is found broken.
class ContractViolation : public Error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line, const std::string& msg);

  [[nodiscard]] const char* expression() const noexcept { return expr_; }

 private:
  const char* expr_;
};

namespace detail {
[[noreturn]] void throw_contract_violation(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const std::string& msg);
}  // namespace detail

}  // namespace ocd

/// Precondition check: callers must satisfy `cond`.
#define OCD_EXPECTS(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ocd::detail::throw_contract_violation("precondition",     \
                                                    #cond, __FILE__,    \
                                                    __LINE__, {}))

/// Postcondition check: the implementation promises `cond` on exit.
#define OCD_ENSURES(cond)                                                \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ocd::detail::throw_contract_violation("postcondition",    \
                                                    #cond, __FILE__,    \
                                                    __LINE__, {}))

/// Internal invariant check.
#define OCD_ASSERT(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ocd::detail::throw_contract_violation("invariant", #cond, \
                                                    __FILE__, __LINE__, {}))

/// Invariant check with a formatted explanation.
#define OCD_ASSERT_MSG(cond, msg)                                        \
  ((cond) ? static_cast<void>(0)                                         \
          : ::ocd::detail::throw_contract_violation("invariant", #cond, \
                                                    __FILE__, __LINE__, \
                                                    (msg)))
