// Rarity-ranked token selection kernels shared by the planning
// heuristics.
//
// Every §5.1 heuristic repeatedly picks "the rarest eligible token" out
// of some candidate set, under a priority permutation rebuilt each step
// from the global aggregates (holder counts, optionally need counts,
// optionally a random tie-break).  Scanning that permutation token by
// token costs O(universe) per pick; the kernel here instead permutes
// token sets into *rank space* — bit r of a ranked set is the token at
// priority rank r — where a pick is a word-parallel first-set-bit over
// masked words and a capacity-bounded fill is a masked-word iteration.
#pragma once

#include <span>
#include <vector>

#include "ocd/util/rng.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd {

/// Bijection between token ids and priority ranks, plus the permutation
/// kernels to move TokenSets in and out of rank space.  Rebuilt (not
/// reallocated) once per planning step.
class RarityRanker {
 public:
  RarityRanker() = default;

  /// Adopts an explicit priority order (order[r] = token at rank r);
  /// must be a permutation of 0..m-1.
  void assign(std::vector<TokenId> order);

  /// Priority by ascending holder count.  When `rng` is non-null the
  /// ties are broken by a random shuffle applied before the stable
  /// sort — the exact shuffle-then-stable-sort sequence the heuristics
  /// have always used, so rng consumption is unchanged; with a null
  /// `rng` ties keep token-id order.
  void assign_by_rarity(std::span<const std::int32_t> holders, Rng* rng);

  /// Tokens somebody still needs (need > 0) first, then ascending
  /// holder count within each class; same tie-break contract as
  /// assign_by_rarity.
  void assign_by_need_then_rarity(std::span<const std::int32_t> holders,
                                  std::span<const std::int32_t> need,
                                  Rng* rng);

  [[nodiscard]] std::size_t universe_size() const noexcept {
    return order_.size();
  }

  /// Token id at priority rank r.
  [[nodiscard]] TokenId token_at(TokenId rank) const {
    OCD_EXPECTS(rank >= 0 && static_cast<std::size_t>(rank) < order_.size());
    return order_[static_cast<std::size_t>(rank)];
  }

  /// Priority rank of token t.
  [[nodiscard]] TokenId rank_of(TokenId token) const {
    OCD_EXPECTS(token >= 0 && static_cast<std::size_t>(token) < rank_.size());
    return rank_[static_cast<std::size_t>(token)];
  }

  /// Permutes a token-space set into rank space.
  [[nodiscard]] TokenSet to_ranks(TokenSetView tokens) const;

  /// Permutes a rank-space set back into token space.
  [[nodiscard]] TokenSet to_tokens(TokenSetView ranked) const;

  /// In-place variants: `out` must span the same universe; it is
  /// cleared and overwritten.  Allocation-free.
  void to_ranks_into(TokenSetView tokens, MutableTokenSetView out) const;
  void to_tokens_into(TokenSetView ranked, MutableTokenSetView out) const;

 private:
  /// Rebuilds rank_ from order_, validating the permutation.
  void rebuild_rank();
  /// Sorts order_ by the packed (class, position) keys in keys_.
  void sort_by_keys();

  std::vector<TokenId> order_;  ///< rank -> token
  std::vector<TokenId> rank_;   ///< token -> rank
  // Per-rebuild scratch, reused across steps so assign_by_* never
  // allocates in steady state.  keys_ packs (sort key << 32 | position)
  // so an in-place std::sort reproduces the stable_sort order exactly.
  std::vector<std::uint64_t> keys_;
  std::vector<TokenId> scratch_order_;
};

/// The shared pick: rarest token (lowest rank) present in both ranked
/// sets, mapped back to its token id; -1 when the sets are disjoint.
[[nodiscard]] TokenId rarest_in_intersection(const RarityRanker& ranker,
                                             TokenSetView ranked_a,
                                             TokenSetView ranked_b);

}  // namespace ocd
