// Deterministic pseudo-random number generation.
//
// All randomized components of the library (topology generators, the
// Random/Local heuristics, workload builders) draw from ocd::Rng so that
// every experiment is reproducible from a single 64-bit seed.  The
// implementation is xoshiro256** seeded via SplitMix64, which is fast,
// has a tiny state, and is of far higher quality than std::minstd;
// unlike std::mt19937 its output is identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ocd/util/error.hpp"

namespace ocd {

/// SplitMix64: used to expand a single seed into xoshiro state, and
/// useful on its own for hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive a stream seed from a base seed plus two coordinates (e.g.
/// (step, vertex) or (step, arc)).  Used wherever a randomized
/// component must draw the same values regardless of which shard or
/// thread evaluates it: instead of one sequential stream whose
/// consumption order depends on the execution schedule, each
/// coordinate pair gets an independent seed that any evaluator derives
/// identically.  Chained SplitMix64 finalizers keep the mapping
/// well-mixed in both coordinates.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t a,
                                 std::uint64_t b) noexcept {
  SplitMix64 s1(base);
  std::uint64_t x = s1.next();
  SplitMix64 s2(x ^ a);
  x = s2.next();
  SplitMix64 s3(x ^ b);
  return s3.next();
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator so it can
/// be used with <random> distributions if ever needed, but the member
/// helpers below are preferred (stable across platforms).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, n).  Requires n > 0.  Uses Lemire rejection to avoid
  /// modulo bias.
  std::uint64_t below(std::uint64_t n);

  /// Uniform real in [0, 1).
  double uniform_real() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// As sample_indices, but writes into `out` (left holding exactly the
  /// k samples) reusing its capacity — allocation-free once out has
  /// capacity n.  Draw sequence is identical to sample_indices.
  void sample_indices_into(std::size_t n, std::size_t k,
                           std::vector<std::size_t>& out);

  /// Derive an independent child generator; used to give each component
  /// (per heuristic, per repetition) its own stream.
  Rng split() noexcept;

  /// The raw xoshiro256** state, for checkpoint/restore.  A generator
  /// restored via set_state() continues the exact output sequence of
  /// the generator state() was read from.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return s_;
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept { s_ = s; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace ocd
