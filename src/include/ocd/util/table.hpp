// Console table / CSV writer used by the bench harnesses to print the
// paper's figure series in a readable, diff-friendly form.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ocd {

/// A cell is a string, an integer, or a double (printed with fixed
/// precision).
using TableCell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<TableCell> row);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return headers_.size();
  }

  /// Aligned, boxed console rendering.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV rendering (quotes cells containing separators).
  void print_csv(std::ostream& out) const;

  /// Number of fraction digits used when rendering doubles (default 2).
  void set_precision(int digits);

 private:
  [[nodiscard]] std::string render_cell(const TableCell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_ = 2;
};

}  // namespace ocd
