// TokenMatrix: a dense rows x universe bitset matrix in one contiguous
// uint64_t buffer, row-major.
//
// This is the flat-memory backing store for all per-vertex token state
// in the simulator: possession p_i(v), want sets, knowledge snapshots.
// Each row is a fixed-universe bitset laid out exactly like a
// TokenSet's word vector, so rows are handed out as TokenSetView /
// MutableTokenSetView and every word-level kernel in token_set.hpp
// works on them unchanged.
//
// Ownership rules:
//  - The matrix owns the words.  Views returned by row() borrow; they
//    are invalidated by reset() / operator= (which may reallocate) but
//    NOT by row mutations, clear(), or copy_from() (in-place writes).
//  - reset() reuses the existing allocation when the new shape fits,
//    which is what makes per-run reuse allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ocd/util/error.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd::util {

class TokenMatrix {
 public:
  TokenMatrix() = default;
  TokenMatrix(std::size_t rows, std::size_t universe) {
    reset(rows, universe);
  }

  /// Reshape to rows x universe with every bit zero.  Reuses the
  /// existing word buffer when it is large enough.
  void reset(std::size_t rows, std::size_t universe) {
    rows_ = rows;
    universe_ = universe;
    words_per_row_ = (universe + 63) / 64;
    words_.assign(rows_ * words_per_row_, 0);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t universe_size() const noexcept {
    return universe_;
  }
  [[nodiscard]] std::size_t words_per_row() const noexcept {
    return words_per_row_;
  }

  [[nodiscard]] TokenSetView row(std::size_t r) const {
    OCD_EXPECTS(r < rows_);
    return {words_.data() + r * words_per_row_, universe_};
  }
  [[nodiscard]] MutableTokenSetView row(std::size_t r) {
    OCD_EXPECTS(r < rows_);
    return {words_.data() + r * words_per_row_, universe_};
  }

  /// Same-universe overwrite of one row.
  void assign_row(std::size_t r, TokenSetView contents) {
    row(r).assign(contents);
  }

  /// Zero every bit; shape is unchanged.
  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// In-place copy of an identically shaped matrix (no reallocation).
  void copy_from(const TokenMatrix& other) {
    OCD_EXPECTS(rows_ == other.rows_ && universe_ == other.universe_);
    words_ = other.words_;  // equal size: copies into existing storage
  }

  bool operator==(const TokenMatrix& other) const = default;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t universe_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ocd::util
