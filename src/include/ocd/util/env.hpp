// Shared environment-variable parsing.
//
// Every numeric knob in the runtime family (OCD_JOBS worker budget,
// OCD_SHARDS shard count, OCD_SHARD_CHECKPOINT_INTERVAL recovery
// cadence) means "a validated positive integer, or a hard error" —
// never a silent fallback, because a typo'd budget that quietly runs
// serial (or unsharded, or checkpoint-free) is a measurement bug.  The
// three knobs share one parser so they also share one error wording.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace ocd::util {

/// Parses `text` (an environment variable's value; nullptr is treated
/// as empty and rejected) as a positive integer in [1, max_value].
/// Throws ocd::Error "<name> must be a positive integer, got '<text>'"
/// on empty/garbage/non-positive/overflowing input — the wording every
/// caller of the OCD_* integer knobs shares.
std::int64_t parse_env_int(
    std::string_view name, const char* text,
    std::int64_t max_value = std::numeric_limits<std::int32_t>::max());

/// As parse_env_int, but 0 is a legal value: for knobs where zero means
/// "feature off" rather than "misconfigured" (OCD_SHARD_BALANCE_EPS's
/// exact balance band).  Error wording: "<name> must be a non-negative
/// integer, got '<text>'", with the same bare-digit contract.
std::int64_t parse_env_nonneg_int(
    std::string_view name, const char* text,
    std::int64_t max_value = std::numeric_limits<std::int32_t>::max());

}  // namespace ocd::util
