// Compact binary serialization for cross-shard messages and state
// shipping (the husky engine's BinStream idiom: one append-only byte
// buffer, typed put/get pairs, no schema negotiation).
//
// The vertex-sharded runtime moves three kinds of payload through this
// layer — sub-instances, possession snapshots, and per-step delivery
// batches — so the encoding favors the shapes those produce:
//   * varint (LEB128) for every count and id: delivery batches are
//     dominated by small arc ids and short token lists;
//   * TokenSets carry a one-byte encoding tag chosen per set — raw
//     words when dense, delta-coded sorted ids when sparse — so a
//     capacity-bounded delivery over a 4096-token universe costs a few
//     bytes, not half a kilobyte;
//   * fixed-width little-endian for the word payloads, independent of
//     host endianness.
//
// Every read names the field being decoded; a truncated or corrupted
// stream throws ocd::Error whose message carries that field name, so a
// transport bug reports "truncated reading 'delivery.tokens'" instead
// of a silent misparse.  Reads never trust the buffer: counts are
// bounds-checked before allocation, token ids must be strictly
// increasing and inside the declared universe, and raw bitset words
// must keep their tail bits clear.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ocd/core/instance.hpp"
#include "ocd/core/schedule.hpp"
#include "ocd/util/error.hpp"
#include "ocd/util/token_matrix.hpp"
#include "ocd/util/token_set.hpp"

namespace ocd::util {

class BinStream {
 public:
  BinStream() = default;
  /// Adopts `bytes` for reading (read position starts at 0).
  explicit BinStream(std::string bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }
  /// Moves the buffer out (e.g. to hand it to a transport frame).
  [[nodiscard]] std::string take() && { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::size_t read_pos() const noexcept { return pos_; }
  /// True when every byte has been consumed — message decoders check
  /// this to reject trailing garbage.
  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }
  void clear() {
    bytes_.clear();
    pos_ = 0;
  }

  // ---- writers -------------------------------------------------------
  void put_u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// LEB128; the encoding for every count and id.
  void put_varint(std::uint64_t v);
  /// Signed values that are almost always small and non-negative
  /// (capacities, step numbers): zig-zag + LEB128.
  void put_varint_signed(std::int64_t v);
  void put_bytes(const void* data, std::size_t n);
  void put_string(std::string_view s);

  // ---- readers (throw ocd::Error naming `field` on failure) ----------
  std::uint8_t get_u8(const char* field);
  std::uint32_t get_u32(const char* field);
  std::uint64_t get_u64(const char* field);
  std::int64_t get_i64(const char* field) {
    return static_cast<std::int64_t>(get_u64(field));
  }
  double get_f64(const char* field);
  bool get_bool(const char* field);
  std::uint64_t get_varint(const char* field);
  std::int64_t get_varint_signed(const char* field);
  std::string get_string(const char* field);

  /// Decoder-side validation helper: throws ocd::Error naming `field`
  /// when `cond` is false.
  void require(bool cond, const char* field, const char* why) const;

 private:
  [[noreturn]] void fail_truncated(const char* field,
                                   std::size_t need) const;
  const char* read_span(const char* field, std::size_t n);

  std::string bytes_;
  std::size_t pos_ = 0;
};

// ---- TokenSet --------------------------------------------------------
/// Encodes universe + contents with a per-set density tag: raw words
/// when dense, strictly-increasing delta-coded ids when sparse.
void put_token_set(BinStream& stream, TokenSetView tokens);
/// Decodes a TokenSet written by put_token_set; validates the tag, the
/// id ordering/bounds, and (raw encoding) the tail-bit invariant.
TokenSet get_token_set(BinStream& stream, const char* field);
/// As get_token_set, but decodes into `out` (cleared first); the
/// declared universe must match out's.  The allocation-free path for
/// fixed-universe payloads (delivery batches into matrix rows).
void get_token_set_into(BinStream& stream, const char* field,
                        MutableTokenSetView out);

// ---- TokenMatrix (possession snapshots) ------------------------------
void put_token_matrix(BinStream& stream, const TokenMatrix& matrix);
TokenMatrix get_token_matrix(BinStream& stream, const char* field);

// ---- graph / instance / schedule -------------------------------------
void put_digraph(BinStream& stream, const Digraph& graph);
Digraph get_digraph(BinStream& stream, const char* field);

void put_instance(BinStream& stream, const core::Instance& instance);
core::Instance get_instance(BinStream& stream, const char* field);

void put_schedule(BinStream& stream, const core::Schedule& schedule);
core::Schedule get_schedule(BinStream& stream, const char* field);

}  // namespace ocd::util
