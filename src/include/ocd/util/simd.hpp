// Runtime-dispatched SIMD word kernels for the TokenSet/TokenMatrix
// layer.
//
// Every hot bitset kernel (intersection popcounts, first-set scans,
// subset/intersects tests, the fused fresh-union apply of the simulator
// apply phase) exists in up to three bit-identical implementations:
//
//   scalar   portable uint64 loops — the reference semantics
//   avx2     256-bit paths (4 words/vector, pshufb-LUT popcounts)
//   avx512   512-bit paths (8 words/vector, vpopcntq popcounts)
//
// The active implementation is picked ONCE at first kernel use from
//   1. the set_simd_level() override (tests, benchmarks), else
//   2. the OCD_SIMD environment variable — one of "scalar", "avx2",
//      "avx512", validated exactly like OCD_JOBS: garbage or a level
//      the host cannot run throws ocd::Error naming the variable, else
//   3. the highest level both the CPU (cpuid-probed) and this build
//      (per-file -mavx2/-mavx512* TUs) support.
//
// Dispatch is a single table pointer: callers go through kernels(),
// one acquire load + an indirect call.  All levels consume exactly
// num_words() whole words — vector loops use unaligned loads and hand
// the sub-vector remainder to scalar code, so no kernel ever reads
// past the word array (ASan-clean) and none needs alignment beyond
// alignof(uint64_t) (no aligned-load UB for UBSan to find).  Bits at
// index >= universe in the last word must be zero — the tail-word
// invariant token_set.hpp asserts in its mutation paths — which is
// what lets every level process whole words without masking.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "ocd/util/error.hpp"

namespace ocd::util::simd {

/// Dispatch levels, ordered: a higher level strictly requires more ISA.
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar" / "avx2" / "avx512".
[[nodiscard]] const char* level_name(Level level) noexcept;

/// The word-kernel dispatch table.  One instance per implementation
/// level; all entries are bit-identical across levels (the contract the
/// differential fuzz suite in tests/util/token_matrix_test.cpp checks).
struct Kernels {
  /// popcount over n words.
  std::size_t (*count)(const std::uint64_t* a, std::size_t n);
  /// popcount of a & b over n words, nothing materialized.
  std::size_t (*count_intersection)(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n);
  /// (a & ~b) == 0 over n words.
  bool (*is_subset)(const std::uint64_t* a, const std::uint64_t* b,
                    std::size_t n);
  /// (a & b) != 0 over n words.
  bool (*intersects)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n);
  /// Smallest wi in [from, n) with (a[wi] & b[wi]) != 0, or n.  The
  /// word-skipping engine behind first_in_intersection and the sparse
  /// stretches of for_each_in_intersection.
  std::size_t (*first_and_word)(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t from,
                                std::size_t n);
  /// Fused simulator-apply kernel: fresh = src & ~dst, dst |= src,
  /// returns popcount(fresh).  One pass over memory instead of the
  /// assign / subtract / count / or-assign four-pass sequence.
  std::size_t (*fresh_union_apply)(std::uint64_t* dst,
                                   const std::uint64_t* src,
                                   std::uint64_t* fresh, std::size_t n);
  /// fresh_union_apply that additionally folds fresh into a second
  /// accumulator: uni |= fresh (the sharded apply phase keeps the union
  /// of a destination's fresh sets for the serial merge).
  std::size_t (*fresh_union_apply_merge)(std::uint64_t* dst,
                                         std::uint64_t* uni,
                                         const std::uint64_t* src,
                                         std::uint64_t* fresh, std::size_t n);
};

/// Highest level this host can actually run: min(cpuid support, levels
/// compiled into this binary).  Probed once, never throws.
[[nodiscard]] Level max_supported_level() noexcept;

/// Parses an OCD_SIMD-style value ("scalar" | "avx2" | "avx512").
/// Throws ocd::Error naming the variable for anything else.  Pure —
/// does not consult the CPU; resolution checks support separately.
[[nodiscard]] Level parse_level_value(const char* text);

/// The level the dispatch table currently resolves to (forcing
/// resolution, so this can throw on an invalid OCD_SIMD).
[[nodiscard]] Level active_level();

/// Programmatic override (tests, benchmarks): forces `level` for every
/// subsequent kernel call.  Throws ocd::Error when the host cannot run
/// it.  Takes precedence over OCD_SIMD until clear_simd_level().
void set_simd_level(Level level);

/// Clears the override, restoring OCD_SIMD / cpuid resolution.
void clear_simd_level();

namespace detail {

/// Null until first resolution; set_simd_level() / clear_simd_level()
/// re-resolve it.  Readers go through kernels().
extern std::atomic<const Kernels*> g_kernels;

/// Resolves override -> OCD_SIMD -> cpuid, publishes and returns the
/// table.  Throws ocd::Error on an invalid or unsupported OCD_SIMD.
const Kernels* resolve_kernels();

}  // namespace detail

/// The active dispatch table.  First call resolves (and may throw on a
/// bad OCD_SIMD); afterwards this is one atomic load.
inline const Kernels& kernels() {
  const Kernels* k = detail::g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) k = detail::resolve_kernels();
  return *k;
}

}  // namespace ocd::util::simd
