#include "ocd/coding/coded_instance.hpp"

#include <cmath>

namespace ocd::coding {

TokenSet CodedFile::pieces(std::size_t universe) const {
  TokenSet s(universe);
  for (std::int32_t i = 0; i < coded; ++i) s.set(first + i);
  return s;
}

CodedInstance::CodedInstance(core::Instance instance,
                             std::vector<CodedFile> files,
                             std::vector<std::vector<std::int32_t>> wanted)
    : instance_(std::move(instance)),
      files_(std::move(files)),
      wanted_files_(std::move(wanted)) {
  OCD_EXPECTS(wanted_files_.size() ==
              static_cast<std::size_t>(instance_.num_vertices()));
  for (const CodedFile& file : files_) {
    OCD_EXPECTS(file.first >= 0);
    OCD_EXPECTS(file.data >= 1 && file.coded >= file.data);
    OCD_EXPECTS(file.first + file.coded <= instance_.num_tokens());
  }
  for (const auto& list : wanted_files_) {
    for (std::int32_t f : list)
      OCD_EXPECTS(f >= 0 && static_cast<std::size_t>(f) < files_.size());
  }
}

const std::vector<std::int32_t>& CodedInstance::wanted_files(
    VertexId v) const {
  OCD_EXPECTS(instance_.graph().valid_vertex(v));
  return wanted_files_[static_cast<std::size_t>(v)];
}

bool CodedInstance::vertex_satisfied(VertexId v,
                                     TokenSetView possession) const {
  OCD_EXPECTS(instance_.graph().valid_vertex(v));
  for (std::int32_t f : wanted_files_[static_cast<std::size_t>(v)]) {
    const CodedFile& file = files_[static_cast<std::size_t>(f)];
    // Count held pieces of this file; early exit at the threshold.
    std::int32_t held = 0;
    for (std::int32_t i = 0; i < file.coded && held < file.data; ++i) {
      if (possession.test(file.first + i)) ++held;
    }
    if (held < file.data) return false;
  }
  return true;
}

std::function<bool(VertexId, TokenSetView)>
CodedInstance::completion_predicate() const {
  return [this](VertexId v, TokenSetView possession) {
    return vertex_satisfied(v, possession);
  };
}

CodedInstance coded_broadcast(Digraph graph, std::int32_t data_tokens,
                              double redundancy, VertexId source) {
  OCD_EXPECTS(data_tokens >= 1);
  OCD_EXPECTS(redundancy >= 1.0);
  const auto coded = static_cast<std::int32_t>(
      std::lround(static_cast<double>(data_tokens) * redundancy));
  OCD_ASSERT(coded >= data_tokens);

  core::Instance inst(std::move(graph), coded);
  OCD_EXPECTS(inst.graph().valid_vertex(source));
  const auto all = TokenSet::full(static_cast<std::size_t>(coded));
  inst.set_have(source, all);
  std::vector<std::vector<std::int32_t>> wanted(
      static_cast<std::size_t>(inst.num_vertices()));
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (v == source) continue;
    inst.set_want(v, all);  // transport chases every piece...
    wanted[static_cast<std::size_t>(v)] = {0};  // ...completion needs k
  }
  inst.add_file(0, coded);

  return CodedInstance(std::move(inst), {CodedFile{0, data_tokens, coded}},
                       std::move(wanted));
}

}  // namespace ocd::coding
