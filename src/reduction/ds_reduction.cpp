#include "ocd/reduction/ds_reduction.hpp"

#include "ocd/core/validate.hpp"

namespace ocd::reduction {

ReducedInstance reduce_dominating_set(const UndirectedGraph& g,
                                      std::int32_t k) {
  const std::int32_t n = g.num_vertices();
  OCD_EXPECTS(k >= 0 && k <= n);

  ReductionLayout layout;
  layout.n = n;
  layout.k = k;
  layout.first_v = 2;
  layout.first_v_prime = 2 + n;

  // Tokens: 0 plus {1..n-k}.
  const std::int32_t num_tokens = (n - k) + 1;
  Digraph graph(2 + 2 * n);
  for (std::int32_t i = 0; i < n; ++i) {
    const VertexId vi = layout.first_v + i;
    graph.add_arc(layout.s, vi, 1);
    graph.add_arc(vi, layout.t, 1);
    graph.add_arc(vi, layout.first_v_prime + i, 1);
  }
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      if (i != j && g.has_edge(i, j))
        graph.add_arc(layout.first_v + i, layout.first_v_prime + j, 1);
    }
  }

  core::Instance inst(std::move(graph), num_tokens);
  inst.set_have(layout.s,
                TokenSet::full(static_cast<std::size_t>(num_tokens)));
  for (TokenId token = 1; token < num_tokens; ++token)
    inst.add_want(layout.t, token);
  for (std::int32_t i = 0; i < n; ++i)
    inst.add_want(layout.first_v_prime + i, 0);

  return ReducedInstance{std::move(inst), layout};
}

std::vector<std::int32_t> extract_dominating_set(
    const ReducedInstance& reduced, const core::Schedule& schedule) {
  OCD_EXPECTS(schedule.length() >= 1);
  const ReductionLayout& layout = reduced.layout;
  std::vector<std::int32_t> set;
  // v_i that receive token 0 during the first timestep.  In any valid
  // 2-step solution these form a dominating set of size <= k (each of
  // the n-k numbered tokens must transit a distinct v_i, and each v_i
  // has a single unit-capacity in-arc).
  const core::Timestep& first = schedule.steps().front();
  const Digraph& graph = reduced.instance.graph();
  for (const core::ArcSend& send : first.sends()) {
    const Arc& arc = graph.arc(send.arc);
    if (arc.from == layout.s && send.tokens.test(0)) {
      const std::int32_t index = arc.to - layout.first_v;
      if (index >= 0 && index < layout.n) set.push_back(index);
    }
  }
  return set;
}

}  // namespace ocd::reduction
