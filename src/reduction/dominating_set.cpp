#include "ocd/reduction/dominating_set.hpp"

#include <algorithm>
#include <bit>

namespace ocd::reduction {

UndirectedGraph::UndirectedGraph(std::int32_t n)
    : n_(n), adjacency_(static_cast<std::size_t>(n), 0) {
  OCD_EXPECTS(n >= 1 && n <= 64);
}

void UndirectedGraph::add_edge(std::int32_t u, std::int32_t v) {
  OCD_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v);
  adjacency_[static_cast<std::size_t>(u)] |= 1ULL << v;
  adjacency_[static_cast<std::size_t>(v)] |= 1ULL << u;
}

bool UndirectedGraph::has_edge(std::int32_t u, std::int32_t v) const {
  OCD_EXPECTS(u >= 0 && u < n_ && v >= 0 && v < n_);
  return (adjacency_[static_cast<std::size_t>(u)] >> v) & 1ULL;
}

std::uint64_t UndirectedGraph::closed_neighborhood(std::int32_t v) const {
  OCD_EXPECTS(v >= 0 && v < n_);
  return adjacency_[static_cast<std::size_t>(v)] | (1ULL << v);
}

namespace {

/// Recursive exact search: cover all vertices with closed
/// neighborhoods, branching on the first uncovered vertex (one of its
/// closed neighborhood must join the set).
void solve(const UndirectedGraph& g, std::uint64_t covered,
           std::vector<std::int32_t>& current,
           std::vector<std::int32_t>& best) {
  const std::uint64_t all = g.num_vertices() == 64
                                ? ~0ULL
                                : (1ULL << g.num_vertices()) - 1;
  if (covered == all) {
    if (best.empty() || current.size() < best.size()) best = current;
    return;
  }
  if (!best.empty() && current.size() + 1 >= best.size()) return;

  const int uncovered = std::countr_zero(~covered & all);
  const std::uint64_t candidates =
      g.closed_neighborhood(static_cast<std::int32_t>(uncovered));
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    if (!((candidates >> v) & 1ULL)) continue;
    current.push_back(v);
    solve(g, covered | g.closed_neighborhood(v), current, best);
    current.pop_back();
  }
}

}  // namespace

std::vector<std::int32_t> minimum_dominating_set(const UndirectedGraph& g) {
  std::vector<std::int32_t> best;
  // Seed the incumbent with the greedy solution to tighten pruning.
  best = greedy_dominating_set(g);
  std::vector<std::int32_t> current;
  solve(g, 0, current, best);
  OCD_ENSURES(is_dominating_set(g, best));
  return best;
}

bool is_dominating_set(const UndirectedGraph& g,
                       const std::vector<std::int32_t>& set) {
  std::uint64_t covered = 0;
  for (std::int32_t v : set) covered |= g.closed_neighborhood(v);
  const std::uint64_t all =
      g.num_vertices() == 64 ? ~0ULL : (1ULL << g.num_vertices()) - 1;
  return covered == all;
}

std::vector<std::int32_t> greedy_dominating_set(const UndirectedGraph& g) {
  const std::uint64_t all =
      g.num_vertices() == 64 ? ~0ULL : (1ULL << g.num_vertices()) - 1;
  std::uint64_t covered = 0;
  std::vector<std::int32_t> set;
  while (covered != all) {
    std::int32_t best_vertex = -1;
    int best_gain = -1;
    for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
      const int gain =
          std::popcount(g.closed_neighborhood(v) & ~covered);
      if (gain > best_gain) {
        best_gain = gain;
        best_vertex = v;
      }
    }
    OCD_ASSERT(best_gain > 0);
    set.push_back(best_vertex);
    covered |= g.closed_neighborhood(best_vertex);
  }
  return set;
}

UndirectedGraph random_undirected(std::int32_t n, double p, Rng& rng) {
  UndirectedGraph g(n);
  for (std::int32_t u = 0; u < n; ++u) {
    for (std::int32_t v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace ocd::reduction
