#include "ocd/graph/digraph.hpp"

namespace ocd {

Digraph::Digraph(std::int32_t num_vertices)
    : num_vertices_(num_vertices),
      out_(static_cast<std::size_t>(num_vertices)),
      in_(static_cast<std::size_t>(num_vertices)) {
  OCD_EXPECTS(num_vertices >= 0);
}

ArcId Digraph::add_arc(VertexId from, VertexId to, std::int32_t capacity) {
  OCD_EXPECTS(valid_vertex(from) && valid_vertex(to));
  OCD_EXPECTS(from != to);  // self-arcs (storage) are implicit in the model
  OCD_EXPECTS(capacity >= 1);
  OCD_EXPECTS(find_arc(from, to) < 0);
  const auto id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(Arc{from, to, capacity});
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  return id;
}

ArcId Digraph::add_or_merge_arc(VertexId from, VertexId to,
                                std::int32_t capacity) {
  OCD_EXPECTS(valid_vertex(from) && valid_vertex(to));
  OCD_EXPECTS(from != to);
  OCD_EXPECTS(capacity >= 1);
  const ArcId existing = find_arc(from, to);
  if (existing >= 0) {
    arcs_[static_cast<std::size_t>(existing)].capacity += capacity;
    return existing;
  }
  return add_arc(from, to, capacity);
}

ArcId Digraph::find_arc(VertexId from, VertexId to) const {
  OCD_EXPECTS(valid_vertex(from) && valid_vertex(to));
  for (ArcId id : out_[static_cast<std::size_t>(from)]) {
    if (arcs_[static_cast<std::size_t>(id)].to == to) return id;
  }
  return -1;
}

std::span<const ArcId> Digraph::out_arcs(VertexId v) const {
  OCD_EXPECTS(valid_vertex(v));
  return out_[static_cast<std::size_t>(v)];
}

std::span<const ArcId> Digraph::in_arcs(VertexId v) const {
  OCD_EXPECTS(valid_vertex(v));
  return in_[static_cast<std::size_t>(v)];
}

std::vector<VertexId> Digraph::out_neighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (ArcId id : out_arcs(v)) out.push_back(arc(id).to);
  return out;
}

std::vector<VertexId> Digraph::in_neighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (ArcId id : in_arcs(v)) out.push_back(arc(id).from);
  return out;
}

std::int64_t Digraph::in_capacity(VertexId v) const {
  std::int64_t total = 0;
  for (ArcId id : in_arcs(v)) total += arc(id).capacity;
  return total;
}

std::int64_t Digraph::out_capacity(VertexId v) const {
  std::int64_t total = 0;
  for (ArcId id : out_arcs(v)) total += arc(id).capacity;
  return total;
}

}  // namespace ocd
