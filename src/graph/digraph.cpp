#include "ocd/graph/digraph.hpp"

namespace ocd {

Digraph::Digraph(std::int32_t num_vertices)
    : num_vertices_(num_vertices),
      out_(static_cast<std::size_t>(num_vertices)),
      in_(static_cast<std::size_t>(num_vertices)) {
  OCD_EXPECTS(num_vertices >= 0);
}

ArcId Digraph::add_arc(VertexId from, VertexId to, std::int32_t capacity) {
  OCD_EXPECTS(valid_vertex(from) && valid_vertex(to));
  OCD_EXPECTS(from != to);  // self-arcs (storage) are implicit in the model
  OCD_EXPECTS(capacity >= 1);
  OCD_EXPECTS(find_arc(from, to) < 0);
  const auto id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(Arc{from, to, capacity});
  out_[static_cast<std::size_t>(from)].push_back(id);
  in_[static_cast<std::size_t>(to)].push_back(id);
  csr_valid_ = false;  // topology changed; CSR must be rebuilt
  return id;
}

void Digraph::finalize() {
  if (csr_valid_) return;
  const auto n = static_cast<std::size_t>(num_vertices_);
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  out_csr_.clear();
  out_csr_.reserve(arcs_.size());
  in_csr_.clear();
  in_csr_.reserve(arcs_.size());
  for (std::size_t v = 0; v < n; ++v) {
    out_offsets_[v] = static_cast<std::int32_t>(out_csr_.size());
    out_csr_.insert(out_csr_.end(), out_[v].begin(), out_[v].end());
    in_offsets_[v] = static_cast<std::int32_t>(in_csr_.size());
    in_csr_.insert(in_csr_.end(), in_[v].begin(), in_[v].end());
  }
  out_offsets_[n] = static_cast<std::int32_t>(out_csr_.size());
  in_offsets_[n] = static_cast<std::int32_t>(in_csr_.size());
  csr_valid_ = true;
}

ArcId Digraph::add_or_merge_arc(VertexId from, VertexId to,
                                std::int32_t capacity) {
  OCD_EXPECTS(valid_vertex(from) && valid_vertex(to));
  OCD_EXPECTS(from != to);
  OCD_EXPECTS(capacity >= 1);
  const ArcId existing = find_arc(from, to);
  if (existing >= 0) {
    arcs_[static_cast<std::size_t>(existing)].capacity += capacity;
    return existing;
  }
  return add_arc(from, to, capacity);
}

ArcId Digraph::find_arc(VertexId from, VertexId to) const {
  OCD_EXPECTS(valid_vertex(from) && valid_vertex(to));
  for (ArcId id : out_[static_cast<std::size_t>(from)]) {
    if (arcs_[static_cast<std::size_t>(id)].to == to) return id;
  }
  return -1;
}

std::span<const ArcId> Digraph::out_arcs(VertexId v) const {
  OCD_EXPECTS(valid_vertex(v));
  const auto vi = static_cast<std::size_t>(v);
  if (csr_valid_) {
    return {out_csr_.data() + out_offsets_[vi],
            static_cast<std::size_t>(out_offsets_[vi + 1] - out_offsets_[vi])};
  }
  return out_[vi];
}

std::span<const ArcId> Digraph::in_arcs(VertexId v) const {
  OCD_EXPECTS(valid_vertex(v));
  const auto vi = static_cast<std::size_t>(v);
  if (csr_valid_) {
    return {in_csr_.data() + in_offsets_[vi],
            static_cast<std::size_t>(in_offsets_[vi + 1] - in_offsets_[vi])};
  }
  return in_[vi];
}

std::vector<VertexId> Digraph::out_neighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (ArcId id : out_arcs(v)) out.push_back(arc(id).to);
  return out;
}

std::vector<VertexId> Digraph::in_neighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (ArcId id : in_arcs(v)) out.push_back(arc(id).from);
  return out;
}

std::int64_t Digraph::in_capacity(VertexId v) const {
  std::int64_t total = 0;
  for (ArcId id : in_arcs(v)) total += arc(id).capacity;
  return total;
}

std::int64_t Digraph::out_capacity(VertexId v) const {
  std::int64_t total = 0;
  for (ArcId id : out_arcs(v)) total += arc(id).capacity;
  return total;
}

}  // namespace ocd
