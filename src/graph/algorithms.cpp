#include "ocd/graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace ocd {

namespace {

// Generic BFS over an adjacency accessor: next(v) yields neighbor ids.
template <typename NextFn>
std::vector<std::int32_t> bfs(std::int32_t n, VertexId source, NextFn&& next) {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(n), kUnreachable);
  std::queue<VertexId> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId u = frontier.front();
    frontier.pop();
    const std::int32_t du = dist[static_cast<std::size_t>(u)];
    next(u, [&](VertexId v) {
      auto& dv = dist[static_cast<std::size_t>(v)];
      if (dv == kUnreachable) {
        dv = du + 1;
        frontier.push(v);
      }
    });
  }
  return dist;
}

}  // namespace

std::vector<std::int32_t> bfs_distances(const Digraph& g, VertexId source) {
  OCD_EXPECTS(g.valid_vertex(source));
  return bfs(g.num_vertices(), source, [&](VertexId u, auto&& visit) {
    for (ArcId id : g.out_arcs(u)) visit(g.arc(id).to);
  });
}

std::vector<std::int32_t> bfs_distances_to(const Digraph& g, VertexId target) {
  OCD_EXPECTS(g.valid_vertex(target));
  return bfs(g.num_vertices(), target, [&](VertexId u, auto&& visit) {
    for (ArcId id : g.in_arcs(u)) visit(g.arc(id).from);
  });
}

std::vector<std::vector<std::int32_t>> all_pairs_distances(const Digraph& g) {
  std::vector<std::vector<std::int32_t>> dist;
  dist.reserve(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    dist.push_back(bfs_distances(g, v));
  return dist;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.num_vertices() <= 1) return true;
  const auto fwd = bfs_distances(g, 0);
  if (std::any_of(fwd.begin(), fwd.end(),
                  [](std::int32_t d) { return d == kUnreachable; }))
    return false;
  const auto bwd = bfs_distances_to(g, 0);
  return std::none_of(bwd.begin(), bwd.end(),
                      [](std::int32_t d) { return d == kUnreachable; });
}

bool is_weakly_connected(const Digraph& g) {
  if (g.num_vertices() <= 1) return true;
  const auto dist =
      bfs(g.num_vertices(), 0, [&](VertexId u, auto&& visit) {
        for (ArcId id : g.out_arcs(u)) visit(g.arc(id).to);
        for (ArcId id : g.in_arcs(u)) visit(g.arc(id).from);
      });
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int32_t d) { return d == kUnreachable; });
}

std::int32_t diameter(const Digraph& g) {
  if (g.num_vertices() <= 1) return 0;
  std::int32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (std::int32_t d : bfs_distances(g, v)) {
      if (d == kUnreachable) return kUnreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

std::vector<VertexId> in_ball(const Digraph& g, VertexId v,
                              std::int32_t radius) {
  OCD_EXPECTS(radius >= 0);
  const auto dist = bfs_distances_to(g, v);
  std::vector<VertexId> ball;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (dist[static_cast<std::size_t>(u)] <= radius) ball.push_back(u);
  }
  return ball;
}

}  // namespace ocd
