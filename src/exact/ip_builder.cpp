#include "ocd/exact/ip_builder.hpp"

#include <string>

namespace ocd::exact {

namespace {
std::string var_name(const char* kind, std::int32_t a, std::int32_t b,
                     std::int32_t c) {
  return std::string(kind) + "[" + std::to_string(a) + "," + std::to_string(b) +
         "," + std::to_string(c) + "]";
}
}  // namespace

TimeIndexedIp::TimeIndexedIp(const core::Instance& inst, std::int32_t horizon)
    : instance_(inst), horizon_(horizon) {
  OCD_EXPECTS(horizon >= 1);
  const std::int32_t num_arcs = inst.graph().num_arcs();
  const std::int32_t num_tokens = inst.num_tokens();
  const std::int32_t num_vertices = inst.num_vertices();

  // send[a][t][i], i in 1..horizon — objective coefficient 1 (bandwidth).
  send_base_ = 0;
  for (ArcId a = 0; a < num_arcs; ++a) {
    for (TokenId t = 0; t < num_tokens; ++t) {
      for (std::int32_t i = 1; i <= horizon_; ++i) {
        program_.add_variable(0.0, 1.0, 1.0, lp::VarType::kInteger,
                              var_name("send", a, t, i));
      }
    }
  }

  // hold[v][t][i], i in 0..horizon — objective 0.  Initial possession and
  // final wants are expressed through fixed bounds.
  hold_base_ = program_.num_variables();
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (TokenId t = 0; t < num_tokens; ++t) {
      const bool has = inst.have(v).test(t);
      const bool wants = inst.want(v).test(t);
      for (std::int32_t i = 0; i <= horizon_; ++i) {
        double lower = 0.0;
        double upper = 1.0;
        if (has) lower = 1.0;             // possession is monotone
        if (i == 0 && !has) upper = 0.0;  // initial assignment
        if (i == horizon_ && wants) lower = 1.0;  // success condition
        program_.add_variable(lower, upper, 0.0, lp::VarType::kInteger,
                              var_name("hold", v, t, i));
      }
    }
  }

  // Possession: send[a][t][i] <= hold[tail][t][i-1].
  for (ArcId a = 0; a < num_arcs; ++a) {
    const VertexId tail = inst.graph().arc(a).from;
    for (TokenId t = 0; t < num_tokens; ++t) {
      for (std::int32_t i = 1; i <= horizon_; ++i) {
        program_.add_constraint(
            {{send_var(a, t, i), 1.0}, {hold_var(tail, t, i - 1), -1.0}},
            lp::Relation::kLessEqual, 0.0);
      }
    }
  }

  // No minting: hold[v][t][i] <= hold[v][t][i-1] + sum_in send.
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (TokenId t = 0; t < num_tokens; ++t) {
      for (std::int32_t i = 1; i <= horizon_; ++i) {
        std::vector<lp::Term> terms;
        terms.push_back({hold_var(v, t, i), 1.0});
        terms.push_back({hold_var(v, t, i - 1), -1.0});
        for (ArcId a : inst.graph().in_arcs(v))
          terms.push_back({send_var(a, t, i), -1.0});
        program_.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                                0.0);
      }
    }
  }

  // Capacity: sum_t send[a][t][i] <= c(a).
  for (ArcId a = 0; a < num_arcs; ++a) {
    const auto capacity = static_cast<double>(inst.graph().arc(a).capacity);
    for (std::int32_t i = 1; i <= horizon_; ++i) {
      std::vector<lp::Term> terms;
      terms.reserve(static_cast<std::size_t>(num_tokens));
      for (TokenId t = 0; t < num_tokens; ++t)
        terms.push_back({send_var(a, t, i), 1.0});
      program_.add_constraint(std::move(terms), lp::Relation::kLessEqual,
                              capacity);
    }
  }
}

std::int32_t TimeIndexedIp::send_var(ArcId arc, TokenId token,
                                     std::int32_t step) const {
  OCD_EXPECTS(arc >= 0 && arc < instance_.graph().num_arcs());
  OCD_EXPECTS(token >= 0 && token < instance_.num_tokens());
  OCD_EXPECTS(step >= 1 && step <= horizon_);
  return send_base_ +
         (arc * instance_.num_tokens() + token) * horizon_ + (step - 1);
}

std::int32_t TimeIndexedIp::hold_var(VertexId vertex, TokenId token,
                                     std::int32_t step) const {
  OCD_EXPECTS(vertex >= 0 && vertex < instance_.num_vertices());
  OCD_EXPECTS(token >= 0 && token < instance_.num_tokens());
  OCD_EXPECTS(step >= 0 && step <= horizon_);
  return hold_base_ +
         (vertex * instance_.num_tokens() + token) * (horizon_ + 1) + step;
}

core::Schedule TimeIndexedIp::extract_schedule(
    const std::vector<double>& solution) const {
  OCD_EXPECTS(solution.size() ==
              static_cast<std::size_t>(program_.num_variables()));
  core::Schedule schedule;
  const auto universe = static_cast<std::size_t>(instance_.num_tokens());
  for (std::int32_t i = 1; i <= horizon_; ++i) {
    core::Timestep step;
    for (ArcId a = 0; a < instance_.graph().num_arcs(); ++a) {
      for (TokenId t = 0; t < instance_.num_tokens(); ++t) {
        if (solution[static_cast<std::size_t>(send_var(a, t, i))] > 0.5)
          step.add(a, t, universe);
      }
    }
    schedule.append(std::move(step));
  }
  return schedule;
}

}  // namespace ocd::exact
