#include "ocd/exact/hybrid.hpp"

#include <cmath>

#include "ocd/core/bounds.hpp"
#include "ocd/exact/bnb.hpp"
#include "ocd/exact/ip_solver.hpp"

namespace ocd::exact {

namespace {

std::optional<std::int32_t> optimal_makespan(const core::Instance& inst) {
  if (inst.is_trivially_satisfied()) return 0;
  const auto result = focd_min_makespan(
      inst, static_cast<std::int32_t>(
                std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                              inst.num_tokens()) *
                                              inst.num_vertices())));
  if (!result.has_value()) return std::nullopt;
  return result->makespan;
}

}  // namespace

std::optional<HybridResult> solve_hybrid(const core::Instance& inst,
                                         double slack,
                                         const lp::MipOptions& options) {
  OCD_EXPECTS(slack >= 1.0);
  const auto t_star = optimal_makespan(inst);
  if (!t_star.has_value()) return std::nullopt;
  if (*t_star == 0) return HybridResult{0, 0, 0, core::Schedule{}};

  const auto horizon = static_cast<std::int32_t>(
      std::ceil(slack * static_cast<double>(*t_star)));
  auto solved = solve_eocd(inst, horizon, options);
  if (!solved.has_value()) return std::nullopt;
  return HybridResult{*t_star, horizon, solved->bandwidth,
                      std::move(solved->schedule)};
}

std::vector<HybridResult> bandwidth_time_frontier(
    const core::Instance& inst, std::int32_t max_points,
    std::int32_t patience, const lp::MipOptions& options) {
  OCD_EXPECTS(max_points >= 1 && patience >= 1);
  std::vector<HybridResult> frontier;
  const auto t_star = optimal_makespan(inst);
  if (!t_star.has_value() || *t_star == 0) return frontier;

  const auto floor_bw = core::bandwidth_lower_bound(inst);
  std::int32_t stable = 0;
  std::int64_t best_bw = -1;
  for (std::int32_t horizon = *t_star;
       static_cast<std::int32_t>(frontier.size()) < max_points; ++horizon) {
    auto solved = solve_eocd(inst, horizon, options);
    if (!solved.has_value()) break;  // solver budget exceeded
    frontier.push_back(HybridResult{*t_star, horizon, solved->bandwidth,
                                    std::move(solved->schedule)});
    if (best_bw >= 0 && solved->bandwidth >= best_bw) {
      if (++stable >= patience) break;
    } else {
      stable = 0;
    }
    best_bw = best_bw < 0 ? solved->bandwidth
                          : std::min(best_bw, solved->bandwidth);
    if (best_bw <= floor_bw) break;  // provably optimal bandwidth reached
  }
  return frontier;
}

}  // namespace ocd::exact
