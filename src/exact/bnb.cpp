#include "ocd/exact/bnb.hpp"

#include <algorithm>
#include <unordered_map>

#include "ocd/core/bounds.hpp"
#include "ocd/core/validate.hpp"
#include "ocd/graph/algorithms.hpp"

namespace ocd::exact {

namespace {

// ---------------------------------------------------------------------
// Small dense max-flow (Dinic) for the last-step feasibility check.
// ---------------------------------------------------------------------
class MaxFlow {
 public:
  explicit MaxFlow(int num_nodes) : head_(static_cast<std::size_t>(num_nodes), -1) {}

  int add_edge(int from, int to, int capacity) {
    const int id = static_cast<int>(edges_.size());
    edges_.push_back({to, head_[static_cast<std::size_t>(from)], capacity});
    head_[static_cast<std::size_t>(from)] = id;
    edges_.push_back({from, head_[static_cast<std::size_t>(to)], 0});
    head_[static_cast<std::size_t>(to)] = id + 1;
    return id;
  }

  [[nodiscard]] int flow_on(int edge_id) const {
    // Residual of the reverse edge equals the flow pushed forward.
    return edges_[static_cast<std::size_t>(edge_id ^ 1)].capacity;
  }

  int max_flow(int source, int sink) {
    int total = 0;
    while (bfs(source, sink)) {
      iter_ = head_;
      int pushed;
      while ((pushed = dfs(source, sink, 1 << 30)) > 0) total += pushed;
    }
    return total;
  }

 private:
  struct Edge {
    int to;
    int next;
    int capacity;
  };

  bool bfs(int source, int sink) {
    level_.assign(head_.size(), -1);
    level_[static_cast<std::size_t>(source)] = 0;
    std::vector<int> queue{source};
    for (std::size_t qi = 0; qi < queue.size(); ++qi) {
      const int u = queue[qi];
      for (int e = head_[static_cast<std::size_t>(u)]; e >= 0;
           e = edges_[static_cast<std::size_t>(e)].next) {
        const Edge& edge = edges_[static_cast<std::size_t>(e)];
        if (edge.capacity > 0 && level_[static_cast<std::size_t>(edge.to)] < 0) {
          level_[static_cast<std::size_t>(edge.to)] =
              level_[static_cast<std::size_t>(u)] + 1;
          queue.push_back(edge.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(sink)] >= 0;
  }

  int dfs(int u, int sink, int limit) {
    if (u == sink) return limit;
    for (int& e = iter_[static_cast<std::size_t>(u)]; e >= 0;
         e = edges_[static_cast<std::size_t>(e)].next) {
      Edge& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.capacity <= 0 ||
          level_[static_cast<std::size_t>(edge.to)] !=
              level_[static_cast<std::size_t>(u)] + 1)
        continue;
      const int pushed = dfs(edge.to, sink, std::min(limit, edge.capacity));
      if (pushed > 0) {
        edge.capacity -= pushed;
        edges_[static_cast<std::size_t>(e ^ 1)].capacity += pushed;
        return pushed;
      }
    }
    return 0;
  }

  std::vector<int> head_;
  std::vector<Edge> edges_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

// ---------------------------------------------------------------------
// Possession-state memoization key.
// ---------------------------------------------------------------------
struct StateKey {
  std::vector<std::uint64_t> words;
  std::size_t cached_hash = 0;

  bool operator==(const StateKey& other) const {
    return words == other.words;
  }
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const noexcept {
    return key.cached_hash;
  }
};

StateKey make_key(const std::vector<TokenSet>& possession) {
  StateKey key;
  for (const TokenSet& set : possession)
    key.words.insert(key.words.end(), set.words().begin(), set.words().end());
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint64_t w : key.words) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 32;
  }
  key.cached_hash = static_cast<std::size_t>(h);
  return key;
}

// ---------------------------------------------------------------------
// The search itself.
// ---------------------------------------------------------------------
class Searcher {
 public:
  Searcher(const core::Instance& inst, const BnbOptions& options,
           BnbStats& stats)
      : inst_(inst),
        options_(options),
        stats_(stats),
        universe_(static_cast<std::size_t>(inst.num_tokens())),
        distances_(all_pairs_distances(inst.graph())) {
    in_capacity_.reserve(static_cast<std::size_t>(inst.num_vertices()));
    for (VertexId v = 0; v < inst.num_vertices(); ++v)
      in_capacity_.push_back(inst.graph().in_capacity(v));
  }

  bool feasible(std::int32_t tau, core::Schedule* out_schedule) {
    std::vector<TokenSet> possession;
    possession.reserve(static_cast<std::size_t>(inst_.num_vertices()));
    for (VertexId v = 0; v < inst_.num_vertices(); ++v)
      possession.push_back(inst_.have(v));
    std::vector<core::Timestep> steps;
    const bool ok = search(possession, tau, steps);
    if (ok && out_schedule != nullptr) {
      *out_schedule = core::Schedule{};
      for (auto& step : steps) out_schedule->append(std::move(step));
      out_schedule->trim();
    }
    return ok;
  }

 private:
  [[nodiscard]] bool done(const std::vector<TokenSet>& possession) const {
    for (VertexId v = 0; v < inst_.num_vertices(); ++v) {
      if (!inst_.want(v).is_subset_of(possession[static_cast<std::size_t>(v)]))
        return false;
    }
    return true;
  }

  /// Distance + capacity lower bound on the remaining makespan.
  [[nodiscard]] std::int64_t lower_bound(
      const std::vector<TokenSet>& possession) const {
    std::int64_t bound = 0;
    for (VertexId v = 0; v < inst_.num_vertices(); ++v) {
      const TokenSet missing =
          inst_.want(v) - possession[static_cast<std::size_t>(v)];
      if (missing.empty()) continue;
      const std::int64_t cap = in_capacity_[static_cast<std::size_t>(v)];
      if (cap == 0) return std::numeric_limits<std::int64_t>::max();
      bound = std::max(bound,
                       (static_cast<std::int64_t>(missing.count()) + cap - 1) /
                           cap);
      std::int64_t worst_token = 0;
      missing.for_each([&](TokenId t) {
        std::int32_t nearest = kUnreachable;
        for (VertexId u = 0; u < inst_.num_vertices(); ++u) {
          if (possession[static_cast<std::size_t>(u)].test(t)) {
            nearest = std::min(
                nearest,
                distances_[static_cast<std::size_t>(u)]
                          [static_cast<std::size_t>(v)]);
          }
        }
        worst_token = std::max<std::int64_t>(worst_token, nearest);
      });
      bound = std::max(bound, worst_token);
    }
    return bound;
  }

  /// Exact one-step feasibility via max-flow; on success appends the
  /// realizing timestep to `steps`.
  bool final_step(const std::vector<TokenSet>& possession,
                  std::vector<core::Timestep>& steps) {
    ++stats_.flow_checks;
    // Collect outstanding needs.
    struct Need {
      VertexId vertex;
      TokenId token;
    };
    std::vector<Need> needs;
    for (VertexId v = 0; v < inst_.num_vertices(); ++v) {
      const TokenSet missing =
          inst_.want(v) - possession[static_cast<std::size_t>(v)];
      missing.for_each([&](TokenId t) { needs.push_back({v, t}); });
    }
    if (needs.empty()) return true;

    const int num_arcs = inst_.graph().num_arcs();
    const int source = 0;
    const int arc_base = 1;
    const int need_base = arc_base + num_arcs;
    const int sink = need_base + static_cast<int>(needs.size());
    MaxFlow flow(sink + 1);

    std::vector<int> arc_source_edge(static_cast<std::size_t>(num_arcs), -1);
    for (ArcId a = 0; a < num_arcs; ++a) {
      arc_source_edge[static_cast<std::size_t>(a)] =
          flow.add_edge(source, arc_base + a, inst_.graph().arc(a).capacity);
    }
    // arc -> need edges (record ids for schedule reconstruction).
    std::vector<std::pair<int, std::pair<ArcId, std::size_t>>> transfer_edges;
    for (std::size_t k = 0; k < needs.size(); ++k) {
      const auto& [v, t] = needs[k];
      for (ArcId a : inst_.graph().in_arcs(v)) {
        const VertexId u = inst_.graph().arc(a).from;
        if (possession[static_cast<std::size_t>(u)].test(t)) {
          const int id =
              flow.add_edge(arc_base + a, need_base + static_cast<int>(k), 1);
          transfer_edges.push_back({id, {a, k}});
        }
      }
      flow.add_edge(need_base + static_cast<int>(k), sink, 1);
    }

    const int pushed = flow.max_flow(source, sink);
    if (pushed != static_cast<int>(needs.size())) return false;

    core::Timestep step;
    for (const auto& [edge_id, key] : transfer_edges) {
      if (flow.flow_on(edge_id) > 0) {
        const auto& [a, k] = key;
        step.add(a, needs[k].token, universe_);
      }
    }
    steps.push_back(std::move(step));
    return true;
  }

  /// Enumerates every dominance-reduced plan for one timestep and
  /// recurses.  Plans are built arc by arc; `steps` receives the chosen
  /// timesteps front-to-back on success.
  bool search(std::vector<TokenSet>& possession, std::int32_t remaining,
              std::vector<core::Timestep>& steps) {
    if (done(possession)) return true;
    if (remaining <= 0) return false;
    if (++stats_.nodes > options_.max_nodes)
      throw Error("bnb: node budget exhausted — instance too large");

    if (lower_bound(possession) > remaining) {
      ++stats_.bound_prunes;
      return false;
    }
    if (remaining == 1) return final_step(possession, steps);

    const StateKey key = make_key(possession);
    if (const auto it = memo_.find(key);
        it != memo_.end() && it->second >= remaining) {
      ++stats_.memo_hits;
      return false;
    }

    // Arcs with a nonempty useful set, each with its send choices.
    struct ArcChoice {
      ArcId arc;
      std::vector<TokenId> useful;
      std::int32_t send_count;  // == min(capacity, useful.size())
    };
    std::vector<ArcChoice> choices;
    std::int64_t plan_estimate = 1;
    for (ArcId a = 0; a < inst_.graph().num_arcs(); ++a) {
      const Arc& arc = inst_.graph().arc(a);
      const TokenSet useful_set =
          possession[static_cast<std::size_t>(arc.from)] -
          possession[static_cast<std::size_t>(arc.to)];
      if (useful_set.empty()) continue;
      ArcChoice choice;
      choice.arc = a;
      choice.useful = useful_set.to_vector();
      choice.send_count = std::min<std::int32_t>(
          arc.capacity, static_cast<std::int32_t>(choice.useful.size()));
      // Multiply the running estimate by C(|useful|, send_count),
      // saturating well before overflow.
      const auto n = static_cast<std::int64_t>(choice.useful.size());
      std::int64_t combos = 1;
      for (std::int32_t i = 0; i < choice.send_count; ++i) {
        combos = combos * (n - i) / (i + 1);
        if (combos > options_.max_plans_per_step) break;
      }
      plan_estimate = plan_estimate * std::max<std::int64_t>(combos, 1);
      if (plan_estimate > options_.max_plans_per_step)
        throw Error("bnb: per-step plan count exceeds budget");
      choices.push_back(std::move(choice));
    }

    // Depth-first over arc choices, then recurse one timestep deeper.
    core::Timestep plan;
    const bool ok =
        enumerate(possession, remaining, steps, choices, 0, plan);
    if (!ok) {
      auto [it, inserted] = memo_.try_emplace(key, remaining);
      if (!inserted) it->second = std::max(it->second, remaining);
    }
    return ok;
  }

  bool enumerate(std::vector<TokenSet>& possession, std::int32_t remaining,
                 std::vector<core::Timestep>& steps, const auto& choices,
                 std::size_t index, core::Timestep& plan) {
    if (index == choices.size()) {
      // Apply the plan, recurse, undo.
      std::vector<TokenSet> next = possession;
      for (const core::ArcSend& send : plan.sends()) {
        next[static_cast<std::size_t>(inst_.graph().arc(send.arc).to)] |=
            send.tokens;
      }
      std::vector<core::Timestep> suffix;
      if (search(next, remaining - 1, suffix)) {
        steps.push_back(plan);  // copy: plan continues to mutate upstream
        for (auto& s : suffix) steps.push_back(std::move(s));
        return true;
      }
      return false;
    }

    const auto& choice = choices[index];
    const auto n = static_cast<std::int32_t>(choice.useful.size());
    const std::int32_t k = choice.send_count;

    // Enumerate k-combinations of choice.useful via index vector.
    std::vector<std::int32_t> pick(static_cast<std::size_t>(k));
    for (std::int32_t i = 0; i < k; ++i) pick[static_cast<std::size_t>(i)] = i;
    while (true) {
      TokenSet send(universe_);
      for (std::int32_t i : pick)
        send.set(choice.useful[static_cast<std::size_t>(i)]);
      plan.add(choice.arc, send);
      if (enumerate(possession, remaining, steps, choices, index + 1, plan))
        return true;
      // Remove this arc's tokens again (plan is shared across siblings).
      remove_arc(plan, choice.arc);

      // Next combination.
      std::int32_t i = k - 1;
      while (i >= 0 &&
             pick[static_cast<std::size_t>(i)] == n - k + i)
        --i;
      if (i < 0) break;
      ++pick[static_cast<std::size_t>(i)];
      for (std::int32_t j = i + 1; j < k; ++j)
        pick[static_cast<std::size_t>(j)] = pick[static_cast<std::size_t>(j - 1)] + 1;
    }
    return false;
  }

  static void remove_arc(core::Timestep& plan, ArcId arc) {
    auto& sends = plan.sends();
    std::erase_if(sends,
                  [arc](const core::ArcSend& s) { return s.arc == arc; });
  }

  const core::Instance& inst_;
  BnbOptions options_;
  BnbStats& stats_;
  std::size_t universe_;
  std::vector<std::vector<std::int32_t>> distances_;
  std::vector<std::int64_t> in_capacity_;
  std::unordered_map<StateKey, std::int32_t, StateKeyHash> memo_;
};

}  // namespace

bool dfocd_feasible(const core::Instance& inst, std::int32_t tau,
                    const BnbOptions& options, core::Schedule* out_schedule,
                    BnbStats* stats) {
  OCD_EXPECTS(tau >= 0);
  BnbStats local_stats;
  BnbStats& s = stats != nullptr ? *stats : local_stats;
  Searcher searcher(inst, options, s);
  const bool ok = searcher.feasible(tau, out_schedule);
  if (ok && out_schedule != nullptr) {
    OCD_ENSURES(core::is_successful(inst, *out_schedule));
    OCD_ENSURES(out_schedule->length() <= tau);
  }
  return ok;
}

std::optional<BnbMakespanResult> focd_min_makespan(const core::Instance& inst,
                                                   std::int32_t max_tau,
                                                   const BnbOptions& options) {
  if (inst.is_trivially_satisfied())
    return BnbMakespanResult{0, core::Schedule{}, {}};
  if (!inst.is_satisfiable()) return std::nullopt;

  const auto lb = static_cast<std::int32_t>(
      std::max<std::int64_t>(1, core::makespan_lower_bound(inst)));
  BnbMakespanResult result;
  for (std::int32_t tau = lb; tau <= max_tau; ++tau) {
    if (dfocd_feasible(inst, tau, options, &result.schedule, &result.stats)) {
      result.makespan = tau;
      return result;
    }
  }
  return std::nullopt;
}

}  // namespace ocd::exact
