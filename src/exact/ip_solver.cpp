#include "ocd/exact/ip_solver.hpp"

#include <algorithm>

#include "ocd/core/bounds.hpp"
#include "ocd/core/validate.hpp"

namespace ocd::exact {

std::optional<IpSolveResult> solve_eocd(const core::Instance& inst,
                                        std::int32_t horizon,
                                        const lp::MipOptions& options) {
  if (inst.is_trivially_satisfied()) {
    return IpSolveResult{core::Schedule{}, 0, true, 0};
  }
  const TimeIndexedIp ip(inst, horizon);
  const lp::MipResult mip = lp::solve_mip(ip.program(), options);
  if (mip.status != lp::SolveStatus::kOptimal) return std::nullopt;

  IpSolveResult result;
  result.schedule = ip.extract_schedule(mip.values);
  result.schedule.trim();
  result.bandwidth = result.schedule.bandwidth();
  result.proven_optimal = mip.proven_optimal;
  result.nodes_explored = mip.nodes_explored;
  OCD_ENSURES(core::is_successful(inst, result.schedule));
  return result;
}

std::optional<double> lp_bandwidth_lower_bound(
    const core::Instance& inst, std::int32_t horizon,
    const lp::SimplexOptions& options) {
  if (inst.is_trivially_satisfied()) return 0.0;
  const TimeIndexedIp ip(inst, horizon);
  const auto relaxed = lp::solve_lp(ip.program(), options);
  if (relaxed.status != lp::SolveStatus::kOptimal) return std::nullopt;
  return relaxed.objective;
}

std::optional<MakespanResult> min_makespan_ip(const core::Instance& inst,
                                              std::int32_t max_horizon,
                                              const lp::MipOptions& options) {
  if (inst.is_trivially_satisfied())
    return MakespanResult{0, core::Schedule{}};
  if (!inst.is_satisfiable()) return std::nullopt;

  const auto lb = static_cast<std::int32_t>(
      std::max<std::int64_t>(1, core::makespan_lower_bound(inst)));
  for (std::int32_t tau = lb; tau <= max_horizon; ++tau) {
    auto solved = solve_eocd(inst, tau, options);
    if (solved.has_value()) {
      return MakespanResult{tau, std::move(solved->schedule)};
    }
  }
  return std::nullopt;
}

}  // namespace ocd::exact
