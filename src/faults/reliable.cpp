#include "ocd/faults/reliable.hpp"

#include <algorithm>

#include "ocd/sim/stats.hpp"

namespace ocd::faults {

using sim::KnowledgeClass;
using sim::StepPlan;
using sim::StepView;

ReliableAdapter::ReliableAdapter(sim::PolicyPtr inner,
                                 std::int32_t base_timeout,
                                 std::int32_t max_backoff)
    : inner_(std::move(inner)),
      base_timeout_(base_timeout),
      max_backoff_(max_backoff) {
  OCD_EXPECTS(inner_ != nullptr);
  OCD_EXPECTS(base_timeout >= 1);
  OCD_EXPECTS(max_backoff >= base_timeout);
  name_ = std::string(inner_->name()) + "+reliable";
}

KnowledgeClass ReliableAdapter::knowledge_class() const {
  // Acknowledgements are read off peer possession snapshots, so the
  // adapter needs at least kLocalPeers; a better-informed inner policy
  // keeps its own class.
  return std::max(inner_->knowledge_class(), KnowledgeClass::kLocalPeers);
}

void ReliableAdapter::reset(const core::Instance& inst, std::uint64_t seed) {
  inner_->reset(inst, seed);
  inflight_.clear();
  retransmissions_ = 0;
  trimmed_moves_ = 0;
}

void ReliableAdapter::plan_step(const StepView& view, StepPlan& plan) {
  const std::int64_t step = view.step();
  const auto universe = static_cast<std::size_t>(view.num_tokens());

  // Implicit acks: a peer snapshot showing the token means it landed
  // (possession is monotone, so once seen it stays delivered).
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    const auto [arc, token] = it->first;
    const Arc& a = view.graph().arc(arc);
    if (view.peer_possession(a.from, a.to).test(token)) {
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }

  StepPlan scratch(view.graph());
  inner_->plan_step(view, scratch);
  if (scratch.idle_marked()) plan.mark_idle();
  core::Timestep inner_step = scratch.take();
  inner_step.compact();

  // Per-arc budget tracking, touched arcs only.  `planned` prevents a
  // token from being charged twice when a retransmission and the inner
  // policy pick the same (arc, token) this step.
  struct ArcBudget {
    std::int32_t remaining = 0;
    TokenSet planned;
  };
  std::map<ArcId, ArcBudget> budgets;
  const auto budget_for = [&](ArcId arc) -> ArcBudget& {
    auto [it, inserted] = budgets.try_emplace(arc);
    if (inserted) {
      it->second.remaining = view.capacity(arc);
      it->second.planned = TokenSet(universe);
    }
    return it->second;
  };

  // Retransmissions first: recovering a lost token unblocks the
  // receiver now, while the inner policy's fresh sends can wait a turn.
  bool sent_any = false;
  for (auto& [key, entry] : inflight_) {
    if (step < entry.retry_at) continue;
    const auto [arc, token] = key;
    ArcBudget& budget = budget_for(arc);
    if (budget.remaining <= 0) continue;  // retry_at stays in the past:
                                          // eligible again next step
    plan.send(arc, token, universe);
    sent_any = true;
    budget.planned.set(token);
    --budget.remaining;
    ++retransmissions_;
    entry.backoff = std::min(entry.backoff * 2, max_backoff_);
    entry.retry_at = step + entry.backoff;
  }

  // The inner policy's plan, trimmed to what the retransmissions left.
  for (const core::ArcSend& send : inner_step.sends()) {
    ArcBudget& budget = budget_for(send.arc);
    TokenSet fresh = send.tokens;
    fresh -= budget.planned;  // already on the wire this step
    auto want = static_cast<std::int64_t>(fresh.count());
    if (want > budget.remaining) {
      trimmed_moves_ += want - std::max<std::int64_t>(budget.remaining, 0);
      fresh.truncate(static_cast<std::size_t>(
          std::max<std::int32_t>(budget.remaining, 0)));
      want = static_cast<std::int64_t>(fresh.count());
    }
    if (want == 0) continue;
    plan.send(send.arc, fresh);
    sent_any = true;
    budget.planned |= fresh;
    budget.remaining -= static_cast<std::int32_t>(want);
    fresh.for_each([&](TokenId t) {
      inflight_.try_emplace({send.arc, t},
                            InFlight{step + base_timeout_, base_timeout_});
    });
  }

  // A quiet step while transfers await their backoff deadline is an
  // intentional pause, not a stall.
  if (!sent_any && !inflight_.empty()) plan.mark_idle();
}

void ReliableAdapter::finish_run(sim::RunStats& stats) {
  stats.retransmissions += retransmissions_;
  stats.adapter_dropped_moves += trimmed_moves_;
  inner_->finish_run(stats);
}

}  // namespace ocd::faults
