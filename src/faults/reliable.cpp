#include "ocd/faults/reliable.hpp"

#include <algorithm>

#include "ocd/sim/stats.hpp"

namespace ocd::faults {

using sim::KnowledgeClass;
using sim::StepPlan;
using sim::StepView;

ReliableAdapter::ReliableAdapter(sim::PolicyPtr inner,
                                 std::int32_t base_timeout,
                                 std::int32_t max_backoff)
    : inner_(std::move(inner)),
      base_timeout_(base_timeout),
      max_backoff_(max_backoff) {
  OCD_EXPECTS(inner_ != nullptr);
  OCD_EXPECTS(base_timeout >= 1);
  OCD_EXPECTS(max_backoff >= base_timeout);
  name_ = std::string(inner_->name()) + "+reliable";
}

KnowledgeClass ReliableAdapter::knowledge_class() const {
  // Acknowledgements are read off peer possession snapshots, so the
  // adapter needs at least kLocalPeers; a better-informed inner policy
  // keeps its own class.
  return std::max(inner_->knowledge_class(), KnowledgeClass::kLocalPeers);
}

void ReliableAdapter::reset(const core::Instance& inst, std::uint64_t seed) {
  inner_->reset(inst, seed);
  inflight_.clear();
  retransmissions_ = 0;
  trimmed_moves_ = 0;
  const auto num_arcs = static_cast<std::size_t>(inst.graph().num_arcs());
  const auto universe = static_cast<std::size_t>(inst.num_tokens());
  budget_remaining_.assign(num_arcs, 0);
  budget_touched_.assign(num_arcs, 0);
  planned_.reset(num_arcs, universe);
  touched_arcs_.clear();
  touched_arcs_.reserve(num_arcs);
  fresh_ = TokenSet(universe);
}

void ReliableAdapter::plan_step(const StepView& view, StepPlan& plan) {
  const std::int64_t step = view.step();
  const auto universe = static_cast<std::size_t>(view.num_tokens());

  // Implicit acks: a peer snapshot showing the token means it landed
  // (possession is monotone, so once seen it stays delivered).
  for (auto it = inflight_.begin(); it != inflight_.end();) {
    const auto [arc, token] = it->first;
    const Arc& a = view.graph().arc(arc);
    if (view.peer_possession(a.from, a.to).test(token)) {
      it = inflight_.erase(it);
    } else {
      ++it;
    }
  }

  scratch_.rebind(view.graph(), {});
  inner_->plan_step(view, scratch_);
  if (scratch_.idle_marked()) plan.mark_idle();

  // Per-arc budget tracking, touched arcs only.  `planned` prevents a
  // token from being charged twice when a retransmission and the inner
  // policy pick the same (arc, token) this step.  The flat arrays are
  // cleaned up arc-by-arc from the previous step's touch list.
  for (const ArcId arc : touched_arcs_) {
    budget_touched_[static_cast<std::size_t>(arc)] = 0;
    planned_.row(static_cast<std::size_t>(arc)).clear();
  }
  touched_arcs_.clear();
  const auto budget_for = [&](ArcId arc) -> std::int32_t& {
    const auto ai = static_cast<std::size_t>(arc);
    if (!budget_touched_[ai]) {
      budget_touched_[ai] = 1;
      budget_remaining_[ai] = view.capacity(arc);
      touched_arcs_.push_back(arc);
    }
    return budget_remaining_[ai];
  };

  // Retransmissions first: recovering a lost token unblocks the
  // receiver now, while the inner policy's fresh sends can wait a turn.
  bool sent_any = false;
  for (auto& [key, entry] : inflight_) {
    if (step < entry.retry_at) continue;
    const auto [arc, token] = key;
    std::int32_t& remaining = budget_for(arc);
    if (remaining <= 0) continue;  // retry_at stays in the past:
                                   // eligible again next step
    plan.send(arc, token, universe);
    sent_any = true;
    planned_.row(static_cast<std::size_t>(arc)).set(token);
    --remaining;
    ++retransmissions_;
    entry.backoff = std::min(entry.backoff * 2, max_backoff_);
    entry.retry_at = step + entry.backoff;
  }

  // The inner policy's plan, trimmed to what the retransmissions left.
  for (const core::ArcSend& send : scratch_.sends()) {
    if (send.tokens.empty()) continue;
    std::int32_t& remaining = budget_for(send.arc);
    fresh_.assign(send.tokens);
    fresh_ -= planned_.row(static_cast<std::size_t>(send.arc));
    auto want = static_cast<std::int64_t>(fresh_.count());
    if (want > remaining) {
      trimmed_moves_ += want - std::max<std::int64_t>(remaining, 0);
      fresh_.truncate(
          static_cast<std::size_t>(std::max<std::int32_t>(remaining, 0)));
      want = static_cast<std::int64_t>(fresh_.count());
    }
    if (want == 0) continue;
    plan.send(send.arc, fresh_);
    sent_any = true;
    planned_.row(static_cast<std::size_t>(send.arc)) |= fresh_;
    remaining -= static_cast<std::int32_t>(want);
    fresh_.for_each([&](TokenId t) {
      inflight_.try_emplace({send.arc, t},
                            InFlight{step + base_timeout_, base_timeout_});
    });
  }

  // A quiet step while transfers await their backoff deadline is an
  // intentional pause, not a stall.
  if (!sent_any && !inflight_.empty()) plan.mark_idle();
}

void ReliableAdapter::finish_run(sim::RunStats& stats) {
  stats.retransmissions += retransmissions_;
  stats.adapter_dropped_moves += trimmed_moves_;
  inner_->finish_run(stats);
}

}  // namespace ocd::faults
