#include "ocd/faults/model.hpp"

namespace ocd::faults {

void FaultModel::reset(const core::Instance&, std::uint64_t) {}

void FaultModel::begin_step(std::int64_t, const Digraph&) {}

// ---------------------------------------------------------------------
// UniformLoss
// ---------------------------------------------------------------------
UniformLoss::UniformLoss(double rate) : rate_(rate) {
  OCD_EXPECTS(rate >= 0.0 && rate <= 1.0);
}

void UniformLoss::reset(const core::Instance&, std::uint64_t seed) {
  seed_ = seed ^ 0x70553a11ULL;
}

void UniformLoss::lost(std::int64_t step, ArcId arc, const TokenSet& sent,
                       TokenSet& lost) {
  // Rate-0 draws nothing, so a zero-rate model leaves the run
  // bit-identical to a no-faults run; rate-1 loses everything without
  // consuming randomness either.
  if (rate_ == 0.0) return;
  if (rate_ == 1.0) {
    lost |= sent;
    return;
  }
  // Drops draw from a stream derived per (step, arc), not from one
  // sequential stream: the drop pattern for an arc depends only on
  // (seed, step, arc, sent), so any shard — or several concurrently —
  // computes the same losses regardless of query order.
  Rng rng(derive_seed(seed_, static_cast<std::uint64_t>(step),
                      static_cast<std::uint64_t>(arc)));
  sent.for_each([&](TokenId t) {
    if (rng.chance(rate_)) lost.set(t);
  });
}

// ---------------------------------------------------------------------
// GilbertElliott
// ---------------------------------------------------------------------
GilbertElliott::GilbertElliott(double p_good_to_bad, double p_bad_to_good,
                               double loss_good, double loss_bad)
    : p_good_to_bad_(p_good_to_bad),
      p_bad_to_good_(p_bad_to_good),
      loss_good_(loss_good),
      loss_bad_(loss_bad) {
  OCD_EXPECTS(p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0);
  OCD_EXPECTS(p_bad_to_good >= 0.0 && p_bad_to_good <= 1.0);
  OCD_EXPECTS(loss_good >= 0.0 && loss_good <= 1.0);
  OCD_EXPECTS(loss_bad >= 0.0 && loss_bad <= 1.0);
}

void GilbertElliott::reset(const core::Instance& inst, std::uint64_t seed) {
  bad_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), 0);
  state_rng_ = Rng(seed ^ 0x6e5b4a09ULL);
  drop_seed_ = seed ^ 0x1b2d6c4fULL;
}

void GilbertElliott::begin_step(std::int64_t, const Digraph& graph) {
  OCD_EXPECTS(bad_.size() == static_cast<std::size_t>(graph.num_arcs()));
  for (char& state : bad_) {
    if (state == 0) {
      if (state_rng_.chance(p_good_to_bad_)) state = 1;
    } else {
      if (state_rng_.chance(p_bad_to_good_)) state = 0;
    }
  }
}

bool GilbertElliott::bad(ArcId arc) const {
  OCD_EXPECTS(arc >= 0 && static_cast<std::size_t>(arc) < bad_.size());
  return bad_[static_cast<std::size_t>(arc)] != 0;
}

void GilbertElliott::lost(std::int64_t step, ArcId arc, const TokenSet& sent,
                          TokenSet& lost) {
  const double rate = bad(arc) ? loss_bad_ : loss_good_;
  if (rate == 0.0) return;
  if (rate == 1.0) {
    lost |= sent;
    return;
  }
  // Per-(step, arc) derived stream — see UniformLoss::lost.  The state
  // chain stays sequential (begin_step), but drop queries are pure.
  Rng rng(derive_seed(drop_seed_, static_cast<std::uint64_t>(step),
                      static_cast<std::uint64_t>(arc)));
  sent.for_each([&](TokenId t) {
    if (rng.chance(rate)) lost.set(t);
  });
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------
FaultPlan& FaultPlan::drop(std::int64_t step, ArcId arc, TokenId token) {
  OCD_EXPECTS(step >= 0 && arc >= 0 && token >= 0);
  drops_.emplace(step, arc, token);
  return *this;
}

void FaultPlan::lost(std::int64_t step, ArcId arc, const TokenSet& sent,
                     TokenSet& lost) {
  if (drops_.empty()) return;
  sent.for_each([&](TokenId t) {
    if (drops_.count({step, arc, t}) != 0) lost.set(t);
  });
}

}  // namespace ocd::faults
