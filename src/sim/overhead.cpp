#include "ocd/sim/overhead.hpp"

#include <bit>

namespace ocd::sim {

std::int64_t knowledge_bits_per_step(const core::Instance& inst,
                                     KnowledgeClass klass) {
  const auto n = static_cast<std::int64_t>(inst.num_vertices());
  const auto m = static_cast<std::int64_t>(inst.num_tokens());
  const auto arcs = static_cast<std::int64_t>(inst.graph().num_arcs());
  // Bits for a per-token counter in [0, n].
  const auto counter_bits = static_cast<std::int64_t>(
      std::bit_width(static_cast<std::uint64_t>(n) + 1));

  switch (klass) {
    case KnowledgeClass::kLocalOnly:
      return 0;
    case KnowledgeClass::kLocalPeers:
      // One m-bit possession map per arc (the reverse direction's map
      // travels on the paired arc, which is counted separately).
      return arcs * m;
    case KnowledgeClass::kLocalAggregate:
      // Peer maps + the (need, holders) aggregate broadcast to each
      // vertex.
      return arcs * m + n * (2 * m * counter_bits);
    case KnowledgeClass::kGlobal:
      // Everyone receives the full possession matrix.
      return n * (n * m);
  }
  return 0;
}

std::int64_t knowledge_bits_total(const core::Instance& inst,
                                  KnowledgeClass klass, std::int64_t steps) {
  OCD_EXPECTS(steps >= 0);
  return knowledge_bits_per_step(inst, klass) * steps;
}

}  // namespace ocd::sim
