#include "ocd/sim/gossip.hpp"

#include <algorithm>
#include <numeric>

namespace ocd::sim {

GossipState::GossipState(const core::Instance& inst) : instance_(inst) {
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  const auto universe = static_cast<std::size_t>(inst.num_tokens());
  beliefs_.assign(n, std::vector<Belief>(n));
  for (auto& row : beliefs_) {
    for (auto& belief : row) belief.tokens = TokenSet(universe);
  }
  scratch_ = beliefs_;
}

void GossipState::advance(const std::vector<TokenSet>& possession,
                          std::int64_t step) {
  OCD_EXPECTS(possession.size() == beliefs_.size());
  const auto n = instance_.num_vertices();

  // Phase 1: every vertex observes itself (ground truth).
  for (VertexId v = 0; v < n; ++v) {
    auto& self = beliefs_[static_cast<std::size_t>(v)]
                         [static_cast<std::size_t>(v)];
    self.tokens = possession[static_cast<std::size_t>(v)];
    self.observed_step = step;
  }

  // Phase 2: synchronous exchange — everyone adopts the freshest entry
  // among its own and its neighbors' previous-round states.
  scratch_ = beliefs_;
  for (VertexId v = 0; v < n; ++v) {
    auto& mine = scratch_[static_cast<std::size_t>(v)];
    auto adopt_from = [&](VertexId u) {
      const auto& theirs = beliefs_[static_cast<std::size_t>(u)];
      for (VertexId w = 0; w < n; ++w) {
        const Belief& candidate = theirs[static_cast<std::size_t>(w)];
        Belief& current = mine[static_cast<std::size_t>(w)];
        if (candidate.observed_step > current.observed_step)
          current = candidate;
      }
    };
    // Information flows both ways along an arc (§4.1).
    for (ArcId a : instance_.graph().out_arcs(v))
      adopt_from(instance_.graph().arc(a).to);
    for (ArcId a : instance_.graph().in_arcs(v))
      adopt_from(instance_.graph().arc(a).from);
  }
  beliefs_.swap(scratch_);
}

const Belief& GossipState::belief(VertexId vertex, VertexId target) const {
  OCD_EXPECTS(instance_.graph().valid_vertex(vertex));
  OCD_EXPECTS(instance_.graph().valid_vertex(target));
  return beliefs_[static_cast<std::size_t>(vertex)]
                 [static_cast<std::size_t>(target)];
}

std::int64_t GossipState::age(VertexId vertex, VertexId target,
                              std::int64_t now) const {
  const Belief& entry = belief(vertex, target);
  if (entry.observed_step < 0) return kUnknownAge;
  return now - entry.observed_step;
}

// ---------------------------------------------------------------------
// GossipRarestPolicy
// ---------------------------------------------------------------------
void GossipRarestPolicy::reset(const core::Instance& inst,
                               std::uint64_t seed) {
  gossip_ = std::make_unique<GossipState>(inst);
  rng_ = Rng(seed);
}

void GossipRarestPolicy::plan_step(const StepView& view, StepPlan& plan) {
  const Digraph& graph = view.graph();
  const auto n = graph.num_vertices();
  const auto universe = static_cast<std::size_t>(view.num_tokens());

  // Feed the gossip round with ground-truth self-observations only
  // (own_possession is a kLocalOnly accessor).
  std::vector<TokenSet> possession;
  possession.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    possession.emplace_back(view.own_possession(v));
  gossip_->advance(possession, view.step());

  // Believed rarity per token: count of vertices believed to hold it.
  // Every vertex computes this from its OWN beliefs; to keep the
  // simulation cheap we compute it per receiver below only when needed.
  std::vector<std::int32_t> believed_holders(universe);

  bool sent = false;
  for (VertexId v = 0; v < n; ++v) {
    const TokenSetView mine = view.own_possession(v);
    const auto in_arcs = graph.in_arcs(v);
    if (in_arcs.empty()) continue;

    // Believed offers per in-neighbor (stale => under-approximation of
    // the truth, so every request is satisfiable).
    std::vector<TokenSet> offered;
    offered.reserve(in_arcs.size());
    TokenSet obtainable(universe);
    for (ArcId a : in_arcs) {
      TokenSet tokens = gossip_->belief(v, graph.arc(a).from).tokens;
      tokens -= mine;
      obtainable |= tokens;
      offered.push_back(std::move(tokens));
    }
    if (obtainable.empty()) continue;

    // v's believed rarity, from its own gossip row.
    std::fill(believed_holders.begin(), believed_holders.end(), 0);
    for (VertexId w = 0; w < n; ++w) {
      gossip_->belief(v, w).tokens.for_each([&](TokenId t) {
        ++believed_holders[static_cast<std::size_t>(t)];
      });
    }
    std::vector<TokenId> order = obtainable.to_vector();
    rng_.shuffle(order);
    std::stable_sort(order.begin(), order.end(), [&](TokenId a, TokenId b) {
      return believed_holders[static_cast<std::size_t>(a)] <
             believed_holders[static_cast<std::size_t>(b)];
    });

    // Wanted tokens first, then flood tokens; one request per token,
    // arcs chosen by remaining budget.
    std::vector<std::int32_t> budget;
    budget.reserve(in_arcs.size());
    std::int64_t total_budget = 0;
    for (ArcId a : in_arcs) {
      budget.push_back(view.capacity(a));
      total_budget += budget.back();
    }
    const TokenSet wanted = view.own_want(v) - mine;
    for (const bool wanted_pass : {true, false}) {
      if (total_budget <= 0) break;
      for (TokenId t : order) {
        if (total_budget <= 0) break;
        if (wanted.test(t) != wanted_pass) continue;
        std::int32_t best = -1;
        std::int32_t best_budget = 0;
        for (std::size_t k = 0; k < in_arcs.size(); ++k) {
          if (!offered[k].test(t)) continue;
          if (budget[k] > best_budget) {
            best_budget = budget[k];
            best = static_cast<std::int32_t>(k);
          }
        }
        if (best < 0) continue;
        plan.send(in_arcs[static_cast<std::size_t>(best)], t, universe);
        --budget[static_cast<std::size_t>(best)];
        --total_budget;
        sent = true;
        // Remove t from every offer so it is requested only once.
        for (auto& offer : offered) offer.reset(t);
      }
    }
  }
  // Waiting for beliefs to propagate is legitimate idling.
  if (!sent) plan.mark_idle();
}

}  // namespace ocd::sim
