#include "ocd/sim/policy.hpp"

namespace ocd::sim {

StepPlan::StepPlan(const Digraph& graph) { rebind(graph, {}); }

StepPlan::StepPlan(const Digraph& graph,
                   std::span<const std::int32_t> effective_capacity) {
  OCD_EXPECTS(effective_capacity.size() ==
              static_cast<std::size_t>(graph.num_arcs()));
  rebind(graph, effective_capacity);
}

void StepPlan::rebind(const Digraph& graph,
                      std::span<const std::int32_t> effective_capacity) {
  OCD_EXPECTS(effective_capacity.empty() ||
              effective_capacity.size() ==
                  static_cast<std::size_t>(graph.num_arcs()));
  const auto num_arcs = static_cast<std::size_t>(graph.num_arcs());
  if (graph_ != &graph || arc_slot_.size() != num_arcs) {
    graph_ = &graph;
    arc_slot_.assign(num_arcs, -1);
  } else {
    // Same graph: undo only the slots the previous step touched.
    for (std::size_t i = 0; i < used_; ++i)
      arc_slot_[static_cast<std::size_t>(pool_[i].arc)] = -1;
  }
  effective_capacity_ = effective_capacity;
  used_ = 0;
  idle_ = false;
}

core::ArcSend& StepPlan::acquire_slot(ArcId arc) {
  arc_slot_[static_cast<std::size_t>(arc)] = static_cast<std::int32_t>(used_);
  if (used_ == pool_.size()) pool_.emplace_back();
  core::ArcSend& slot = pool_[used_++];
  slot.arc = arc;
  return slot;
}

void StepPlan::send(ArcId arc, TokenSetView tokens) {
  OCD_EXPECTS(graph_ != nullptr);
  OCD_EXPECTS(arc >= 0 && arc < graph_->num_arcs());
  if (tokens.empty()) return;
  const std::int32_t slot = arc_slot_[static_cast<std::size_t>(arc)];
  if (slot >= 0) {
    pool_[static_cast<std::size_t>(slot)].tokens |= tokens;
    return;
  }
  acquire_slot(arc).tokens.assign(tokens);  // reuses the slot's storage
}

void StepPlan::send(ArcId arc, TokenId token, std::size_t universe) {
  OCD_EXPECTS(graph_ != nullptr);
  OCD_EXPECTS(arc >= 0 && arc < graph_->num_arcs());
  const std::int32_t slot = arc_slot_[static_cast<std::size_t>(arc)];
  if (slot >= 0) {
    pool_[static_cast<std::size_t>(slot)].tokens.set(token);
    return;
  }
  core::ArcSend& fresh = acquire_slot(arc);
  if (fresh.tokens.universe_size() != universe) {
    fresh.tokens = TokenSet(universe);
  } else {
    fresh.tokens.clear();
  }
  fresh.tokens.set(token);
}

std::int32_t StepPlan::remaining_capacity(ArcId arc) const {
  OCD_EXPECTS(graph_ != nullptr);
  OCD_EXPECTS(arc >= 0 && arc < graph_->num_arcs());
  const std::int32_t capacity =
      effective_capacity_.empty()
          ? graph_->arc(arc).capacity
          : effective_capacity_[static_cast<std::size_t>(arc)];
  const std::int32_t slot = arc_slot_[static_cast<std::size_t>(arc)];
  if (slot < 0) return capacity;
  return capacity -
         static_cast<std::int32_t>(
             pool_[static_cast<std::size_t>(slot)].tokens.count());
}

core::Timestep StepPlan::take() const {
  core::Timestep step;
  for (const core::ArcSend& send : sends()) {
    if (send.tokens.empty()) continue;
    step.sends().push_back(send);
  }
  return step;
}

void Policy::reset(const core::Instance&, std::uint64_t) {}

void Policy::plan_step(const StepView& view, StepPlan& plan) {
  for (VertexId v = 0; v < view.graph().num_vertices(); ++v)
    plan_vertex(v, view, plan);
}

void Policy::plan_vertex(VertexId, const StepView&, StepPlan&) {}

void Policy::plan_shard(const StepView& view, StepPlan& plan,
                        std::span<const VertexId> owned) {
  for (VertexId v : owned) plan_vertex(v, view, plan);
}

void Policy::finish_run(RunStats&) {}

void Policy::save_state(util::BinStream&) const {}

void Policy::load_state(util::BinStream&) {}

}  // namespace ocd::sim
