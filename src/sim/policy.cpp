#include "ocd/sim/policy.hpp"

namespace ocd::sim {

StepPlan::StepPlan(const Digraph& graph)
    : graph_(graph), arc_slot_(static_cast<std::size_t>(graph.num_arcs()), -1) {}

StepPlan::StepPlan(const Digraph& graph,
                   std::span<const std::int32_t> effective_capacity)
    : graph_(graph),
      effective_capacity_(effective_capacity),
      arc_slot_(static_cast<std::size_t>(graph.num_arcs()), -1) {
  OCD_EXPECTS(effective_capacity.size() ==
              static_cast<std::size_t>(graph.num_arcs()));
}

void StepPlan::send(ArcId arc, const TokenSet& tokens) {
  OCD_EXPECTS(arc >= 0 && arc < graph_.num_arcs());
  if (tokens.empty()) return;
  std::int32_t& slot = arc_slot_[static_cast<std::size_t>(arc)];
  if (slot >= 0) {
    step_.sends()[static_cast<std::size_t>(slot)].tokens |= tokens;
    return;
  }
  slot = static_cast<std::int32_t>(step_.sends().size());
  step_.sends().push_back(core::ArcSend{arc, tokens});
}

void StepPlan::send(ArcId arc, TokenId token, std::size_t universe) {
  OCD_EXPECTS(arc >= 0 && arc < graph_.num_arcs());
  std::int32_t& slot = arc_slot_[static_cast<std::size_t>(arc)];
  if (slot >= 0) {
    step_.sends()[static_cast<std::size_t>(slot)].tokens.set(token);
    return;
  }
  slot = static_cast<std::int32_t>(step_.sends().size());
  TokenSet s(universe);
  s.set(token);
  step_.sends().push_back(core::ArcSend{arc, std::move(s)});
}

std::int32_t StepPlan::remaining_capacity(ArcId arc) const {
  OCD_EXPECTS(arc >= 0 && arc < graph_.num_arcs());
  const std::int32_t capacity =
      effective_capacity_.empty()
          ? graph_.arc(arc).capacity
          : effective_capacity_[static_cast<std::size_t>(arc)];
  const std::int32_t slot = arc_slot_[static_cast<std::size_t>(arc)];
  if (slot < 0) return capacity;
  return capacity - static_cast<std::int32_t>(
                        step_.sends()[static_cast<std::size_t>(slot)]
                            .tokens.count());
}

void Policy::reset(const core::Instance&, std::uint64_t) {}

void Policy::plan_step(const StepView& view, StepPlan& plan) {
  for (VertexId v = 0; v < view.graph().num_vertices(); ++v)
    plan_vertex(v, view, plan);
}

void Policy::plan_vertex(VertexId, const StepView&, StepPlan&) {}

void Policy::finish_run(RunStats&) {}

}  // namespace ocd::sim
