#include "ocd/sim/knowledge.hpp"

namespace ocd::sim {

Aggregates compute_aggregates(const core::Instance& inst,
                              const std::vector<TokenSet>& possession) {
  OCD_EXPECTS(possession.size() ==
              static_cast<std::size_t>(inst.num_vertices()));
  Aggregates agg;
  agg.holders.assign(static_cast<std::size_t>(inst.num_tokens()), 0);
  agg.need.assign(static_cast<std::size_t>(inst.num_tokens()), 0);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    possession[static_cast<std::size_t>(v)].for_each(
        [&](TokenId t) { ++agg.holders[static_cast<std::size_t>(t)]; });
    const TokenSet missing =
        inst.want(v) - possession[static_cast<std::size_t>(v)];
    missing.for_each(
        [&](TokenId t) { ++agg.need[static_cast<std::size_t>(t)]; });
  }
  return agg;
}

SnapshotBuffer::SnapshotBuffer(std::int32_t staleness)
    : staleness_(staleness) {
  OCD_EXPECTS(staleness >= 0);
}

void SnapshotBuffer::push(const std::vector<TokenSet>& possession) {
  snapshots_.push_back(possession);
  // Keep staleness_+1 entries: front is the stale view, back the newest.
  while (snapshots_.size() > static_cast<std::size_t>(staleness_) + 1)
    snapshots_.pop_front();
}

const std::vector<TokenSet>& SnapshotBuffer::stale_view() const {
  OCD_EXPECTS(!snapshots_.empty());
  return snapshots_.front();
}

}  // namespace ocd::sim
