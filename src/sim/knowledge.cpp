#include "ocd/sim/knowledge.hpp"

#include <algorithm>

namespace ocd::sim {

Aggregates compute_aggregates(const core::Instance& inst,
                              const util::TokenMatrix& possession) {
  Aggregates agg;
  compute_aggregates_into(inst, possession, agg);
  return agg;
}

void compute_aggregates_into(const core::Instance& inst,
                             const util::TokenMatrix& possession,
                             Aggregates& out) {
  OCD_EXPECTS(possession.rows() ==
              static_cast<std::size_t>(inst.num_vertices()));
  OCD_EXPECTS(possession.universe_size() ==
              static_cast<std::size_t>(inst.num_tokens()));
  out.holders.assign(static_cast<std::size_t>(inst.num_tokens()), 0);
  out.need.assign(static_cast<std::size_t>(inst.num_tokens()), 0);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    const TokenSetView mine = possession.row(static_cast<std::size_t>(v));
    mine.for_each(
        [&](TokenId t) { ++out.holders[static_cast<std::size_t>(t)]; });
    // Wanted-but-missing, without materializing the difference: iterate
    // want masked by the complement of possession word by word.
    const TokenSet& want = inst.want(v);
    for (std::size_t wi = 0, e = mine.num_words(); wi < e; ++wi) {
      std::uint64_t w = want.words()[wi] & ~mine.word(wi);
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        ++out.need[wi * 64 + static_cast<std::size_t>(b)];
        w &= w - 1;
      }
    }
  }
}

void Aggregates::apply_delivery(TokenSetView fresh, TokenSetView want) {
  fresh.for_each([&](TokenId t) {
    const auto i = static_cast<std::size_t>(t);
    ++holders[i];
    if (want.test(t)) --need[i];
  });
}

SnapshotBuffer::SnapshotBuffer(std::int32_t staleness)
    : staleness_(staleness) {
  OCD_EXPECTS(staleness >= 0);
}

void SnapshotBuffer::alias_live(const util::TokenMatrix& live) {
  OCD_EXPECTS(staleness_ == 0);
  OCD_EXPECTS(pushes_ == 0);
  live_ = &live;
}

void SnapshotBuffer::push(const util::TokenMatrix& possession) {
  if (live_ != nullptr) {
    OCD_EXPECTS(&possession == live_);
    return;  // the live matrix is the freshest snapshot already
  }
  const auto cap = static_cast<std::size_t>(staleness_) + 1;
  const auto slot = static_cast<std::size_t>(pushes_) % cap;
  if (slots_.size() <= slot) {
    slots_.push_back(possession);  // warm-up: first cap pushes allocate
  } else {
    slots_[slot].copy_from(possession);  // steady state: in-place copy
  }
  ++pushes_;
}

const util::TokenMatrix& SnapshotBuffer::stale_view() const {
  if (live_ != nullptr) return *live_;
  OCD_EXPECTS(pushes_ > 0);
  const auto cap = static_cast<std::int64_t>(staleness_) + 1;
  // Oldest retained push = state at step max(0, i - staleness) when
  // push #i (0-based) was the latest.
  const std::int64_t oldest = std::max<std::int64_t>(0, pushes_ - cap);
  return slots_[static_cast<std::size_t>(oldest % cap)];
}

}  // namespace ocd::sim
