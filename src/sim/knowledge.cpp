#include "ocd/sim/knowledge.hpp"

namespace ocd::sim {

Aggregates compute_aggregates(const core::Instance& inst,
                              const std::vector<TokenSet>& possession) {
  OCD_EXPECTS(possession.size() ==
              static_cast<std::size_t>(inst.num_vertices()));
  Aggregates agg;
  agg.holders.assign(static_cast<std::size_t>(inst.num_tokens()), 0);
  agg.need.assign(static_cast<std::size_t>(inst.num_tokens()), 0);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    possession[static_cast<std::size_t>(v)].for_each(
        [&](TokenId t) { ++agg.holders[static_cast<std::size_t>(t)]; });
    const TokenSet missing =
        inst.want(v) - possession[static_cast<std::size_t>(v)];
    missing.for_each(
        [&](TokenId t) { ++agg.need[static_cast<std::size_t>(t)]; });
  }
  return agg;
}

void Aggregates::apply_delivery(const TokenSet& fresh, const TokenSet& want) {
  fresh.for_each([&](TokenId t) {
    const auto i = static_cast<std::size_t>(t);
    ++holders[i];
    if (want.test(t)) --need[i];
  });
}

SnapshotBuffer::SnapshotBuffer(std::int32_t staleness)
    : staleness_(staleness) {
  OCD_EXPECTS(staleness >= 0);
}

void SnapshotBuffer::alias_live(const std::vector<TokenSet>& live) {
  OCD_EXPECTS(staleness_ == 0);
  OCD_EXPECTS(snapshots_.empty());
  live_ = &live;
}

void SnapshotBuffer::push(const std::vector<TokenSet>& possession) {
  if (live_ != nullptr) {
    OCD_EXPECTS(&possession == live_);
    return;  // the live vector is the freshest snapshot already
  }
  // Keep staleness_+1 entries: front is the stale view, back the newest.
  if (snapshots_.size() > static_cast<std::size_t>(staleness_)) {
    std::vector<TokenSet> recycled = std::move(snapshots_.front());
    snapshots_.pop_front();
    recycled = possession;  // element-wise copy reuses the bitset storage
    snapshots_.push_back(std::move(recycled));
  } else {
    snapshots_.push_back(possession);
  }
}

const std::vector<TokenSet>& SnapshotBuffer::stale_view() const {
  if (live_ != nullptr) return *live_;
  OCD_EXPECTS(!snapshots_.empty());
  return snapshots_.front();
}

}  // namespace ocd::sim
