#include "ocd/sim/simulator.hpp"

#include <algorithm>
#include <sstream>

#include "ocd/dynamics/model.hpp"
#include "ocd/faults/model.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/util/parallel.hpp"
#include "ocd/util/stopwatch.hpp"

namespace ocd::sim {

const char* to_string(Termination t) {
  switch (t) {
    case Termination::kSatisfied:
      return "satisfied";
    case Termination::kPolicyStalled:
      return "policy-stalled";
    case Termination::kNoProgress:
      return "no-progress";
    case Termination::kMaxSteps:
      return "max-steps";
  }
  return "unknown";
}

namespace {

/// Watchdog window when no_progress_window is 0 ("auto") and a fault
/// model is active.
constexpr std::int64_t kDefaultNoProgressWindow = 256;

/// Cap on the up-front reservation of the per-step stats vectors: long
/// enough that every realistic run records without reallocating (so
/// steady-state steps stay allocation-free), bounded so the default
/// max_steps of a million does not pin megabytes per run.
constexpr std::int64_t kStatsReserveCap = 65536;

/// Shard the apply phase only for steps with at least this many sends;
/// below it the pool wake-up costs more than the deliveries.  A pure
/// perf knob — the sharded and serial apply produce identical state.
constexpr std::size_t kParallelApplyMinSends = 64;

/// Items per chunk when sharding destinations across workers.
constexpr std::size_t kDestGrain = 8;

/// Per-chunk totals of the sharded apply phase.  Merged in ascending
/// chunk order; integer sums, so the totals equal the serial ones.
struct ApplyTotals {
  std::int64_t useful = 0;
  std::int64_t delivered = 0;
};

void validate_options(const SimOptions& options) {
  if (options.max_steps < 0) {
    throw Error("SimOptions.max_steps must be >= 0, got " +
                std::to_string(options.max_steps));
  }
  if (options.staleness < 0) {
    throw Error("SimOptions.staleness must be >= 0, got " +
                std::to_string(options.staleness));
  }
  if (options.no_progress_window < -1) {
    throw Error(
        "SimOptions.no_progress_window must be -1 (off), 0 (auto) or "
        "positive, got " +
        std::to_string(options.no_progress_window));
  }
}

/// Per-vertex satisfaction: the instance's want-subset rule, or the
/// caller's completion override (coding thresholds etc).
bool vertex_satisfied(const core::Instance& inst, const SimOptions& options,
                      VertexId v, TokenSetView possession) {
  if (options.completion) return options.completion(v, possession);
  return inst.want(v).is_subset_of(possession);
}

}  // namespace

void validate_sends(const core::Instance& inst,
                    std::span<const core::ArcSend> sends,
                    std::span<const std::int32_t> effective_capacity,
                    const util::TokenMatrix& possession,
                    std::span<std::int32_t> arc_load,
                    std::string_view policy_name, std::int64_t step) {
  OCD_EXPECTS(arc_load.size() == effective_capacity.size());
  const auto fail = [&](const Arc& arc, const char* what) {
    for (const core::ArcSend& send : sends)
      arc_load[static_cast<std::size_t>(send.arc)] = 0;
    std::ostringstream msg;
    msg << "policy '" << policy_name << "' " << what << " on arc (" << arc.from
        << "," << arc.to << ") at step " << step;
    throw Error(msg.str());
  };
  for (const core::ArcSend& send : sends) {
    const Arc& arc = inst.graph().arc(send.arc);
    const auto index = static_cast<std::size_t>(send.arc);
    arc_load[index] += static_cast<std::int32_t>(send.tokens.count());
    if (arc_load[index] > effective_capacity[index])
      fail(arc, "exceeded capacity");
    if (!send.tokens.is_subset_of(
            possession.row(static_cast<std::size_t>(arc.from))))
      fail(arc, "sent unpossessed tokens");
  }
  for (const core::ArcSend& send : sends)
    arc_load[static_cast<std::size_t>(send.arc)] = 0;
}

RunResult Simulator::run(const core::Instance& inst, Policy& policy,
                         const SimOptions& options) {
  validate_options(options);
  inst.validate();
  Stopwatch timer;
  RunResult result;
  const auto n = static_cast<std::size_t>(inst.num_vertices());
  const auto m = static_cast<std::size_t>(inst.num_tokens());

  scratch_.possession.reset(n, m);
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    scratch_.possession.assign_row(static_cast<std::size_t>(v), inst.have(v));
  util::TokenMatrix& possession = scratch_.possession;

  result.stats.sent_by_vertex.assign(n, 0);
  result.stats.completion_step.assign(n, -1);
  const auto reserve_steps = static_cast<std::size_t>(
      std::min<std::int64_t>(options.max_steps, kStatsReserveCap));
  result.stats.moves_per_step.reserve(reserve_steps);
  result.stats.lost_per_step.reserve(reserve_steps);

  // Satisfaction is tracked incrementally: one boolean per vertex plus
  // an unsatisfied counter, updated only for vertices whose possession
  // changed this step (the predicate is a pure function of possession).
  scratch_.satisfied.assign(n, 0);
  std::vector<char>& satisfied = scratch_.satisfied;
  std::int64_t unsatisfied = 0;
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    const auto i = static_cast<std::size_t>(v);
    if (vertex_satisfied(inst, options, v, possession.row(i))) {
      satisfied[i] = 1;
      result.stats.completion_step[i] = 0;
    } else {
      ++unsatisfied;
    }
  }

  const bool needs_distances =
      options.precompute_distances ||
      policy.knowledge_class() == KnowledgeClass::kGlobal;
  if (needs_distances) scratch_.distances = all_pairs_distances(inst.graph());

  policy.reset(inst, options.seed);
  if (options.dynamics != nullptr) options.dynamics->reset(inst, options.seed);
  const bool faulted = options.faults != nullptr;
  if (faulted) options.faults->reset(inst, options.seed);

  // Watchdog: 0 = auto (armed with the default window iff faults are
  // active), -1 = off, positive = armed with that window.
  std::int64_t watchdog_window = options.no_progress_window;
  if (watchdog_window == 0)
    watchdog_window = faulted ? kDefaultNoProgressWindow : -1;

  SnapshotBuffer snapshots(options.staleness);
  if (options.staleness == 0 && !options.stale_aggregates)
    snapshots.alias_live(possession);

  // Aggregates are materialized only when the policy may observe them.
  // The live variant is maintained incrementally on delivery; the
  // stale_aggregates ablation recomputes from the k-stale snapshot.
  const bool needs_aggregates =
      static_cast<int>(policy.knowledge_class()) >=
      static_cast<int>(KnowledgeClass::kLocalAggregate);
  Aggregates& aggregates = scratch_.aggregates;
  if (needs_aggregates && !options.stale_aggregates)
    compute_aggregates_into(inst, possession, aggregates);

  const auto num_arcs = static_cast<std::size_t>(inst.graph().num_arcs());
  scratch_.static_capacity.resize(num_arcs);
  for (ArcId a = 0; a < inst.graph().num_arcs(); ++a)
    scratch_.static_capacity[static_cast<std::size_t>(a)] =
        inst.graph().arc(a).capacity;
  scratch_.effective_capacity = scratch_.static_capacity;
  std::vector<std::int32_t>& effective_capacity = scratch_.effective_capacity;

  // Per-step scratch, cleared between steps instead of reallocated.
  scratch_.arc_load.assign(num_arcs, 0);
  scratch_.fresh = TokenSet(m);
  scratch_.lost = TokenSet(m);
  scratch_.touched.clear();
  scratch_.touched.reserve(n);
  scratch_.touched_flag.assign(n, 0);
  TokenSet& fresh = scratch_.fresh;
  TokenSet& lost = scratch_.lost;

  // Sharded apply (ISSUE 5): when the worker budget allows it, big
  // steps group their sends into per-destination chains and apply them
  // to disjoint possession rows in parallel.  Arenas are sized up front
  // so steady-state steps stay allocation-free.
  const bool sharded_apply = util::parallel_active();
  if (sharded_apply) {
    scratch_.apply_fresh.reset(util::kMaxParallelChunks, m);
    scratch_.apply_union.reset(n, m);
    scratch_.dest_head.assign(n, -1);
    scratch_.dest_tail.assign(n, -1);
    scratch_.send_next.assign(num_arcs, -1);
    scratch_.dest_list.clear();
    scratch_.dest_list.reserve(n);
  }

  std::int64_t step = 0;
  std::int64_t no_progress = 0;
  Termination termination = Termination::kMaxSteps;
  while (step < options.max_steps && unsatisfied > 0) {
    if (options.dynamics != nullptr) {
      effective_capacity = scratch_.static_capacity;
      options.dynamics->observe(step, inst, possession);
      options.dynamics->apply(step, inst.graph(), effective_capacity);
      for (std::int32_t c : effective_capacity) OCD_ASSERT(c >= 0);
    }
    // Channel state advances every step, traffic or not, so the loss
    // trace is a function of (seed, step) alone.
    if (faulted) options.faults->begin_step(step, inst.graph());

    snapshots.push(possession);
    if (needs_aggregates && options.stale_aggregates)
      compute_aggregates_into(inst, snapshots.stale_view(), aggregates);
    const StepView view(inst, possession, snapshots.stale_view(),
                        needs_aggregates ? &aggregates : nullptr,
                        needs_distances ? &scratch_.distances : nullptr,
                        policy.knowledge_class(), step, effective_capacity);
    StepPlan& plan = scratch_.plan;
    plan.rebind(inst.graph(), effective_capacity);
    policy.plan_step(view, plan);

    if (plan.empty() && !plan.idle_marked() && options.dynamics == nullptr) {
      // Stalled policy: wants outstanding but nothing sent.  Under a
      // dynamics model an empty step can be the network's fault, so
      // the run continues (bounded by max_steps and the watchdog).
      termination = Termination::kPolicyStalled;
      break;
    }

    // Validate every send against the start-of-step possession and the
    // aggregate per-arc load, then apply in place: only recipients of
    // fresh tokens are mutated.  Since possession only grows within a
    // step, `send.tokens - possession[to]` at apply time equals the
    // tokens not yet held at step start nor granted earlier this step,
    // so the useful/redundant split matches simultaneous delivery.
    validate_sends(inst, plan.sends(), effective_capacity, possession,
                   scratch_.arc_load, policy.name(), step);

    std::int64_t step_moves = 0;
    std::int64_t step_lost = 0;
    std::int64_t step_useful = 0;
    const std::span<core::ArcSend> sends = plan.sends();
    if (!sharded_apply || sends.size() < kParallelApplyMinSends) {
      for (core::ArcSend& send : sends) {
        const Arc& arc = inst.graph().arc(send.arc);
        const auto count = static_cast<std::int64_t>(send.tokens.count());
        step_moves += count;
        result.stats.sent_by_vertex[static_cast<std::size_t>(arc.from)] +=
            count;
        if (faulted) {
          lost.clear();
          options.faults->lost(step, send.arc, send.tokens, lost);
          lost &= send.tokens;  // a model may only lose what was sent
          const auto lost_count = static_cast<std::int64_t>(lost.count());
          if (lost_count > 0) {
            step_lost += lost_count;
            // The recorded schedule keeps deliveries only, so it stays a
            // valid loss-free schedule reaching the same final state.
            send.tokens -= lost;
          }
        }
        const auto delivered = static_cast<std::int64_t>(send.tokens.count());
        const auto to = static_cast<std::size_t>(arc.to);
        // Fused kernel: fresh = send - possession, possession |= send,
        // in one pass (a no-op on possession when nothing is fresh).
        const auto fresh_count =
            static_cast<std::int64_t>(MutableTokenSetView::apply_fresh_union(
                possession.row(to), send.tokens, fresh));
        result.stats.useful_moves += fresh_count;
        result.stats.redundant_moves += delivered - fresh_count;
        step_useful += fresh_count;
        if (fresh_count == 0) continue;
        if (needs_aggregates && !options.stale_aggregates)
          aggregates.apply_delivery(fresh, inst.want(arc.to));
        if (!scratch_.touched_flag[to]) {
          scratch_.touched_flag[to] = 1;
          scratch_.touched.push_back(arc.to);
        }
      }
    } else {
      // Sharded apply, three phases, bit-identical to the loop above.
      //
      // 1. Serial pre-phase in plan order: wire counters and channel
      // loss (the fault model is stateful — querying it in plan order
      // keeps the loss trace a function of (seed, step) alone), plus
      // per-destination send chains.
      scratch_.dest_list.clear();
      for (std::size_t s = 0; s < sends.size(); ++s) {
        core::ArcSend& send = sends[s];
        const Arc& arc = inst.graph().arc(send.arc);
        const auto count = static_cast<std::int64_t>(send.tokens.count());
        step_moves += count;
        result.stats.sent_by_vertex[static_cast<std::size_t>(arc.from)] +=
            count;
        if (faulted) {
          lost.clear();
          options.faults->lost(step, send.arc, send.tokens, lost);
          lost &= send.tokens;
          const auto lost_count = static_cast<std::int64_t>(lost.count());
          if (lost_count > 0) {
            step_lost += lost_count;
            send.tokens -= lost;
          }
        }
        const auto to = static_cast<std::size_t>(arc.to);
        scratch_.send_next[s] = -1;
        if (scratch_.dest_head[to] < 0) {
          scratch_.dest_head[to] = static_cast<std::int32_t>(s);
          scratch_.dest_list.push_back(arc.to);
        } else {
          scratch_.send_next[static_cast<std::size_t>(scratch_.dest_tail[to])] =
              static_cast<std::int32_t>(s);
        }
        scratch_.dest_tail[to] = static_cast<std::int32_t>(s);
      }

      // 2. Parallel per-destination phase: each destination's sends are
      // applied in plan order against its own possession row, exactly
      // like the serial loop (a send's fresh set depends only on the
      // row of its destination, which this chunk owns exclusively).
      // The union of a destination's fresh sets is kept for phase 3.
      // Counter totals are integer sums merged in chunk order.
      const ApplyTotals totals = util::parallel_reduce(
          scratch_.dest_list.size(), kDestGrain, ApplyTotals{},
          [&](util::ChunkRange c) {
            ApplyTotals t;
            const MutableTokenSetView chunk_fresh =
                scratch_.apply_fresh.row(c.index);
            for (std::size_t p = c.begin; p < c.end; ++p) {
              const auto to =
                  static_cast<std::size_t>(scratch_.dest_list[p]);
              const MutableTokenSetView poss = possession.row(to);
              const MutableTokenSetView uni = scratch_.apply_union.row(to);
              uni.clear();
              for (std::int32_t s = scratch_.dest_head[to]; s >= 0;
                   s = scratch_.send_next[static_cast<std::size_t>(s)]) {
                const core::ArcSend& send = sends[static_cast<std::size_t>(s)];
                t.delivered += static_cast<std::int64_t>(send.tokens.count());
                // Fused kernel: fresh = send - poss, poss |= send,
                // uni |= fresh, one pass (no-ops when nothing is fresh).
                t.useful += static_cast<std::int64_t>(
                    MutableTokenSetView::apply_fresh_union_merge(
                        poss, uni, send.tokens, chunk_fresh));
              }
            }
            return t;
          },
          [](ApplyTotals acc, ApplyTotals t) {
            acc.useful += t.useful;
            acc.delivered += t.delivered;
            return acc;
          });
      result.stats.useful_moves += totals.useful;
      result.stats.redundant_moves += totals.delivered - totals.useful;
      step_useful = totals.useful;

      // 3. Serial merge in destination order: aggregates (applying the
      // union once equals applying each disjoint fresh set — both are
      // per-token counter sums), touched bookkeeping, chain reset.
      for (const VertexId v : scratch_.dest_list) {
        const auto to = static_cast<std::size_t>(v);
        scratch_.dest_head[to] = -1;
        scratch_.dest_tail[to] = -1;
        const TokenSetView uni = scratch_.apply_union.row(to);
        if (uni.empty()) continue;
        if (needs_aggregates && !options.stale_aggregates)
          aggregates.apply_delivery(uni, inst.want(v));
        if (!scratch_.touched_flag[to]) {
          scratch_.touched_flag[to] = 1;
          scratch_.touched.push_back(v);
        }
      }
    }
    result.stats.moves_per_step.push_back(step_moves);
    result.stats.lost_per_step.push_back(step_lost);
    result.stats.lost_moves += step_lost;
    if (options.record_schedule) {
      // Copy the surviving sends out of the plan pool; loss trimming may
      // have emptied some, which are dropped (the former compact()).
      core::Timestep timestep;
      for (const core::ArcSend& send : plan.sends()) {
        if (send.tokens.empty()) continue;
        timestep.sends().push_back(send);
      }
      result.schedule.append(std::move(timestep));
    }

    ++step;
    for (VertexId v : scratch_.touched) {
      const auto i = static_cast<std::size_t>(v);
      scratch_.touched_flag[i] = 0;
      const bool now = vertex_satisfied(inst, options, v, possession.row(i));
      if (now == static_cast<bool>(satisfied[i])) continue;
      satisfied[i] = now ? 1 : 0;
      if (now) {
        --unsatisfied;
        if (result.stats.completion_step[i] < 0)
          result.stats.completion_step[i] = step;
      } else {
        ++unsatisfied;  // a non-monotone completion override regressed
      }
    }
    scratch_.touched.clear();

    if (step_useful > 0) {
      no_progress = 0;
    } else if (++no_progress >= watchdog_window && watchdog_window > 0 &&
               unsatisfied > 0) {
      termination = Termination::kNoProgress;
      break;
    }
  }

  if (unsatisfied == 0) termination = Termination::kSatisfied;
  result.success = unsatisfied == 0;
  result.steps = step;
  result.termination = termination;
  policy.finish_run(result.stats);
  result.bandwidth = result.stats.total_moves();
  result.stats.wall_seconds = timer.seconds();
  OCD_ENSURES(result.stats.consistent_with_steps(result.steps));
  return result;
}

RunResult run(const core::Instance& inst, Policy& policy,
              const SimOptions& options) {
  Simulator simulator;
  return simulator.run(inst, policy, options);
}

}  // namespace ocd::sim
