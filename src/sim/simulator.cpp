#include "ocd/sim/simulator.hpp"

#include <sstream>

#include "ocd/dynamics/model.hpp"
#include "ocd/graph/algorithms.hpp"
#include "ocd/util/stopwatch.hpp"

namespace ocd::sim {

namespace {

/// Per-vertex satisfaction: the instance's want-subset rule, or the
/// caller's completion override (coding thresholds etc).
bool vertex_satisfied(const core::Instance& inst, const SimOptions& options,
                      VertexId v, const TokenSet& possession) {
  if (options.completion) return options.completion(v, possession);
  return inst.want(v).is_subset_of(possession);
}

bool all_satisfied(const core::Instance& inst, const SimOptions& options,
                   const std::vector<TokenSet>& possession) {
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (!vertex_satisfied(inst, options, v,
                          possession[static_cast<std::size_t>(v)]))
      return false;
  }
  return true;
}

}  // namespace

RunResult run(const core::Instance& inst, Policy& policy,
              const SimOptions& options) {
  inst.validate();
  Stopwatch timer;
  RunResult result;
  const auto n = static_cast<std::size_t>(inst.num_vertices());

  std::vector<TokenSet> possession(n);
  for (VertexId v = 0; v < inst.num_vertices(); ++v)
    possession[static_cast<std::size_t>(v)] = inst.have(v);

  result.stats.sent_by_vertex.assign(n, 0);
  result.stats.completion_step.assign(n, -1);
  for (VertexId v = 0; v < inst.num_vertices(); ++v) {
    if (vertex_satisfied(inst, options, v,
                         possession[static_cast<std::size_t>(v)]))
      result.stats.completion_step[static_cast<std::size_t>(v)] = 0;
  }

  const bool needs_distances =
      options.precompute_distances ||
      policy.knowledge_class() == KnowledgeClass::kGlobal;
  std::vector<std::vector<std::int32_t>> distances;
  if (needs_distances) distances = all_pairs_distances(inst.graph());

  policy.reset(inst, options.seed);
  if (options.dynamics != nullptr) options.dynamics->reset(inst, options.seed);
  SnapshotBuffer snapshots(options.staleness);

  const auto num_arcs = static_cast<std::size_t>(inst.graph().num_arcs());
  std::vector<std::int32_t> static_capacity(num_arcs);
  for (ArcId a = 0; a < inst.graph().num_arcs(); ++a)
    static_capacity[static_cast<std::size_t>(a)] = inst.graph().arc(a).capacity;
  std::vector<std::int32_t> effective_capacity = static_capacity;

  std::int64_t step = 0;
  while (step < options.max_steps) {
    if (all_satisfied(inst, options, possession)) break;

    if (options.dynamics != nullptr) {
      effective_capacity = static_capacity;
      options.dynamics->observe(step, inst, possession);
      options.dynamics->apply(step, inst.graph(), effective_capacity);
      for (std::int32_t c : effective_capacity) OCD_ASSERT(c >= 0);
    }

    snapshots.push(possession);
    const Aggregates aggregates = compute_aggregates(
        inst, options.stale_aggregates ? snapshots.stale_view() : possession);
    const StepView view(inst, possession, snapshots.stale_view(), aggregates,
                        needs_distances ? &distances : nullptr,
                        policy.knowledge_class(), step, effective_capacity);
    StepPlan plan(inst.graph(), effective_capacity);
    policy.plan_step(view, plan);
    const bool intentional_idle = plan.idle_marked();
    core::Timestep timestep = plan.take();
    timestep.compact();

    if (timestep.empty() && !intentional_idle &&
        options.dynamics == nullptr) {
      // Stalled policy: wants outstanding but nothing sent.  Under a
      // dynamics model an empty step can be the network's fault, so
      // the run continues (bounded by max_steps).
      result.success = false;
      result.steps = step;
      result.stats.wall_seconds = timer.seconds();
      result.bandwidth = result.stats.total_moves();
      return result;
    }

    // Verify and apply simultaneously-delivered sends.  `granted`
    // tracks first deliveries within the step so that two arcs handing
    // the same token to one vertex count as one useful + one redundant
    // move.
    std::int64_t step_moves = 0;
    std::vector<TokenSet> next = possession;
    std::vector<TokenSet> granted(
        n, TokenSet(static_cast<std::size_t>(inst.num_tokens())));
    for (const core::ArcSend& send : timestep.sends()) {
      const Arc& arc = inst.graph().arc(send.arc);
      const auto count = static_cast<std::int64_t>(send.tokens.count());
      if (count > effective_capacity[static_cast<std::size_t>(send.arc)]) {
        std::ostringstream msg;
        msg << "policy '" << policy.name() << "' exceeded capacity on arc ("
            << arc.from << "," << arc.to << ") at step " << step;
        throw Error(msg.str());
      }
      if (!send.tokens.is_subset_of(
              possession[static_cast<std::size_t>(arc.from)])) {
        std::ostringstream msg;
        msg << "policy '" << policy.name()
            << "' sent unpossessed tokens on arc (" << arc.from << ","
            << arc.to << ") at step " << step;
        throw Error(msg.str());
      }
      step_moves += count;
      result.stats.sent_by_vertex[static_cast<std::size_t>(arc.from)] += count;
      const auto to = static_cast<std::size_t>(arc.to);
      TokenSet fresh = send.tokens;
      fresh -= possession[to];
      fresh -= granted[to];
      granted[to] |= fresh;
      result.stats.useful_moves += static_cast<std::int64_t>(fresh.count());
      result.stats.redundant_moves +=
          count - static_cast<std::int64_t>(fresh.count());
      next[to] |= send.tokens;
    }
    possession = std::move(next);
    result.stats.moves_per_step.push_back(step_moves);
    if (options.record_schedule) result.schedule.append(std::move(timestep));

    ++step;
    for (VertexId v = 0; v < inst.num_vertices(); ++v) {
      auto& completion =
          result.stats.completion_step[static_cast<std::size_t>(v)];
      if (completion < 0 &&
          vertex_satisfied(inst, options, v,
                           possession[static_cast<std::size_t>(v)]))
        completion = step;
    }
  }

  result.success = all_satisfied(inst, options, possession);
  result.steps = step;
  result.bandwidth = result.stats.total_moves();
  result.stats.wall_seconds = timer.seconds();
  return result;
}

}  // namespace ocd::sim
