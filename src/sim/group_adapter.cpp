#include "ocd/sim/group_adapter.hpp"

#include <algorithm>

#include "ocd/sim/stats.hpp"

namespace ocd::sim {

GroupConstrainedPolicy::GroupConstrainedPolicy(
    PolicyPtr inner, std::vector<topology::CapacityGroup> groups)
    : inner_(std::move(inner)), groups_(std::move(groups)) {
  OCD_EXPECTS(inner_ != nullptr);
  name_ = std::string(inner_->name()) + "+groups";
}

void GroupConstrainedPolicy::reset(const core::Instance& inst,
                                   std::uint64_t seed) {
  inner_->reset(inst, seed);
  dropped_moves_ = 0;
  rng_ = Rng(seed ^ 0x6701a9a9ULL);
  arc_groups_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), {});
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (ArcId member : groups_[g].members) {
      OCD_EXPECTS(member >= 0 && member < inst.graph().num_arcs());
      arc_groups_[static_cast<std::size_t>(member)].push_back(
          static_cast<std::int32_t>(g));
    }
  }
  remaining_.assign(groups_.size(), 0);
  trimmed_ = TokenSet(static_cast<std::size_t>(inst.num_tokens()));
  pool_.clear();
  pool_.reserve(static_cast<std::size_t>(inst.num_tokens()));
  chosen_.clear();
  chosen_.reserve(static_cast<std::size_t>(inst.num_tokens()));
}

void GroupConstrainedPolicy::plan_step(const StepView& view, StepPlan& plan) {
  scratch_.rebind(view.graph(), {});
  inner_->plan_step(view, scratch_);
  if (scratch_.idle_marked()) plan.mark_idle();

  for (std::size_t g = 0; g < groups_.size(); ++g)
    remaining_[g] = groups_[g].capacity;

  for (const core::ArcSend& send : scratch_.sends()) {
    if (send.tokens.empty()) continue;
    // Allowance across every group this arc belongs to.
    auto allowed = static_cast<std::int64_t>(send.tokens.count());
    for (std::int32_t g : arc_groups_[static_cast<std::size_t>(send.arc)])
      allowed = std::min<std::int64_t>(
          allowed, remaining_[static_cast<std::size_t>(g)]);
    if (allowed <= 0) {
      dropped_moves_ += static_cast<std::int64_t>(send.tokens.count());
      continue;
    }
    trimmed_.assign(send.tokens);
    if (static_cast<std::size_t>(allowed) < trimmed_.count()) {
      // Random survivors: a congested link drops arbitrary packets.
      trimmed_.to_vector_into(pool_);
      trimmed_.clear();
      rng_.sample_indices_into(pool_.size(), static_cast<std::size_t>(allowed),
                               chosen_);
      for (std::size_t index : chosen_) trimmed_.set(pool_[index]);
    }
    dropped_moves_ += static_cast<std::int64_t>(send.tokens.count()) -
                      static_cast<std::int64_t>(trimmed_.count());
    for (std::int32_t g : arc_groups_[static_cast<std::size_t>(send.arc)])
      remaining_[static_cast<std::size_t>(g)] -=
          static_cast<std::int32_t>(trimmed_.count());
    plan.send(send.arc, trimmed_);
  }
}

void GroupConstrainedPolicy::finish_run(RunStats& stats) {
  stats.adapter_dropped_moves += dropped_moves_;
  inner_->finish_run(stats);
}

}  // namespace ocd::sim
