#include "ocd/sim/group_adapter.hpp"

#include <algorithm>

#include "ocd/sim/stats.hpp"

namespace ocd::sim {

GroupConstrainedPolicy::GroupConstrainedPolicy(
    PolicyPtr inner, std::vector<topology::CapacityGroup> groups)
    : inner_(std::move(inner)), groups_(std::move(groups)) {
  OCD_EXPECTS(inner_ != nullptr);
  name_ = std::string(inner_->name()) + "+groups";
}

void GroupConstrainedPolicy::reset(const core::Instance& inst,
                                   std::uint64_t seed) {
  inner_->reset(inst, seed);
  dropped_moves_ = 0;
  rng_ = Rng(seed ^ 0x6701a9a9ULL);
  arc_groups_.assign(static_cast<std::size_t>(inst.graph().num_arcs()), {});
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (ArcId member : groups_[g].members) {
      OCD_EXPECTS(member >= 0 && member < inst.graph().num_arcs());
      arc_groups_[static_cast<std::size_t>(member)].push_back(
          static_cast<std::int32_t>(g));
    }
  }
}

void GroupConstrainedPolicy::plan_step(const StepView& view, StepPlan& plan) {
  StepPlan scratch(view.graph());
  inner_->plan_step(view, scratch);
  if (scratch.idle_marked()) plan.mark_idle();

  std::vector<std::int32_t> remaining(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g)
    remaining[g] = groups_[g].capacity;

  const core::Timestep step = scratch.take();
  for (const core::ArcSend& send : step.sends()) {
    // Allowance across every group this arc belongs to.
    auto allowed = static_cast<std::int64_t>(send.tokens.count());
    for (std::int32_t g : arc_groups_[static_cast<std::size_t>(send.arc)])
      allowed = std::min<std::int64_t>(allowed,
                                       remaining[static_cast<std::size_t>(g)]);
    if (allowed <= 0) {
      dropped_moves_ += static_cast<std::int64_t>(send.tokens.count());
      continue;
    }
    TokenSet trimmed = send.tokens;
    if (static_cast<std::size_t>(allowed) < trimmed.count()) {
      // Random survivors: a congested link drops arbitrary packets.
      const auto pool = trimmed.to_vector();
      trimmed.clear();
      for (std::size_t index : rng_.sample_indices(
               pool.size(), static_cast<std::size_t>(allowed))) {
        trimmed.set(pool[index]);
      }
    }
    dropped_moves_ += static_cast<std::int64_t>(send.tokens.count()) -
                      static_cast<std::int64_t>(trimmed.count());
    for (std::int32_t g : arc_groups_[static_cast<std::size_t>(send.arc)])
      remaining[static_cast<std::size_t>(g)] -=
          static_cast<std::int32_t>(trimmed.count());
    plan.send(send.arc, trimmed);
  }
}

void GroupConstrainedPolicy::finish_run(RunStats& stats) {
  stats.adapter_dropped_moves += dropped_moves_;
  inner_->finish_run(stats);
}

}  // namespace ocd::sim
