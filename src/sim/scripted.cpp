#include "ocd/sim/scripted.hpp"

#include "ocd/graph/algorithms.hpp"
#include "ocd/heuristics/factory.hpp"
#include "ocd/sim/simulator.hpp"

namespace ocd::sim {

ScriptedPolicy::ScriptedPolicy(core::Schedule schedule)
    : schedule_(std::move(schedule)) {}

void ScriptedPolicy::plan_step(const StepView& view, StepPlan& plan) {
  const auto step = static_cast<std::size_t>(view.step());
  if (step >= schedule_.steps().size()) {
    plan.mark_idle();  // script exhausted; nothing left to send
    return;
  }
  const core::Timestep& scripted = schedule_.steps()[step];
  if (scripted.sends().empty()) plan.mark_idle();
  for (const core::ArcSend& send : scripted.sends())
    plan.send(send.arc, send.tokens);
}

TwoPhasePolicy::TwoPhasePolicy(std::string inner_policy, std::int32_t delay)
    : inner_policy_(std::move(inner_policy)), requested_delay_(delay) {}

void TwoPhasePolicy::reset(const core::Instance& inst, std::uint64_t seed) {
  delay_ = requested_delay_ >= 0 ? requested_delay_ : diameter(inst.graph());
  OCD_ASSERT_MSG(delay_ != kUnreachable,
                 "two-phase requires a strongly connected overlay");
  // Offline planning pass: simulate the inner policy against the
  // initial state and keep its recorded schedule as the script.
  auto planner = heuristics::make_policy(inner_policy_);
  SimOptions options;
  options.seed = seed;
  const auto offline = run(inst, *planner, options);
  OCD_ASSERT_MSG(offline.success, "inner planner failed offline");
  plan_ = offline.schedule;
}

void TwoPhasePolicy::plan_step(const StepView& view, StepPlan& plan) {
  const std::int64_t step = view.step();
  if (step < delay_) {
    plan.mark_idle();  // phase 1: knowledge floods, data links are idle
    return;
  }
  const auto index = static_cast<std::size_t>(step - delay_);
  if (index >= plan_.steps().size()) {
    plan.mark_idle();
    return;
  }
  for (const core::ArcSend& send : plan_.steps()[index].sends())
    plan.send(send.arc, send.tokens);
  if (plan_.steps()[index].sends().empty()) plan.mark_idle();
}

}  // namespace ocd::sim
