#include "ocd/sim/views.hpp"

namespace ocd::sim {

const char* to_string(KnowledgeClass k) {
  switch (k) {
    case KnowledgeClass::kLocalOnly:
      return "local-only";
    case KnowledgeClass::kLocalPeers:
      return "local-peers";
    case KnowledgeClass::kLocalAggregate:
      return "local-aggregate";
    case KnowledgeClass::kGlobal:
      return "global";
  }
  return "unknown";
}

StepView::StepView(const core::Instance& instance,
                   const util::TokenMatrix& possession,
                   const util::TokenMatrix& stale_possession,
                   const Aggregates* aggregates,
                   const std::vector<std::vector<std::int32_t>>* distances,
                   KnowledgeClass granted, std::int64_t step,
                   std::span<const std::int32_t> effective_capacity)
    : instance_(instance),
      possession_(possession),
      stale_possession_(stale_possession),
      aggregates_(aggregates),
      distances_(distances),
      granted_(granted),
      step_(step),
      effective_capacity_(effective_capacity) {}

std::int32_t StepView::capacity(ArcId arc) const {
  OCD_EXPECTS(arc >= 0 && arc < instance_.graph().num_arcs());
  if (effective_capacity_.empty()) return instance_.graph().arc(arc).capacity;
  return effective_capacity_[static_cast<std::size_t>(arc)];
}

void StepView::require(KnowledgeClass needed) const {
  OCD_EXPECTS(static_cast<int>(granted_) >= static_cast<int>(needed));
}

const Digraph& StepView::graph() const noexcept { return instance_.graph(); }

std::int32_t StepView::num_tokens() const noexcept {
  return instance_.num_tokens();
}

std::size_t StepView::row_of(VertexId v) const {
  if (row_map_.empty()) return static_cast<std::size_t>(v);
  OCD_EXPECTS(v >= 0 && static_cast<std::size_t>(v) < row_map_.size());
  const std::int32_t row = row_map_[static_cast<std::size_t>(v)];
  OCD_ASSERT_MSG(row >= 0,
                 "vertex is neither owned by nor a ghost of this shard");
  return static_cast<std::size_t>(row);
}

TokenSetView StepView::own_possession(VertexId v) const {
  return possession_.row(row_of(v));
}

const TokenSet& StepView::own_want(VertexId v) const {
  return instance_.want(v);
}

TokenSetView StepView::peer_possession(VertexId self,
                                       VertexId neighbor) const {
  require(KnowledgeClass::kLocalPeers);
  OCD_EXPECTS(instance_.graph().has_arc(self, neighbor) ||
              instance_.graph().has_arc(neighbor, self));
  return stale_possession_.row(row_of(neighbor));
}

std::span<const std::int32_t> StepView::aggregate_holders() const {
  require(KnowledgeClass::kLocalAggregate);
  OCD_ASSERT_MSG(aggregates_ != nullptr,
                 "aggregates were not materialized for this step");
  return aggregates_->holders;
}

std::span<const std::int32_t> StepView::aggregate_need() const {
  require(KnowledgeClass::kLocalAggregate);
  OCD_ASSERT_MSG(aggregates_ != nullptr,
                 "aggregates were not materialized for this step");
  return aggregates_->need;
}

const util::TokenMatrix& StepView::global_possession() const {
  require(KnowledgeClass::kGlobal);
  OCD_ASSERT_MSG(row_map_.empty(),
                 "global possession is unavailable on a shard-local view");
  return possession_;
}

const core::Instance& StepView::instance() const {
  require(KnowledgeClass::kGlobal);
  return instance_;
}

const std::vector<std::vector<std::int32_t>>& StepView::distances() const {
  require(KnowledgeClass::kGlobal);
  OCD_ASSERT(distances_ != nullptr);
  return *distances_;
}

}  // namespace ocd::sim
