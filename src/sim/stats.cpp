#include "ocd/sim/stats.hpp"

#include <sstream>

namespace ocd::sim {

bool RunStats::consistent_with_steps(std::int64_t steps) const noexcept {
  if (steps < 0 ||
      moves_per_step.size() != static_cast<std::size_t>(steps))
    return false;
  std::int64_t sum = 0;
  for (std::int64_t moves : moves_per_step) sum += moves;
  if (sum != total_moves()) return false;
  // Hand-built stats may omit the loss trace; the simulator always
  // records it, one entry per step, summing to lost_moves.
  if (lost_per_step.empty()) return lost_moves == 0;
  if (lost_per_step.size() != moves_per_step.size()) return false;
  std::int64_t lost_sum = 0;
  for (std::int64_t lost : lost_per_step) lost_sum += lost;
  return lost_sum == lost_moves;
}

double RunStats::mean_completion() const {
  double total = 0.0;
  std::int64_t counted = 0;
  for (std::int64_t step : completion_step) {
    if (step >= 0) {
      total += static_cast<double>(step);
      ++counted;
    }
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double RunStats::upload_fairness() const {
  if (sent_by_vertex.empty()) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::int64_t sent : sent_by_vertex) {
    const auto x = static_cast<double>(sent);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 0.0;
  return (sum * sum) /
         (static_cast<double>(sent_by_vertex.size()) * sum_sq);
}

std::string RunStats::summary() const {
  std::ostringstream out;
  out << "steps=" << moves_per_step.size() << " bandwidth=" << total_moves()
      << " useful=" << useful_moves << " redundant=" << redundant_moves
      << " mean_completion=" << mean_completion();
  if (lost_moves > 0 || retransmissions > 0 || adapter_dropped_moves > 0) {
    out << " lost=" << lost_moves << " retrans=" << retransmissions
        << " wasted=" << wasted_bandwidth();
  }
  return out.str();
}

}  // namespace ocd::sim
