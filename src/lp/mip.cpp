#include "ocd/lp/mip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ocd/util/stopwatch.hpp"

namespace ocd::lp {

namespace {

/// One open branch-and-bound node: bound overrides for the integer
/// variables touched so far.  Full bound vectors are copied lazily when
/// the node is expanded (model sizes here are modest).
struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double parent_bound = -std::numeric_limits<double>::infinity();
};

/// Index of the most fractional integer variable (fractionality score
/// min(frac, 1-frac), maximized), or -1 when the solution is integral.
std::int32_t most_fractional(const LinearProgram& lp,
                             const std::vector<double>& x, double tol) {
  std::int32_t best = -1;
  double best_score = tol;
  for (std::int32_t j = 0; j < lp.num_variables(); ++j) {
    if (lp.variable(j).type != VarType::kInteger) continue;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    const double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

/// Rounds an LP solution to the nearest integers and keeps it if it is
/// genuinely feasible — a cheap incumbent heuristic.
bool try_rounding(const LinearProgram& lp, const std::vector<double>& x,
                  double tol, std::vector<double>& out) {
  out = x;
  for (std::int32_t j = 0; j < lp.num_variables(); ++j) {
    if (lp.variable(j).type == VarType::kInteger)
      out[static_cast<std::size_t>(j)] =
          std::round(out[static_cast<std::size_t>(j)]);
  }
  return lp.is_feasible(out, tol * 10, /*check_integrality=*/true);
}

}  // namespace

MipResult solve_mip(const LinearProgram& lp, const MipOptions& options) {
  MipResult result;
  Stopwatch timer;

  auto out_of_budget = [&] {
    return (options.time_limit_seconds > 0 &&
            timer.seconds() > options.time_limit_seconds) ||
           result.nodes_explored >= options.max_nodes;
  };

  std::vector<double> root_lower;
  std::vector<double> root_upper;
  for (const Variable& v : lp.variables()) {
    root_lower.push_back(v.lower);
    root_upper.push_back(v.upper);
  }

  double incumbent = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_values;

  std::vector<Node> stack;
  stack.push_back(Node{std::move(root_lower), std::move(root_upper),
                       -std::numeric_limits<double>::infinity()});

  double root_bound = -std::numeric_limits<double>::infinity();
  bool any_lp_solved = false;
  bool exhausted = true;

  while (!stack.empty()) {
    if (out_of_budget()) {
      exhausted = false;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();

    if (node.parent_bound >= incumbent - options.gap_tol) continue;

    ++result.nodes_explored;
    const LpSolution relax =
        solve_lp_with_bounds(lp, node.lower, node.upper, options.lp);
    result.lp_iterations += relax.iterations;

    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation of a minimization with binary variables
      // cannot occur in this library's models; report and stop.
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (relax.status == SolveStatus::kIterationLimit) {
      exhausted = false;
      continue;
    }
    if (!any_lp_solved) {
      any_lp_solved = true;
      root_bound = relax.objective;
    }
    if (relax.objective >= incumbent - options.gap_tol) continue;

    const std::int32_t branch_var =
        most_fractional(lp, relax.values, options.integrality_tol);
    if (branch_var < 0) {
      // Integral: new incumbent.
      incumbent = relax.objective;
      incumbent_values = relax.values;
      for (auto& v : incumbent_values) {
        // Snap integer variables exactly.
        v = std::abs(v - std::round(v)) <= options.integrality_tol * 10
                ? std::round(v)
                : v;
      }
      continue;
    }

    // Rounding heuristic to tighten the incumbent early.
    if (incumbent_values.empty()) {
      std::vector<double> rounded;
      if (try_rounding(lp, relax.values, options.integrality_tol, rounded)) {
        const double obj = lp.objective_value(rounded);
        if (obj < incumbent) {
          incumbent = obj;
          incumbent_values = std::move(rounded);
        }
      }
    }

    const double value = relax.values[static_cast<std::size_t>(branch_var)];
    const double floor_value = std::floor(value);

    // Explore the side nearer the LP value first (pushed last).
    Node down{node.lower, node.upper, relax.objective};
    down.upper[static_cast<std::size_t>(branch_var)] = floor_value;
    Node up{std::move(node.lower), std::move(node.upper), relax.objective};
    up.lower[static_cast<std::size_t>(branch_var)] = floor_value + 1.0;

    if (value - floor_value < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  if (incumbent_values.empty()) {
    result.status = exhausted ? SolveStatus::kInfeasible
                              : SolveStatus::kIterationLimit;
    result.best_bound = exhausted ? incumbent : root_bound;
    return result;
  }

  result.status = SolveStatus::kOptimal;
  result.proven_optimal = exhausted;
  result.objective = incumbent;
  result.values = std::move(incumbent_values);
  result.best_bound = exhausted ? incumbent : root_bound;
  return result;
}

}  // namespace ocd::lp
