#include "ocd/lp/model.hpp"

#include <algorithm>
#include <cmath>

namespace ocd::lp {

std::int32_t LinearProgram::add_variable(double lower, double upper,
                                         double objective, VarType type,
                                         std::string name) {
  OCD_EXPECTS(lower <= upper);
  OCD_EXPECTS(std::isfinite(lower) || std::isfinite(upper));
  OCD_EXPECTS(std::isfinite(objective));
  variables_.push_back(Variable{lower, upper, objective, type, std::move(name)});
  return static_cast<std::int32_t>(variables_.size()) - 1;
}

std::int32_t LinearProgram::add_binary(double objective, std::string name) {
  return add_variable(0.0, 1.0, objective, VarType::kInteger, std::move(name));
}

std::int32_t LinearProgram::add_constraint(std::vector<Term> terms,
                                           Relation relation, double rhs,
                                           std::string name) {
  OCD_EXPECTS(std::isfinite(rhs));
  // Merge duplicate variables and validate indices.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    OCD_EXPECTS(t.var >= 0 && t.var < num_variables());
    OCD_EXPECTS(std::isfinite(t.coeff));
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coeff == 0.0; });
  constraints_.push_back(
      Constraint{std::move(merged), relation, rhs, std::move(name)});
  return static_cast<std::int32_t>(constraints_.size()) - 1;
}

const Variable& LinearProgram::variable(std::int32_t i) const {
  OCD_EXPECTS(i >= 0 && i < num_variables());
  return variables_[static_cast<std::size_t>(i)];
}

const Constraint& LinearProgram::constraint(std::int32_t i) const {
  OCD_EXPECTS(i >= 0 && i < num_constraints());
  return constraints_[static_cast<std::size_t>(i)];
}

bool LinearProgram::has_integer_variables() const noexcept {
  return std::any_of(variables_.begin(), variables_.end(),
                     [](const Variable& v) {
                       return v.type == VarType::kInteger;
                     });
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  OCD_EXPECTS(x.size() == variables_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i)
    total += variables_[i].objective * x[i];
  return total;
}

bool LinearProgram::is_feasible(const std::vector<double>& x, double tol,
                                bool check_integrality) const {
  OCD_EXPECTS(x.size() == variables_.size());
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const Variable& v = variables_[i];
    if (x[i] < v.lower - tol || x[i] > v.upper + tol) return false;
    if (check_integrality && v.type == VarType::kInteger &&
        std::abs(x[i] - std::round(x[i])) > tol)
      return false;
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
    switch (c.relation) {
      case Relation::kLessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace ocd::lp
